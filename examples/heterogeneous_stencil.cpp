// 1-D heat diffusion with halo exchange across a heterogeneous
// cluster-of-clusters — the workload class the paper's introduction
// motivates: one application spanning an SCI cluster and a Myrinet cluster
// joined by Fast-Ethernet, without dedicating TCP to "inter-cluster" use.
//
// The domain is block-partitioned across ranks; each iteration exchanges
// one-cell halos with neighbours (SCI, Myrinet or TCP hops depending on
// where the neighbour lives) and computes the explicit Euler update. Every
// few iterations an allreduce computes the residual.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

namespace {

constexpr int kCellsPerRank = 4096;
constexpr int kIterations = 200;
constexpr double kAlpha = 0.25;  // diffusion number (stable: <= 0.5)

void stencil_rank(mpi::Comm comm) {
  const int rank = comm.rank();
  const int size = comm.size();
  const auto f64 = mpi::Datatype::float64();

  // Local block with two ghost cells; initial condition: a hot spike in
  // the middle of rank 0's block.
  std::vector<double> u(kCellsPerRank + 2, 0.0);
  std::vector<double> next(kCellsPerRank + 2, 0.0);
  if (rank == 0) u[kCellsPerRank / 2] = 1000.0;

  for (int iter = 0; iter < kIterations; ++iter) {
    // Halo exchange. Even/odd pairing avoids send-send deadlocks without
    // relying on eager buffering.
    const int left = rank - 1;
    const int right = rank + 1;
    auto exchange = [&](int neighbour, double* send_cell, double* recv_cell) {
      if (neighbour < 0 || neighbour >= size) {
        *recv_cell = 0.0;  // fixed boundary
        return;
      }
      comm.sendrecv(send_cell, 1, f64, neighbour, iter, recv_cell, 1, f64,
                    neighbour, iter);
    };
    if (rank % 2 == 0) {
      exchange(right, &u[kCellsPerRank], &u[kCellsPerRank + 1]);
      exchange(left, &u[1], &u[0]);
    } else {
      exchange(left, &u[1], &u[0]);
      exchange(right, &u[kCellsPerRank], &u[kCellsPerRank + 1]);
    }

    double local_delta = 0.0;
    for (int i = 1; i <= kCellsPerRank; ++i) {
      next[i] = u[i] + kAlpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
      local_delta += std::abs(next[i] - u[i]);
    }
    std::swap(u, next);

    if (iter % 50 == 49) {
      double delta = 0.0;
      comm.allreduce(&local_delta, &delta, 1, f64, mpi::Op::sum());
      if (rank == 0) {
        std::printf("iter %4d  residual %.6f  t=%.2f ms (virtual)\n",
                    iter + 1, delta, comm.wtime_us() / 1000.0);
      }
    }
  }

  // Conservation check: total heat must survive (up to boundary leakage).
  double local_heat = 0.0;
  for (int i = 1; i <= kCellsPerRank; ++i) local_heat += u[i];
  double heat = 0.0;
  comm.reduce(&local_heat, &heat, 1, f64, mpi::Op::sum(), 0);
  if (rank == 0) {
    std::printf("total heat after %d iterations: %.3f (initial 1000)\n",
                kIterations, heat);
  }
}

}  // namespace

int main() {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(
      /*sci_nodes=*/2, /*myri_nodes=*/2, /*ranks_per_node=*/2);
  core::Session session(std::move(options));

  std::printf("8 ranks on 4 nodes; neighbour hops use smp_plug / SISCI / "
              "BIP / TCP as the pair dictates\n");
  session.run(stencil_rank);

  auto* device = session.ch_mad();
  std::printf("ch_mad traffic: %llu eager, %llu rendezvous messages\n",
              static_cast<unsigned long long>(device->eager_sent()),
              static_cast<unsigned long long>(device->rendezvous_sent()));
  return 0;
}
