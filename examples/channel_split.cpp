// Channel splitting — the paper's §3.1: "It is of course possible to have
// several channels related to the same protocol and/or the same network
// adapter, which may be used to logically split communication from two
// different modules."
//
// Here an application module streams bulk data over one SCI channel while
// a monitoring module exchanges small heartbeats over a second channel on
// the SAME network. The channels share the wire (link serialization is
// common) but never mix messages: the monitor cannot accidentally consume
// a bulk block, whatever the interleaving.
#include <atomic>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

namespace {

constexpr int kBulkMessages = 20;
constexpr std::size_t kBulkBytes = 256 * 1024;
constexpr int kHeartbeats = 50;

void bulk_module(mad::Channel& channel) {
  std::thread producer([&channel] {
    std::vector<double> block(kBulkBytes / sizeof(double));
    std::iota(block.begin(), block.end(), 0.0);
    for (int i = 0; i < kBulkMessages; ++i) {
      mad::Packing packing = channel.at(0)->begin_packing(1);
      packing.pack(&i, sizeof i, mad::SendMode::kSafer,
                   mad::RecvMode::kExpress);
      packing.pack(block.data(), kBulkBytes, mad::SendMode::kLater,
                   mad::RecvMode::kCheaper);
      packing.end_packing();
    }
  });

  std::vector<double> incoming(kBulkBytes / sizeof(double));
  for (int i = 0; i < kBulkMessages; ++i) {
    auto message = channel.at(1)->begin_unpacking();
    int seq = -1;
    message->unpack(&seq, sizeof seq, mad::SendMode::kSafer,
                    mad::RecvMode::kExpress);
    message->unpack(incoming.data(), kBulkBytes, mad::SendMode::kLater,
                    mad::RecvMode::kCheaper);
    message->end_unpacking();
    if (seq != i || incoming[100] != 100.0) {
      std::fprintf(stderr, "bulk corruption at %d!\n", i);
      std::abort();
    }
  }
  producer.join();
  std::printf("bulk module: %d x %zu KB transferred intact, node1 virtual "
              "t=%.2f ms\n",
              kBulkMessages, kBulkBytes / 1024,
              channel.at(1)->node().clock().now() / 1000.0);
}

void monitor_module(mad::Channel& channel, std::atomic<bool>& bulk_running) {
  std::thread responder([&channel] {
    for (int i = 0; i < kHeartbeats; ++i) {
      auto ping = channel.at(1)->begin_unpacking();
      std::uint32_t beat = 0;
      ping->unpack(&beat, sizeof beat, mad::SendMode::kSafer,
                   mad::RecvMode::kExpress);
      ping->end_unpacking();
      mad::Packing pong = channel.at(1)->begin_packing(0);
      pong.pack(&beat, sizeof beat, mad::SendMode::kSafer,
                mad::RecvMode::kExpress);
      pong.end_packing();
    }
  });

  for (std::uint32_t beat = 0; beat < kHeartbeats; ++beat) {
    mad::Packing ping = channel.at(0)->begin_packing(1);
    ping.pack(&beat, sizeof beat, mad::SendMode::kSafer,
              mad::RecvMode::kExpress);
    ping.end_packing();
    auto pong = channel.at(0)->begin_unpacking();
    std::uint32_t echoed = 0;
    pong->unpack(&echoed, sizeof echoed, mad::SendMode::kSafer,
                 mad::RecvMode::kExpress);
    pong->end_unpacking();
    if (echoed != beat) {
      std::fprintf(stderr, "monitor heard the wrong module!\n");
      std::abort();
    }
  }
  responder.join();
  std::printf("monitor module: %d heartbeats echoed correctly%s\n",
              kHeartbeats,
              bulk_running.load() ? " while bulk traffic was in flight"
                                  : "");
}

}  // namespace

int main() {
  sim::Fabric fabric;
  mad::Madeleine madeleine(
      fabric, sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci));
  const auto& network = madeleine.cluster().networks[0];

  // Two channels, one physical SCI network.
  mad::Channel& bulk = madeleine.open_channel(network, "app-bulk");
  mad::Channel& monitor = madeleine.open_channel(network, "app-monitor");

  std::atomic<bool> bulk_running{true};
  std::thread bulk_thread([&] {
    bulk_module(bulk);
    bulk_running = false;
  });
  monitor_module(monitor, bulk_running);
  bulk_thread.join();

  const auto bulk_stats = bulk.traffic();
  const auto monitor_stats = monitor.traffic();
  std::printf("\nper-channel isolation (same NIC, same wire):\n");
  std::printf("  %-12s %4llu messages %12llu bytes\n", "app-bulk",
              static_cast<unsigned long long>(bulk_stats.messages_sent),
              static_cast<unsigned long long>(bulk_stats.bytes_sent));
  std::printf("  %-12s %4llu messages %12llu bytes\n", "app-monitor",
              static_cast<unsigned long long>(monitor_stats.messages_sent),
              static_cast<unsigned long long>(monitor_stats.bytes_sent));
  return 0;
}
