// Protocol timeline demo: enable the tracer, run a rendezvous transfer
// across the heterogeneous cluster, and print the event timeline — every
// packet of the paper's Figure 4(b) handshake becomes visible, timed in
// virtual microseconds.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/session.hpp"
#include "sim/trace.hpp"

using namespace madmpi;

int main() {
  sim::Tracer::global().enable();

  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  core::Session session(std::move(options));

  session.run([](mpi::Comm comm) {
    constexpr int kCount = 8 * 1024;  // 32 KB: rendezvous territory
    if (comm.rank() == 0) {
      std::vector<double> data(kCount);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(data.data(), kCount, mpi::Datatype::float64(), 1, 0);
    } else {
      std::vector<double> data(kCount);
      comm.recv(data.data(), kCount, mpi::Datatype::float64(), 0, 0);
    }
  });

  std::printf("rendezvous transfer event timeline (virtual us):\n\n");
  std::printf("%10s %5s %-9s %9s %s\n", "time_us", "node", "event", "bytes",
              "label");
  auto events = sim::Tracer::global().snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.time_us < b.time_us;
                   });
  for (const auto& event : events) {
    std::printf("%10.2f %5d %-9s %9llu %s\n", event.time_us, event.node,
                sim::trace_category_name(event.category),
                static_cast<unsigned long long>(event.bytes), event.label);
  }
  std::printf("\n(CSV via Tracer::to_csv(); the request -> ok-to-send -> "
              "zero-copy data sequence is the paper's Figure 4b)\n");
  sim::Tracer::global().disable();
  return 0;
}
