// Gateway forwarding demo — the paper's Section 6 future work, working.
//
// Topology: an SCI island {a0, a1} and a Myrinet island {b0, b1} joined
// only through the gateway node gw (member of both networks). The paper's
// prototype required all nodes pairwise connected; with forwarding enabled
// the islands exchange MPI messages transparently, the relay crossing the
// gateway inside Madeleine.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

int main() {
  sim::ClusterSpec spec;
  for (const char* name : {"a0", "a1", "gw", "b0", "b1"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"a0", "a1", "gw"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"gw", "b0", "b1"}});

  core::Session::Options options;
  options.cluster = std::move(spec);
  options.enable_forwarding = true;
  core::Session session(std::move(options));

  auto* device = session.ch_mad();
  std::printf("topology: a0,a1 --SCI-- gw --Myrinet-- b0,b1\n");
  std::printf("a0 -> b1 next hop: node %d (the gateway), %d hops total\n\n",
              device->forward_router()->next_hop(0, 4),
              device->forward_router()->hops(0, 4));

  session.run([](mpi::Comm comm) {
    // Rank layout: a0=0, a1=1, gw=2, b0=3, b1=4.
    const char* names[] = {"a0", "a1", "gw", "b0", "b1"};
    if (comm.rank() == 0) {
      std::vector<double> data(32 * 1024);
      std::iota(data.begin(), data.end(), 0.0);
      const usec_t t0 = comm.wtime_us();
      comm.send(data.data(), static_cast<int>(data.size()),
                mpi::Datatype::float64(), 4, 0);
      std::printf("a0 sent 256 KB to b1 (rendezvous across the gateway), "
                  "send done at t=%.1f us\n",
                  comm.wtime_us() - t0);
    } else if (comm.rank() == 4) {
      std::vector<double> data(32 * 1024, -1.0);
      auto status = comm.recv(data.data(), static_cast<int>(data.size()),
                              mpi::Datatype::float64(), 0, 0);
      std::printf("b1 received %llu bytes from %s; data[12345]=%.0f\n",
                  static_cast<unsigned long long>(status.bytes),
                  names[status.source], data[12345]);
    }

    // And a collective spanning both islands plus the gateway.
    int mine = comm.rank();
    int sum = -1;
    comm.allreduce(&mine, &sum, 1, mpi::Datatype::int32(), mpi::Op::sum());
    if (comm.rank() == 2) {
      std::printf("gateway sees allreduce total %d over %d ranks\n", sum,
                  comm.size());
    }
  });

  std::printf("\nmessages relayed by the gateway: %llu\n",
              static_cast<unsigned long long>(device->forwarded()));
  return 0;
}
