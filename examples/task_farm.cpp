// Master/worker task farm — the classic dynamically-load-balanced pattern,
// exercising probe, any-source receives and wait_any across the
// heterogeneous cluster (fast Myrinet workers naturally receive more work
// than slow TCP-connected ones because their results return sooner).
//
// The farm integrates f(x) = 4/(1+x^2) over [0,1] by quadrature, one chunk
// per task, so the grand total checks against pi.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

namespace {

constexpr int kTasks = 64;
constexpr int kChunk = 1 << 14;  // quadrature points per task
constexpr int kTagWork = 1;
constexpr int kTagResult = 2;
constexpr int kTagStop = 3;

double integrate_chunk(int task) {
  const double h = 1.0 / (static_cast<double>(kTasks) * kChunk);
  double sum = 0.0;
  for (int i = 0; i < kChunk; ++i) {
    const double x = h * (static_cast<double>(task) * kChunk + i + 0.5);
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * h;
}

void master(mpi::Comm& comm) {
  const int workers = comm.size() - 1;
  std::vector<int> tasks_done(static_cast<std::size_t>(comm.size()), 0);
  int next_task = 0;
  int outstanding = 0;
  double total = 0.0;

  // Prime every worker with one task.
  for (int w = 1; w <= workers && next_task < kTasks; ++w) {
    comm.send(&next_task, 1, mpi::Datatype::int32(), w, kTagWork);
    ++next_task;
    ++outstanding;
  }

  // Farm: hand the next task to whoever returns a result first.
  while (outstanding > 0) {
    double result = 0.0;
    const auto status = comm.recv(&result, 1, mpi::Datatype::float64(),
                                  mpi::kAnySource, kTagResult);
    total += result;
    --outstanding;
    ++tasks_done[static_cast<std::size_t>(status.source)];
    if (next_task < kTasks) {
      comm.send(&next_task, 1, mpi::Datatype::int32(), status.source,
                kTagWork);
      ++next_task;
      ++outstanding;
    }
  }
  for (int w = 1; w <= workers; ++w) {
    int stop = -1;
    comm.send(&stop, 1, mpi::Datatype::int32(), w, kTagStop);
  }

  std::printf("pi ~= %.10f (error %.2e), %d tasks over %d workers\n", total,
              std::fabs(total - M_PI), kTasks, workers);
  for (int w = 1; w <= workers; ++w) {
    std::printf("  worker %d completed %2d tasks\n", w,
                tasks_done[static_cast<std::size_t>(w)]);
  }
  std::printf("virtual makespan: %.2f ms\n", comm.wtime_us() / 1000.0);
}

void worker(mpi::Comm& comm) {
  for (;;) {
    // Probe first: distinguishes work from the stop signal by tag.
    const auto probe = comm.probe(0, mpi::kAnyTag);
    int task = -1;
    comm.recv(&task, 1, mpi::Datatype::int32(), 0, probe.tag);
    if (probe.tag == kTagStop) return;
    const double result = integrate_chunk(task);
    // Model the quadrature as virtual compute time, deliberately
    // non-uniform so the farm has real imbalance to absorb.
    comm.compute_us(50.0 + 25.0 * (task % 7));
    comm.send(&result, 1, mpi::Datatype::float64(), 0, kTagResult);
  }
}

}  // namespace

int main() {
  // Master on a TCP-only front node; workers split between an SCI pair and
  // a Myrinet pair — heterogeneous round-trip costs per worker.
  sim::ClusterSpec spec;
  for (const char* name : {"front", "sci0", "sci1", "myri0", "myri1"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back(
      {sim::Protocol::kTcp, 0, {"front", "sci0", "sci1", "myri0", "myri1"}});
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"sci0", "sci1"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"myri0", "myri1"}});

  core::Session::Options options;
  options.cluster = std::move(spec);
  core::Session session(std::move(options));
  session.run([](mpi::Comm comm) {
    if (comm.rank() == 0) {
      master(comm);
    } else {
      worker(comm);
    }
  });
  return 0;
}
