// Distributed conjugate-gradient solver on a heterogeneous cluster —
// a collective-heavy workload (dot products -> allreduce every iteration)
// complementing the stencil's point-to-point pattern.
//
// Solves A x = b for a 1-D reaction-diffusion matrix (tridiagonal
// [-1, 4, -1], diagonally dominant so CG converges in a few dozen
// iterations) block-distributed across ranks. Matrix-vector products need
// one halo cell from each neighbour; the two dot products per iteration
// each need an allreduce that spans SCI, Myrinet and TCP at once.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

namespace {

constexpr int kRowsPerRank = 2048;
constexpr double kTolerance = 1e-8;
constexpr int kMaxIterations = 500;

class DistributedVector {
 public:
  explicit DistributedVector(int n) : values_(n, 0.0) {}
  double& operator[](int i) { return values_[static_cast<std::size_t>(i)]; }
  double operator[](int i) const {
    return values_[static_cast<std::size_t>(i)];
  }
  int size() const { return static_cast<int>(values_.size()); }
  double* data() { return values_.data(); }

 private:
  std::vector<double> values_;
};

double dot(mpi::Comm& comm, const DistributedVector& a,
           const DistributedVector& b) {
  double local = 0.0;
  for (int i = 0; i < a.size(); ++i) local += a[i] * b[i];
  double global = 0.0;
  comm.allreduce(&local, &global, 1, mpi::Datatype::float64(),
                 mpi::Op::sum());
  return global;
}

/// y = A x for the 1-D reaction-diffusion matrix, with halo exchange for
/// the boundary rows.
void apply_operator(mpi::Comm& comm, DistributedVector& x,
                   DistributedVector& y) {
  const int rank = comm.rank();
  const int size = comm.size();
  const auto f64 = mpi::Datatype::float64();

  double left_halo = 0.0;
  double right_halo = 0.0;
  auto exchange = [&](int neighbour, double* mine, double* theirs) {
    if (neighbour < 0 || neighbour >= size) return;
    comm.sendrecv(mine, 1, f64, neighbour, 0, theirs, 1, f64, neighbour, 0);
  };
  double first = x[0];
  double last = x[x.size() - 1];
  if (rank % 2 == 0) {
    exchange(rank + 1, &last, &right_halo);
    exchange(rank - 1, &first, &left_halo);
  } else {
    exchange(rank - 1, &first, &left_halo);
    exchange(rank + 1, &last, &right_halo);
  }

  for (int i = 0; i < x.size(); ++i) {
    const double up = i > 0 ? x[i - 1] : left_halo;
    const double down = i < x.size() - 1 ? x[i + 1] : right_halo;
    y[i] = 4.0 * x[i] - up - down;
  }
}

void cg_rank(mpi::Comm comm) {
  const int n = kRowsPerRank;
  DistributedVector x(n), r(n), p(n), ap(n);

  // b = 1 everywhere; x0 = 0 so r0 = b, p0 = r0.
  for (int i = 0; i < n; ++i) {
    r[i] = 1.0;
    p[i] = 1.0;
  }

  double rr = dot(comm, r, r);
  const double rr0 = rr;
  int iterations = 0;
  for (; iterations < kMaxIterations && rr / rr0 > kTolerance;
       ++iterations) {
    apply_operator(comm, p, ap);
    const double alpha = rr / dot(comm, p, ap);
    for (int i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_next = dot(comm, r, r);
    const double beta = rr_next / rr;
    for (int i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;

    if (comm.rank() == 0 && iterations % 100 == 0) {
      std::printf("iter %4d  relative residual %.3e\n", iterations,
                  std::sqrt(rr / rr0));
    }
  }

  if (comm.rank() == 0) {
    std::printf("converged to %.3e after %d iterations, %.2f ms virtual\n",
                std::sqrt(rr / rr0), iterations, comm.wtime_us() / 1000.0);
  }

  // Verify: A x must equal b (within tolerance) — recompute the residual
  // from scratch.
  apply_operator(comm, x, ap);
  double local_err = 0.0;
  for (int i = 0; i < n; ++i) {
    local_err = std::max(local_err, std::abs(ap[i] - 1.0));
  }
  double err = 0.0;
  comm.allreduce(&local_err, &err, 1, mpi::Datatype::float64(),
                 mpi::Op::max());
  if (comm.rank() == 0) {
    std::printf("max |Ax - b| = %.3e\n", err);
  }
}

}  // namespace

int main() {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  core::Session session(std::move(options));
  std::printf("CG on 4 heterogeneous nodes (%d rows per rank)\n",
              kRowsPerRank);
  session.run(cg_rank);
  return 0;
}
