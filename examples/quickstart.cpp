// Quickstart: build a simulated cluster, run an MPI program on it.
//
//   $ ./quickstart
//
// Four dual-CPU nodes — two on SCI, two on Myrinet, all on Fast-Ethernet —
// exactly the paper's "cluster of clusters". Each rank greets the world,
// then the program measures a ring exchange and an allreduce, showing that
// one ch_mad device carries SCI, Myrinet and TCP traffic simultaneously.
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.hpp"

using namespace madmpi;

int main() {
  // Topology: sci0, sci1 (SCI + TCP), myri0, myri1 (Myrinet + TCP).
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(
      /*sci_nodes=*/2, /*myri_nodes=*/2);
  core::Session session(std::move(options));

  // Inspect ch_mad's routing decisions before running anything.
  auto* device = session.ch_mad();
  std::printf("ch_mad switch point: %zu bytes (SCI present -> 8 KB)\n",
              device->switch_point());
  std::printf("route sci0 <-> sci1 : %s\n",
              sim::protocol_name(device->router().route(0, 1)->protocol()));
  std::printf("route myri0<-> myri1: %s\n",
              sim::protocol_name(device->router().route(2, 3)->protocol()));
  std::printf("route sci0 <-> myri0: %s\n\n",
              sim::protocol_name(device->router().route(0, 2)->protocol()));

  session.run([](mpi::Comm comm) {
    // Hello from every rank (stdout interleaving is fine for a demo).
    std::printf("hello from rank %d of %d on node %s\n", comm.rank(),
                comm.size(),
                comm.rank() < 2 ? (comm.rank() == 0 ? "sci0" : "sci1")
                                : (comm.rank() == 2 ? "myri0" : "myri1"));

    // Ring exchange: each hop picks its own network transparently.
    const int to = (comm.rank() + 1) % comm.size();
    const int from = (comm.rank() - 1 + comm.size()) % comm.size();
    double token = 1000.0 + comm.rank();
    double incoming = 0.0;
    comm.sendrecv(&token, 1, mpi::Datatype::float64(), to, 0, &incoming, 1,
                  mpi::Datatype::float64(), from, 0);

    // A collective across all three networks.
    double my_value = static_cast<double>(comm.rank() + 1);
    double sum = 0.0;
    comm.allreduce(&my_value, &sum, 1, mpi::Datatype::float64(),
                   mpi::Op::sum());
    if (comm.rank() == 0) {
      std::printf("\nallreduce(1+2+3+4) = %.0f   [virtual time %.1f us]\n",
                  sum, comm.wtime_us());
    }
  });
  return 0;
}
