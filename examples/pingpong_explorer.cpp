// mpptest-style command-line explorer: measure any device over any network.
//
//   ./pingpong_explorer [device] [protocol]
//     device   ch_mad (default) | ch_p4 | ScaMPI | SCI-MPICH | MPI-GM |
//              MPICH-PM | raw (raw Madeleine, no MPI layer)
//     protocol tcp (default) | sci | myrinet
//
// Prints the full transfer-time and bandwidth ladder from 1 B to 1 MB —
// the data behind every panel of the paper's Figures 6-8.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/native_device.hpp"
#include "core/pingpong.hpp"
#include "core/session.hpp"

using namespace madmpi;

int main(int argc, char** argv) {
  const std::string device = argc > 1 ? argv[1] : "ch_mad";
  const std::string proto_word = argc > 2 ? argv[2] : "tcp";

  const auto protocol = sim::protocol_from_keyword(proto_word);
  if (!protocol) {
    std::fprintf(stderr, "unknown protocol '%s' (tcp|sci|myrinet)\n",
                 proto_word.c_str());
    return 1;
  }

  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, *protocol);
  if (device != "ch_mad" && device != "raw") {
    options.internode_factory =
        [&device](core::Session& session)
        -> std::unique_ptr<core::ManagedDevice> {
      auto profile = baselines::profile_by_name(device);
      if (profile.protocol != session.cluster().networks[0].protocol) {
        fatal(device + " runs on " +
              sim::protocol_name(profile.protocol) + ", not " +
              sim::protocol_name(session.cluster().networks[0].protocol));
      }
      return std::make_unique<baselines::NativeDevice>(
          std::move(profile), session.fabric(), session.cluster(),
          session.directory());
    };
  }
  core::Session session(std::move(options));

  mad::Channel* raw_channel =
      device == "raw" ? &session.open_raw_channel() : nullptr;

  std::printf("# %s over %s\n", device.c_str(),
              sim::protocol_name(*protocol));
  std::printf("%10s %14s %14s\n", "bytes", "one_way_us", "MB/s");
  for (std::size_t size = 1; size <= (1u << 20); size *= 2) {
    core::PingPongResult result;
    if (raw_channel != nullptr) {
      result = core::raw_madeleine_pingpong(*raw_channel, 0, 1, size, 3);
    } else {
      result = core::mpi_pingpong(session, size, 3);
    }
    std::printf("%10zu %14.3f %14.3f\n", size, result.one_way_us,
                result.bandwidth_mb_s);
  }
  return 0;
}
