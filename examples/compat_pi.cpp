// Textbook MPI via the classic C facade: the canonical pi-by-quadrature
// program (straight out of the MPICH examples), running unchanged on
// MPICH/Madeleine's simulated heterogeneous cluster.
#include <cmath>
#include <cstdio>

#include "mpi/compat.hpp"
#include "sim/topology.hpp"

namespace {

void pi_main() {
  MPI_Init(nullptr, nullptr);

  int rank = -1;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);

  const int intervals = 1 << 20;
  const double h = 1.0 / intervals;

  const double t0 = MPI_Wtime();
  double local = 0.0;
  for (int i = rank; i < intervals; i += size) {
    const double x = h * (i + 0.5);
    local += 4.0 / (1.0 + x * x);
  }
  local *= h;

  double pi = 0.0;
  MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);

  // Ring token to show point-to-point through the facade too.
  int token = rank;
  MPI_Status status;
  MPI_Sendrecv(&token, 1, MPI_INT, (rank + 1) % size, 0, &token, 1, MPI_INT,
               (rank + size - 1) % size, 0, MPI_COMM_WORLD, &status);

  if (rank == 0) {
    std::printf("pi ~= %.12f (error %.3e) on %d ranks, %.2f ms virtual\n",
                pi, std::fabs(pi - M_PI), size, (MPI_Wtime() - t0) * 1e3);
  }
  MPI_Finalize();
}

}  // namespace

int main() {
  // Two SCI nodes + two Myrinet nodes, Fast-Ethernet everywhere.
  const auto cluster = madmpi::sim::ClusterSpec::cluster_of_clusters(2, 2);
  madmpi::compat::run(cluster, pi_main);
  return 0;
}
