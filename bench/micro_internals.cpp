// Micro-benchmarks of the library internals (google-benchmark, real host
// time — unlike the figure benches these measure OUR implementation's CPU
// costs, not simulated network time).
//
// With `--json <path>` the binary instead runs the eager-datapath sweep
// and writes BENCH_eager-style machine-readable results (message-size
// series of latency, bandwidth, bytes-copied and allocs-per-message).
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>

#include "bench_common.hpp"
#include "common/byte_buffer.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "mpi/datatype.hpp"
#include "mpi/matching.hpp"
#include "mpi/op.hpp"
#include "sim/virtual_clock.hpp"

namespace madmpi {
namespace {

void BM_VirtualClockAdvance(benchmark::State& state) {
  sim::VirtualClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.advance(0.5));
  }
}
BENCHMARK(BM_VirtualClockAdvance);

void BM_ByteWriterAppend(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> chunk(size, std::byte{1});
  for (auto _ : state) {
    ByteWriter writer(size * 4);
    for (int i = 0; i < 4; ++i) writer.append(chunk.data(), chunk.size());
    benchmark::DoNotOptimize(writer.span().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ByteWriterAppend)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DatatypePackContiguous(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const auto type = mpi::Datatype::float64();
  std::vector<double> data(static_cast<std::size_t>(count), 1.0);
  std::vector<std::byte> wire(type.size() * static_cast<std::size_t>(count));
  for (auto _ : state) {
    type.pack(data.data(), count, wire.data());
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count * 8);
}
BENCHMARK(BM_DatatypePackContiguous)->Arg(128)->Arg(4096)->Arg(65536);

void BM_DatatypePackVector(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  // Column of a rows x 8 row-major double matrix.
  const auto column = mpi::Datatype::vector(rows, 1, 8,
                                            mpi::Datatype::float64());
  std::vector<double> matrix(static_cast<std::size_t>(rows) * 8, 1.0);
  std::vector<std::byte> wire(column.size());
  for (auto _ : state) {
    column.pack(matrix.data(), 1, wire.data());
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * 8);
}
BENCHMARK(BM_DatatypePackVector)->Arg(128)->Arg(4096);

void BM_ReduceSumDoubles(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  std::vector<double> in(static_cast<std::size_t>(count), 1.0);
  std::vector<double> inout(static_cast<std::size_t>(count), 2.0);
  const auto op = mpi::Op::sum();
  const auto type = mpi::Datatype::float64();
  for (auto _ : state) {
    op.apply(in.data(), inout.data(), count, type);
    benchmark::DoNotOptimize(inout.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count * 8);
}
BENCHMARK(BM_ReduceSumDoubles)->Arg(1024)->Arg(65536);

void BM_MatchingPostAndDeliver(benchmark::State& state) {
  sim::Node node(0, "bench", 2);
  mpi::RankContext context(0, node);
  std::array<std::byte, 64> payload{};
  mpi::Envelope env;
  env.context = 0;
  env.src = 0;
  env.tag = 1;
  env.bytes = payload.size();
  char buffer[64];
  for (auto _ : state) {
    auto request = std::make_shared<mpi::RequestState>(node);
    mpi::PostedRecv posted;
    posted.context = 0;
    posted.source = mpi::kAnySource;
    posted.tag = 1;
    posted.buffer = buffer;
    posted.type = mpi::Datatype::byte();
    posted.count = sizeof buffer;
    posted.capacity_bytes = sizeof buffer;
    posted.request = request;
    context.post_recv(std::move(posted));
    context.deliver_eager(env, byte_span{payload.data(), payload.size()});
    benchmark::DoNotOptimize(request->completed());
  }
}
BENCHMARK(BM_MatchingPostAndDeliver);

void BM_MatchingUnexpectedScan(benchmark::State& state) {
  // Deliver N unexpected messages with distinct tags, then match the last
  // one: measures the linear scan the ADI queues pay.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Node node(0, "bench", 2);
    mpi::RankContext context(0, node);
    for (int i = 0; i < depth; ++i) {
      mpi::Envelope env;
      env.context = 0;
      env.src = 0;
      env.tag = i;
      env.bytes = 0;
      context.deliver_eager(env, {});
    }
    state.ResumeTiming();

    auto request = std::make_shared<mpi::RequestState>(node);
    mpi::PostedRecv posted;
    posted.context = 0;
    posted.source = mpi::kAnySource;
    posted.tag = depth - 1;
    posted.request = request;
    context.post_recv(std::move(posted));
    benchmark::DoNotOptimize(request->completed());
  }
}
BENCHMARK(BM_MatchingUnexpectedScan)->Arg(8)->Arg(64)->Arg(512);

void BM_BoundedRingHandoff(benchmark::State& state) {
  BoundedRing<int> ring(1024);
  int value = 0;
  for (auto _ : state) {
    ring.try_push(value++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_BoundedRingHandoff);

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

}  // namespace
}  // namespace madmpi

int main(int argc, char** argv) {
  const std::string json_path = madmpi::bench::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    const auto columns =
        madmpi::bench::eager_sweep(madmpi::sim::Protocol::kTcp, 40);
    if (!madmpi::bench::write_json_series(json_path, "eager", columns)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("eager sweep written to %s\n", json_path.c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
