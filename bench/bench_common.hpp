// Shared helpers for the figure/table benchmarks: session construction for
// ch_mad and each baseline, series runners, and paper-style printing.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/native_device.hpp"
#include "common/datapath_stats.hpp"
#include "common/stats.hpp"
#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi::bench {

/// A measurable target: name + a (message size -> result) function.
struct Target {
  std::string name;
  std::function<core::PingPongResult(std::size_t bytes, int reps)> measure;
};

/// Session with ch_mad over a two-node mono-protocol cluster (the paper's
/// device compiled "in a mono-protocol fashion", §5).
inline std::unique_ptr<core::Session> make_chmad_session(
    sim::Protocol protocol) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return std::make_unique<core::Session>(std::move(options));
}

/// Session whose inter-node device is one of the published comparators.
inline std::unique_ptr<core::Session> make_baseline_session(
    const std::string& profile_name, sim::Protocol protocol) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  options.internode_factory =
      [profile_name](core::Session& session)
      -> std::unique_ptr<core::ManagedDevice> {
    return std::make_unique<baselines::NativeDevice>(
        baselines::profile_by_name(profile_name), session.fabric(),
        session.cluster(), session.directory());
  };
  return std::make_unique<core::Session>(std::move(options));
}

inline Target mpi_target(std::string name, core::Session& session) {
  return Target{std::move(name),
                [&session](std::size_t bytes, int reps) {
                  return core::mpi_pingpong(session, bytes, reps);
                }};
}

inline Target raw_madeleine_target(std::string name, mad::Channel& channel) {
  return Target{std::move(name),
                [&channel](std::size_t bytes, int reps) {
                  return core::raw_madeleine_pingpong(channel, 0, 1, bytes,
                                                      reps);
                }};
}

/// Transfer-time series (paper's "(a)" panels): sizes 1 B .. 1 KB.
inline Series latency_series(const std::vector<Target>& targets) {
  Series series;
  series.x_label = "bytes";
  for (const auto& target : targets) {
    series.y_labels.push_back(target.name + "_us");
  }
  for (std::size_t size : power_of_two_sizes(1024)) {
    std::vector<double> ys;
    for (const auto& target : targets) {
      ys.push_back(target.measure(size, 3).one_way_us);
    }
    series.add(static_cast<double>(size), std::move(ys));
  }
  return series;
}

/// Bandwidth series (paper's "(b)" panels): sizes 1 B .. 1 MB.
inline Series bandwidth_series(const std::vector<Target>& targets) {
  Series series;
  series.x_label = "bytes";
  for (const auto& target : targets) {
    series.y_labels.push_back(target.name + "_MB/s");
  }
  for (std::size_t size : power_of_two_sizes(1 << 20)) {
    std::vector<double> ys;
    for (const auto& target : targets) {
      const int reps = size >= (64u << 10) ? 1 : 3;
      ys.push_back(target.measure(size, reps).bandwidth_mb_s);
    }
    series.add(static_cast<double>(size), std::move(ys));
  }
  return series;
}

inline void print_figure(const char* title, const Series& series) {
  std::printf("\n### %s\n%s", title, series.to_table().c_str());
}

// ---- Machine-readable results (--json) ------------------------------
//
// Every column is a named vector aligned on the same x axis; the writer
// emits `{"bench": <name>, "series": {<key>: [...], ...}}`. Future PRs
// diff these files for a perf trajectory.

struct JsonColumn {
  std::string key;
  std::vector<double> values;
};

inline bool write_json_series(const std::string& path,
                              const std::string& bench,
                              const std::vector<JsonColumn>& columns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"series\": {\n", bench.c_str());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::fprintf(f, "    \"%s\": [", columns[i].key.c_str());
    for (std::size_t j = 0; j < columns[i].values.size(); ++j) {
      std::fprintf(f, "%s%.10g", j == 0 ? "" : ", ", columns[i].values[j]);
    }
    std::fprintf(f, "]%s\n", i + 1 < columns.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

/// Pull `--json <path>` / `--json=<path>` out of argv. Empty when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return {};
}

/// The eager-path sweep behind BENCH_eager.json: message sizes 1 B..1 KB
/// (all below every switch point, so every message rides the MAD_SHORT_PKT
/// path), reporting virtual latency/bandwidth plus the *real* datapath
/// accounting — bytes memcpy'd and staging buffers allocated per message.
/// The per-message divisor counts the measured window's round trips
/// (including the ping-pong's own untimed warm-up lap); a separate
/// warm-up call beforehand settles pools and queues so the window sees
/// steady state.
inline std::vector<JsonColumn> eager_sweep(
    sim::Protocol protocol = sim::Protocol::kTcp, int reps = 40) {
  std::vector<double> xs, lat, bw, copied, allocs, pool_allocs, modeled;
  std::vector<double> probes, bucket_locks, rank_locks, posted_hw,
      unexpected_hw;
  for (std::size_t size : power_of_two_sizes(1024)) {
    auto session = make_chmad_session(protocol);
    core::mpi_pingpong(*session, size, 40);  // settle first-use effects
    auto& stats = DatapathStats::global();
    const auto before = stats.snapshot();
    const auto result = core::mpi_pingpong(*session, size, reps);
    const auto d = stats.snapshot() - before;
    const double msgs = 2.0 * (reps + 1);
    xs.push_back(static_cast<double>(size));
    lat.push_back(result.one_way_us);
    bw.push_back(result.bandwidth_mb_s);
    copied.push_back(static_cast<double>(d.bytes_copied) / msgs);
    allocs.push_back(static_cast<double>(d.staging_allocs) / msgs);
    pool_allocs.push_back(
        static_cast<double>(d.slab_allocs + d.slab_fallbacks) / msgs);
    modeled.push_back(static_cast<double>(d.modeled_copy_bytes) / msgs);
    // Matcher observability: scan steps and lock acquisitions per match
    // attempt plus the queue-depth high-water marks for the window.
    const double attempts =
        d.match_attempts > 0 ? static_cast<double>(d.match_attempts) : 1.0;
    probes.push_back(static_cast<double>(d.match_probe_steps) / attempts);
    bucket_locks.push_back(static_cast<double>(d.match_bucket_locks) /
                           attempts);
    rank_locks.push_back(static_cast<double>(d.match_rank_locks) / attempts);
    posted_hw.push_back(static_cast<double>(d.match_posted_depth_hw));
    unexpected_hw.push_back(static_cast<double>(d.match_unexpected_depth_hw));
  }
  return {{"bytes", xs},
          {"one_way_us", lat},
          {"bandwidth_mb_s", bw},
          {"bytes_copied_per_msg", copied},
          {"staging_allocs_per_msg", allocs},
          {"pool_allocs_per_msg", pool_allocs},
          {"modeled_copy_bytes_per_msg", modeled},
          {"match_probes_per_attempt", probes},
          {"match_bucket_locks_per_attempt", bucket_locks},
          {"match_rank_locks_per_attempt", rank_locks},
          {"match_posted_depth_hw", posted_hw},
          {"match_unexpected_depth_hw", unexpected_hw}};
}

}  // namespace madmpi::bench
