// Shared helpers for the figure/table benchmarks: session construction for
// ch_mad and each baseline, series runners, and paper-style printing.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/native_device.hpp"
#include "common/stats.hpp"
#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi::bench {

/// A measurable target: name + a (message size -> result) function.
struct Target {
  std::string name;
  std::function<core::PingPongResult(std::size_t bytes, int reps)> measure;
};

/// Session with ch_mad over a two-node mono-protocol cluster (the paper's
/// device compiled "in a mono-protocol fashion", §5).
inline std::unique_ptr<core::Session> make_chmad_session(
    sim::Protocol protocol) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return std::make_unique<core::Session>(std::move(options));
}

/// Session whose inter-node device is one of the published comparators.
inline std::unique_ptr<core::Session> make_baseline_session(
    const std::string& profile_name, sim::Protocol protocol) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  options.internode_factory =
      [profile_name](core::Session& session)
      -> std::unique_ptr<core::ManagedDevice> {
    return std::make_unique<baselines::NativeDevice>(
        baselines::profile_by_name(profile_name), session.fabric(),
        session.cluster(), session.directory());
  };
  return std::make_unique<core::Session>(std::move(options));
}

inline Target mpi_target(std::string name, core::Session& session) {
  return Target{std::move(name),
                [&session](std::size_t bytes, int reps) {
                  return core::mpi_pingpong(session, bytes, reps);
                }};
}

inline Target raw_madeleine_target(std::string name, mad::Channel& channel) {
  return Target{std::move(name),
                [&channel](std::size_t bytes, int reps) {
                  return core::raw_madeleine_pingpong(channel, 0, 1, bytes,
                                                      reps);
                }};
}

/// Transfer-time series (paper's "(a)" panels): sizes 1 B .. 1 KB.
inline Series latency_series(const std::vector<Target>& targets) {
  Series series;
  series.x_label = "bytes";
  for (const auto& target : targets) {
    series.y_labels.push_back(target.name + "_us");
  }
  for (std::size_t size : power_of_two_sizes(1024)) {
    std::vector<double> ys;
    for (const auto& target : targets) {
      ys.push_back(target.measure(size, 3).one_way_us);
    }
    series.add(static_cast<double>(size), std::move(ys));
  }
  return series;
}

/// Bandwidth series (paper's "(b)" panels): sizes 1 B .. 1 MB.
inline Series bandwidth_series(const std::vector<Target>& targets) {
  Series series;
  series.x_label = "bytes";
  for (const auto& target : targets) {
    series.y_labels.push_back(target.name + "_MB/s");
  }
  for (std::size_t size : power_of_two_sizes(1 << 20)) {
    std::vector<double> ys;
    for (const auto& target : targets) {
      const int reps = size >= (64u << 10) ? 1 : 3;
      ys.push_back(target.measure(size, reps).bandwidth_mb_s);
    }
    series.add(static_cast<double>(size), std::move(ys));
  }
  return series;
}

inline void print_figure(const char* title, const Series& series) {
  std::printf("\n### %s\n%s", title, series.to_table().c_str());
}

}  // namespace madmpi::bench
