// Ablation: fault injection and failover cost.
//
// Part 1 sweeps the seeded frame-drop probability on a TCP pair and
// reports how ping-pong latency degrades as retransmissions (100 us RTO,
// exponential backoff) pile up. Drop rate 0 must reproduce the clean
// curve exactly — the fault hooks are free when unused.
//
// Part 2 measures the failover latency cliff: on an SCI+TCP pair the SCI
// link is killed mid-run, and the per-round ping-pong times show the
// retry-and-re-elect spike followed by steady state on TCP.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/pingpong.hpp"
#include "sim/fault.hpp"

using namespace madmpi;

namespace {

std::shared_ptr<sim::FaultPlan> attach_plan(core::Session& session,
                                            node_id_t node,
                                            sim::Protocol protocol,
                                            std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  session.fabric().find_nic(node, protocol)->mutable_model().fault_plan =
      plan;
  return plan;
}

void drop_rate_sweep() {
  std::printf("### Ping-pong degradation vs frame-drop probability (TCP)\n");
  const std::size_t sizes[] = {1024, 8 * 1024, 64 * 1024};
  std::printf("%-10s", "drop");
  for (std::size_t size : sizes) std::printf(" %11zuB", size);
  std::printf("   %s\n", "drops/retries");

  for (double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    std::printf("%-10.2f", rate);
    std::uint64_t drops = 0, retries = 0;
    for (std::size_t size : sizes) {
      core::Session::Options options;
      options.cluster =
          sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
      core::Session session(std::move(options));
      // A generous retry budget keeps the sweep about *degradation*: with
      // the default 8 attempts, a 0.4 drop rate kills the only link every
      // few hundred frames (0.4^8 per frame) and the run would deadlock
      // on an unreachable peer instead of measuring latency.
      for (node_id_t node : {0, 1}) {
        auto plan = attach_plan(session, node, sim::Protocol::kTcp,
                                2026 + static_cast<std::uint64_t>(node));
        plan->drop(rate);
        plan->retry.max_attempts = 30;
      }
      std::printf(" %11.1f",
                  core::mpi_pingpong(session, size, 4).one_way_us);
      for (mad::Channel* channel : session.madeleine().channels()) {
        drops += channel->traffic().frames_dropped;
        retries += channel->traffic().retransmits;
      }
    }
    std::printf("   %llu/%llu\n", static_cast<unsigned long long>(drops),
                static_cast<unsigned long long>(retries));
  }
}

void failover_cliff() {
  std::printf("\n### Failover latency cliff: SCI killed at t=2000 us\n");
  sim::ClusterSpec spec;
  spec.nodes.push_back({"a"});
  spec.nodes.push_back({"b"});
  sim::NetworkSpec sci;
  sci.protocol = sim::Protocol::kSisci;
  sci.members = {"a", "b"};
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  tcp.members = {"a", "b"};
  spec.networks = {sci, tcp};
  core::Session::Options options;
  options.cluster = std::move(spec);
  core::Session session(std::move(options));
  attach_plan(session, 0, sim::Protocol::kSisci, 11)->kill_at(2000.0);
  attach_plan(session, 1, sim::Protocol::kSisci, 11)->kill_at(2000.0);

  constexpr std::size_t kBytes = 4 * 1024;
  constexpr int kRounds = 24;
  std::vector<usec_t> round_us;
  session.run([&](mpi::Comm comm) {
    std::vector<std::uint8_t> buffer(kBytes, 0x5a);
    const int peer = 1 - comm.rank();
    for (int round = 0; round < kRounds; ++round) {
      const usec_t start = comm.wtime_us();
      if (comm.rank() == 0) {
        comm.send(buffer.data(), static_cast<int>(kBytes),
                  mpi::Datatype::uint8(), peer, round);
        comm.recv(buffer.data(), static_cast<int>(kBytes),
                  mpi::Datatype::uint8(), peer, round);
        round_us.push_back(comm.wtime_us() - start);
      } else {
        comm.recv(buffer.data(), static_cast<int>(kBytes),
                  mpi::Datatype::uint8(), peer, round);
        comm.send(buffer.data(), static_cast<int>(kBytes),
                  mpi::Datatype::uint8(), peer, round);
      }
    }
  });

  std::printf("%-8s %14s\n", "round", "roundtrip_us");
  for (std::size_t i = 0; i < round_us.size(); ++i) {
    std::printf("%-8zu %14.1f\n", i, round_us[i]);
  }
  std::printf("ch_mad failovers: %llu\n",
              static_cast<unsigned long long>(session.ch_mad()->failovers()));
  session.print_stats();
}

}  // namespace

int main() {
  drop_rate_sweep();
  failover_cliff();
  return 0;
}
