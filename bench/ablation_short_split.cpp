// Ablation: splitting the ADI short packet (paper §4.2.2, eager mode).
//
// The naive ADI approach sends every short message inside a constant-size
// MPID_PKT_MAX_DATA_SIZE buffer sized for the LARGEST network switch point
// (64 KB when TCP is present). On an SCI cluster that means a 100-byte
// message drags a 64 KB padded buffer across the wire. ch_mad instead
// splits the packet: header in the message header, user data as the body,
// sized exactly. This bench quantifies the difference the paper argues for.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

/// One-way time for a `payload` message carried inside a buffer padded to
/// `padded_size` (the naive scheme) vs sent exactly (the split scheme).
double padded_pingpong(mad::Channel& channel, std::size_t payload,
                       std::size_t padded_size, int reps) {
  mad::ChannelEndpoint* a = channel.at(0);
  mad::ChannelEndpoint* b = channel.at(1);
  const std::size_t wire_size = std::max(payload, padded_size);
  std::vector<std::byte> buffer(wire_size, std::byte{7});

  auto send = [&](mad::ChannelEndpoint& self, node_id_t peer) {
    mad::Packing packing = self.begin_packing(peer);
    packing.pack(buffer.data(), wire_size, mad::SendMode::kLater,
                 mad::RecvMode::kCheaper);
    packing.end_packing();
  };
  auto recv = [&](mad::ChannelEndpoint& self) {
    auto incoming = self.begin_unpacking();
    incoming->unpack(buffer.data(), wire_size, mad::SendMode::kLater,
                     mad::RecvMode::kCheaper);
    incoming->end_unpacking();
  };

  std::thread peer([&] {
    for (int r = 0; r < reps + 1; ++r) {
      recv(*b);
      send(*b, 0);
    }
  });
  send(*a, 1);
  recv(*a);
  const usec_t start = a->node().clock().now();
  for (int r = 0; r < reps; ++r) {
    send(*a, 1);
    recv(*a);
  }
  const usec_t elapsed = a->node().clock().now() - start;
  peer.join();
  return elapsed / (2.0 * reps);
}

}  // namespace

int main() {
  // SCI cluster that ALSO supports TCP: the naive constant would be TCP's
  // 64 KB switch point.
  constexpr std::size_t kPaddedTo = 64 * 1024;
  auto session = bench::make_chmad_session(sim::Protocol::kSisci);
  mad::Channel& channel = session->open_raw_channel();

  std::printf("Eager short messages on SCI, naive 64 KB padded buffer vs "
              "ch_mad's split packet\n");
  std::printf("%10s %16s %16s %10s\n", "payload", "padded_us", "split_us",
              "ratio");
  for (std::size_t payload : {16u, 256u, 1024u, 4096u, 8192u}) {
    const double padded = padded_pingpong(channel, payload, kPaddedTo, 2);
    const double split = padded_pingpong(channel, payload, payload, 2);
    std::printf("%10zu %16.1f %16.1f %9.1fx\n", payload, padded, split,
                padded / split);
  }
  std::printf("\n(the split also saves the sending-side copy: the body "
              "goes out of the user buffer directly)\n");
  return 0;
}
