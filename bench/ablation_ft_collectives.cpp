// Ablation: the cost of fault-tolerant collectives.
//
// FT-on adds two things to a collective: the epoch-tagged capture wrapper
// (cheap bookkeeping) and the post-collective agreement rounds (a fixed
// latency toll independent of payload). This bench measures both against
// the plain trees on a fault-free 4-rank TCP cluster, plus the recovery
// cost of the headline scenario — a broadcast whose root->child link is
// dead, completing through the adoption/relay re-route.
//
// `--json <path>` writes the machine-readable series consumed by the CI
// perf-trajectory job (docs/results/BENCH_ft_collectives.json).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "sim/fault.hpp"

using namespace madmpi;

namespace {

constexpr int kRanks = 4;

std::unique_ptr<core::Session> quad_session(bool outage) {
  core::Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(kRanks, sim::Protocol::kTcp);
  auto session = std::make_unique<core::Session>(std::move(options));
  if (outage) {
    // The headline fault: only the root->2 direction dies; the payload
    // must re-route through rank 3's live link.
    auto plan = std::make_shared<sim::FaultPlan>(0);
    plan->kill_at(0.0, /*src=*/0, /*dst=*/2);
    sim::Nic* nic = session->fabric().find_nic(0, sim::Protocol::kTcp);
    nic->mutable_model().fault_plan = plan;
  }
  return session;
}

// Completion latency of one operation: last rank's finish minus first
// rank's start, both read on the ranks' own virtual clocks. This is the
// honest apples-to-apples metric — a plain bcast root returns after its
// last send and back-to-back plain bcasts pipeline across the tree, while
// every FT collective ends at its synchronizing agreement, so a rep-loop
// comparison would measure pipelined throughput against full latency.
// The per-rank stamps are combined by an *untimed* allreduce(max) over
// {-start, done}: max(-start) = -min(start).
usec_t completion_latency(mpi::Comm& comm, usec_t start, usec_t done) {
  double stamps[2] = {-start, done};
  double extrema[2] = {0.0, 0.0};
  comm.allreduce(stamps, extrema, 2, mpi::Datatype::float64(),
                 mpi::Op::max());
  return extrema[1] + extrema[0];  // max(done) - min(start)
}

usec_t time_bcast(bool fault_tolerant, bool outage, int count) {
  auto session = quad_session(outage);
  usec_t elapsed = 0.0;
  session->run([&](mpi::Comm comm) {
    mpi::CollectiveConfig config;
    config.fault_tolerant = fault_tolerant;
    comm.set_collective_config(config);
    std::vector<std::int32_t> data(static_cast<std::size_t>(count), 7);
    comm.bcast(data.data(), count, mpi::Datatype::int32(), 0);  // warm-up
    comm.barrier();
    const usec_t start = comm.wtime_us();
    comm.bcast(data.data(), count, mpi::Datatype::int32(), 0);
    const usec_t done = comm.wtime_us();
    const usec_t latency = completion_latency(comm, start, done);
    if (comm.rank() == 0) elapsed = latency;
  });
  return elapsed;
}

usec_t time_allreduce(bool fault_tolerant, int count) {
  auto session = quad_session(/*outage=*/false);
  usec_t elapsed = 0.0;
  session->run([&](mpi::Comm comm) {
    mpi::CollectiveConfig config;
    config.fault_tolerant = fault_tolerant;
    comm.set_collective_config(config);
    std::vector<std::int32_t> mine(static_cast<std::size_t>(count), 1);
    std::vector<std::int32_t> total(static_cast<std::size_t>(count));
    comm.allreduce(mine.data(), total.data(), count, mpi::Datatype::int32(),
                   mpi::Op::sum());  // warm-up
    comm.barrier();
    const usec_t start = comm.wtime_us();
    comm.allreduce(mine.data(), total.data(), count, mpi::Datatype::int32(),
                   mpi::Op::sum());
    const usec_t done = comm.wtime_us();
    const usec_t latency = completion_latency(comm, start, done);
    if (comm.rank() == 0) elapsed = latency;
  });
  return elapsed;
}

double overhead_pct(usec_t plain, usec_t ft) {
  return plain > 0.0 ? (ft - plain) / plain * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);

  std::vector<double> xs, bcast_us, bcast_ft_us, bcast_oh;
  std::vector<double> ar_us, ar_ft_us, ar_oh, outage_us;
  std::printf("### ablation_ft_collectives (%d ranks, tcp)\n", kRanks);
  std::printf("%10s %10s %12s %8s %12s %14s %8s %16s\n", "bytes",
              "bcast_us", "bcast_ft_us", "oh%", "allreduce_us",
              "allreduce_ft_us", "oh%", "bcast_outage_us");
  for (std::size_t bytes : {4096u, 16384u, 65536u, 262144u, 1048576u}) {
    const int count = static_cast<int>(bytes / sizeof(std::int32_t));
    const usec_t b_plain = time_bcast(false, false, count);
    const usec_t b_ft = time_bcast(true, false, count);
    const usec_t b_outage = time_bcast(true, true, count);
    const usec_t a_plain = time_allreduce(false, count);
    const usec_t a_ft = time_allreduce(true, count);

    xs.push_back(static_cast<double>(bytes));
    bcast_us.push_back(b_plain);
    bcast_ft_us.push_back(b_ft);
    bcast_oh.push_back(overhead_pct(b_plain, b_ft));
    ar_us.push_back(a_plain);
    ar_ft_us.push_back(a_ft);
    ar_oh.push_back(overhead_pct(a_plain, a_ft));
    outage_us.push_back(b_outage);

    std::printf("%10zu %10.1f %12.1f %7.1f%% %12.1f %14.1f %7.1f%% %16.1f\n",
                bytes, b_plain, b_ft, bcast_oh.back(), a_plain, a_ft,
                ar_oh.back(), b_outage);
  }

  if (!json_path.empty()) {
    const std::vector<bench::JsonColumn> columns = {
        {"bytes", xs},
        {"bcast_us", bcast_us},
        {"bcast_ft_us", bcast_ft_us},
        {"bcast_ft_overhead_pct", bcast_oh},
        {"allreduce_us", ar_us},
        {"allreduce_ft_us", ar_ft_us},
        {"allreduce_ft_overhead_pct", ar_oh},
        {"bcast_outage_ft_us", outage_us}};
    if (!bench::write_json_series(json_path, "ablation_ft_collectives",
                                  columns)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
