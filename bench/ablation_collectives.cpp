// Ablation: the hierarchical collective engine at scale (PR 9).
//
// Flat binomial/dissemination algorithms treat the meta-cluster as a
// uniform rank set, so every tree edge is equally likely to be a TCP
// interconnect hop. The hierarchical engine walks the topology digest
// instead — island (shared memory) -> cluster (SCI) -> interconnect
// (TCP) — and the modeled NIC offload moves the barrier/bcast forwarding
// tree onto the SCI adapters entirely. This bench quantifies both against
// the flat baselines at 16..1024 ranks under both session engines, plus
// the ibcast overlap headline (communication hidden behind compute).
//
// --json <path> writes the machine-readable series consumed by CI
// (docs/results/BENCH_collectives.json pins the committed trajectory).
// Thread-per-rank is only taken to 256 ranks — past that the OS thread
// count itself is the bottleneck (same cap as the scale-out ablation);
// those cells are reported as 0 in the JSON rather than silently skipped.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

/// `ranks` total over `clusters` SCI islands of `ranks_per`-rank machines
/// (last machine of a cluster takes the remainder), TCP interconnect.
/// Deliberately misaligned — non-power-of-two cluster and node sizes — so
/// a flat binomial tree's rank±2^k edges cross the interconnect at many
/// levels. (On power-of-two-aligned shapes the flat binomial tree IS the
/// hierarchical tree and the comparison measures nothing.)
struct Shape {
  int ranks;
  int clusters;
  int ranks_per;
};

constexpr Shape kShapes[] = {
    {16, 2, 3},
    {64, 3, 5},
    {256, 3, 6},
    {1024, 5, 7},
};
constexpr int kThreadedRankCap = 256;

sim::ClusterSpec meta_cluster(const Shape& shape, int clusters) {
  sim::ClusterSpec spec;
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (int c = 0; c < clusters; ++c) {
    int remaining =
        shape.ranks / clusters + (c < shape.ranks % clusters ? 1 : 0);
    sim::NetworkSpec sci;
    sci.protocol = sim::Protocol::kSisci;
    sci.adapter = static_cast<adapter_id_t>(c);
    for (int n = 0; remaining > 0; ++n) {
      sim::NodeSpec node;
      node.name = "c" + std::to_string(c) + "n" + std::to_string(n);
      node.ranks = std::min(shape.ranks_per, remaining);
      remaining -= node.ranks;
      spec.nodes.push_back(node);
      sci.members.push_back(node.name);
      tcp.members.push_back(node.name);
    }
    spec.networks.push_back(std::move(sci));
  }
  spec.networks.push_back(std::move(tcp));
  return spec;
}

sim::ClusterSpec meta_cluster(const Shape& shape) {
  return meta_cluster(shape, shape.clusters);
}

/// One timed collective on a fresh session: configure, warm up, sync,
/// report the slowest rank's virtual elapsed time (completion latency —
/// a bcast root's own elapsed only covers its sends).
usec_t time_op(sim::ClusterSpec cluster, const mpi::CollectiveConfig& config,
               const std::function<void(mpi::Comm)>& op) {
  core::Session::Options options;
  options.cluster = std::move(cluster);
  core::Session session(std::move(options));
  usec_t elapsed = 0.0;
  session.run([&](mpi::Comm comm) {
    comm.set_collective_config(config);
    op(comm);  // warm-up
    comm.barrier();
    const usec_t t0 = comm.wtime_us();
    op(comm);
    usec_t local = comm.wtime_us() - t0;
    usec_t slowest = 0.0;
    comm.allreduce(&local, &slowest, 1, mpi::Datatype::float64(),
                   mpi::Op::max());
    if (comm.rank() == 0) elapsed = slowest;
  });
  return elapsed;
}

constexpr std::size_t kPayloadBytes = 64 * 1024;

usec_t time_bcast(const Shape& shape, mpi::BcastAlgorithm algorithm) {
  mpi::CollectiveConfig config;
  config.bcast = algorithm;
  return time_op(meta_cluster(shape), config, [](mpi::Comm comm) {
    std::vector<std::byte> payload(kPayloadBytes);
    comm.bcast(payload.data(), static_cast<int>(payload.size()),
               mpi::Datatype::byte(), 0);
  });
}

usec_t time_allreduce(const Shape& shape, mpi::AllreduceAlgorithm algorithm) {
  mpi::CollectiveConfig config;
  config.allreduce = algorithm;
  return time_op(meta_cluster(shape), config, [](mpi::Comm comm) {
    std::vector<double> mine(kPayloadBytes / sizeof(double), 1.0);
    std::vector<double> total(mine.size());
    comm.allreduce(mine.data(), total.data(), static_cast<int>(mine.size()),
                   mpi::Datatype::float64(), mpi::Op::sum());
  });
}

/// Barriers run on the single-SCI-cluster variant of the same shape (the
/// NIC offload needs a homogeneous leader fabric; the host trees get the
/// identical topology for a fair fight).
usec_t time_barrier(const Shape& shape, mpi::BarrierAlgorithm algorithm) {
  mpi::CollectiveConfig config;
  config.barrier = algorithm;
  return time_op(meta_cluster(shape, /*clusters=*/1), config,
                 [](mpi::Comm comm) { comm.barrier(); });
}

/// Overlap headline: ibcast + a compute phase of comparable length. The
/// schedule advances from the progress engine, so the elapsed time should
/// approach max(bcast, compute), not their sum.
struct OverlapResult {
  usec_t blocking_sum_us = 0.0;
  usec_t overlapped_us = 0.0;
};

OverlapResult time_overlap(const Shape& shape) {
  constexpr usec_t kComputeUs = 3000.0;
  OverlapResult result;
  core::Session::Options options;
  options.cluster = meta_cluster(shape);
  core::Session session(std::move(options));
  session.run([&](mpi::Comm comm) {
    std::vector<std::byte> payload(kPayloadBytes);
    comm.bcast(payload.data(), static_cast<int>(payload.size()),
               mpi::Datatype::byte(), 0);  // warm-up
    comm.barrier();
    usec_t t0 = comm.wtime_us();
    comm.bcast(payload.data(), static_cast<int>(payload.size()),
               mpi::Datatype::byte(), 0);
    comm.compute_us(kComputeUs);
    comm.barrier();
    if (comm.rank() == 0) result.blocking_sum_us = comm.wtime_us() - t0;

    comm.barrier();
    t0 = comm.wtime_us();
    mpi::Request request = comm.ibcast(
        payload.data(), static_cast<int>(payload.size()),
        mpi::Datatype::byte(), 0);
    comm.compute_us(kComputeUs);
    request.wait();
    comm.barrier();
    if (comm.rank() == 0) result.overlapped_us = comm.wtime_us() - t0;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const char* engines[] = {"threaded", "sharded"};

  std::vector<double> ranks_col, engine_col;
  std::vector<double> bcast_flat, bcast_hier, allreduce_flat, allreduce_hier;
  std::vector<double> barrier_host, barrier_hier, barrier_offload;
  std::vector<double> overlap_sum, overlap_actual;

  for (const char* engine : engines) {
    ::setenv("MADMPI_ENGINE", engine, 1);
    std::printf("\n### %s engine: hierarchical vs flat, %zu KiB payloads\n",
                engine, kPayloadBytes / 1024);
    std::printf("%6s %12s %12s %14s %14s %13s %13s %15s %12s %12s\n", "ranks",
                "bcast_flat", "bcast_hier", "allred_flat", "allred_hier",
                "barrier_host", "barrier_hier", "barrier_offload",
                "overlap_sum", "overlap_ok");
    for (const Shape& shape : kShapes) {
      ranks_col.push_back(shape.ranks);
      engine_col.push_back(std::string(engine) == "sharded" ? 1.0 : 0.0);
      if (std::string(engine) == "threaded" &&
          shape.ranks > kThreadedRankCap) {
        std::printf("%6d %12s (thread-per-rank capped at %d ranks)\n",
                    shape.ranks, "-", kThreadedRankCap);
        for (auto* column :
             {&bcast_flat, &bcast_hier, &allreduce_flat, &allreduce_hier,
              &barrier_host, &barrier_hier, &barrier_offload, &overlap_sum,
              &overlap_actual}) {
          column->push_back(0.0);
        }
        continue;
      }
      bcast_flat.push_back(time_bcast(shape, mpi::BcastAlgorithm::kBinomial));
      bcast_hier.push_back(
          time_bcast(shape, mpi::BcastAlgorithm::kHierarchical));
      allreduce_flat.push_back(
          time_allreduce(shape, mpi::AllreduceAlgorithm::kReduceBcast));
      allreduce_hier.push_back(
          time_allreduce(shape, mpi::AllreduceAlgorithm::kHierarchical));
      barrier_host.push_back(
          time_barrier(shape, mpi::BarrierAlgorithm::kDissemination));
      barrier_hier.push_back(
          time_barrier(shape, mpi::BarrierAlgorithm::kHierarchical));
      barrier_offload.push_back(
          time_barrier(shape, mpi::BarrierAlgorithm::kOffload));
      const OverlapResult overlap = time_overlap(shape);
      overlap_sum.push_back(overlap.blocking_sum_us);
      overlap_actual.push_back(overlap.overlapped_us);
      std::printf(
          "%6d %12.1f %12.1f %14.1f %14.1f %13.1f %13.1f %15.1f %12.1f "
          "%12.1f\n",
          shape.ranks, bcast_flat.back(), bcast_hier.back(),
          allreduce_flat.back(), allreduce_hier.back(), barrier_host.back(),
          barrier_hier.back(), barrier_offload.back(), overlap_sum.back(),
          overlap_actual.back());
    }
  }

  if (!json_path.empty()) {
    const std::vector<bench::JsonColumn> columns = {
        {"ranks", ranks_col},
        {"sharded", engine_col},
        {"bcast_flat_us", bcast_flat},
        {"bcast_hier_us", bcast_hier},
        {"allreduce_flat_us", allreduce_flat},
        {"allreduce_hier_us", allreduce_hier},
        {"barrier_host_us", barrier_host},
        {"barrier_hier_us", barrier_hier},
        {"barrier_offload_us", barrier_offload},
        {"overlap_blocking_sum_us", overlap_sum},
        {"overlap_actual_us", overlap_actual},
    };
    if (!bench::write_json_series(json_path, "ablation_collectives",
                                  columns)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
