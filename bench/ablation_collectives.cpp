// Ablation: collective algorithm choice on the simulated networks.
//
// The paper's MPICH inherits the classic binomial-tree collectives; this
// bench quantifies what algorithm selection buys on each network class:
// trees win the latency game on small payloads, rings win bandwidth on
// large ones (they move 2(n-1)/n of the data per rank regardless of n).
#include <cstdio>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

usec_t time_allreduce(sim::Protocol protocol, int ranks,
                      mpi::AllreduceAlgorithm algorithm, int count) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(ranks, protocol);
  core::Session session(std::move(options));
  usec_t elapsed = 0.0;
  session.run([&](mpi::Comm comm) {
    mpi::CollectiveConfig config;
    config.allreduce = algorithm;
    comm.set_collective_config(config);
    std::vector<double> mine(static_cast<std::size_t>(count), 1.0);
    std::vector<double> total(static_cast<std::size_t>(count));
    comm.allreduce(mine.data(), total.data(), count, mpi::Datatype::float64(),
                   mpi::Op::sum());  // warm-up
    const usec_t t0 = comm.wtime_us();
    comm.allreduce(mine.data(), total.data(), count, mpi::Datatype::float64(),
                   mpi::Op::sum());
    if (comm.rank() == 0) elapsed = comm.wtime_us() - t0;
  });
  return elapsed;
}

usec_t time_bcast(sim::Protocol protocol, int ranks,
                  mpi::BcastAlgorithm algorithm, int count) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(ranks, protocol);
  core::Session session(std::move(options));
  usec_t elapsed = 0.0;
  session.run([&](mpi::Comm comm) {
    mpi::CollectiveConfig config;
    config.bcast = algorithm;
    comm.set_collective_config(config);
    std::vector<double> data(static_cast<std::size_t>(count), 1.0);
    comm.bcast(data.data(), count, mpi::Datatype::float64(), 0);  // warm-up
    comm.barrier();
    const usec_t t0 = comm.wtime_us();
    comm.bcast(data.data(), count, mpi::Datatype::float64(), 0);
    comm.barrier();
    if (comm.rank() == 0) elapsed = comm.wtime_us() - t0;
  });
  return elapsed;
}

}  // namespace

int main() {
  constexpr int kRanks = 8;
  std::printf("### Allreduce on %d SCI nodes (completion time, us)\n",
              kRanks);
  std::printf("%10s %14s %18s %12s\n", "doubles", "reduce+bcast",
              "recursive-dbl", "ring");
  for (int count : {8, 256, 8192, 131072}) {
    std::printf("%10d %14.1f %18.1f %12.1f\n", count,
                time_allreduce(sim::Protocol::kSisci, kRanks,
                               mpi::AllreduceAlgorithm::kReduceBcast, count),
                time_allreduce(sim::Protocol::kSisci, kRanks,
                               mpi::AllreduceAlgorithm::kRecursiveDoubling,
                               count),
                time_allreduce(sim::Protocol::kSisci, kRanks,
                               mpi::AllreduceAlgorithm::kRing, count));
  }

  std::printf("\n### Same sweep on TCP (latency-dominated network)\n");
  std::printf("%10s %14s %18s %12s\n", "doubles", "reduce+bcast",
              "recursive-dbl", "ring");
  for (int count : {8, 8192, 131072}) {
    std::printf("%10d %14.1f %18.1f %12.1f\n", count,
                time_allreduce(sim::Protocol::kTcp, kRanks,
                               mpi::AllreduceAlgorithm::kReduceBcast, count),
                time_allreduce(sim::Protocol::kTcp, kRanks,
                               mpi::AllreduceAlgorithm::kRecursiveDoubling,
                               count),
                time_allreduce(sim::Protocol::kTcp, kRanks,
                               mpi::AllreduceAlgorithm::kRing, count));
  }

  std::printf("\n### Bcast: binomial tree vs linear root fan-out "
              "(%d Myrinet nodes, bcast+barrier time, us)\n",
              kRanks);
  std::printf("%10s %12s %12s\n", "doubles", "binomial", "linear");
  for (int count : {8, 8192, 131072}) {
    std::printf("%10d %12.1f %12.1f\n", count,
                time_bcast(sim::Protocol::kBip, kRanks,
                           mpi::BcastAlgorithm::kBinomial, count),
                time_bcast(sim::Protocol::kBip, kRanks,
                           mpi::BcastAlgorithm::kLinear, count));
  }
  return 0;
}
