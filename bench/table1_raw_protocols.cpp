// Table 1 — "Latency and bandwidth for Various Network Protocols":
// raw Madeleine over TCP / BIP / SISCI. Paper values: latency 121 / 9.2 /
// 4.4 us; 8 MB bandwidth 11.2 / 122 / 82.6 MB/s.
#include <cstdio>

#include "bench_common.hpp"

using namespace madmpi;

int main() {
  std::printf("Table 1: raw Madeleine latency (4 B) and bandwidth (8 MB)\n");
  std::printf("%-8s %14s %18s\n", "proto", "latency_us", "bandwidth_MB/s");

  struct Row {
    sim::Protocol protocol;
    double paper_latency;
    double paper_bandwidth;
  };
  const Row rows[] = {
      {sim::Protocol::kTcp, 121.0, 11.2},
      {sim::Protocol::kBip, 9.2, 122.0},
      {sim::Protocol::kSisci, 4.4, 82.6},
  };

  for (const auto& row : rows) {
    auto session = bench::make_chmad_session(row.protocol);
    mad::Channel& channel = session->open_raw_channel();
    const auto latency = core::raw_madeleine_pingpong(channel, 0, 1, 4);
    const auto bandwidth =
        core::raw_madeleine_pingpong(channel, 0, 1, 8u << 20, 1);
    std::printf("%-8s %8.1f (paper %5.1f) %8.1f (paper %5.1f)\n",
                sim::protocol_name(row.protocol), latency.one_way_us,
                row.paper_latency, bandwidth.bandwidth_mb_s,
                row.paper_bandwidth);
  }
  return 0;
}
