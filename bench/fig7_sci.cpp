// Figure 7 — "Comparison between ch_mad, Madeleine, ScaMPI and SCI-MPICH"
// on SISCI/SCI.
//
// Expected shape (paper §5.3): latencies are NOT favourable to ch_mad
// (raw ~4.5 us, ch_mad ~20 us, the native ports in between) because of the
// intermediate Madeleine/Marcel layers. In bandwidth the 8 KB eager->rndv
// switch is clearly visible, and beyond 16 KB ch_mad's zero-copy
// rendezvous outperforms both native SCI ports with 80+ MB/s sustained.
#include "bench_common.hpp"

using namespace madmpi;

int main() {
  auto chmad_session = bench::make_chmad_session(sim::Protocol::kSisci);
  auto scampi_session =
      bench::make_baseline_session("ScaMPI", sim::Protocol::kSisci);
  auto smi_session =
      bench::make_baseline_session("SCI-MPICH", sim::Protocol::kSisci);
  mad::Channel& raw = chmad_session->open_raw_channel();

  std::vector<bench::Target> targets;
  targets.push_back(bench::mpi_target("ch_mad", *chmad_session));
  targets.push_back(bench::mpi_target("ScaMPI", *scampi_session));
  targets.push_back(bench::mpi_target("SCI-MPICH", *smi_session));
  targets.push_back(bench::raw_madeleine_target("raw_Madeleine", raw));

  bench::print_figure("Figure 7(a): SISCI/SCI transfer time (us)",
                      bench::latency_series(targets));
  bench::print_figure("Figure 7(b): SISCI/SCI bandwidth (MB/s)",
                      bench::bandwidth_series(targets));
  return 0;
}
