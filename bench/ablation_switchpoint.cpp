// Ablation: the eager/rendezvous switch point (paper §4.2.2).
//
// Sweeps forced switch points per protocol and reports the bandwidth at
// sizes around each network's natural crossover, then runs the automatic
// tuner and compares its answer with the paper's hand-picked values
// (TCP 64 KB, SCI 8 KB, BIP 7 KB). Also demonstrates the election rule's
// cost: a multi-protocol device must use ONE threshold, so the non-SCI
// networks run slightly off their individual optimum.
#include <cstdio>

#include "bench_common.hpp"
#include "core/switchpoint.hpp"
#include "core/tuner.hpp"

using namespace madmpi;

namespace {

void sweep_protocol(sim::Protocol protocol) {
  std::printf("\n### Switch-point sweep over %s (one-way us)\n",
              sim::protocol_name(protocol));
  const std::size_t thresholds[] = {0,      2048,     4096,
                                    8192,   16384,    65536,
                                    131072, static_cast<std::size_t>(-1)};
  const std::size_t sizes[] = {2048, 8192, 32768, 262144};

  std::printf("%-12s", "threshold");
  for (std::size_t size : sizes) std::printf(" %9zuB", size);
  std::printf("\n");
  for (std::size_t threshold : thresholds) {
    core::Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
    options.switch_point_override = threshold;
    core::Session session(std::move(options));
    if (threshold == static_cast<std::size_t>(-1)) {
      std::printf("%-12s", "eager-only");
    } else {
      std::printf("%-12zu", threshold);
    }
    for (std::size_t size : sizes) {
      std::printf(" %10.1f", core::mpi_pingpong(session, size, 2).one_way_us);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip}) {
    sweep_protocol(protocol);
  }

  std::printf("\n### Automatic tuner vs the paper's hand-picked values\n");
  std::printf("%-8s %16s %14s\n", "proto", "tuned_bytes", "paper_bytes");
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip}) {
    const auto tuned = core::tune_switch_point(protocol);
    std::printf("%-8s %16zu %14zu\n", sim::protocol_name(protocol),
                tuned.switch_point_bytes,
                core::network_switch_point(protocol));
  }

  std::printf("\n### Cost of the single elected threshold (SCI rule)\n");
  // On a Myrinet pair inside an SCI+Myrinet cluster the device runs with
  // SCI's 8 KB instead of BIP's natural 7 KB.
  for (std::size_t threshold : {7u * 1024u, 8u * 1024u}) {
    core::Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
    options.switch_point_override = threshold;
    core::Session session(std::move(options));
    const auto at_boundary = core::mpi_pingpong(session, 7 * 1024 + 512, 2);
    std::printf("BIP pair, threshold %zu: 7.5 KB message takes %.1f us\n",
                threshold, at_boundary.one_way_us);
  }
  return 0;
}
