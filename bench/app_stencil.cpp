// Application-level benchmark: the paper's motivating scenario.
//
// The introduction argues that clusters of clusters need a communication
// library that exploits EVERY network at full speed, instead of dedicating
// TCP to inter-cluster links. This bench runs the same 1-D halo-exchange
// stencil on three configurations of 4 nodes and reports the virtual time
// per iteration:
//
//   tcp-only      : all four nodes on Fast-Ethernet only
//   meta-cluster  : SCI pair + Myrinet pair + Fast-Ethernet everywhere
//                   (ch_mad picks SISCI/BIP inside the sub-clusters and
//                   TCP only across them — the paper's design)
//   sci-only      : all four nodes on SCI (upper bound)
//
// The meta-cluster should land much closer to sci-only than to tcp-only:
// only 1 of every 4 halo hops still crosses Fast-Ethernet.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

constexpr int kCells = 16384;   // per rank
constexpr int kIterations = 50;

usec_t stencil_time(core::Session& session) {
  usec_t elapsed = 0.0;
  session.run([&elapsed](mpi::Comm comm) {
    const auto f64 = mpi::Datatype::float64();
    std::vector<double> u(kCells + 2, comm.rank());
    comm.barrier();
    const usec_t t0 = comm.wtime_us();
    for (int iter = 0; iter < kIterations; ++iter) {
      auto exchange = [&](int neighbour, double* mine, double* halo) {
        if (neighbour < 0 || neighbour >= comm.size()) return;
        comm.sendrecv(mine, 1, f64, neighbour, iter, halo, 1, f64, neighbour,
                      iter);
      };
      if (comm.rank() % 2 == 0) {
        exchange(comm.rank() + 1, &u[kCells], &u[kCells + 1]);
        exchange(comm.rank() - 1, &u[1], &u[0]);
      } else {
        exchange(comm.rank() - 1, &u[1], &u[0]);
        exchange(comm.rank() + 1, &u[kCells], &u[kCells + 1]);
      }
      for (int i = 1; i <= kCells; ++i) {
        u[static_cast<std::size_t>(i)] =
            0.25 * (u[static_cast<std::size_t>(i - 1)] +
                    2.0 * u[static_cast<std::size_t>(i)] +
                    u[static_cast<std::size_t>(i + 1)]);
      }
      // Model the sweep's flops: ~4 ops/cell on a PII-450.
      comm.compute_us(kCells * 0.01);
    }
    comm.barrier();
    if (comm.rank() == 0) elapsed = comm.wtime_us() - t0;
  });
  return elapsed / kIterations;
}

}  // namespace

int main() {
  std::printf("1-D stencil, 4 nodes, %d cells/rank, per-iteration virtual "
              "time (halo exchange + sweep)\n\n",
              kCells);

  struct Config {
    const char* name;
    sim::ClusterSpec spec;
  };
  std::vector<Config> configs;
  configs.push_back(
      {"tcp-only", sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp)});
  configs.push_back({"meta-cluster", sim::ClusterSpec::cluster_of_clusters(
                                         2, 2)});
  configs.push_back(
      {"sci-only", sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci)});

  usec_t tcp_time = 0.0;
  std::printf("%-14s %16s %10s\n", "configuration", "us/iteration",
              "speedup");
  for (auto& config : configs) {
    core::Session::Options options;
    options.cluster = config.spec;
    core::Session session(std::move(options));
    const usec_t per_iter = stencil_time(session);
    if (tcp_time == 0.0) tcp_time = per_iter;
    std::printf("%-14s %16.1f %9.2fx\n", config.name, per_iter,
                tcp_time / per_iter);
  }
  std::printf("\n(the meta-cluster rides SISCI/BIP inside the sub-clusters; "
              "only the one cross-cluster halo pair still pays\n"
              " Fast-Ethernet latency — the utility the paper's introduction "
              "claims for a true multi-protocol MPI)\n");
  return 0;
}
