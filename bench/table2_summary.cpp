// Table 2 — "Summary of Performance": ch_mad latency at 0 B and 4 B plus
// 8 MB bandwidth, per network. Paper values:
//   TCP   130 / 148.7 us, 11.2 MB/s
//   BIP   16.9 / 18.9 us, 115 MB/s
//   SISCI 13 / 20 us,     82.5 MB/s
#include <cstdio>

#include "bench_common.hpp"

using namespace madmpi;

int main() {
  std::printf("Table 2: ch_mad summary of performance\n");
  std::printf("%-8s %22s %22s %22s\n", "proto", "latency0_us", "latency4_us",
              "bandwidth_MB/s");

  struct Row {
    sim::Protocol protocol;
    double paper0, paper4, paper_bw;
  };
  const Row rows[] = {
      {sim::Protocol::kTcp, 130.0, 148.7, 11.2},
      {sim::Protocol::kBip, 16.9, 18.9, 115.0},
      {sim::Protocol::kSisci, 13.0, 20.0, 82.5},
  };

  for (const auto& row : rows) {
    auto session = bench::make_chmad_session(row.protocol);
    const auto lat0 = core::mpi_pingpong(*session, 0);
    const auto lat4 = core::mpi_pingpong(*session, 4);
    const auto bw = core::mpi_pingpong(*session, 8u << 20, 1);
    std::printf("%-8s %8.1f (paper %5.1f) %8.1f (paper %5.1f) %8.1f (paper %5.1f)\n",
                sim::protocol_name(row.protocol), lat0.one_way_us, row.paper0,
                lat4.one_way_us, row.paper4, bw.bandwidth_mb_s, row.paper_bw);
  }
  return 0;
}
