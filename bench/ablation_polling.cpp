// Ablation: polling interference and per-protocol polling cost
// (paper §3.3 and §4.2.3, generalizing Figure 9).
//
// Measures SCI ping-pong latency while 0..N additional polling threads of
// various protocols are active on the same nodes, and prints the poll-cost
// table that justifies Madeleine/Marcel's per-protocol polling frequency.
#include <cstdio>

#include "bench_common.hpp"
#include "net/driver.hpp"

using namespace madmpi;

namespace {

/// Myrinet cluster with `extra_tcp` additional TCP networks and
/// `extra_sci` SCI networks declared (each adds one polling thread per
/// node). Myrinet is the highest-ranked protocol, so routing always stays
/// on BIP and the extras only contribute their pollers.
std::unique_ptr<core::Session> session_with_extras(int extra_tcp,
                                                   int extra_sci) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
  auto add_network = [&](sim::Protocol protocol, int adapter) {
    sim::NetworkSpec net;
    net.protocol = protocol;
    net.adapter = adapter;
    for (const auto& node : options.cluster.nodes) {
      net.members.push_back(node.name);
    }
    options.cluster.networks.push_back(std::move(net));
  };
  for (int i = 0; i < extra_tcp; ++i) add_network(sim::Protocol::kTcp, i);
  for (int i = 0; i < extra_sci; ++i) add_network(sim::Protocol::kSisci, i);
  return std::make_unique<core::Session>(std::move(options));
}

}  // namespace

int main() {
  std::printf("### Per-protocol poll cost (one unsuccessful poll, us)\n");
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip, sim::Protocol::kShmem}) {
    auto driver = net::make_driver(protocol);
    std::printf("%-8s %8.2f\n", sim::protocol_name(protocol),
                driver->poll_cost());
  }

  std::printf("\n### Myrinet 4 B latency under concurrent pollers "
              "(generalized Figure 9)\n");
  std::printf("%-28s %12s\n", "configuration", "one_way_us");
  struct Case {
    const char* name;
    int tcp;
    int sci;
  };
  const Case cases[] = {
      {"BIP alone", 0, 0},           {"BIP + 1 TCP poller", 1, 0},
      {"BIP + 2 TCP pollers", 2, 0}, {"BIP + 1 SCI poller", 0, 1},
      {"BIP + TCP + SCI", 1, 1},
  };
  for (const auto& test_case : cases) {
    auto session = session_with_extras(test_case.tcp, test_case.sci);
    // Route sanity: communication must still use Myrinet.
    MADMPI_CHECK(session->ch_mad()->router().route(0, 1)->protocol() ==
                 sim::Protocol::kBip);
    const auto result = core::mpi_pingpong(*session, 4);
    std::printf("%-28s %12.2f\n", test_case.name, result.one_way_us);
  }
  std::printf("\n(cheap memory polls barely register; each TCP poller adds "
              "~half a select() per message)\n");
  return 0;
}
