// Ablation: one-sided put over the zero-copy datapath vs the two-sided
// eager path. A put is a single EXPRESS header + ChunkRef body landed
// directly into the target window (SISCI: PIO, no landing charge), with
// epoch completion amortized over the whole epoch by the cumulative
// ledger — so steady-state puts beat an eager send/recv pair at every
// size, with zero staging allocations per put.
//
// `--json <path>` writes the machine-readable series consumed by the CI
// perf-trajectory job (docs/results/BENCH_rma.json).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "mpi/win.hpp"

using namespace madmpi;

namespace {

struct RmaPoint {
  double put_us = 0.0;        // per put, epoch completion amortized
  double allocs_per_put = 0;  // staging allocations (must be 0 steady-state)
  double copied_per_put = 0;  // host bytes copied (the single landing copy)
};

/// Epoch-amortized put cost: rank 0 streams puts into rank 1's window and
/// closes each epoch with a fence. Puts are fire-and-forget, so every put
/// of an epoch holds its pooled chunk(s) concurrently until the target
/// lands it; with the slab cache deepened to cover that concurrency (see
/// main), steady-state epochs run entirely off slab reuse. Two untimed
/// epochs first settle pools, channels and the first-use registration.
RmaPoint measure_put(sim::Protocol protocol, std::size_t bytes,
                     int puts_per_epoch, int epochs) {
  auto session = bench::make_chmad_session(protocol);
  RmaPoint point;
  session->run([&](mpi::Comm comm) {
    mpi::Win win = mpi::Win::allocate(comm, bytes);
    std::vector<std::uint8_t> payload(bytes, 0x5a);
    const int count = static_cast<int>(bytes);
    auto epoch = [&] {
      if (comm.rank() == 0) {
        for (int r = 0; r < puts_per_epoch; ++r) {
          win.put(payload.data(), count, mpi::RmaType::kUint8, 1, 0);
        }
      }
      win.fence();
    };
    win.fence();
    epoch();
    epoch();  // end of warm-up: steady state from here

    const auto before = DatapathStats::global().snapshot();
    const double start = comm.wtime_us();
    for (int e = 0; e < epochs; ++e) epoch();
    const double elapsed = comm.wtime_us() - start;
    const auto d = DatapathStats::global().snapshot() - before;
    if (comm.rank() == 0) {
      const double puts = static_cast<double>(puts_per_epoch) * epochs;
      point.put_us = elapsed / puts;
      point.allocs_per_put = static_cast<double>(d.staging_allocs) / puts;
      point.copied_per_put = static_cast<double>(d.bytes_copied) / puts;
    }
    win.free();
  });
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  // A streaming one-sided epoch keeps every put's chunk alive at once, so
  // the default 16-per-class slab cache sits exactly at the concurrency
  // edge and thread timing decides whether a release recycles or frees.
  // Deepen the cache (without overriding an explicit user setting) so the
  // steady-state epochs measure the datapath, not the cap.
  setenv("MADMPI_SLAB_MAX_CACHED", "64", /*overwrite=*/0);

  const std::string json_path = bench::json_path_from_args(argc, argv);
  constexpr int kReps = 32;            // eager ping-pong round trips
  constexpr int kPutsPerEpoch = 12;    // puts in flight per fence epoch
  constexpr int kEpochs = 4;
  const sim::Protocol protocol = sim::Protocol::kSisci;

  std::vector<double> xs, put_us, eager_us, allocs, copied;
  for (std::size_t size : power_of_two_sizes(16384)) {
    const RmaPoint point =
        measure_put(protocol, size, kPutsPerEpoch, kEpochs);

    // Two-sided comparator: the same bytes over the eager path (the
    // switch point is raised so no size escapes to rendezvous).
    core::Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
    options.switch_point_override = 1 << 20;
    core::Session eager(std::move(options));
    const auto two_sided = core::mpi_pingpong(eager, size, kReps);

    xs.push_back(static_cast<double>(size));
    put_us.push_back(point.put_us);
    eager_us.push_back(two_sided.one_way_us);
    allocs.push_back(point.allocs_per_put);
    copied.push_back(point.copied_per_put);
  }

  std::printf("### ablation_rma (%s)\n", "sisci");
  std::printf("%10s %12s %12s %16s %16s\n", "bytes", "put_us", "eager_us",
              "allocs_per_put", "copied_per_put");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%10.0f %12.3f %12.3f %16.3f %16.1f\n", xs[i], put_us[i],
                eager_us[i], allocs[i], copied[i]);
  }

  if (!json_path.empty()) {
    const std::vector<bench::JsonColumn> columns = {
        {"bytes", xs},
        {"put_us", put_us},
        {"eager_one_way_us", eager_us},
        {"staging_allocs_per_put", allocs},
        {"bytes_copied_per_put", copied}};
    if (!bench::write_json_series(json_path, "ablation_rma", columns)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
