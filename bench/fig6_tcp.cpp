// Figure 6 — "Comparison between ch_mad, MADELEINE II and ch_p4" on
// TCP/Fast-Ethernet. Panel (a): transfer time 1 B - 1 KB; panel (b):
// bandwidth 1 B - 1 MB.
//
// Expected shape (paper §5.2): ch_mad beats ch_p4 below 256 B; beyond that
// the latency difference stays limited. In bandwidth, ch_p4 hits a flat
// ~10 MB/s ceiling while ch_mad switches to rendezvous at 64 KB and climbs
// past 11 MB/s, delivering nearly all of raw Madeleine's bandwidth.
#include "bench_common.hpp"

using namespace madmpi;

int main() {
  auto chmad_session = bench::make_chmad_session(sim::Protocol::kTcp);
  auto p4_session =
      bench::make_baseline_session("ch_p4", sim::Protocol::kTcp);
  mad::Channel& raw = chmad_session->open_raw_channel();

  std::vector<bench::Target> targets;
  targets.push_back(bench::mpi_target("ch_mad", *chmad_session));
  targets.push_back(bench::mpi_target("ch_p4", *p4_session));
  targets.push_back(bench::raw_madeleine_target("raw_Madeleine", raw));

  bench::print_figure("Figure 6(a): TCP/Fast-Ethernet transfer time (us)",
                      bench::latency_series(targets));
  bench::print_figure("Figure 6(b): TCP/Fast-Ethernet bandwidth (MB/s)",
                      bench::bandwidth_series(targets));
  return 0;
}
