// Ablation: session scale-out — thread-per-rank vs the sharded fiber
// engine.
//
// The metric is host-side rank throughput: how many simulated ranks per
// wall-clock second one machine can set up, run through a small workload
// (ring exchange + allreduce) and tear down. Thread-per-rank pays an OS
// thread create/join plus kernel wake-ups for every blocking point at
// every rank; the sharded engine runs ranks as run-to-completion fibers
// on a handful of workers, which is what makes 1024-rank sessions
// practical (the threaded engine is not measured there — that is the
// point of the ablation).
//
// `--json <path>` writes the machine-readable series consumed by the CI
// perf-trajectory job (docs/results/BENCH_scaleout.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

/// One timed cell: engine x rank count, repeated `reps` times with the
/// whole session lifecycle (construct, run, destroy) inside the clock —
/// rank setup/teardown is exactly the cost under study.
struct Cell {
  const char* engine;
  int ranks;
  int reps;
};

double run_cell(const Cell& cell) {
  ::setenv("MADMPI_ENGINE", cell.engine, 1);
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < cell.reps; ++rep) {
    core::Session::Options options;
    options.cluster =
        sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, cell.ranks);
    core::Session session(std::move(options));
    session.run([](mpi::Comm comm) {
      const int n = comm.size();
      const int me = comm.rank();
      std::int32_t token = me;
      std::int32_t from_left = -1;
      comm.sendrecv(&token, 1, mpi::Datatype::int32(), (me + 1) % n, 0,
                    &from_left, 1, mpi::Datatype::int32(),
                    (me + n - 1) % n, 0);
      std::int64_t mine = me;
      std::int64_t total = 0;
      comm.allreduce(&mine, &total, 1, mpi::Datatype::int64(),
                     mpi::Op::sum());
    });
  }
  const auto done = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(done - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);

  // Thread-per-rank is only taken to 256 ranks; past that the thread
  // storm dominates machine capacity rather than measuring it.
  const std::vector<Cell> cells = {
      {"threaded", 64, 5},  {"threaded", 256, 3}, {"sharded", 64, 5},
      {"sharded", 256, 3},  {"sharded", 1024, 2},
  };

  std::vector<double> sharded_flag, ranks, reps, wall_s, ranks_per_sec;
  double threaded_256 = 0.0, sharded_256 = 0.0;
  std::printf("### ablation_scaleout (single node, smp)\n");
  std::printf("%10s %7s %5s %9s %14s\n", "engine", "ranks", "reps",
              "wall_s", "ranks_per_sec");
  for (const Cell& cell : cells) {
    const double seconds = run_cell(cell);
    const double throughput =
        static_cast<double>(cell.ranks) * cell.reps / seconds;
    sharded_flag.push_back(std::string(cell.engine) == "sharded" ? 1.0
                                                                 : 0.0);
    ranks.push_back(cell.ranks);
    reps.push_back(cell.reps);
    wall_s.push_back(seconds);
    ranks_per_sec.push_back(throughput);
    if (cell.ranks == 256) {
      (sharded_flag.back() == 1.0 ? sharded_256 : threaded_256) =
          throughput;
    }
    std::printf("%10s %7d %5d %9.3f %14.0f\n", cell.engine, cell.ranks,
                cell.reps, seconds, throughput);
  }
  if (threaded_256 > 0.0) {
    std::printf("sharded/threaded speedup at 256 ranks: %.1fx\n",
                sharded_256 / threaded_256);
  }

  if (!json_path.empty()) {
    const std::vector<bench::JsonColumn> columns = {
        {"sharded", sharded_flag},
        {"ranks", ranks},
        {"reps", reps},
        {"wall_s", wall_s},
        {"ranks_per_sec", ranks_per_sec}};
    if (!bench::write_json_series(json_path, "ablation_scaleout",
                                  columns)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
