// Ablation: message-matching throughput under deep queues.
//
// Drives a RankContext directly (no session, no transport) with the
// alltoall-ish worst case the ROADMAP's next workload item implies: N-1
// peers each with D outstanding receives, where the peer drained *last*
// was posted *first* — the pattern that makes a flat-deque matcher scan
// past every other peer's receives on each delivery. Two phases per
// configuration:
//
//   posted:  post D receives per peer (round-robin across peers, the
//            natural loop order in an alltoall), then deliver each
//            peer's D messages, peers in descending order (the sender
//            you waited on longest answers first).
//   drain:   deliver every message first (unexpected storm), then post
//            the receives in the same skewed order and drain the store.
//
// The shallow 2-rank row repeats a post+deliver ping many times — the
// latency-path guard: bucketing must not tax the common case.
//
// Wall-clock throughput (deliveries per second, std::chrono), not
// virtual time: matching is host-side bookkeeping, invisible to the
// cost model by design.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "mpi/matching.hpp"

namespace madmpi::bench {
namespace {

mpi::Envelope envelope(int ctx, rank_t src, int tag, std::uint64_t bytes) {
  mpi::Envelope env;
  env.context = ctx;
  env.src = src;
  env.tag = tag;
  env.bytes = bytes;
  return env;
}

void post_one(mpi::RankContext& context, sim::Node& node, rank_t src) {
  mpi::PostedRecv posted;
  posted.context = 0;
  posted.source = src;
  posted.tag = 7;
  posted.buffer = nullptr;
  posted.type = mpi::Datatype::byte();
  posted.count = 0;
  posted.capacity_bytes = 0;
  posted.request = std::make_shared<mpi::RequestState>(node);
  context.post_recv(std::move(posted));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  int ranks = 0;
  int depth = 0;
  double posted_per_sec = 0.0;
  double drain_per_sec = 0.0;
};

/// Deep-queue configuration: N-1 peers, D outstanding receives each.
Row run_deep(int ranks, int depth) {
  Row row;
  row.ranks = ranks;
  row.depth = depth;
  const int peers = ranks - 1;
  const std::size_t total =
      static_cast<std::size_t>(peers) * static_cast<std::size_t>(depth);

  {  // posted-match phase
    sim::Node node{0, "bench", 1};
    mpi::RankContext context{0, node};
    for (int d = 0; d < depth; ++d) {
      for (rank_t src = 1; src <= peers; ++src) post_one(context, node, src);
    }
    const auto start = std::chrono::steady_clock::now();
    for (rank_t src = peers; src >= 1; --src) {
      for (int d = 0; d < depth; ++d) {
        context.deliver_eager(envelope(0, src, 7, 0), {});
      }
    }
    row.posted_per_sec = static_cast<double>(total) / seconds_since(start);
  }

  {  // unexpected-drain phase
    sim::Node node{0, "bench", 1};
    mpi::RankContext context{0, node};
    for (int d = 0; d < depth; ++d) {
      for (rank_t src = 1; src <= peers; ++src) {
        context.deliver_eager(envelope(0, src, 7, 0), {});
      }
    }
    const auto start = std::chrono::steady_clock::now();
    for (rank_t src = peers; src >= 1; --src) {
      for (int d = 0; d < depth; ++d) post_one(context, node, src);
    }
    row.drain_per_sec = static_cast<double>(total) / seconds_since(start);
  }
  return row;
}

/// Shallow 2-rank configuration: a long post/deliver ping train.
Row run_shallow(int reps) {
  Row row;
  row.ranks = 2;
  row.depth = 1;

  {
    sim::Node node{0, "bench", 1};
    mpi::RankContext context{0, node};
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      post_one(context, node, 1);
      context.deliver_eager(envelope(0, 1, 7, 0), {});
    }
    row.posted_per_sec = static_cast<double>(reps) / seconds_since(start);
  }
  {
    sim::Node node{0, "bench", 1};
    mpi::RankContext context{0, node};
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      context.deliver_eager(envelope(0, 1, 7, 0), {});
      post_one(context, node, 1);
    }
    row.drain_per_sec = static_cast<double>(reps) / seconds_since(start);
  }
  return row;
}

int run(int argc, char** argv) {
  run_shallow(2000);  // warm-up: settle allocators and pools

  std::vector<Row> rows;
  rows.push_back(run_shallow(200000));
  for (int ranks : {16, 64, 256, 1024}) {
    rows.push_back(run_deep(ranks, 64));
  }

  std::printf("### ablation_matching\n");
  std::printf("%8s %6s %18s %18s\n", "ranks", "depth", "posted_per_sec",
              "drain_per_sec");
  for (const Row& row : rows) {
    std::printf("%8d %6d %18.0f %18.0f\n", row.ranks, row.depth,
                row.posted_per_sec, row.drain_per_sec);
  }

  const std::string json_path = json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    std::vector<double> xs, depths, posted, drain;
    for (const Row& row : rows) {
      xs.push_back(row.ranks);
      depths.push_back(row.depth);
      posted.push_back(row.posted_per_sec);
      drain.push_back(row.drain_per_sec);
    }
    if (!write_json_series(json_path, "matching",
                           {{"ranks", xs},
                            {"depth", depths},
                            {"posted_deliveries_per_sec", posted},
                            {"unexpected_drains_per_sec", drain}})) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace madmpi::bench

int main(int argc, char** argv) { return madmpi::bench::run(argc, argv); }
