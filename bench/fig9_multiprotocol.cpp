// Figure 9 — "Comparison between SCI Alone and SCI + TCP": the cost of the
// multi-protocol feature (paper §5.5).
//
// Both configurations communicate exclusively over SCI; the second one also
// runs a TCP polling thread (the cluster declares a Fast-Ethernet network
// too, so ch_mad spawns one poller per channel). The performance gap is the
// polling interference of the second protocol — bounded by TCP's expensive
// select()-style poll — and must remain limited, converging at large sizes
// where the zero-copy rendezvous amortizes per-message handling.
#include "bench_common.hpp"

using namespace madmpi;

namespace {

std::unique_ptr<core::Session> make_sci_plus_tcp_session() {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (const auto& node : options.cluster.nodes) {
    tcp.members.push_back(node.name);
  }
  options.cluster.networks.push_back(std::move(tcp));
  return std::make_unique<core::Session>(std::move(options));
}

}  // namespace

int main() {
  auto sci_only = bench::make_chmad_session(sim::Protocol::kSisci);
  auto sci_tcp = make_sci_plus_tcp_session();

  // Sanity: the dual-network session must still route over SCI.
  MADMPI_CHECK(sci_tcp->ch_mad()->router().route(0, 1)->protocol() ==
               sim::Protocol::kSisci);

  std::vector<bench::Target> targets;
  targets.push_back(bench::mpi_target("SCI_thread_only", *sci_only));
  targets.push_back(bench::mpi_target("SCI_thread_+_TCP_thread", *sci_tcp));

  bench::print_figure("Figure 9(a): SCI alone vs SCI+TCP transfer time (us)",
                      bench::latency_series(targets));
  bench::print_figure("Figure 9(b): SCI alone vs SCI+TCP bandwidth (MB/s)",
                      bench::bandwidth_series(targets));
  return 0;
}
