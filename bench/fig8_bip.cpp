// Figure 8 — "Comparison between ch_mad, Madeleine, MPI-GM and
// MPICH-PM/SCore" on BIP/Myrinet.
//
// Expected shape (paper §5.4): raw Madeleine ~9 us, ch_mad ~20 us. Below
// 512 B ch_mad beats MPI-GM and trails MPICH-PM by ~5 us; at 1 KB the BIP
// short/long break dents the ch_mad curve and MPI-GM edges ahead. In
// bandwidth MPI-GM is definitely outperformed by both; MPICH-PM wins below
// 4 KB and above 256 KB, with the 7 KB ch_mad switch point in between.
#include "bench_common.hpp"

using namespace madmpi;

int main() {
  auto chmad_session = bench::make_chmad_session(sim::Protocol::kBip);
  auto gm_session =
      bench::make_baseline_session("MPI-GM", sim::Protocol::kBip);
  auto pm_session =
      bench::make_baseline_session("MPICH-PM", sim::Protocol::kBip);
  mad::Channel& raw = chmad_session->open_raw_channel();

  std::vector<bench::Target> targets;
  targets.push_back(bench::mpi_target("ch_mad", *chmad_session));
  targets.push_back(bench::raw_madeleine_target("raw_Madeleine", raw));
  targets.push_back(bench::mpi_target("MPI-GM", *gm_session));
  targets.push_back(bench::mpi_target("MPI-PM", *pm_session));

  bench::print_figure("Figure 8(a): BIP/Myrinet transfer time (us)",
                      bench::latency_series(targets));
  bench::print_figure("Figure 8(b): BIP/Myrinet bandwidth (MB/s)",
                      bench::bandwidth_series(targets));
  return 0;
}
