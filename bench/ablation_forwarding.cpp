// Ablation: gateway forwarding overhead (the paper's §6 goal: "keeping the
// associated overhead as low as possible, especially in terms of
// bandwidth").
//
// Compares direct SCI communication against paths crossing one and two
// gateway nodes, in latency and bandwidth.
#include <cstdio>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

/// Chain of SCI-linked islands: n0 -SCI- n1 -SCI'- n2 -SCI''- n3, each hop
/// its own network so nodes farther apart must be forwarded.
std::unique_ptr<core::Session> chain_session(int hops) {
  sim::ClusterSpec spec;
  for (int i = 0; i <= hops; ++i) {
    sim::NodeSpec node;
    node.name = "n" + std::to_string(i);
    spec.nodes.push_back(node);
  }
  for (int i = 0; i < hops; ++i) {
    sim::NetworkSpec net;
    net.protocol = sim::Protocol::kSisci;
    net.adapter = i;  // distinct adapters: distinct physical networks
    net.members = {"n" + std::to_string(i), "n" + std::to_string(i + 1)};
    spec.networks.push_back(std::move(net));
  }
  core::Session::Options options;
  options.cluster = std::move(spec);
  options.enable_forwarding = true;
  return std::make_unique<core::Session>(std::move(options));
}

core::PingPongResult endpoint_pingpong(core::Session& session,
                                       std::size_t bytes, int reps) {
  // Ping-pong between rank 0 and the LAST rank of the chain.
  const rank_t last = session.world_size() - 1;
  usec_t elapsed = 0.0;
  session.run([&](mpi::Comm comm) {
    if (comm.rank() != 0 && comm.rank() != last) return;
    std::vector<std::byte> buffer(bytes, std::byte{1});
    const auto type = mpi::Datatype::byte();
    const rank_t peer = comm.rank() == 0 ? last : 0;
    auto round = [&] {
      if (comm.rank() == 0) {
        comm.send(buffer.data(), static_cast<int>(bytes), type, peer, 0);
        comm.recv(buffer.data(), static_cast<int>(bytes), type, peer, 0);
      } else {
        comm.recv(buffer.data(), static_cast<int>(bytes), type, peer, 0);
        comm.send(buffer.data(), static_cast<int>(bytes), type, peer, 0);
      }
    };
    round();  // warm-up
    const usec_t start = comm.wtime_us();
    for (int r = 0; r < reps; ++r) round();
    if (comm.rank() == 0) elapsed = comm.wtime_us() - start;
  });
  core::PingPongResult result;
  result.one_way_us = elapsed / (2.0 * reps);
  result.bandwidth_mb_s = bandwidth_mb_s(bytes, result.one_way_us);
  return result;
}

}  // namespace

int main() {
  std::printf("Forwarding overhead across SCI hops (rank0 <-> last rank)\n");
  std::printf("%-12s %14s %14s %18s\n", "path", "4B_us", "64KB_us",
              "1MB_MB/s");
  for (int hops : {1, 2, 3}) {
    auto session = chain_session(hops);
    const auto lat = endpoint_pingpong(*session, 4, 3);
    const auto mid = endpoint_pingpong(*session, 64 * 1024, 2);
    const auto bw = endpoint_pingpong(*session, 1 << 20, 1);
    std::printf("%d hop%-7s %14.1f %14.1f %18.1f\n", hops,
                hops == 1 ? "" : "s", lat.one_way_us, mid.one_way_us,
                bw.bandwidth_mb_s);
  }
  std::printf("\n(latency grows by ~one SCI traversal + relay handling per "
              "hop; bandwidth divides by the hop count because the\n"
              " gateway store-and-forwards whole messages — cut-through "
              "relaying of individual blocks is the natural next step,\n"
              " exactly the 'low overhead especially in terms of bandwidth' "
              "goal the paper's Section 6 sets)\n");
  return 0;
}
