// Ablation: cost per packing operation (paper §4.2.1: "the number of
// packets has to be kept low to ensure a high level of performance, since
// each pack operation induces a significant overhead").
//
// Sends the same 1 KB payload built from 1, 2, 4 or 8 blocks over each
// network and reports the one-way time — the per-block slope is the
// protocol's per_block cost (write()/read() rounds on TCP, PIO
// transactions on SCI, descriptors on BIP).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace madmpi;

namespace {

double pingpong_with_blocks(core::Session& session, mad::Channel& channel,
                            int blocks, std::size_t total_bytes, int reps) {
  (void)session;
  mad::ChannelEndpoint* a = channel.at(0);
  mad::ChannelEndpoint* b = channel.at(1);
  const std::size_t per_block = total_bytes / static_cast<std::size_t>(blocks);
  std::vector<std::vector<std::byte>> chunks(
      static_cast<std::size_t>(blocks),
      std::vector<std::byte>(per_block, std::byte{1}));

  auto send = [&](mad::ChannelEndpoint& self, node_id_t peer) {
    mad::Packing packing = self.begin_packing(peer);
    for (auto& chunk : chunks) {
      packing.pack(chunk.data(), chunk.size(), mad::SendMode::kLater,
                   mad::RecvMode::kCheaper);
    }
    packing.end_packing();
  };
  auto recv = [&](mad::ChannelEndpoint& self) {
    auto incoming = self.begin_unpacking();
    for (auto& chunk : chunks) {
      incoming->unpack(chunk.data(), chunk.size(), mad::SendMode::kLater,
                       mad::RecvMode::kCheaper);
    }
    incoming->end_unpacking();
  };

  std::thread peer([&] {
    for (int r = 0; r < reps + 1; ++r) {
      recv(*b);
      send(*b, 0);
    }
  });
  send(*a, 1);
  recv(*a);  // warm-up
  const usec_t start = a->node().clock().now();
  for (int r = 0; r < reps; ++r) {
    send(*a, 1);
    recv(*a);
  }
  const usec_t elapsed = a->node().clock().now() - start;
  peer.join();
  return elapsed / (2.0 * reps);
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kTotal = 1024;
  std::printf("One-way time (us) for a %zu B message split into N blocks\n",
              kTotal);
  std::printf("%-8s %8s %8s %8s %8s %14s\n", "proto", "1", "2", "4", "8",
              "us_per_block");
  std::vector<bench::JsonColumn> columns{{"blocks", {1, 2, 4, 8}}};
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip}) {
    auto session = bench::make_chmad_session(protocol);
    mad::Channel& channel = session->open_raw_channel();
    double times[4];
    double copied[4];
    int column = 0;
    for (int blocks : {1, 2, 4, 8}) {
      pingpong_with_blocks(*session, channel, blocks, kTotal, 1);  // warm-up
      auto& stats = DatapathStats::global();
      const auto before = stats.snapshot();
      times[column] =
          pingpong_with_blocks(*session, channel, blocks, kTotal, 3);
      const auto d = stats.snapshot() - before;
      copied[column] = static_cast<double>(d.bytes_copied) / (2.0 * 4);
      ++column;
    }
    // Least-squares-free slope estimate: (t8 - t1) / 7 extra blocks.
    const double slope = (times[3] - times[0]) / 7.0;
    std::printf("%-8s %8.1f %8.1f %8.1f %8.1f %14.2f\n",
                sim::protocol_name(protocol), times[0], times[1], times[2],
                times[3], slope);
    const std::string proto = sim::protocol_name(protocol);
    columns.push_back({proto + "_us", {times[0], times[1], times[2],
                                       times[3]}});
    columns.push_back({proto + "_bytes_copied_per_msg",
                       {copied[0], copied[1], copied[2], copied[3]}});
  }
  std::printf("\n(ch_mad keeps every MPI message at <= 2 packets for this "
              "reason, paper 4.2.1)\n");
  const std::string json_path = bench::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    if (!bench::write_json_series(json_path, "packing", columns)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("packing sweep written to %s\n", json_path.c_str());
  }
  return 0;
}
