// Ablation: credit-based eager flow control vs receiver slowness.
//
// An eager storm (many isends, receiver draining late) is pushed through
// per-peer credit windows of 1x, 4x, 16x and 64x the switch point, with
// the receiver charging increasing compute time between drains. Reported
// per cell: achieved throughput (virtual time) and the peak bytes the
// receiver's unexpected store held. Small windows throttle the sender
// into rendezvous (low store pressure, more handshakes); large windows
// approach the unbounded-store behaviour this layer exists to prevent.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "mpi/comm.hpp"

using namespace madmpi;

namespace {

struct Cell {
  double mb_per_s = 0.0;
  std::size_t store_peak = 0;
  std::uint64_t demoted = 0;
};

Cell run_storm(std::size_t window_multiplier, usec_t receiver_compute_us) {
  constexpr int kMessages = 64;
  constexpr int kPayload = 1024;  // eager on every protocol

  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  core::Session probe_session(std::move(options));
  const std::size_t switch_point =
      probe_session.ch_mad()->switch_point();
  probe_session.finalize();

  core::Session::Options run_options;
  run_options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  run_options.credit_window_bytes = window_multiplier * switch_point;
  core::Session session(std::move(run_options));

  usec_t elapsed_us = 0.0;
  session.run([&](mpi::Comm comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> out(kPayload, 0x42);
      const usec_t start = comm.wtime_us();
      std::vector<mpi::Request> requests;
      requests.reserve(kMessages);
      for (int i = 0; i < kMessages; ++i) {
        requests.push_back(comm.isend(out.data(), kPayload,
                                      mpi::Datatype::uint8(), 1, i));
      }
      for (auto& request : requests) request.wait();
      elapsed_us = comm.wtime_us() - start;
    } else {
      std::vector<std::uint8_t> in(kPayload);
      for (int i = 0; i < kMessages; ++i) {
        // The slow receiver: computation between drains is what lets the
        // unexpected store build up.
        comm.compute_us(receiver_compute_us);
        comm.recv(in.data(), kPayload, mpi::Datatype::uint8(), 0, i);
      }
    }
  });

  Cell cell;
  const double total_bytes =
      static_cast<double>(kMessages) * static_cast<double>(kPayload);
  cell.mb_per_s = elapsed_us > 0.0 ? total_bytes / elapsed_us : 0.0;
  cell.store_peak = session.context_of(1).unexpected_bytes_high_water();
  cell.demoted = session.ch_mad()->eager_demoted() +
                 session.context_of(1).eager_refused();
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "### Eager storm: credit window x receiver slowness "
      "(64 x 1 KB isends, TCP pair)\n");
  std::printf("%-12s %-12s %12s %14s %10s\n", "window", "compute_us",
              "MB/s", "store_peak_B", "demoted");
  for (const std::size_t multiplier : {1, 4, 16, 64}) {
    for (const double compute_us : {0.0, 50.0, 500.0}) {
      const Cell cell = run_storm(multiplier, compute_us);
      std::printf("%zux_switch   %-12.0f %12.1f %14zu %10" PRIu64 "\n",
                  multiplier, compute_us, cell.mb_per_s, cell.store_peak,
                  cell.demoted);
    }
  }
  return 0;
}
