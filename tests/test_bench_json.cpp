// Tier-1 smoke for the benchmark --json writer: the eager sweep must
// produce a parseable JSON document with the expected series keys and
// aligned column lengths — CI's nightly bench artifacts depend on this
// exact shape.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"

namespace madmpi::bench {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) != 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

/// Minimal structural check: balanced braces/brackets outside strings and
/// no trailing comma before a closer — enough to catch writer formatting
/// bugs without a JSON library.
bool structurally_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  char last_token = '\0';
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        last_token = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        last_token = c;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{' || last_token == ',') {
          return false;
        }
        stack.pop_back();
        last_token = c;
        break;
      case ']':
        if (stack.empty() || stack.back() != '[' || last_token == ',') {
          return false;
        }
        stack.pop_back();
        last_token = c;
        break;
      case ',':
      case ':':
        last_token = c;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) last_token = c;
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(BenchJson, JsonPathFromArgsParsesBothForms) {
  char prog[] = "bench";
  char flag[] = "--json";
  char path[] = "/tmp/out.json";
  char* split_argv[] = {prog, flag, path};
  EXPECT_EQ(json_path_from_args(3, split_argv), "/tmp/out.json");

  char joined[] = "--json=/tmp/other.json";
  char* joined_argv[] = {prog, joined};
  EXPECT_EQ(json_path_from_args(2, joined_argv), "/tmp/other.json");

  char* bare_argv[] = {prog};
  EXPECT_EQ(json_path_from_args(1, bare_argv), "");
}

TEST(BenchJson, EagerSweepWritesExpectedSeries) {
  // Short reps: this is a shape check, not a measurement.
  const auto columns = eager_sweep(sim::Protocol::kTcp, /*reps=*/4);
  const std::string path =
      ::testing::TempDir() + "/bench_json_smoke.json";
  ASSERT_TRUE(write_json_series(path, "eager", columns));

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(structurally_valid_json(text)) << text;
  EXPECT_NE(text.find("\"bench\": \"eager\""), std::string::npos);
  for (const char* key :
       {"bytes", "one_way_us", "bandwidth_mb_s", "bytes_copied_per_msg",
        "staging_allocs_per_msg", "pool_allocs_per_msg",
        "modeled_copy_bytes_per_msg", "match_probes_per_attempt",
        "match_bucket_locks_per_attempt", "match_rank_locks_per_attempt",
        "match_posted_depth_hw", "match_unexpected_depth_hw"}) {
    EXPECT_NE(text.find("\"" + std::string(key) + "\""), std::string::npos)
        << "missing series key " << key;
  }

  // Columns are aligned on one x axis: 1 B .. 1 KB powers of two.
  ASSERT_FALSE(columns.empty());
  const std::size_t points = columns.front().values.size();
  EXPECT_EQ(points, 11u);
  for (const auto& column : columns) {
    EXPECT_EQ(column.values.size(), points) << column.key;
  }

  // Specific-source ping-pong traffic stays on the bucket fast path: the
  // rank-wide lock is reserved for wildcards, probes and cancellation.
  for (const auto& column : columns) {
    if (column.key != "match_rank_locks_per_attempt") continue;
    for (std::size_t i = 0; i < column.values.size(); ++i) {
      EXPECT_EQ(column.values[i], 0.0)
          << column.key << " at size index " << i
          << ": eager ping-pong must not take the rank-wide lock";
    }
  }

  // And the zero-copy datapath invariant holds in the sweep itself.
  for (const auto& column : columns) {
    if (column.key != "staging_allocs_per_msg" &&
        column.key != "pool_allocs_per_msg") {
      continue;
    }
    for (std::size_t i = 0; i < column.values.size(); ++i) {
      EXPECT_EQ(column.values[i], 0.0)
          << column.key << " at size index " << i
          << ": steady-state eager traffic must not allocate";
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace madmpi::bench
