// Point-to-point MPI semantics over full sessions: blocking/non-blocking,
// modes across the eager/rendezvous switch, wildcards, ordering, probe.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::unique_ptr<Session> two_nodes(sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return std::make_unique<Session>(std::move(options));
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& byte : out) byte = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

// ---------------------------------------------------------------- basics

TEST(P2P, BlockingSendRecvWithStatus) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<double> data{1.5, 2.5, 3.5};
      comm.send(data.data(), 3, Datatype::float64(), 1, 42);
    } else {
      std::vector<double> data(8, 0.0);
      auto status = comm.recv(data.data(), 8, Datatype::float64(), 0, 42);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 42);
      EXPECT_EQ(status.bytes, 24u);
      EXPECT_EQ(status.count(sizeof(double)), 3);
      EXPECT_EQ(data[2], 3.5);
      EXPECT_EQ(data[3], 0.0);  // untouched tail
    }
  });
}

TEST(P2P, UnexpectedMessageBuffered) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int value = 31337;
      comm.send(&value, 1, Datatype::int32(), 1, 0);
    } else {
      // Give the eager message time to arrive unexpected, then post.
      while (!comm.iprobe(0, 0)) {
      }
      int value = 0;
      comm.recv(&value, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(value, 31337);
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  auto session = two_nodes(sim::Protocol::kBip);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int value = 5;
      comm.send(&value, 1, Datatype::int32(), 1, 1234);
    } else {
      int value = 0;
      auto status =
          comm.recv(&value, 1, Datatype::int32(), mpi::kAnySource,
                    mpi::kAnyTag);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 1234);
      EXPECT_EQ(value, 5);
    }
  });
}

TEST(P2P, NonOvertakingOrder) {
  auto session = two_nodes(sim::Protocol::kSisci);
  constexpr int kMessages = 64;
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        comm.send(&i, 1, Datatype::int32(), 1, 7);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        int got = -1;
        comm.recv(&got, 1, Datatype::int32(), 0, 7);
        ASSERT_EQ(got, i);
      }
    }
  });
}

TEST(P2P, TagSelectivityAcrossPendingMessages) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      comm.send(&a, 1, Datatype::int32(), 1, 10);
      comm.send(&b, 1, Datatype::int32(), 1, 20);
    } else {
      int b = 0, a = 0;
      comm.recv(&b, 1, Datatype::int32(), 0, 20);  // out of arrival order
      comm.recv(&a, 1, Datatype::int32(), 0, 10);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

// ---------------------------------------------------- non-blocking & modes

TEST(P2P, IsendIrecvWaitAll) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    constexpr int kCount = 256;
    std::vector<int> out(kCount, comm.rank());
    std::vector<int> in(kCount, -1);
    const int peer = 1 - comm.rank();
    std::vector<mpi::Request> requests;
    requests.push_back(comm.irecv(in.data(), kCount, Datatype::int32(), peer,
                                  3));
    requests.push_back(comm.isend(out.data(), kCount, Datatype::int32(),
                                  peer, 3));
    mpi::Request::wait_all(requests);
    for (int v : in) ASSERT_EQ(v, peer);
  });
}

TEST(P2P, LargeIsendUsesRendezvousThread) {
  auto session = two_nodes(sim::Protocol::kSisci);
  constexpr std::size_t kCount = 16 * 1024;  // 64 KB > 8 KB switch
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<int> data(kCount);
      std::iota(data.begin(), data.end(), 1);
      auto request = comm.isend(data.data(), static_cast<int>(kCount),
                                Datatype::int32(), 1, 0);
      // The buffer was staged: we may clobber it before completion.
      std::fill(data.begin(), data.end(), -1);
      request.wait();
    } else {
      std::vector<int> data(kCount, 0);
      comm.recv(data.data(), static_cast<int>(kCount), Datatype::int32(), 0,
                0);
      EXPECT_EQ(data.front(), 1);
      EXPECT_EQ(data.back(), static_cast<int>(kCount));
    }
  });
  EXPECT_GE(session->ch_mad()->rendezvous_sent(), 1u);
}

TEST(P2P, SsendCompletesOnlyAfterMatch) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int value = 88;
      comm.ssend(&value, 1, Datatype::int32(), 1, 0);
      // Reaching here proves the receive was posted: virtual time must
      // include the full handshake round trip (>2x one-way latency).
      EXPECT_GT(comm.wtime_us(), 250.0);
    } else {
      int value = 0;
      comm.recv(&value, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(value, 88);
    }
  });
}

TEST(P2P, IssendNonBlocking) {
  auto session = two_nodes(sim::Protocol::kBip);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int value = 3;
      auto request = comm.issend(&value, 1, Datatype::int32(), 1, 2);
      EXPECT_FALSE(request.test());  // peer has not posted yet
      int unblock = 0;
      comm.recv(&unblock, 1, Datatype::int32(), 1, 9);
      request.wait();
    } else {
      int unblock = 1;
      comm.send(&unblock, 1, Datatype::int32(), 0, 9);
      int value = 0;
      comm.recv(&value, 1, Datatype::int32(), 0, 2);
      EXPECT_EQ(value, 3);
    }
  });
}

TEST(P2P, SendrecvExchangesWithoutDeadlock) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    const int peer = 1 - comm.rank();
    // Large payloads in both directions simultaneously (rendezvous).
    std::vector<double> out(4096, comm.rank() + 0.5);
    std::vector<double> in(4096, -1.0);
    comm.sendrecv(out.data(), 4096, Datatype::float64(), peer, 0, in.data(),
                  4096, Datatype::float64(), peer, 0);
    for (double v : in) ASSERT_EQ(v, peer + 0.5);
  });
}

TEST(P2P, ProbeThenRecvBySize) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(37, 1.25f);
      comm.send(data.data(), 37, Datatype::float32(), 1, 6);
    } else {
      auto status = comm.probe(mpi::kAnySource, 6);
      const auto count = status.count(sizeof(float));
      ASSERT_EQ(count, 37);
      std::vector<float> data(static_cast<std::size_t>(count));
      comm.recv(data.data(), static_cast<int>(count), Datatype::float32(),
                status.source, 6);
      EXPECT_EQ(data[36], 1.25f);
    }
  });
}

TEST(P2P, DerivedDatatypeAcrossTheWire) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    const auto column = Datatype::vector(4, 1, 4, Datatype::int32());
    if (comm.rank() == 0) {
      std::vector<int> matrix(16);
      std::iota(matrix.begin(), matrix.end(), 0);
      comm.send(matrix.data(), 1, column, 1, 0);  // column 0: 0,4,8,12
    } else {
      std::vector<int> column_out(4, -1);
      comm.recv(column_out.data(), 4, Datatype::int32(), 0, 0);
      EXPECT_EQ(column_out, (std::vector<int>{0, 4, 8, 12}));
    }
  });
}

TEST(P2P, RecvIntoDerivedDatatype) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    const auto column = Datatype::vector(4, 1, 4, Datatype::int32());
    if (comm.rank() == 0) {
      std::vector<int> data{9, 8, 7, 6};
      comm.send(data.data(), 4, Datatype::int32(), 1, 0);
    } else {
      std::vector<int> matrix(16, -1);
      comm.recv(matrix.data(), 1, column, 0, 0);
      EXPECT_EQ(matrix[0], 9);
      EXPECT_EQ(matrix[4], 8);
      EXPECT_EQ(matrix[8], 7);
      EXPECT_EQ(matrix[12], 6);
      EXPECT_EQ(matrix[1], -1);
    }
  });
}

// ------------------------------------------------------------- truncation

TEST(P2P, EagerTruncationDeliversPrefixWithErrorStatus) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{10, 20, 30, 40};
      comm.send(data.data(), 4, Datatype::int32(), 1, 0);
    } else {
      std::vector<int> data(2, -1);
      auto status = comm.recv(data.data(), 2, Datatype::int32(), 0, 0);
      EXPECT_EQ(status.error, ErrorCode::kTruncated);
      EXPECT_EQ(status.bytes, 8u);  // the two elements that fit
      EXPECT_EQ(data[0], 10);
      EXPECT_EQ(data[1], 20);
    }
  });
}

TEST(P2P, RendezvousTruncationDeliversPrefixWithErrorStatus) {
  auto session = two_nodes(sim::Protocol::kSisci);
  constexpr std::size_t kCount = 16 * 1024;  // 64 KB > 8 KB switch
  constexpr std::size_t kFits = 1024;
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<int> data(kCount);
      std::iota(data.begin(), data.end(), 1);
      comm.send(data.data(), static_cast<int>(kCount), Datatype::int32(), 1,
                0);
    } else {
      std::vector<int> data(kFits, -1);
      auto status = comm.recv(data.data(), static_cast<int>(kFits),
                              Datatype::int32(), 0, 0);
      EXPECT_EQ(status.error, ErrorCode::kTruncated);
      EXPECT_EQ(status.bytes, kFits * sizeof(int));
      EXPECT_EQ(data.front(), 1);
      EXPECT_EQ(data.back(), static_cast<int>(kFits));
    }
  });
  EXPECT_GE(session->ch_mad()->rendezvous_sent(), 1u);
}

// --------------------------------------------------------- property sweeps

struct SizeSweepParam {
  sim::Protocol protocol;
  std::size_t bytes;
};

class P2PSizeSweep : public ::testing::TestWithParam<SizeSweepParam> {};

TEST_P(P2PSizeSweep, PayloadIntegrityAcrossSwitchPoint) {
  const auto& param = GetParam();
  auto session = two_nodes(param.protocol);
  const auto expected = pattern(param.bytes, param.bytes * 31 + 7);
  session->run([&](Comm comm) {
    if (comm.rank() == 0) {
      comm.send(expected.data(), static_cast<int>(expected.size()),
                Datatype::uint8(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(param.bytes + 8, 0xee);
      auto status = comm.recv(got.data(), static_cast<int>(param.bytes),
                              Datatype::uint8(), 0, 0);
      EXPECT_EQ(status.bytes, param.bytes);
      for (std::size_t i = 0; i < param.bytes; ++i) {
        ASSERT_EQ(got[i], expected[i]) << "at byte " << i;
      }
      for (std::size_t i = param.bytes; i < got.size(); ++i) {
        ASSERT_EQ(got[i], 0xee) << "overwrite at " << i;
      }
    }
  });
}

std::vector<SizeSweepParam> sweep_params() {
  std::vector<SizeSweepParam> params;
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip}) {
    // Straddle each protocol's switch point and the aggregation limits.
    for (std::size_t bytes :
         {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{999}, std::size_t{1000},
          std::size_t{1024}, std::size_t{7 * 1024 - 1}, std::size_t{7 * 1024},
          std::size_t{8 * 1024}, std::size_t{8 * 1024 + 1},
          std::size_t{64 * 1024}, std::size_t{64 * 1024 + 1},
          std::size_t{1 << 20}}) {
      params.push_back({protocol, bytes});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, P2PSizeSweep, ::testing::ValuesIn(sweep_params()),
    [](const auto& info) {
      return std::string(sim::protocol_name(info.param.protocol)) + "_" +
             std::to_string(info.param.bytes) + "B";
    });

TEST(P2P, RandomizedBidirectionalTraffic) {
  auto session = two_nodes(sim::Protocol::kBip);
  constexpr int kRounds = 40;
  session->run([](Comm comm) {
    Rng rng(900 + comm.rank());
    Rng peer_rng(900 + (1 - comm.rank()));
    const int peer = 1 - comm.rank();
    for (int round = 0; round < kRounds; ++round) {
      const std::size_t my_size = rng.next_range(1, 20000);
      const std::size_t peer_size = peer_rng.next_range(1, 20000);
      std::vector<std::uint8_t> out(my_size,
                                    static_cast<std::uint8_t>(round));
      std::vector<std::uint8_t> in(peer_size, 0);
      auto recv_req = comm.irecv(in.data(), static_cast<int>(peer_size),
                                 Datatype::uint8(), peer, round);
      comm.send(out.data(), static_cast<int>(my_size), Datatype::uint8(),
                peer, round);
      recv_req.wait();
      for (auto byte : in) ASSERT_EQ(byte, static_cast<std::uint8_t>(round));
    }
  });
}

}  // namespace
}  // namespace madmpi
