// Tests for the classic MPI C facade.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/compat.hpp"
#include "sim/topology.hpp"

namespace madmpi {
namespace {

sim::ClusterSpec four_nodes() {
  return sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
}

TEST(Compat, InitRankSizeFinalize) {
  compat::run(four_nodes(), [] {
    int flag = -1;
    MPI_Initialized(&flag);
    EXPECT_EQ(flag, 0);
    MPI_Init(nullptr, nullptr);
    MPI_Initialized(&flag);
    EXPECT_EQ(flag, 1);

    int rank = -1, size = 0;
    EXPECT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_SUCCESS);
    EXPECT_EQ(MPI_Comm_size(MPI_COMM_WORLD, &size), MPI_SUCCESS);
    EXPECT_EQ(size, 4);
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 4);
    MPI_Finalize();
  });
}

TEST(Compat, SendRecvWithStatusAndGetCount) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      std::vector<double> data(10, 3.5);
      MPI_Send(data.data(), 10, MPI_DOUBLE, 1, 99, MPI_COMM_WORLD);
    } else if (rank == 1) {
      std::vector<double> data(32, 0.0);
      MPI_Status status;
      MPI_Recv(data.data(), 32, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG,
               MPI_COMM_WORLD, &status);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 99);
      int count = -1;
      MPI_Get_count(&status, MPI_DOUBLE, &count);
      EXPECT_EQ(count, 10);
      EXPECT_EQ(data[9], 3.5);
    }
    MPI_Finalize();
  });
}

TEST(Compat, NonBlockingAndWaitall) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const int right = (rank + 1) % size;
    const int left = (rank + size - 1) % size;
    int out = rank * 7;
    int in = -1;
    MPI_Request requests[2];
    MPI_Irecv(&in, 1, MPI_INT, left, 5, MPI_COMM_WORLD, &requests[0]);
    MPI_Isend(&out, 1, MPI_INT, right, 5, MPI_COMM_WORLD, &requests[1]);
    MPI_Waitall(2, requests, MPI_STATUSES_IGNORE);
    EXPECT_EQ(in, left * 7);
    EXPECT_EQ(requests[0], MPI_REQUEST_NULL);
    MPI_Finalize();
  });
}

TEST(Compat, TestPollsUntilDone) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int value = 0;
      MPI_Request request;
      MPI_Irecv(&value, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, &request);
      int flag = 0;
      MPI_Status status;
      while (flag == 0) {
        MPI_Test(&request, &flag, &status);
      }
      EXPECT_EQ(value, 1234);
    } else if (rank == 1) {
      int value = 1234;
      MPI_Send(&value, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
    }
    MPI_Finalize();
  });
}

TEST(Compat, CollectivesAndWtime) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    const double t0 = MPI_Wtime();
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_GT(MPI_Wtime(), t0);

    int root_value = rank == 2 ? 77 : -1;
    MPI_Bcast(&root_value, 1, MPI_INT, 2, MPI_COMM_WORLD);
    EXPECT_EQ(root_value, 77);

    long long mine = rank + 1;
    long long total = 0;
    MPI_Allreduce(&mine, &total, 1, MPI_LONG_LONG, MPI_SUM, MPI_COMM_WORLD);
    EXPECT_EQ(total, 10);

    float gathered[4] = {-1, -1, -1, -1};
    float contribution = static_cast<float>(rank) + 0.5f;
    MPI_Gather(&contribution, 1, MPI_FLOAT, gathered, 1, MPI_FLOAT, 0,
               MPI_COMM_WORLD);
    if (rank == 0) {
      for (int r = 0; r < size; ++r) EXPECT_EQ(gathered[r], r + 0.5f);
    }

    int scanned = 0;
    int one = 1;
    MPI_Scan(&one, &scanned, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    EXPECT_EQ(scanned, rank + 1);
    MPI_Finalize();
  });
}

TEST(Compat, CommSplitAndFree) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);

    MPI_Comm half;
    MPI_Comm_split(MPI_COMM_WORLD, rank % 2, rank, &half);
    ASSERT_NE(half, MPI_COMM_NULL);
    int half_size;
    MPI_Comm_size(half, &half_size);
    EXPECT_EQ(half_size, 2);

    MPI_Comm dup;
    MPI_Comm_dup(half, &dup);
    int dup_rank, half_rank;
    MPI_Comm_rank(dup, &dup_rank);
    MPI_Comm_rank(half, &half_rank);
    EXPECT_EQ(dup_rank, half_rank);

    MPI_Comm_free(&dup);
    EXPECT_EQ(dup, MPI_COMM_NULL);
    MPI_Comm_free(&half);
    MPI_Finalize();
  });
}

TEST(Compat, UndefinedColorGivesNullComm) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm sub;
    MPI_Comm_split(MPI_COMM_WORLD, rank == 0 ? MPI_UNDEFINED : 0, 0, &sub);
    if (rank == 0) {
      EXPECT_EQ(sub, MPI_COMM_NULL);
    } else {
      ASSERT_NE(sub, MPI_COMM_NULL);
      int sub_size;
      MPI_Comm_size(sub, &sub_size);
      EXPECT_EQ(sub_size, 3);
    }
    MPI_Finalize();
  });
}

TEST(Compat, ProbeAndIprobe) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int data[3] = {1, 2, 3};
      MPI_Send(data, 3, MPI_INT, 1, 8, MPI_COMM_WORLD);
    } else if (rank == 1) {
      MPI_Status status;
      MPI_Probe(0, 8, MPI_COMM_WORLD, &status);
      int count;
      MPI_Get_count(&status, MPI_INT, &count);
      ASSERT_EQ(count, 3);
      int flag = 0;
      MPI_Iprobe(0, 8, MPI_COMM_WORLD, &flag, &status);
      EXPECT_EQ(flag, 1);
      int data[3];
      MPI_Recv(data, 3, MPI_INT, 0, 8, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(data[2], 3);
    }
    MPI_Finalize();
  });
}

TEST(Compat, MprobeMrecvDeliversOnce) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int a[2] = {11, 12};
      int b[2] = {21, 22};
      MPI_Send(a, 2, MPI_INT, 1, 5, MPI_COMM_WORLD);
      MPI_Send(b, 2, MPI_INT, 1, 5, MPI_COMM_WORLD);
    } else if (rank == 1) {
      MPI_Message message;
      MPI_Status status;
      MPI_Mprobe(0, 5, MPI_COMM_WORLD, &message, &status);
      EXPECT_NE(message, MPI_MESSAGE_NULL);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 5);
      int count = -1;
      MPI_Get_count(&status, MPI_INT, &count);
      EXPECT_EQ(count, 2);
      // The matched message is removed from the queue: a plain recv posted
      // now must match the SECOND send, not the mprobed one.
      int second[2] = {0, 0};
      MPI_Recv(second, 2, MPI_INT, 0, 5, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      EXPECT_EQ(second[0], 21);
      int first[2] = {0, 0};
      MPI_Mrecv(first, 2, MPI_INT, &message, &status);
      EXPECT_EQ(message, MPI_MESSAGE_NULL);
      EXPECT_EQ(first[0], 11);
      EXPECT_EQ(first[1], 12);
    }
    MPI_Finalize();
  });
}

TEST(Compat, ImprobeMissesThenMatchesWildcard) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 2) {
      double payload = 2.75;
      MPI_Send(&payload, 1, MPI_DOUBLE, 3, 17, MPI_COMM_WORLD);
    } else if (rank == 3) {
      MPI_Message message = MPI_MESSAGE_NULL;
      MPI_Status status;
      int flag = 0;
      // A tag nothing was sent on never matches.
      MPI_Improbe(MPI_ANY_SOURCE, 4242, MPI_COMM_WORLD, &flag, &message,
                  &status);
      EXPECT_EQ(flag, 0);
      EXPECT_EQ(message, MPI_MESSAGE_NULL);
      while (!flag) {
        MPI_Improbe(MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &flag,
                    &message, &status);
      }
      EXPECT_EQ(status.MPI_SOURCE, 2);
      EXPECT_EQ(status.MPI_TAG, 17);
      double payload = 0.0;
      MPI_Request request;
      MPI_Imrecv(&payload, 1, MPI_DOUBLE, &message, &request);
      MPI_Wait(&request, &status);
      EXPECT_EQ(payload, 2.75);
      EXPECT_EQ(status.MPI_SOURCE, 2);
    }
    MPI_Finalize();
  });
}

TEST(Compat, CallOutsideRunAborts) {
  int rank;
  EXPECT_DEATH(MPI_Comm_rank(MPI_COMM_WORLD, &rank), "outside");
}

}  // namespace
}  // namespace madmpi
