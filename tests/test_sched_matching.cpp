// Matching edge cases under perturbed schedules: wildcard races against a
// refusing unexpected store, zero-byte messages on both the eager and the
// rendezvous path, and MPI_Cancel on a parked (credit-demoted) rendezvous
// send — the corners the schedule fuzzer is built to stress, pinned here
// at a handful of fixed seeds so tier-1 stays deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "marcel/engine.hpp"
#include "mpi/compat.hpp"
#include "sim/sched.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// Install a ScheduleController for the test body, uninstall after.
struct PerturbGuard {
  explicit PerturbGuard(std::uint64_t seed) {
    sim::ScheduleController::install(seed);
  }
  ~PerturbGuard() { sim::ScheduleController::uninstall(); }
};

TEST(SchedMatching, WildcardRecvRacesWithStoreRefusal) {
  // Three senders race eager messages at one wildcard receiver whose
  // unexpected store is too small to admit them all: some arrive eager,
  // the refused ones retry as rendezvous. Every (source, tag) pair must be
  // delivered exactly once with an intact payload, under several
  // perturbed schedules.
  constexpr int kPerSender = 6;
  constexpr int kBytes = 256;
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    PerturbGuard perturb(seed);
    Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
    options.unexpected_budget_bytes = 512;  // admits ~2 of 18 messages
    Session session(std::move(options));
    session.run([&](Comm comm) {
      if (comm.rank() == 0) {
        std::set<std::pair<int, int>> seen;
        for (int i = 0; i < 3 * kPerSender; ++i) {
          std::vector<std::uint8_t> buffer(kBytes);
          const auto status =
              comm.recv(buffer.data(), kBytes, Datatype::uint8(),
                        mpi::kAnySource, mpi::kAnyTag);
          ASSERT_EQ(status.error, ErrorCode::kOk) << "seed " << seed;
          ASSERT_EQ(status.bytes, static_cast<std::uint64_t>(kBytes));
          ASSERT_TRUE(seen.emplace(status.source, status.tag).second)
              << "duplicate (src=" << status.source
              << ", tag=" << status.tag << ") at seed " << seed;
          for (int b = 0; b < kBytes; ++b) {
            ASSERT_EQ(buffer[static_cast<std::size_t>(b)],
                      static_cast<std::uint8_t>(
                          (status.source * 37 + status.tag * 11 + b) & 0xff))
                << "seed " << seed;
          }
        }
        EXPECT_EQ(seen.size(), static_cast<std::size_t>(3 * kPerSender));
      } else {
        for (int tag = 0; tag < kPerSender; ++tag) {
          std::vector<std::uint8_t> payload(kBytes);
          for (int b = 0; b < kBytes; ++b) {
            payload[static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>(
                    (comm.rank() * 37 + tag * 11 + b) & 0xff);
          }
          comm.send(payload.data(), kBytes, Datatype::uint8(), 0, tag);
        }
      }
    });
  }
}

TEST(SchedMatching, ZeroByteEagerAndForcedRendezvous) {
  // Zero-byte messages travel both paths: plain send picks eager, ssend
  // forces the rendezvous handshake. Interleaved with payload-bearing
  // rendezvous traffic on the same (src, tag) stream, order must hold and
  // every zero-byte status must report exactly zero bytes.
  for (const std::uint64_t seed : {0ull, 11ull}) {  // unperturbed + one seed
    PerturbGuard perturb(seed);
    Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
    options.switch_point_override = 1024;
    Session session(std::move(options));
    session.run([&](Comm comm) {
      constexpr int kTag = 5;
      if (comm.rank() == 0) {
        std::vector<std::uint8_t> big(4096, 0xab);
        comm.send(nullptr, 0, Datatype::uint8(), 1, kTag);  // eager, 0 B
        comm.send(big.data(), 4096, Datatype::uint8(), 1, kTag);  // rndv
        comm.ssend(nullptr, 0, Datatype::uint8(), 1, kTag);  // rndv, 0 B
        comm.send(big.data(), 4096, Datatype::uint8(), 1, kTag);  // rndv
      } else {
        auto expect_zero = [&] {
          const auto status =
              comm.recv(nullptr, 0, Datatype::uint8(), 0, kTag);
          EXPECT_EQ(status.error, ErrorCode::kOk) << "seed " << seed;
          EXPECT_EQ(status.bytes, 0u);
        };
        auto expect_big = [&] {
          std::vector<std::uint8_t> buffer(4096);
          const auto status =
              comm.recv(buffer.data(), 4096, Datatype::uint8(), 0, kTag);
          EXPECT_EQ(status.error, ErrorCode::kOk) << "seed " << seed;
          EXPECT_EQ(status.bytes, 4096u);
          EXPECT_EQ(buffer[0], 0xab);
          EXPECT_EQ(buffer[4095], 0xab);
        };
        expect_zero();  // non-overtaking: 0-byte eager before the rndv
        expect_big();
        expect_zero();
        expect_big();
      }
    });
  }
}

TEST(SchedMatching, CancelDetachesACreditDemotedSend) {
  // A tiny credit window demotes an eager-sized isend to rendezvous; with
  // no receive ever posted it parks awaiting OK_TO_SEND — exactly the
  // window where MPI_Cancel (local, best-effort) must detach it and
  // complete the request with kCancelled.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  options.credit_window_bytes = 256;  // smaller than the payload
  Session session(std::move(options));
  core::ChMadDevice* device = session.ch_mad();
  ASSERT_NE(device, nullptr);
  session.run([&](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> payload(512, 0x42);
      mpi::Request request =
          comm.isend(payload.data(), 512, Datatype::uint8(), 1, 0);
      // The rendezvous runs on a temporary thread: await its registration
      // before cancelling (pending_send_count is the introspection hook
      // added for exactly this).
      for (int spins = 0; device->pending_send_count(0) == 0; ++spins) {
        ASSERT_LT(spins, 100000) << "send never parked";
        marcel::cooperative_yield();
      }
      EXPECT_TRUE(request.cancel());
      const auto status = request.wait();
      EXPECT_EQ(status.error, ErrorCode::kCancelled);
      EXPECT_EQ(device->pending_send_count(0), 0u);
      // Cancelling twice (or after completion) is a no-op.
      EXPECT_FALSE(request.cancel());
      int done = 1;
      comm.send(&done, 1, Datatype::int32(), 1, 9);
    } else {
      // Never post the matching receive; just wait for the release marker.
      int done = 0;
      comm.recv(&done, 1, Datatype::int32(), 0, 9);
      EXPECT_EQ(done, 1);
    }
  });
}

TEST(SchedMatching, CancelAfterCompletionIsRefused) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    if (comm.rank() == 0) {
      int value = 7;
      mpi::Request request = comm.isend(&value, 1, Datatype::int32(), 1, 0);
      request.wait();  // eager: completes immediately
      EXPECT_FALSE(request.cancel());  // MPI permits the op to just finish
    } else {
      int value = 0;
      EXPECT_EQ(comm.recv(&value, 1, Datatype::int32(), 0, 0).error,
                ErrorCode::kOk);
      EXPECT_EQ(value, 7);
    }
  });
}

TEST(SchedMatching, CompatCancelAndTestCancelled) {
  // MPI_Cancel / MPI_Test_cancelled through the C facade: a cancelled
  // send completes "successfully" (MPI_SUCCESS per §3.8.4) and is flagged
  // via MPI_Test_cancelled; a delivered receive is not flagged.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  options.credit_window_bytes = 256;
  Session session(std::move(options));
  core::ChMadDevice* device = session.ch_mad();
  ASSERT_NE(device, nullptr);
  session.run([&](Comm world) {
    compat::bind_world(std::move(world));
    MPI_Init(nullptr, nullptr);
    MPI_Comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      std::vector<std::uint8_t> payload(512, 0x33);
      MPI_Request request = MPI_REQUEST_NULL;
      MPI_Isend(payload.data(), 512, MPI_BYTE, 1, 0, MPI_COMM_WORLD,
                &request);
      for (int spins = 0; device->pending_send_count(0) == 0; ++spins) {
        ASSERT_LT(spins, 100000) << "send never parked";
        marcel::cooperative_yield();
      }
      EXPECT_EQ(MPI_Cancel(&request), MPI_SUCCESS);
      MPI_Status status;
      EXPECT_EQ(MPI_Wait(&request, &status), MPI_SUCCESS);
      int cancelled = 0;
      MPI_Test_cancelled(&status, &cancelled);
      EXPECT_EQ(cancelled, 1);
      int done = 1;
      MPI_Send(&done, 1, MPI_INT, 1, 9, MPI_COMM_WORLD);
    } else {
      int done = 0;
      MPI_Status status;
      MPI_Recv(&done, 1, MPI_INT, 0, 9, MPI_COMM_WORLD, &status);
      EXPECT_EQ(done, 1);
      int cancelled = 1;
      MPI_Test_cancelled(&status, &cancelled);
      EXPECT_EQ(cancelled, 0);  // a delivered message is never "cancelled"
    }
    MPI_Finalize();
    compat::unbind_world();
  });
}

}  // namespace
}  // namespace madmpi
