// Extended point-to-point machinery: persistent requests, buffered sends,
// multi-request waits, explicit pack buffers.
#include <gtest/gtest.h>

#include <numeric>

#include "core/session.hpp"
#include "mpi/packbuf.hpp"
#include "mpi/persistent.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;
using mpi::PersistentRequest;
using mpi::Request;

std::unique_ptr<Session> two_nodes(sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return std::make_unique<Session>(std::move(options));
}

TEST(Persistent, RepeatedStartWaitCycles) {
  auto session = two_nodes(sim::Protocol::kSisci);
  constexpr int kIterations = 20;
  session->run([](Comm comm) {
    const int peer = 1 - comm.rank();
    std::vector<int> out(64);
    std::vector<int> in(64, -1);
    auto send = PersistentRequest::send_init(comm, out.data(), 64,
                                             Datatype::int32(), peer, 0);
    auto recv = PersistentRequest::recv_init(comm, in.data(), 64,
                                             Datatype::int32(), peer, 0);
    for (int iter = 0; iter < kIterations; ++iter) {
      std::fill(out.begin(), out.end(), comm.rank() * 1000 + iter);
      recv.start();
      send.start();
      send.wait();
      const auto status = recv.wait();
      EXPECT_EQ(status.source, peer);
      for (int v : in) ASSERT_EQ(v, peer * 1000 + iter);
    }
    EXPECT_FALSE(send.active());
    EXPECT_FALSE(recv.active());
  });
}

TEST(Persistent, MisuseAborts) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;
    PersistentRequest uninitialized;
    EXPECT_DEATH(uninitialized.start(), "uninitialized");
    int buf = 0;
    auto recv = PersistentRequest::recv_init(comm, &buf, 1,
                                             Datatype::int32(), 0, 0);
    EXPECT_DEATH(recv.wait(), "inactive");
    recv.start();
    EXPECT_DEATH(recv.start(), "already active");
    // Self-send completes the pending receive so the session can drain.
    int value = 9;
    comm.send(&value, 1, Datatype::int32(), 0, 0);
    recv.wait();
    EXPECT_EQ(buf, 9);
  });
}

TEST(Bsend, ReturnsBeforeReceiverPosts) {
  auto session = two_nodes(sim::Protocol::kSisci);
  constexpr std::size_t kCount = 8 * 1024;  // 32 KB: rendezvous territory
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      Comm::buffer_attach(kCount * sizeof(int) + Comm::bsend_overhead());
      std::vector<int> data(kCount);
      std::iota(data.begin(), data.end(), 0);
      const usec_t t0 = comm.wtime_us();
      comm.bsend(data.data(), static_cast<int>(kCount), Datatype::int32(), 1,
                 0);
      // A blocking rendezvous send would wait a full request/ack round
      // trip; bsend returns after staging the copy (~110 us of virtual
      // time for 32 KB at host-memcpy speed).
      EXPECT_LT(comm.wtime_us() - t0, 300.0);
      // Buffer reusable right away.
      std::fill(data.begin(), data.end(), -1);
      Comm::buffer_detach();  // blocks until the message left the buffer
    } else {
      std::vector<int> in(kCount, -1);
      comm.recv(in.data(), static_cast<int>(kCount), Datatype::int32(), 0,
                0);
      EXPECT_EQ(in.front(), 0);
      EXPECT_EQ(in.back(), static_cast<int>(kCount) - 1);
    }
  });
}

TEST(Bsend, OverflowAborts) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;
    Comm::buffer_attach(256);  // one small message + overhead fits
    std::vector<std::byte> big(1024);
    EXPECT_DEATH(
        comm.bsend(big.data(), 1024, Datatype::byte(), 0, 0),
        "too small");
    // Small message fits (self-delivery keeps the session clean).
    int value = 5;
    auto req = comm.irecv(&value, 1, Datatype::int32(), 0, 1);
    int out = 6;
    comm.bsend(&out, 1, Datatype::int32(), 0, 1);
    req.wait();
    EXPECT_EQ(value, 6);
    Comm::buffer_detach();
  });
}

TEST(Bsend, WithoutAttachAborts) {
  auto session = two_nodes(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;
    int value = 1;
    EXPECT_DEATH(comm.bsend(&value, 1, Datatype::int32(), 0, 0),
                 "without an attached buffer");
  });
}

TEST(MultiWait, WaitAnyReturnsFirstCompleted) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int a = -1, b = -1;
      std::vector<Request> requests;
      requests.push_back(comm.irecv(&a, 1, Datatype::int32(), 1, 10));
      requests.push_back(comm.irecv(&b, 1, Datatype::int32(), 1, 20));
      mpi::MpiStatus status;
      const std::size_t first = Request::wait_any(requests, &status);
      // wait_any scans by index, so with both possibly complete it
      // returns some completed request; verify the status/value pairing
      // and that the handle was nulled.
      ASSERT_NE(first, Request::npos);
      EXPECT_EQ(status.tag, first == 0 ? 10 : 20);
      EXPECT_FALSE(requests[first].valid());  // consumed -> null
      const std::size_t second = Request::wait_any(requests);
      ASSERT_NE(second, Request::npos);
      EXPECT_NE(second, first);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    } else {
      int v20 = 222;
      comm.send(&v20, 1, Datatype::int32(), 0, 20);
      int v10 = 111;
      comm.send(&v10, 1, Datatype::int32(), 0, 10);
    }
  });
}

TEST(MultiWait, TestAnyAndTestAll) {
  auto session = two_nodes(sim::Protocol::kBip);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      int a = -1;
      std::vector<Request> requests;
      requests.push_back(comm.irecv(&a, 1, Datatype::int32(), 1, 0));
      EXPECT_EQ(Request::test_any(requests), Request::npos);
      EXPECT_FALSE(Request::test_all(requests));
      int go = 1;
      comm.send(&go, 1, Datatype::int32(), 1, 1);
      while (Request::test_any(requests) == Request::npos) {
      }
      EXPECT_EQ(a, 77);
      EXPECT_TRUE(Request::test_all(requests));  // all null now
    } else {
      int go = 0;
      comm.recv(&go, 1, Datatype::int32(), 0, 1);
      int value = 77;
      comm.send(&value, 1, Datatype::int32(), 0, 0);
    }
  });
}

TEST(MultiWait, WaitSomeCollectsBatch) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::array<int, 3> values{-1, -1, -1};
      std::vector<Request> requests;
      for (int i = 0; i < 3; ++i) {
        requests.push_back(comm.irecv(&values[static_cast<std::size_t>(i)],
                                      1, Datatype::int32(), 1, i));
      }
      std::size_t total = 0;
      while (total < 3) {
        total += Request::wait_some(requests).size();
      }
      EXPECT_EQ(values, (std::array<int, 3>{0, 10, 20}));
    } else {
      for (int i = 0; i < 3; ++i) {
        int value = i * 10;
        comm.send(&value, 1, Datatype::int32(), 0, i);
      }
    }
  });
}

TEST(PackBuf, PackUnpackRoundTrip) {
  const auto i32 = Datatype::int32();
  const auto f64 = Datatype::float64();
  EXPECT_EQ(mpi::pack_size(3, i32), 12u);

  std::array<std::byte, 64> buffer;
  std::size_t position = 0;
  const int header[2] = {42, 7};
  const double payload[3] = {1.5, 2.5, 3.5};
  mpi::pack(header, 2, i32, buffer.data(), buffer.size(), &position);
  mpi::pack(payload, 3, f64, buffer.data(), buffer.size(), &position);
  EXPECT_EQ(position, 8u + 24u);

  std::size_t read = 0;
  int header_out[2] = {};
  double payload_out[3] = {};
  mpi::unpack(buffer.data(), position, &read, header_out, 2, i32);
  mpi::unpack(buffer.data(), position, &read, payload_out, 3, f64);
  EXPECT_EQ(read, position);
  EXPECT_EQ(header_out[0], 42);
  EXPECT_EQ(payload_out[2], 3.5);
}

TEST(PackBuf, OverflowAborts) {
  std::array<std::byte, 4> tiny;
  std::size_t position = 0;
  const double value = 1.0;
  EXPECT_DEATH(mpi::pack(&value, 1, Datatype::float64(), tiny.data(),
                         tiny.size(), &position),
               "overflow");
}

TEST(PackBuf, PackedBufferTravelsAsBytes) {
  auto session = two_nodes(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    const auto i32 = Datatype::int32();
    const auto f32 = Datatype::float32();
    if (comm.rank() == 0) {
      std::array<std::byte, 32> wire;
      std::size_t position = 0;
      const int count = 3;
      const float values[3] = {1.0f, 2.0f, 4.0f};
      mpi::pack(&count, 1, i32, wire.data(), wire.size(), &position);
      mpi::pack(values, 3, f32, wire.data(), wire.size(), &position);
      comm.send(wire.data(), static_cast<int>(position), Datatype::byte(),
                1, 0);
    } else {
      std::array<std::byte, 32> wire;
      const auto status =
          comm.recv(wire.data(), 32, Datatype::byte(), 0, 0);
      std::size_t position = 0;
      int count = 0;
      mpi::unpack(wire.data(), status.bytes, &position, &count, 1, i32);
      ASSERT_EQ(count, 3);
      std::vector<float> values(3);
      mpi::unpack(wire.data(), status.bytes, &position, values.data(), 3,
                  f32);
      EXPECT_EQ(values[2], 4.0f);
    }
  });
}

}  // namespace
}  // namespace madmpi
