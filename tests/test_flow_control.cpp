// Robustness layer: credit-based eager flow control, the bounded
// unexpected store, and the progress watchdog + MPI error handlers.
//
// The scenarios the layer exists for: an eager storm against a slow
// receiver must never grow the unexpected store past its budget (overflow
// demotes to rendezvous, which buffers nothing); credits are conserved
// under fault-plan traffic; and a receive from a permanently-killed peer
// returns an MPI error within the watchdog horizon instead of hanging.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "mpi/compat.hpp"
#include "sim/fault.hpp"

namespace madmpi {
namespace {

using core::ChMadDevice;
using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             sim::Protocol protocol,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, protocol);
  EXPECT_NE(nic, nullptr);
  nic->mutable_model().fault_plan = plan;
  return plan;
}

std::unique_ptr<Session> tcp_pair(
    const std::function<void(Session::Options&)>& tweak = {}) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  if (tweak) tweak(options);
  return std::make_unique<Session>(std::move(options));
}

// ------------------------------------------------------- bounded store

TEST(FlowControl, EagerStormStaysUnderBudgetByDemoting) {
  constexpr int kMessages = 50;
  constexpr int kPayload = 256;  // under every switch point: eager
  constexpr std::size_t kBudget = 1024;  // fits ~3 charged messages
  auto session = tcp_pair(
      [](Session::Options& o) { o.unexpected_budget_bytes = kBudget; });

  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<std::vector<std::uint8_t>> payloads(kMessages);
      std::vector<mpi::Request> requests;
      for (int i = 0; i < kMessages; ++i) {
        payloads[i].assign(kPayload, static_cast<std::uint8_t>(i * 7 + 1));
        requests.push_back(comm.isend(payloads[i].data(), kPayload,
                                      Datatype::uint8(), 1, i));
      }
      // The marker goes out before waitall: demoted isends only complete
      // once the receiver posts, and the receiver starts on the marker.
      int done = 1;
      comm.send(&done, 1, Datatype::int32(), 1, 999);
      for (auto& request : requests) request.wait();
    } else {
      int done = 0;
      comm.recv(&done, 1, Datatype::int32(), 0, 999);
      ASSERT_EQ(done, 1);
      // Drain the storm only after the whole burst arrived (stored up to
      // the budget; the rest parked as rendezvous requests).
      std::vector<std::uint8_t> in(kPayload);
      for (int i = 0; i < kMessages; ++i) {
        const auto status =
            comm.recv(in.data(), kPayload, Datatype::uint8(), 0, i);
        ASSERT_EQ(status.error, ErrorCode::kOk);
        ASSERT_EQ(status.bytes, static_cast<std::size_t>(kPayload));
        for (int b = 0; b < kPayload; ++b) {
          ASSERT_EQ(in[static_cast<std::size_t>(b)],
                    static_cast<std::uint8_t>(i * 7 + 1))
              << "message " << i << " corrupted at byte " << b;
        }
      }
    }
  });

  mpi::RankContext& receiver = session->context_of(1);
  EXPECT_LE(receiver.unexpected_bytes_high_water(), kBudget);
  EXPECT_GT(receiver.eager_refused(), 0u);
  // Refused messages were demoted, not dropped and not buffered.
  EXPECT_GE(session->ch_mad()->rendezvous_sent(),
            receiver.eager_refused());
  EXPECT_EQ(receiver.unexpected_bytes(), 0u);  // fully drained
}

TEST(FlowControl, StormUnderDropsStillRespectsBudget) {
  constexpr int kMessages = 24;
  constexpr int kPayload = 200;
  constexpr std::size_t kBudget = 900;
  for (const std::uint64_t seed : {5ull, 17ull}) {
    auto session = tcp_pair(
        [](Session::Options& o) { o.unexpected_budget_bytes = kBudget; });
    install_plan(*session, 0, sim::Protocol::kTcp, seed)->drop(0.2);
    install_plan(*session, 1, sim::Protocol::kTcp, seed + 1)->drop(0.2);
    session->run([](Comm comm) {
      std::vector<std::uint8_t> out(kPayload);
      std::vector<std::uint8_t> in(kPayload);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(i);
      }
      const int peer = 1 - comm.rank();
      for (int i = 0; i < kMessages; ++i) {
        if (comm.rank() == 0) {
          comm.send(out.data(), kPayload, Datatype::uint8(), peer, i);
          comm.recv(in.data(), kPayload, Datatype::uint8(), peer, i);
        } else {
          comm.recv(in.data(), kPayload, Datatype::uint8(), peer, i);
          comm.send(out.data(), kPayload, Datatype::uint8(), peer, i);
        }
        ASSERT_EQ(std::memcmp(in.data(), out.data(), kPayload), 0);
      }
    });
    EXPECT_LE(session->context_of(0).unexpected_bytes_high_water(), kBudget);
    EXPECT_LE(session->context_of(1).unexpected_bytes_high_water(), kBudget);
  }
}

// --------------------------------------------------- credit conservation

TEST(FlowControl, CreditsConservedAtQuiesceAcrossSeeds) {
  for (const std::uint64_t seed : {3ull, 7ull, 11ull}) {
    auto session = tcp_pair();
    install_plan(*session, 0, sim::Protocol::kTcp, seed)->drop(0.15);
    install_plan(*session, 1, sim::Protocol::kTcp, seed + 100)->drop(0.15);
    session->run([](Comm comm) {
      std::vector<std::uint8_t> out(512, 0x5a);
      std::vector<std::uint8_t> in(512);
      const int peer = 1 - comm.rank();
      for (int round = 0; round < 12; ++round) {
        if (comm.rank() == 0) {
          comm.send(out.data(), static_cast<int>(out.size()),
                    Datatype::uint8(), peer, round);
          comm.recv(in.data(), static_cast<int>(in.size()),
                    Datatype::uint8(), peer, round);
        } else {
          comm.recv(in.data(), static_cast<int>(in.size()),
                    Datatype::uint8(), peer, round);
          comm.send(out.data(), static_cast<int>(out.size()),
                    Datatype::uint8(), peer, round);
        }
      }
    });
    ChMadDevice* device = session->ch_mad();
    ASSERT_NE(device, nullptr);
    const std::size_t window = device->credit_window();
    ASSERT_GT(window, 0u);
    // Drain in-flight credit-return threads before auditing the books.
    session->finalize();
    for (node_id_t a = 0; a <= 1; ++a) {
      const node_id_t b = 1 - a;
      const std::size_t available = device->credits_available(a, b);
      const std::size_t owed = device->credits_pending_return(b, a);
      EXPECT_LE(available, window) << "seed " << seed;
      // Conservation: every charged byte is either back in the sender's
      // window or still owed by the receiver — none leak, none duplicate.
      EXPECT_EQ(available + owed, window)
          << "direction " << static_cast<int>(a) << "->"
          << static_cast<int>(b) << ", seed " << seed;
    }
  }
}

TEST(FlowControl, TinyWindowForcesDemotionOrBlocking) {
  // A window this small admits exactly one in-flight eager message, so a
  // burst must demote the rest (policy kDemote is the default).
  auto session = tcp_pair(
      [](Session::Options& o) { o.credit_window_bytes = 400; });
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> out(256, 0xab);
      std::vector<mpi::Request> requests;
      for (int i = 0; i < 8; ++i) {
        requests.push_back(comm.isend(out.data(),
                                      static_cast<int>(out.size()),
                                      Datatype::uint8(), 1, i));
      }
      int done = 1;
      comm.send(&done, 1, Datatype::int32(), 1, 999);
      for (auto& request : requests) request.wait();
    } else {
      int done = 0;
      comm.recv(&done, 1, Datatype::int32(), 0, 999);
      std::vector<std::uint8_t> in(256);
      for (int i = 0; i < 8; ++i) {
        const auto status = comm.recv(in.data(), static_cast<int>(in.size()),
                                      Datatype::uint8(), 0, i);
        ASSERT_EQ(status.error, ErrorCode::kOk);
      }
    }
  });
  EXPECT_EQ(session->ch_mad()->credit_window(), 400u);
  EXPECT_GT(session->ch_mad()->eager_demoted(), 0u);
}

// ------------------------------------------------------------- watchdog

TEST(Watchdog, RecvFromKilledPeerReturnsTimeoutInsteadOfHanging) {
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 2000.0; });
  // Node 0's NIC killed from t=0: nothing node 0 sends ever arrives, so
  // rank 1's receive can never be satisfied.
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm comm) {
    if (comm.rank() != 0) {
      int value = -1;
      const auto status = comm.recv(&value, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(status.error, ErrorCode::kTimedOut);
      EXPECT_EQ(value, -1);  // nothing was delivered
    }
  });
  // The cancel counter is bumped by the watchdog thread *after* it
  // completes the victim request, so it is only authoritative once
  // finalize() has joined that thread.
  session->finalize();
  EXPECT_GE(session->watchdog_cancels(), 1u);
}

TEST(Watchdog, MultiHopRoutesAreNotDeclaredDead) {
  // n0 -SCI- n1 -TCP- n2 -BIP- n3: n0 and n3 only reach each other over
  // two gateways. The failure detector must walk the whole relay graph —
  // a two-hop-only check once flagged this healthy route dead and the
  // watchdog cancelled a live receive.
  sim::ClusterSpec spec;
  for (const char* name : {"n0", "n1", "n2", "n3"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
  spec.networks.push_back({sim::Protocol::kTcp, 0, {"n1", "n2"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"n2", "n3"}});
  Session::Options options;
  options.cluster = spec;
  options.enable_forwarding = true;
  Session session(std::move(options));
  EXPECT_FALSE(session.route_dead(0, 3));
  EXPECT_FALSE(session.route_dead(3, 0));

  // Killing the middle link's sender-side NIC severs the only path.
  install_plan(session, 1, sim::Protocol::kTcp, 0)->kill_at(0.0);
  EXPECT_TRUE(session.route_dead(0, 3));
  EXPECT_FALSE(session.route_dead(0, 1));  // first hop still fine
}

TEST(Watchdog, ProbeFromKilledPeerAlsoTimesOut) {
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 2000.0; });
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm comm) {
    if (comm.rank() != 0) {
      const auto status = comm.probe(0, 0);
      EXPECT_EQ(status.error, ErrorCode::kTimedOut);
    }
  });
}

TEST(Watchdog, CustomErrhandlerRunsOnCancel) {
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 2000.0; });
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  std::atomic<int> handled{0};
  std::atomic<bool> code_was_timeout{false};
  session->run([&](Comm comm) {
    if (comm.rank() != 0) {
      comm.set_errhandler(mpi::Errhandler::custom(
          [&](ErrorCode code, const std::string&) {
            handled.fetch_add(1);
            if (code == ErrorCode::kTimedOut) code_was_timeout.store(true);
          }));
      int value = 0;
      const auto status = comm.recv(&value, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(status.error, ErrorCode::kTimedOut);
    }
  });
  EXPECT_EQ(handled.load(), 1);
  EXPECT_TRUE(code_was_timeout.load());
}

TEST(Watchdog, HealthyTrafficIsNeverCancelled) {
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 500.0; });
  session->run([](Comm comm) {
    std::vector<std::uint8_t> out(128, 0x11);
    std::vector<std::uint8_t> in(128);
    const int peer = 1 - comm.rank();
    for (int round = 0; round < 10; ++round) {
      if (comm.rank() == 0) {
        comm.send(out.data(), 128, Datatype::uint8(), peer, round);
        comm.recv(in.data(), 128, Datatype::uint8(), peer, round);
      } else {
        comm.recv(in.data(), 128, Datatype::uint8(), peer, round);
        comm.send(out.data(), 128, Datatype::uint8(), peer, round);
      }
      ASSERT_EQ(std::memcmp(in.data(), out.data(), 128), 0);
    }
  });
  EXPECT_EQ(session->watchdog_cancels(), 0u);
}

// ------------------------------------------------- compat error handlers

int g_compat_handler_calls = 0;
int g_compat_handler_code = MPI_SUCCESS;

void count_errors(MPI_Comm*, int* code) {
  ++g_compat_handler_calls;
  g_compat_handler_code = *code;
}

TEST(Watchdog, CompatErrorsReturnSurfacesTimeout) {
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 2000.0; });
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm world) {
    compat::bind_world(std::move(world));
    MPI_Init(nullptr, nullptr);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank != 0) {
      MPI_Comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
      MPI_Errhandler current = MPI_ERRHANDLER_NULL;
      MPI_Comm_get_errhandler(MPI_COMM_WORLD, &current);
      EXPECT_EQ(current, MPI_ERRORS_RETURN);
      int value = 0;
      MPI_Status status;
      const int rc =
          MPI_Recv(&value, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);
      EXPECT_EQ(rc, MPI_ERR_OTHER);
      EXPECT_EQ(status.MPI_ERROR, MPI_ERR_OTHER);
    }
    MPI_Finalize();
    compat::unbind_world();
  });
}

TEST(Watchdog, CompatCustomErrhandlerIsInvoked) {
  g_compat_handler_calls = 0;
  g_compat_handler_code = MPI_SUCCESS;
  auto session = tcp_pair(
      [](Session::Options& o) { o.watchdog_horizon_us = 2000.0; });
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm world) {
    compat::bind_world(std::move(world));
    MPI_Init(nullptr, nullptr);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank != 0) {
      MPI_Errhandler handler = MPI_ERRHANDLER_NULL;
      MPI_Comm_create_errhandler(&count_errors, &handler);
      MPI_Comm_set_errhandler(MPI_COMM_WORLD, handler);
      int value = 0;
      const int rc = MPI_Recv(&value, 1, MPI_INT, 0, 0, MPI_COMM_WORLD,
                              MPI_STATUS_IGNORE);
      EXPECT_EQ(rc, MPI_ERR_OTHER);
      MPI_Errhandler_free(&handler);
      EXPECT_EQ(handler, MPI_ERRHANDLER_NULL);
    }
    MPI_Finalize();
    compat::unbind_world();
  });
  EXPECT_EQ(g_compat_handler_calls, 1);
  EXPECT_EQ(g_compat_handler_code, MPI_ERR_OTHER);
}

}  // namespace
}  // namespace madmpi
