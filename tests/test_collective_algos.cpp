// Alternative collective algorithms: all selections must agree with the
// default on every communicator size and payload.
#include <gtest/gtest.h>

#include <numeric>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::AllreduceAlgorithm;
using mpi::BcastAlgorithm;
using mpi::CollectiveConfig;
using mpi::Comm;
using mpi::Datatype;

struct AlgoCase {
  AllreduceAlgorithm allreduce;
  BcastAlgorithm bcast;
  int ranks;
  int count;
  const char* name;
};

class CollectiveAlgos : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(CollectiveAlgos, AllreduceMatchesReference) {
  const auto& param = GetParam();
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(param.ranks, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([&param](Comm comm) {
    CollectiveConfig config;
    config.allreduce = param.allreduce;
    config.bcast = param.bcast;
    comm.set_collective_config(config);

    std::vector<double> mine(static_cast<std::size_t>(param.count));
    for (int i = 0; i < param.count; ++i) {
      mine[static_cast<std::size_t>(i)] = comm.rank() * 1.5 + i;
    }
    std::vector<double> total(static_cast<std::size_t>(param.count), -1.0);
    comm.allreduce(mine.data(), total.data(), param.count,
                   Datatype::float64(), mpi::Op::sum());

    const int n = comm.size();
    const double rank_sum = 1.5 * n * (n - 1) / 2.0;
    for (int i = 0; i < param.count; ++i) {
      ASSERT_NEAR(total[static_cast<std::size_t>(i)],
                  rank_sum + static_cast<double>(i) * n, 1e-9)
          << "element " << i;
    }
  });
}

TEST_P(CollectiveAlgos, BcastMatchesReference) {
  const auto& param = GetParam();
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(param.ranks, sim::Protocol::kBip);
  Session session(std::move(options));
  session.run([&param](Comm comm) {
    CollectiveConfig config;
    config.allreduce = param.allreduce;
    config.bcast = param.bcast;
    comm.set_collective_config(config);

    const int root = comm.size() - 1;
    std::vector<int> data(static_cast<std::size_t>(param.count), -1);
    if (comm.rank() == root) {
      std::iota(data.begin(), data.end(), 7);
    }
    comm.bcast(data.data(), param.count, Datatype::int32(), root);
    for (int i = 0; i < param.count; ++i) {
      ASSERT_EQ(data[static_cast<std::size_t>(i)], 7 + i);
    }
  });
}

std::vector<AlgoCase> algo_cases() {
  std::vector<AlgoCase> cases;
  const struct {
    AllreduceAlgorithm allreduce;
    BcastAlgorithm bcast;
    const char* tag;
  } algos[] = {
      {AllreduceAlgorithm::kReduceBcast, BcastAlgorithm::kBinomial, "default"},
      {AllreduceAlgorithm::kRecursiveDoubling, BcastAlgorithm::kBinomial,
       "recdouble"},
      {AllreduceAlgorithm::kRing, BcastAlgorithm::kBinomial, "ring"},
      {AllreduceAlgorithm::kReduceBcast, BcastAlgorithm::kLinear, "linear"},
  };
  for (const auto& algo : algos) {
    for (int ranks : {2, 3, 5, 8}) {
      for (int count : {1, 17, 4096}) {
        cases.push_back(
            {algo.allreduce, algo.bcast, ranks, count, algo.tag});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveAlgos, ::testing::ValuesIn(algo_cases()),
    [](const auto& info) {
      return std::string(info.param.name) + "_r" +
             std::to_string(info.param.ranks) + "_c" +
             std::to_string(info.param.count);
    });

TEST(CollectiveAlgos, RingFallsBackForTinyPayloads) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(8, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    CollectiveConfig config;
    config.allreduce = AllreduceAlgorithm::kRing;
    comm.set_collective_config(config);
    int mine = 1;  // count (1) < size (8): must silently degrade
    int total = 0;
    comm.allreduce(&mine, &total, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_EQ(total, 8);
  });
}

TEST(CollectiveAlgos, RingIsFasterAtLargeSizesOnManyRanks) {
  // The ring moves 2(n-1)/n of the payload per rank; reduce+bcast moves it
  // ~2 log2(n) times along the critical path. On 8 ranks at 1 MB the ring
  // must win clearly.
  auto measure = [](AllreduceAlgorithm algorithm) {
    Session::Options options;
    options.cluster =
        sim::ClusterSpec::homogeneous(8, sim::Protocol::kSisci);
    Session session(std::move(options));
    usec_t elapsed = 0.0;
    session.run([&](Comm comm) {
      CollectiveConfig config;
      config.allreduce = algorithm;
      comm.set_collective_config(config);
      constexpr int kCount = 128 * 1024;  // 1 MB of doubles
      std::vector<double> mine(kCount, 1.0), total(kCount);
      comm.allreduce(mine.data(), total.data(), kCount, Datatype::float64(),
                     mpi::Op::sum());  // warm-up
      const usec_t t0 = comm.wtime_us();
      comm.allreduce(mine.data(), total.data(), kCount, Datatype::float64(),
                     mpi::Op::sum());
      if (comm.rank() == 0) elapsed = comm.wtime_us() - t0;
    });
    return elapsed;
  };
  const usec_t tree = measure(AllreduceAlgorithm::kReduceBcast);
  const usec_t ring = measure(AllreduceAlgorithm::kRing);
  EXPECT_LT(ring, tree * 0.7);
}

}  // namespace
}  // namespace madmpi
