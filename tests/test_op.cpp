// Tests for reduction operators.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "mpi/op.hpp"

namespace madmpi::mpi {
namespace {

template <typename T>
std::array<T, 4> reduce4(const Op& op, std::array<T, 4> in,
                         std::array<T, 4> inout, const Datatype& type) {
  op.apply(in.data(), inout.data(), 4, type);
  return inout;
}

TEST(Op, SumInt32) {
  auto out = reduce4<std::int32_t>(Op::sum(), {1, 2, 3, 4}, {10, 20, 30, 40},
                                   Datatype::int32());
  EXPECT_EQ(out, (std::array<std::int32_t, 4>{11, 22, 33, 44}));
}

TEST(Op, SumDouble) {
  auto out = reduce4<double>(Op::sum(), {0.5, 1.5, 2.5, 3.5},
                             {1.0, 1.0, 1.0, 1.0}, Datatype::float64());
  EXPECT_EQ(out, (std::array<double, 4>{1.5, 2.5, 3.5, 4.5}));
}

TEST(Op, ProdInt64) {
  auto out = reduce4<std::int64_t>(Op::prod(), {2, 3, 4, 5}, {10, 10, 10, 10},
                                   Datatype::int64());
  EXPECT_EQ(out, (std::array<std::int64_t, 4>{20, 30, 40, 50}));
}

TEST(Op, MinMaxFloat) {
  auto lo = reduce4<float>(Op::min(), {1, 9, 3, 7}, {5, 5, 5, 5},
                           Datatype::float32());
  EXPECT_EQ(lo, (std::array<float, 4>{1, 5, 3, 5}));
  auto hi = reduce4<float>(Op::max(), {1, 9, 3, 7}, {5, 5, 5, 5},
                           Datatype::float32());
  EXPECT_EQ(hi, (std::array<float, 4>{5, 9, 5, 7}));
}

TEST(Op, LogicalAndOr) {
  auto land = reduce4<std::int32_t>(Op::land(), {1, 0, 5, 0}, {1, 1, 0, 0},
                                    Datatype::int32());
  EXPECT_EQ(land, (std::array<std::int32_t, 4>{1, 0, 0, 0}));
  auto lor = reduce4<std::int32_t>(Op::lor(), {1, 0, 5, 0}, {1, 1, 0, 0},
                                   Datatype::int32());
  EXPECT_EQ(lor, (std::array<std::int32_t, 4>{1, 1, 1, 0}));
}

TEST(Op, BitwiseOps) {
  auto band = reduce4<std::uint32_t>(Op::band(), {0b1100, 0b1010, 0xff, 0},
                                     {0b1010, 0b1010, 0x0f, 7},
                                     Datatype::uint32());
  EXPECT_EQ(band, (std::array<std::uint32_t, 4>{0b1000, 0b1010, 0x0f, 0}));
  auto bor = reduce4<std::uint32_t>(Op::bor(), {0b1100, 0, 0, 1},
                                    {0b0011, 0, 4, 2}, Datatype::uint32());
  EXPECT_EQ(bor, (std::array<std::uint32_t, 4>{0b1111, 0, 4, 3}));
  auto bxor = reduce4<std::uint32_t>(Op::bxor(), {0b1100, 1, 1, 0},
                                     {0b1010, 1, 0, 0}, Datatype::uint32());
  EXPECT_EQ(bxor, (std::array<std::uint32_t, 4>{0b0110, 0, 1, 0}));
}

TEST(Op, ByteAndSmallIntegers) {
  auto out = reduce4<std::uint8_t>(Op::sum(), {1, 2, 3, 4}, {5, 5, 5, 5},
                                   Datatype::uint8());
  EXPECT_EQ(out, (std::array<std::uint8_t, 4>{6, 7, 8, 9}));
  auto out8 = reduce4<std::int8_t>(Op::max(), {-3, 2, -1, 0}, {0, 0, 0, 0},
                                   Datatype::int8());
  EXPECT_EQ(out8, (std::array<std::int8_t, 4>{0, 2, 0, 0}));
}

TEST(Op, ContiguousOfPrimitiveReducesElementwise) {
  const auto vec3 = Datatype::contiguous(3, Datatype::float64());
  std::array<double, 6> in{1, 2, 3, 4, 5, 6};       // two vec3 elements
  std::array<double, 6> inout{10, 10, 10, 10, 10, 10};
  Op::sum().apply(in.data(), inout.data(), 2, vec3);
  EXPECT_EQ(inout, (std::array<double, 6>{11, 12, 13, 14, 15, 16}));
}

TEST(Op, BitwiseOnFloatAborts) {
  std::array<float, 2> a{1, 2}, b{3, 4};
  EXPECT_DEATH(Op::band().apply(a.data(), b.data(), 2, Datatype::float32()),
               "non-integer");
}

TEST(Op, BuiltinOnDerivedAborts) {
  struct P { std::int32_t a; double b; };
  const int lengths[] = {1, 1};
  const std::ptrdiff_t displs[] = {offsetof(P, a), offsetof(P, b)};
  const Datatype types[] = {Datatype::int32(), Datatype::float64()};
  const auto type = Datatype::create_struct(lengths, displs, types);
  P in{}, inout{};
  EXPECT_DEATH(Op::sum().apply(&in, &inout, 1, type), "primitive");
}

TEST(Op, UserDefinedFunction) {
  // An "argmax-style" op on (value, index) pairs encoded as 2 doubles.
  auto maxloc = Op::user([](const void* in, void* inout, int count,
                            const Datatype&) {
    const auto* a = static_cast<const double*>(in);
    auto* b = static_cast<double*>(inout);
    for (int i = 0; i < count; ++i) {
      if (a[2 * i] > b[2 * i]) {
        b[2 * i] = a[2 * i];
        b[2 * i + 1] = a[2 * i + 1];
      }
    }
  });
  std::array<double, 4> in{9.0, 1.0, 2.0, 3.0};
  std::array<double, 4> inout{5.0, 0.0, 7.0, 2.0};
  maxloc.apply(in.data(), inout.data(), 2,
               Datatype::contiguous(2, Datatype::float64()));
  EXPECT_EQ(inout, (std::array<double, 4>{9.0, 1.0, 7.0, 2.0}));
}

TEST(Op, Names) {
  EXPECT_STREQ(Op::sum().name(), "sum");
  EXPECT_STREQ(Op::bxor().name(), "bxor");
  EXPECT_STREQ(Op::user([](const void*, void*, int, const Datatype&) {}).name(),
               "user");
}

}  // namespace
}  // namespace madmpi::mpi
