// MPI-level gateway forwarding: full sessions on topologies where some
// node pairs share no network (lifting the paper's "all nodes have to be
// connected two-by-two" restriction, §6).
#include <gtest/gtest.h>

#include <numeric>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// a0, a1 on SCI; b0, b1 on Myrinet; gw on both. a* and b* can only reach
/// each other through gw.
sim::ClusterSpec bridged_spec() {
  sim::ClusterSpec spec;
  for (const char* name : {"a0", "a1", "gw", "b0", "b1"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"a0", "a1", "gw"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"gw", "b0", "b1"}});
  return spec;
}

std::unique_ptr<Session> bridged_session() {
  Session::Options options;
  options.cluster = bridged_spec();
  options.enable_forwarding = true;
  return std::make_unique<Session>(std::move(options));
}

TEST(ForwardingMpi, RouterFindsGatewayPaths) {
  auto session = bridged_session();
  auto* device = session->ch_mad();
  ASSERT_NE(device, nullptr);
  ASSERT_TRUE(device->forwarding_enabled());
  const auto* router = device->forward_router();
  // a0(0) -> b0(3): via gw(2).
  EXPECT_EQ(router->next_hop(0, 3), 2);
  EXPECT_EQ(router->hops(0, 3), 2);
  EXPECT_EQ(router->hops(0, 1), 1);  // direct SCI
  EXPECT_TRUE(device->reaches(0, 3));
  EXPECT_TRUE(device->reaches(3, 0));
  EXPECT_STREQ(session->device_for(0, 4).name(), "ch_mad");
}

TEST(ForwardingMpi, EagerAcrossTheGateway) {
  auto session = bridged_session();
  session->run([](Comm comm) {
    // Rank layout: a0=0, a1=1, gw=2, b0=3, b1=4.
    if (comm.rank() == 0) {
      std::vector<int> data(100);
      std::iota(data.begin(), data.end(), 500);
      comm.send(data.data(), 100, Datatype::int32(), 4, 9);
    } else if (comm.rank() == 4) {
      std::vector<int> data(100, -1);
      auto status = comm.recv(data.data(), 100, Datatype::int32(), 0, 9);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(data[0], 500);
      EXPECT_EQ(data[99], 599);
    }
  });
  EXPECT_GE(session->ch_mad()->forwarded(), 1u);
}

TEST(ForwardingMpi, RendezvousAcrossTheGateway) {
  auto session = bridged_session();
  constexpr std::size_t kCount = 64 * 1024;  // well past the 8 KB switch
  session->run([](Comm comm) {
    if (comm.rank() == 1) {
      std::vector<double> data(kCount);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(data.data(), static_cast<int>(kCount), Datatype::float64(),
                3, 0);
    } else if (comm.rank() == 3) {
      std::vector<double> data(kCount, -1.0);
      comm.recv(data.data(), static_cast<int>(kCount), Datatype::float64(),
                1, 0);
      EXPECT_EQ(data[0], 0.0);
      EXPECT_EQ(data[kCount - 1], static_cast<double>(kCount - 1));
    }
  });
  // Request + ack + data all crossed the gateway.
  EXPECT_GE(session->ch_mad()->forwarded(), 3u);
  EXPECT_GE(session->ch_mad()->rendezvous_sent(), 1u);
}

TEST(ForwardingMpi, BidirectionalSendrecvThroughGateway) {
  auto session = bridged_session();
  session->run([](Comm comm) {
    if (comm.rank() != 0 && comm.rank() != 3) return;
    const int peer = comm.rank() == 0 ? 3 : 0;
    std::vector<int> out(2000, comm.rank());
    std::vector<int> in(2000, -1);
    comm.sendrecv(out.data(), 2000, Datatype::int32(), peer, 1, in.data(),
                  2000, Datatype::int32(), peer, 1);
    for (int v : in) ASSERT_EQ(v, peer);
  });
}

TEST(ForwardingMpi, CollectivesSpanTheWholeBridgedCluster) {
  auto session = bridged_session();
  session->run([](Comm comm) {
    int mine = comm.rank() + 1;
    int sum = 0;
    comm.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_EQ(sum, 15);  // 1+2+3+4+5

    std::vector<int> all(static_cast<std::size_t>(comm.size()), -1);
    comm.allgather(&mine, 1, Datatype::int32(), all.data(), 1,
                   Datatype::int32());
    for (int r = 0; r < comm.size(); ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)], r + 1);
    }
  });
}

TEST(ForwardingMpi, VirtualTimeIncludesBothHops) {
  auto session = bridged_session();
  session->run([](Comm comm) {
    if (comm.rank() == 0) {
      char byte = 'x';
      const usec_t t0 = comm.wtime_us();
      comm.send(&byte, 1, Datatype::byte(), 3, 0);
      comm.recv(&byte, 1, Datatype::byte(), 3, 0);
      const usec_t round_trip = comm.wtime_us() - t0;
      // SCI hop (~20 us) + BIP hop (~20 us) + relay, both ways: the round
      // trip must clearly exceed a single-network round trip.
      EXPECT_GT(round_trip, 80.0);
      EXPECT_LT(round_trip, 400.0);
    } else if (comm.rank() == 3) {
      char byte = 0;
      comm.recv(&byte, 1, Datatype::byte(), 0, 0);
      comm.send(&byte, 1, Datatype::byte(), 0, 0);
    }
  });
}

TEST(ForwardingMpi, DisabledForwardingStillRejectsUnreachable) {
  Session::Options options;
  options.cluster = bridged_spec();
  options.enable_forwarding = false;
  Session session(std::move(options));
  EXPECT_FALSE(session.ch_mad()->forwarding_enabled());
  EXPECT_FALSE(session.ch_mad()->reaches(0, 3));
  EXPECT_DEATH(session.device_for(0, 3), "unreachable");
}

TEST(ForwardingMpi, ThreeHopChain) {
  // n0 -SCI- n1 -TCP- n2 -BIP- n3: n0 to n3 crosses two gateways.
  sim::ClusterSpec spec;
  for (const char* name : {"n0", "n1", "n2", "n3"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
  spec.networks.push_back({sim::Protocol::kTcp, 0, {"n1", "n2"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"n2", "n3"}});
  Session::Options options;
  options.cluster = spec;
  options.enable_forwarding = true;
  Session session(std::move(options));
  EXPECT_EQ(session.ch_mad()->forward_router()->hops(0, 3), 3);

  session.run([](Comm comm) {
    if (comm.rank() == 0) {
      std::uint64_t value = 0xfeedface;
      comm.send(&value, 1, Datatype::uint64(), 3, 0);
    } else if (comm.rank() == 3) {
      std::uint64_t value = 0;
      comm.recv(&value, 1, Datatype::uint64(), 0, 0);
      EXPECT_EQ(value, 0xfeedfaceu);
    }
  });
  EXPECT_GE(session.ch_mad()->forwarded(), 2u);  // two relays for one hop
}

}  // namespace
}  // namespace madmpi
