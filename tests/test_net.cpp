// Tests for the network driver layer: endpoints, transports, block plans.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "net/bip_driver.hpp"
#include "net/driver.hpp"
#include "net/shmem_driver.hpp"
#include "net/sisci_driver.hpp"
#include "net/tcp_driver.hpp"

namespace madmpi::net {
namespace {

/// Two-node fixture with one channel transport of the given protocol.
struct TwoNodeTransport {
  explicit TwoNodeTransport(sim::Protocol protocol)
      : cluster(sim::ClusterSpec::homogeneous(2, protocol)),
        driver(make_driver(protocol)) {
    for (const auto& node : cluster.nodes) fabric.add_node(node.name);
    transport = driver->open_channel(fabric, cluster.networks[0], cluster,
                                     "test");
  }
  sim::Fabric fabric;
  sim::ClusterSpec cluster;
  std::unique_ptr<Driver> driver;
  std::unique_ptr<ChannelTransport> transport;
};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Transport, ControlOnlyMessageRoundTrip) {
  TwoNodeTransport net(sim::Protocol::kTcp);
  Endpoint* a = net.transport->endpoint(0);
  Endpoint* b = net.transport->endpoint(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const auto payload = bytes_of("hello");
  a->send_message(1, byte_span{payload.data(), payload.size()}, {});

  auto incoming = b->next_message_blocking();
  ASSERT_TRUE(incoming.has_value());
  EXPECT_EQ(incoming->source(), 0);
  EXPECT_TRUE(incoming->control_was_last());
  ASSERT_EQ(incoming->control_payload().size(), 5u);
  EXPECT_EQ(std::memcmp(incoming->control_payload().data(), "hello", 5), 0);
}

TEST(Transport, SeparateDataBlocksArriveInOrder) {
  TwoNodeTransport net(sim::Protocol::kSisci);
  Endpoint* a = net.transport->endpoint(0);
  Endpoint* b = net.transport->endpoint(1);

  const auto block1 = bytes_of("first-block");
  const auto block2 = bytes_of("second");
  std::vector<DataBlock> blocks = {
      {byte_span{block1.data(), block1.size()}, true},
      {byte_span{block2.data(), block2.size()}, false},
  };
  const auto control = bytes_of("ctl");
  a->send_message(1, byte_span{control.data(), control.size()}, blocks);

  auto incoming = b->next_message_blocking();
  ASSERT_TRUE(incoming.has_value());
  EXPECT_FALSE(incoming->control_was_last());
  sim::Frame f1 = incoming->take_data_block();
  EXPECT_EQ(f1.payload.size(), block1.size());
  EXPECT_TRUE(f1.zero_copy);
  EXPECT_FALSE(f1.last_of_message);
  sim::Frame f2 = incoming->take_data_block();
  EXPECT_EQ(f2.payload.size(), block2.size());
  EXPECT_FALSE(f2.zero_copy);
  EXPECT_TRUE(f2.last_of_message);
}

TEST(Transport, PerSourceFifoAcrossInterleavedSenders) {
  // Three nodes; 0 and 2 both send bursts to 1. Messages from each source
  // must be received in their send order.
  auto cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kTcp);
  sim::Fabric fabric;
  for (const auto& node : cluster.nodes) fabric.add_node(node.name);
  auto driver = make_driver(sim::Protocol::kTcp);
  auto transport =
      driver->open_channel(fabric, cluster.networks[0], cluster, "t");

  constexpr int kBurst = 20;
  auto sender = [&](node_id_t self) {
    Endpoint* ep = transport->endpoint(self);
    for (int i = 0; i < kBurst; ++i) {
      std::uint32_t word = (static_cast<std::uint32_t>(self) << 16) |
                           static_cast<std::uint32_t>(i);
      ep->send_message(1, byte_span{reinterpret_cast<std::byte*>(&word),
                                    sizeof word},
                       {});
    }
  };
  std::thread t0(sender, 0);
  std::thread t2(sender, 2);

  Endpoint* receiver = transport->endpoint(1);
  int next_from[3] = {0, 0, 0};
  for (int received = 0; received < 2 * kBurst; ++received) {
    auto incoming = receiver->next_message_blocking();
    ASSERT_TRUE(incoming.has_value());
    std::uint32_t word = 0;
    std::memcpy(&word, incoming->control_payload().data(), sizeof word);
    const int src = static_cast<int>(word >> 16);
    const int seq = static_cast<int>(word & 0xffff);
    EXPECT_EQ(src, incoming->source());
    EXPECT_EQ(seq, next_from[src]++) << "out-of-order from " << src;
  }
  t0.join();
  t2.join();
  EXPECT_EQ(receiver->messages_received(), 2u * kBurst);
}

TEST(Transport, PollMessageNonBlocking) {
  TwoNodeTransport net(sim::Protocol::kBip);
  Endpoint* a = net.transport->endpoint(0);
  Endpoint* b = net.transport->endpoint(1);
  EXPECT_FALSE(b->poll_message().has_value());
  EXPECT_FALSE(b->message_available());
  const auto payload = bytes_of("x");
  a->send_message(1, byte_span{payload.data(), payload.size()}, {});
  EXPECT_TRUE(b->message_available());
  EXPECT_TRUE(b->poll_message().has_value());
}

TEST(Transport, CloseUnblocksReceiver) {
  TwoNodeTransport net(sim::Protocol::kTcp);
  Endpoint* b = net.transport->endpoint(1);
  std::thread closer([&] { b->close(); });
  EXPECT_FALSE(b->next_message_blocking().has_value());
  closer.join();
}

TEST(Transport, SendToUnknownPeerAborts) {
  TwoNodeTransport net(sim::Protocol::kTcp);
  Endpoint* a = net.transport->endpoint(0);
  EXPECT_DEATH(a->send_message(42, byte_span{}, {}), "no path");
}

TEST(Transport, ClockAdvancesWithTraffic) {
  TwoNodeTransport net(sim::Protocol::kTcp);
  Endpoint* a = net.transport->endpoint(0);
  Endpoint* b = net.transport->endpoint(1);
  const usec_t before = net.fabric.node(1).clock().now();
  const auto payload = bytes_of("data");
  a->send_message(1, byte_span{payload.data(), payload.size()}, {});
  auto incoming = b->next_message_blocking();
  ASSERT_TRUE(incoming.has_value());
  // Receiver clock must reflect TCP's ~85 us of fixed path at least.
  EXPECT_GT(net.fabric.node(1).clock().now(), before + 80.0);
  // And the sender paid its send overhead.
  EXPECT_GT(net.fabric.node(0).clock().now(), 30.0);
}

TEST(Drivers, BlockPlansFollowProtocolCharacter) {
  TcpDriver tcp;
  EXPECT_TRUE(tcp.plan_block(32).aggregate);
  EXPECT_FALSE(tcp.plan_block(4096).aggregate);
  EXPECT_FALSE(tcp.plan_block(4096).zero_copy);  // sockets never zero-copy

  SisciDriver sisci;
  EXPECT_TRUE(sisci.plan_block(64).aggregate);
  EXPECT_TRUE(sisci.plan_block(65).zero_copy);

  BipDriver bip;
  EXPECT_TRUE(bip.plan_block(64).aggregate);
  EXPECT_TRUE(bip.plan_block(512).zero_copy);

  ShmemDriver shmem;
  EXPECT_TRUE(shmem.plan_block(512).aggregate);
  EXPECT_FALSE(shmem.plan_block(4096).zero_copy);
}

TEST(Drivers, PollCostsReflectSelectVsMemoryPoll) {
  TcpDriver tcp;
  SisciDriver sisci;
  BipDriver bip;
  // The paper's rationale for per-protocol polling frequency (§3.3): the
  // select() call is orders of magnitude more expensive.
  EXPECT_GT(tcp.poll_cost(), 10.0 * sisci.poll_cost());
  EXPECT_GT(tcp.poll_cost(), 10.0 * bip.poll_cost());
}

TEST(Drivers, FactoryCoversAllProtocols) {
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip, sim::Protocol::kShmem}) {
    auto driver = make_driver(protocol);
    ASSERT_NE(driver, nullptr);
    EXPECT_EQ(driver->protocol(), protocol);
  }
}

TEST(Transport, EndpointLookupByNode) {
  TwoNodeTransport net(sim::Protocol::kTcp);
  EXPECT_NE(net.transport->endpoint(0), nullptr);
  EXPECT_NE(net.transport->endpoint(1), nullptr);
  EXPECT_EQ(net.transport->endpoint(5), nullptr);
  EXPECT_EQ(net.transport->members().size(), 2u);
}

}  // namespace
}  // namespace madmpi::net
