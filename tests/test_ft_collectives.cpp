// Fault-tolerant collectives: survivable multicast under link/rank
// failures, uniform error agreement, and the ULFM-style
// revoke/shrink/agree recovery path (plus the MPIX compat facade).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/session.hpp"
#include "mpi/compat.hpp"
#include "sim/fault.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, sim::Protocol::kTcp);
  EXPECT_NE(nic, nullptr);
  nic->mutable_model().fault_plan = plan;
  return plan;
}

/// Kill `victim` both ways: outbound rules live on the victim's NIC,
/// inbound ones on every other node's NIC (fault rules apply to frames
/// *departing* the NIC that carries the plan).
void kill_node(Session& session, int nodes, node_id_t victim, usec_t at) {
  for (node_id_t node = 0; node < nodes; ++node) {
    auto plan = install_plan(session, node, 0);
    if (node == victim) {
      plan->kill_at(at);
    } else {
      plan->kill_at(at, node, victim);
    }
  }
}

void enable_ft(Comm& comm) {
  mpi::CollectiveConfig config;
  config.fault_tolerant = true;
  comm.set_collective_config(config);
}

std::unique_ptr<Session> tcp_quad() {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
  return std::make_unique<Session>(std::move(options));
}

TEST(FtConfig, KnobDefaultsKeepFtOff) {
  // Without MADMPI_FT_COLLECTIVES in the environment the fault-free fast
  // path stays byte-identical to the pre-FT stack.
  const mpi::CollectiveConfig config;
  EXPECT_FALSE(config.fault_tolerant);
  EXPECT_DOUBLE_EQ(config.agree_timeout_us, 1.0e6);
}

TEST(FtBcast, FaultFreeDeliversEverywhere) {
  auto session = tcp_quad();
  session->run([](Comm comm) {
    enable_ft(comm);
    std::vector<int> data(1024);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 7);
    const Status status =
        comm.bcast(data.data(), 1024, Datatype::int32(), 0);
    EXPECT_TRUE(status.is_ok());
    for (int i = 0; i < 1024; ++i) EXPECT_EQ(data[i], i + 7);
  });
}

// The headline survivable-multicast scenario: only the root->2 direction
// dies. The binomial tree (root 0) would hand rank 2 its whole subtree
// over that edge; instead the root adopts the subtree, serves rank 3
// directly and rank 3 relays the payload to rank 2 over its own live
// route. Everybody completes successfully with the right data.
TEST(FtBcast, SingleLinkOutageReroutesThroughLivePeers) {
  auto session = tcp_quad();
  install_plan(*session, 0, 0)->kill_at(0.0, /*src=*/0, /*dst=*/2);
  std::mutex mutex;
  std::map<int, Status> statuses;
  session->run([&](Comm comm) {
    enable_ft(comm);
    std::vector<int> data(1024);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 3);
    const Status status =
        comm.bcast(data.data(), 1024, Datatype::int32(), 0);
    for (int i = 0; i < 1024; ++i) EXPECT_EQ(data[i], i + 3);
    std::lock_guard<std::mutex> lock(mutex);
    statuses[comm.rank()] = status;
  });
  for (const auto& [rank, status] : statuses) {
    EXPECT_TRUE(status.is_ok()) << "rank " << rank << ": "
                                << status.to_string();
  }
}

TEST(FtBcast, DeadInteriorRankSubtreeIsAdopted) {
  auto session = tcp_quad();
  // Rank 2 is the interior child serving rank 3; killing its node must
  // not take rank 3 down with it.
  kill_node(*session, 4, 2, 0.0);
  std::mutex mutex;
  std::map<int, Status> statuses;
  session->run([&](Comm comm) {
    enable_ft(comm);
    std::vector<int> data(256);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 11);
    const Status status =
        comm.bcast(data.data(), 256, Datatype::int32(), 0);
    if (comm.rank() != 2) {
      for (int i = 0; i < 256; ++i) EXPECT_EQ(data[i], i + 11);
    }
    std::lock_guard<std::mutex> lock(mutex);
    statuses[comm.rank()] = status;
  });
  EXPECT_TRUE(statuses[0].is_ok());
  EXPECT_TRUE(statuses[1].is_ok());
  EXPECT_TRUE(statuses[3].is_ok());
  // The fully-partitioned rank is, to the rest of the group, the failed
  // process: it alone reports the failure.
  EXPECT_EQ(statuses[2].code(), ErrorCode::kProcFailed);
}

TEST(FtBcast, LossyLinkIsRecoveredTransparently) {
  auto session = tcp_quad();
  install_plan(*session, 0, 17)->drop(0.25);
  session->run([](Comm comm) {
    enable_ft(comm);
    std::vector<int> data(512);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 1);
    const Status status =
        comm.bcast(data.data(), 512, Datatype::int32(), 0);
    EXPECT_TRUE(status.is_ok());
    for (int i = 0; i < 512; ++i) EXPECT_EQ(data[i], i + 1);
  });
}

TEST(FtAllreduce, SingleLinkOutageStillSumsCorrectly) {
  auto session = tcp_quad();
  install_plan(*session, 0, 0)->kill_at(0.0, /*src=*/0, /*dst=*/2);
  session->run([](Comm comm) {
    enable_ft(comm);
    std::vector<int> send(64, comm.rank() + 1);
    std::vector<int> recv(64, 0);
    const Status status = comm.allreduce(send.data(), recv.data(), 64,
                                         Datatype::int32(), mpi::Op::sum());
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    for (int i = 0; i < 64; ++i) EXPECT_EQ(recv[i], 1 + 2 + 3 + 4);
  });
}

// Every collective, same dead rank: each one must return the SAME error
// class on every live rank — no hang, no divergent success/failure mix.
// The one exception proves the tentpole: bcast re-routes around the dead
// subtree and *succeeds* uniformly on the live ranks.
TEST(FtCollectives, UniformOutcomeAcrossOperationsUnderKilledRank) {
  auto session = tcp_quad();
  kill_node(*session, 4, 1, 0.0);
  constexpr int kOps = 7;
  std::mutex mutex;
  std::map<int, std::vector<ErrorCode>> outcomes;
  session->run([&](Comm comm) {
    enable_ft(comm);
    std::vector<ErrorCode> codes;
    std::vector<int> buf(16, comm.rank());
    std::vector<int> out(64, 0);
    codes.push_back(
        comm.bcast(buf.data(), 16, Datatype::int32(), 0).code());
    codes.push_back(comm.barrier().code());
    codes.push_back(comm.reduce(buf.data(), out.data(), 16,
                                Datatype::int32(), mpi::Op::sum(), 0)
                        .code());
    codes.push_back(comm.allreduce(buf.data(), out.data(), 16,
                                   Datatype::int32(), mpi::Op::sum())
                        .code());
    codes.push_back(comm.gather(buf.data(), 16, Datatype::int32(),
                                out.data(), 16, Datatype::int32(), 0)
                        .code());
    codes.push_back(comm.allgather(buf.data(), 16, Datatype::int32(),
                                   out.data(), 16, Datatype::int32())
                        .code());
    codes.push_back(
        comm.scan(buf.data(), out.data(), 16, Datatype::int32(),
                  mpi::Op::sum())
            .code());
    std::lock_guard<std::mutex> lock(mutex);
    outcomes[comm.rank()] = std::move(codes);
  });
  ASSERT_EQ(outcomes.size(), 4u);
  for (int op = 0; op < kOps; ++op) {
    // Uniformity among the live ranks (0, 2, 3).
    EXPECT_EQ(outcomes[0][op], outcomes[2][op]) << "op " << op;
    EXPECT_EQ(outcomes[0][op], outcomes[3][op]) << "op " << op;
  }
  // bcast from root 0 survives the dead leaf; the data-dependent
  // collectives cannot (rank 1's contribution is gone) and agree on
  // kProcFailed.
  EXPECT_EQ(outcomes[0][0], ErrorCode::kOk);
  for (int op = 1; op < kOps; ++op) {
    EXPECT_EQ(outcomes[0][op], ErrorCode::kProcFailed) << "op " << op;
  }
}

// FT off is the pre-existing contract: no hang (the watchdog still
// cancels dead hops) but divergent outcomes — the root sees the failed
// edge, ranks past the break succeed. This is the baseline the uniform
// agreement exists to fix.
TEST(FtCollectives, FtOffDivergesButDoesNotHang) {
  auto session = tcp_quad();
  kill_node(*session, 4, 1, 0.0);
  std::mutex mutex;
  std::map<int, Status> statuses;
  session->run([&](Comm comm) {
    std::vector<int> data(16, comm.rank());
    const Status status = comm.bcast(data.data(), 16, Datatype::int32(), 0);
    std::lock_guard<std::mutex> lock(mutex);
    statuses[comm.rank()] = status;
  });
  EXPECT_FALSE(statuses[0].is_ok());  // the send to rank 1 failed
  EXPECT_TRUE(statuses[2].is_ok());   // served before the dead edge
  EXPECT_TRUE(statuses[3].is_ok());
}

TEST(FtAgree, UniformAndOverLiveRanks) {
  auto session = tcp_quad();
  session->run([](Comm comm) {
    enable_ft(comm);
    // Bits 0x3 survive everywhere; bit 0x4 is cleared by rank 2 alone —
    // agreement must AND it away on every rank.
    int flag = comm.rank() == 2 ? 0x3 : 0x7;
    const Status status = comm.agree(&flag);
    EXPECT_TRUE(status.is_ok());
    EXPECT_EQ(flag, 0x3);
  });
}

TEST(FtAgree, KnownFailureTurnsIntoUniformProcFailed) {
  auto session = tcp_quad();
  kill_node(*session, 4, 3, 0.0);
  std::mutex mutex;
  std::map<int, std::pair<ErrorCode, int>> outcomes;
  session->run([&](Comm comm) {
    enable_ft(comm);
    int flag = 0x7;
    const Status status = comm.agree(&flag);
    std::lock_guard<std::mutex> lock(mutex);
    outcomes[comm.rank()] = {status.code(), flag};
  });
  for (int rank : {0, 1, 2}) {
    EXPECT_EQ(outcomes[rank].first, ErrorCode::kProcFailed) << rank;
    EXPECT_EQ(outcomes[rank].second, 0x7) << rank;  // AND over live inputs
  }
}

TEST(FtShrink, SurvivorsContinueAfterRankDeath) {
  auto session = tcp_quad();
  kill_node(*session, 4, 3, 0.0);
  std::mutex mutex;
  std::map<int, int> shrunk_sizes;
  session->run([&](Comm comm) {
    enable_ft(comm);
    // A collective first, so the shrink happens mid-application like in
    // the ULFM recovery loop (notice failure -> shrink -> continue).
    std::vector<int> data(16, comm.rank());
    comm.bcast(data.data(), 16, Datatype::int32(), 0);

    Comm survivors = comm.shrink();
    ASSERT_TRUE(survivors.valid());
    {
      std::lock_guard<std::mutex> lock(mutex);
      shrunk_sizes[comm.rank()] = survivors.size();
    }
    if (comm.rank() == 3) return;  // its partition is just itself

    // The shrunken communicator is fully usable.
    int send = survivors.rank() + 1;
    int sum = 0;
    const Status status = survivors.allreduce(&send, &sum, 1,
                                              Datatype::int32(),
                                              mpi::Op::sum());
    EXPECT_TRUE(status.is_ok());
    EXPECT_EQ(sum, 1 + 2 + 3);
  });
  EXPECT_EQ(shrunk_sizes[0], 3);
  EXPECT_EQ(shrunk_sizes[1], 3);
  EXPECT_EQ(shrunk_sizes[2], 3);
  // The partitioned rank shrinks to its own side of the partition.
  EXPECT_EQ(shrunk_sizes[3], 1);
}

TEST(FtRevoke, RevocationInterruptsAndPropagates) {
  auto session = tcp_quad();
  session->run([](Comm comm) {
    enable_ft(comm);
    Comm work = comm.dup();
    if (comm.rank() == 0) {
      // Rank 1 posts its receive on `work` *before* sending the ready
      // token, so once the token arrives the receive is provably posted
      // and the revocation must interrupt it (not merely pre-empt it).
      int token = 0;
      comm.recv(&token, 1, Datatype::int32(), 1, 99);
      work.revoke();
    } else if (comm.rank() == 1) {
      int payload = 0;
      mpi::Request pending =
          work.irecv(&payload, 1, Datatype::int32(), 0, 5);
      int token = 1;
      comm.send(&token, 1, Datatype::int32(), 0, 99);
      // The revocation must cancel the already-posted receive...
      const auto status = pending.wait();
      EXPECT_EQ(status.error, ErrorCode::kRevoked);
    }
    comm.barrier();
    // ...and poison every later operation on the revoked communicator,
    // on every rank.
    EXPECT_TRUE(work.revoked());
    int value = 0;
    const Status send_status =
        work.send(&value, 1, Datatype::int32(),
                  (comm.rank() + 1) % comm.size(), 0);
    EXPECT_EQ(send_status.code(), ErrorCode::kRevoked);
    const Status coll_status =
        work.bcast(&value, 1, Datatype::int32(), 0);
    EXPECT_EQ(coll_status.code(), ErrorCode::kRevoked);

    // shrink() stays usable on a revoked communicator: it is the
    // recovery path. Nobody is dead, so everyone survives.
    Comm next = work.shrink();
    ASSERT_TRUE(next.valid());
    EXPECT_EQ(next.size(), comm.size());
    EXPECT_TRUE(next.barrier().is_ok());
  });
}

TEST(FtCompat, MpixFacadeRoundTrip) {
  compat::run(sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp), [] {
    MPI_Init(nullptr, nullptr);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);

    int flag = rank == 0 ? 0x5 : 0x7;
    ASSERT_EQ(MPIX_Comm_agree(MPI_COMM_WORLD, &flag), MPI_SUCCESS);
    EXPECT_EQ(flag, 0x5);

    MPI_Comm work = MPI_COMM_NULL;
    MPI_Comm_dup(MPI_COMM_WORLD, &work);
    ASSERT_EQ(MPIX_Comm_revoke(work), MPI_SUCCESS);
    int value = 0;
    EXPECT_EQ(MPI_Bcast(&value, 1, MPI_INT, 0, work), MPIX_ERR_REVOKED);

    MPI_Comm recovered = MPI_COMM_NULL;
    ASSERT_EQ(MPIX_Comm_shrink(work, &recovered), MPI_SUCCESS);
    int size = 0;
    MPI_Comm_size(recovered, &size);
    EXPECT_EQ(size, 4);
    EXPECT_EQ(MPI_Barrier(recovered), MPI_SUCCESS);
    MPI_Finalize();
  });
}

TEST(FtCompat, ProcFailedErrorClassIsDistinct) {
  EXPECT_NE(MPIX_ERR_PROC_FAILED, MPI_ERR_OTHER);
  EXPECT_NE(MPIX_ERR_REVOKED, MPI_ERR_OTHER);
  EXPECT_NE(MPIX_ERR_PROC_FAILED, MPIX_ERR_REVOKED);
}

}  // namespace
}  // namespace madmpi
