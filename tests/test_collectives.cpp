// Collective operation tests across communicator sizes and datatypes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;
using mpi::Op;

/// Heterogeneous session covering smp_plug + all three networks when the
/// rank count allows; falls back to a TCP-only cluster for small counts.
std::unique_ptr<Session> world_of(int ranks) {
  Session::Options options;
  if (ranks >= 4 && ranks % 2 == 0) {
    options.cluster =
        sim::ClusterSpec::cluster_of_clusters(ranks / 4 + 1, ranks / 4 + 1);
    // Trim/adjust: distribute `ranks` across the nodes evenly-ish.
    int remaining = ranks;
    for (auto& node : options.cluster.nodes) {
      node.ranks = 0;
    }
    std::size_t i = 0;
    while (remaining > 0) {
      options.cluster.nodes[i % options.cluster.nodes.size()].ranks += 1;
      --remaining;
      ++i;
    }
    // Drop nodes that ended up with zero ranks? Keep them; they just idle.
    for (auto& node : options.cluster.nodes) {
      node.ranks = std::max(node.ranks, 1);
    }
  } else {
    options.cluster =
        sim::ClusterSpec::homogeneous(std::max(ranks, 2), sim::Protocol::kTcp);
  }
  return std::make_unique<Session>(std::move(options));
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, Barrier) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kSisci);
  Session session(std::move(options));
  std::atomic<int> arrived{0};
  session.run([&](Comm comm) {
    ++arrived;
    comm.barrier();
    // Everyone must have arrived before anyone leaves.
    EXPECT_EQ(arrived.load(), comm.size());
    comm.barrier();
  });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kBip);
  Session session(std::move(options));
  session.run([](Comm comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data(16, comm.rank() == root ? root * 11 : -1);
      comm.bcast(data.data(), 16, Datatype::int32(), root);
      for (int v : data) ASSERT_EQ(v, root * 11);
    }
  });
}

TEST_P(CollectiveSizes, ReduceSumToEveryRoot) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    for (int root = 0; root < n; ++root) {
      std::vector<std::int64_t> mine(8);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = comm.rank() + static_cast<int>(i);
      }
      std::vector<std::int64_t> sum(8, -1);
      comm.reduce(mine.data(), sum.data(), 8, Datatype::int64(), Op::sum(),
                  root);
      if (comm.rank() == root) {
        const std::int64_t ranks_total = static_cast<std::int64_t>(n) *
                                         (n - 1) / 2;
        for (std::size_t i = 0; i < sum.size(); ++i) {
          ASSERT_EQ(sum[i],
                    ranks_total + static_cast<std::int64_t>(i) * n);
        }
      } else {
        for (auto v : sum) ASSERT_EQ(v, -1);  // untouched on non-roots
      }
    }
  });
}

TEST_P(CollectiveSizes, AllreduceMinMax) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    double mine = 100.0 - comm.rank();
    double lo = 0.0, hi = 0.0;
    comm.allreduce(&mine, &lo, 1, Datatype::float64(), Op::min());
    comm.allreduce(&mine, &hi, 1, Datatype::float64(), Op::max());
    EXPECT_EQ(lo, 100.0 - (comm.size() - 1));
    EXPECT_EQ(hi, 100.0);
  });
}

TEST_P(CollectiveSizes, GatherScatterRoundTrip) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    constexpr int kPer = 4;
    std::vector<int> mine(kPer, comm.rank());
    std::vector<int> gathered(static_cast<std::size_t>(kPer) * n, -1);
    comm.gather(mine.data(), kPer, Datatype::int32(), gathered.data(), kPer,
                Datatype::int32(), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        for (int j = 0; j < kPer; ++j) {
          ASSERT_EQ(gathered[static_cast<std::size_t>(r * kPer + j)], r);
        }
      }
      // Transform and scatter back.
      for (auto& v : gathered) v *= 10;
    }
    std::vector<int> back(kPer, -1);
    comm.scatter(gathered.data(), kPer, Datatype::int32(), back.data(), kPer,
                 Datatype::int32(), 0);
    for (int v : back) ASSERT_EQ(v, comm.rank() * 10);
  });
}

TEST_P(CollectiveSizes, AllgatherRing) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kBip);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    std::array<int, 2> mine{comm.rank(), comm.rank() * comm.rank()};
    std::vector<int> all(static_cast<std::size_t>(2 * n), -1);
    comm.allgather(mine.data(), 2, Datatype::int32(), all.data(), 2,
                   Datatype::int32());
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      ASSERT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * r);
    }
  });
}

TEST_P(CollectiveSizes, AlltoallPairwise) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    std::vector<int> out(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) out[d] = comm.rank() * 100 + d;
    std::vector<int> in(static_cast<std::size_t>(n), -1);
    comm.alltoall(out.data(), 1, Datatype::int32(), in.data(), 1,
                  Datatype::int32());
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)], s * 100 + comm.rank());
    }
  });
}

TEST_P(CollectiveSizes, InclusiveScan) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(GetParam(), sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    int mine = comm.rank() + 1;
    int prefix = 0;
    comm.scan(&mine, &prefix, 1, Datatype::int32(), Op::sum());
    EXPECT_EQ(prefix, (comm.rank() + 1) * (comm.rank() + 2) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(2, 3, 5, 8),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(Collectives, GathervRaggedBlocks) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int mine_count = comm.rank() + 1;  // 1, 2, 3, 4 elements
    std::vector<int> mine(static_cast<std::size_t>(mine_count), comm.rank());
    std::vector<int> counts{1, 2, 3, 4};
    std::vector<int> displs{0, 2, 5, 9};  // with holes
    std::vector<int> out(14, -1);
    comm.gatherv(mine.data(), mine_count, Datatype::int32(), out.data(),
                 counts, displs, Datatype::int32(), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(out[0], 0);
      EXPECT_EQ(out[1], -1);  // hole
      EXPECT_EQ(out[2], 1);
      EXPECT_EQ(out[3], 1);
      EXPECT_EQ(out[5], 2);
      EXPECT_EQ(out[9], 3);
      EXPECT_EQ(out[12], 3);
      EXPECT_EQ(out[13], -1);
    }
  });
}

TEST(Collectives, ScattervRaggedBlocks) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<int> counts{3, 1, 2};
    std::vector<int> displs{0, 4, 6};
    std::vector<int> source;
    if (comm.rank() == 0) {
      source = {10, 11, 12, -1, 20, -1, 30, 31};
    }
    std::vector<int> mine(static_cast<std::size_t>(counts[comm.rank()]), -9);
    comm.scatterv(source.data(), counts, displs, Datatype::int32(),
                  mine.data(), counts[comm.rank()], Datatype::int32(), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(mine, (std::vector<int>{10, 11, 12}));
    } else if (comm.rank() == 1) {
      EXPECT_EQ(mine, (std::vector<int>{20}));
    } else {
      EXPECT_EQ(mine, (std::vector<int>{30, 31}));
    }
  });
}

TEST(Collectives, AllgathervRagged) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kBip);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int mine_count = 3 - comm.rank();  // 3, 2, 1
    std::vector<double> mine(static_cast<std::size_t>(mine_count),
                             comm.rank() + 0.5);
    std::vector<int> counts{3, 2, 1};
    std::vector<int> displs{0, 3, 5};
    std::vector<double> all(6, -1.0);
    comm.allgatherv(mine.data(), mine_count, Datatype::float64(), all.data(),
                    counts, displs, Datatype::float64());
    EXPECT_EQ(all, (std::vector<double>{0.5, 0.5, 0.5, 1.5, 1.5, 2.5}));
  });
}

TEST(Collectives, ReduceScatterBlock) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    constexpr int kPer = 2;
    std::vector<int> contribution(static_cast<std::size_t>(kPer * n));
    for (int i = 0; i < kPer * n; ++i) {
      contribution[static_cast<std::size_t>(i)] = comm.rank() + i;
    }
    std::vector<int> mine(kPer, -1);
    comm.reduce_scatter_block(contribution.data(), mine.data(), kPer,
                              Datatype::int32(), Op::sum());
    const int rank_sum = n * (n - 1) / 2;
    for (int j = 0; j < kPer; ++j) {
      const int slot = comm.rank() * kPer + j;
      ASSERT_EQ(mine[static_cast<std::size_t>(j)], rank_sum + slot * n);
    }
  });
}

TEST(Collectives, UserOpInAllreduce) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    // (max, location) pairs via a user op.
    auto maxloc = Op::user([](const void* in, void* inout, int count,
                              const mpi::Datatype&) {
      const auto* a = static_cast<const double*>(in);
      auto* b = static_cast<double*>(inout);
      for (int i = 0; i < count; ++i) {
        if (a[2 * i] > b[2 * i]) {
          b[2 * i] = a[2 * i];
          b[2 * i + 1] = a[2 * i + 1];
        }
      }
    });
    // Rank 2 holds the max.
    double mine[2] = {comm.rank() == 2 ? 99.0 : 1.0 * comm.rank(),
                      1.0 * comm.rank()};
    double best[2] = {-1, -1};
    comm.allreduce(mine, best, 1,
                   Datatype::contiguous(2, Datatype::float64()), maxloc);
    EXPECT_EQ(best[0], 99.0);
    EXPECT_EQ(best[1], 2.0);
  });
}

TEST(Collectives, BcastDerivedDatatype) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const auto evens = Datatype::vector(4, 1, 2, Datatype::int32());
    std::vector<int> data(8, -1);
    if (comm.rank() == 0) {
      for (int i = 0; i < 8; ++i) data[static_cast<std::size_t>(i)] = i;
    }
    comm.bcast(data.data(), 1, evens, 0);
    EXPECT_EQ(data[0], 0);
    EXPECT_EQ(data[2], 2);
    EXPECT_EQ(data[4], 4);
    EXPECT_EQ(data[6], 6);
    if (comm.rank() != 0) {
      EXPECT_EQ(data[1], -1);  // odd slots never transmitted
    }
  });
}

TEST(Collectives, LargePayloadAllreduceOnHeterogeneousCluster) {
  auto session = world_of(6);
  session->run([](Comm comm) {
    constexpr int kCount = 32 * 1024;  // rendezvous territory
    std::vector<double> mine(kCount, 1.0);
    std::vector<double> total(kCount, 0.0);
    comm.allreduce(mine.data(), total.data(), kCount, Datatype::float64(),
                   Op::sum());
    for (double v : total) ASSERT_EQ(v, static_cast<double>(comm.size()));
  });
}

}  // namespace
}  // namespace madmpi
