// Device-layer tests: ch_self, smp_plug, ch_mad internals, switch-point
// election, channel routing, shutdown protocol.
#include <gtest/gtest.h>

#include <numeric>

#include "core/session.hpp"
#include "core/switchpoint.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

TEST(SwitchPoint, PerNetworkValuesMatchThePaper) {
  EXPECT_EQ(core::network_switch_point(sim::Protocol::kTcp), 64u * 1024u);
  EXPECT_EQ(core::network_switch_point(sim::Protocol::kSisci), 8u * 1024u);
  EXPECT_EQ(core::network_switch_point(sim::Protocol::kBip), 7u * 1024u);
}

TEST(SwitchPoint, SciWinsTheElection) {
  using sim::Protocol;
  // "the switch point value for the ch_mad device is 8 KB (if SCI is a
  //  network supported within the material configuration)"
  EXPECT_EQ(core::elect_switch_point({Protocol::kTcp, Protocol::kSisci}),
            8u * 1024u);
  EXPECT_EQ(core::elect_switch_point(
                {Protocol::kSisci, Protocol::kBip, Protocol::kTcp}),
            8u * 1024u);
  // "the SCI switch point value is preferred to the Myrinet value in the
  //  case of an hybrid SCI-Myrinet material configuration"
  EXPECT_EQ(core::elect_switch_point({Protocol::kBip, Protocol::kSisci}),
            8u * 1024u);
}

TEST(SwitchPoint, OtherwiseMostPerformantNetworkWins) {
  using sim::Protocol;
  EXPECT_EQ(core::elect_switch_point({Protocol::kTcp}), 64u * 1024u);
  EXPECT_EQ(core::elect_switch_point({Protocol::kBip, Protocol::kTcp}),
            7u * 1024u);
  EXPECT_EQ(core::elect_switch_point({Protocol::kBip}), 7u * 1024u);
}

TEST(SwitchPoint, OverrideHook) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  options.switch_point_override = 1234;
  Session session(std::move(options));
  EXPECT_EQ(session.ch_mad()->switch_point(), 1234u);
  EXPECT_EQ(session.ch_mad()->rendezvous_threshold(), 1234u);
}

TEST(Routing, PrefersTheFastestCommonNetwork) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  Session session(std::move(options));
  const auto& router = session.ch_mad()->router();
  EXPECT_EQ(router.route(0, 1)->protocol(), sim::Protocol::kSisci);
  EXPECT_EQ(router.route(2, 3)->protocol(), sim::Protocol::kBip);
  EXPECT_EQ(router.route(0, 3)->protocol(), sim::Protocol::kTcp);
  EXPECT_EQ(router.route(1, 2)->protocol(), sim::Protocol::kTcp);
  EXPECT_EQ(router.protocols().size(), 3u);
}

TEST(Routing, NoCommonNetworkIsUnreachable) {
  // Two disjoint 2-node islands (SCI pair and Myrinet pair, no TCP).
  sim::ClusterSpec spec;
  for (int i = 0; i < 4; ++i) {
    sim::NodeSpec node;
    node.name = "n" + std::to_string(i);
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"n2", "n3"}});
  Session::Options options;
  options.cluster = spec;
  Session session(std::move(options));
  EXPECT_EQ(session.ch_mad()->router().route(0, 2), nullptr);
  EXPECT_FALSE(session.ch_mad()->reaches(0, 2));
  EXPECT_TRUE(session.ch_mad()->reaches(0, 1));
  EXPECT_DEATH(session.device_for(0, 2), "unreachable");
}

TEST(Devices, SelectionByLocality) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp, 2);
  Session session(std::move(options));
  // Ranks 0,1 on node0; ranks 2,3 on node1.
  EXPECT_STREQ(session.device_for(0, 0).name(), "ch_self");
  EXPECT_STREQ(session.device_for(0, 1).name(), "smp_plug");
  EXPECT_STREQ(session.device_for(0, 2).name(), "ch_mad");
  EXPECT_STREQ(session.device_for(3, 1).name(), "ch_mad");
  EXPECT_STREQ(session.device_for(2, 3).name(), "smp_plug");
}

TEST(Devices, ChSelfRoundTripAndOrdering) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    if (comm.rank() != 0) return;
    std::vector<mpi::Request> recvs;
    std::vector<int> in(5, -1);
    for (int i = 0; i < 5; ++i) {
      recvs.push_back(
          comm.irecv(&in[static_cast<std::size_t>(i)], 1, Datatype::int32(),
                     0, 1));
    }
    for (int i = 0; i < 5; ++i) {
      comm.send(&i, 1, Datatype::int32(), 0, 1);
    }
    mpi::Request::wait_all(recvs);
    EXPECT_EQ(in, (std::vector<int>{0, 1, 2, 3, 4}));
  });
}

TEST(Devices, SmpPlugEagerAndRendezvous) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, 2);
  options.cluster.networks.clear();  // single node: no network needed
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int peer = 1 - comm.rank();
    // Eager: below the shared segment size.
    {
      std::vector<int> out(64, comm.rank());
      std::vector<int> in(64, -1);
      comm.sendrecv(out.data(), 64, Datatype::int32(), peer, 0, in.data(),
                    64, Datatype::int32(), peer, 0);
      for (int v : in) ASSERT_EQ(v, peer);
    }
    // Rendezvous: above the 32 KB segment (sender parks until recv posts).
    {
      constexpr int kCount = 32 * 1024;  // 128 KB
      std::vector<int> out(kCount);
      std::iota(out.begin(), out.end(), comm.rank() * 1000000);
      std::vector<int> in(kCount, -1);
      auto req = comm.irecv(in.data(), kCount, Datatype::int32(), peer, 1);
      comm.send(out.data(), kCount, Datatype::int32(), peer, 1);
      req.wait();
      EXPECT_EQ(in.front(), peer * 1000000);
      EXPECT_EQ(in.back(), peer * 1000000 + kCount - 1);
    }
  });
}

TEST(Devices, ChMadCountsModes) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session session(std::move(options));
  auto* device = session.ch_mad();
  session.run([](Comm comm) {
    std::vector<std::byte> small(100), large(100000);
    if (comm.rank() == 0) {
      comm.send(small.data(), 100, Datatype::byte(), 1, 0);
      comm.send(large.data(), 100000, Datatype::byte(), 1, 0);
    } else {
      comm.recv(small.data(), 100, Datatype::byte(), 0, 0);
      comm.recv(large.data(), 100000, Datatype::byte(), 0, 0);
    }
  });
  EXPECT_EQ(device->eager_sent(), 1u);
  EXPECT_EQ(device->rendezvous_sent(), 1u);
}

TEST(Devices, SessionSurvivesMultipleRuns) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
  Session session(std::move(options));
  for (int round = 0; round < 3; ++round) {
    session.run([round](Comm comm) {
      int token = round;
      if (comm.rank() == 0) {
        comm.send(&token, 1, Datatype::int32(), 1, round);
      } else {
        int got = -1;
        comm.recv(&got, 1, Datatype::int32(), 0, round);
        EXPECT_EQ(got, round);
      }
    });
  }
}

TEST(Devices, CleanShutdownWithIdleChannels) {
  // Channels that carried zero traffic must still terminate cleanly
  // (TERM broadcast reaches every poller).
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  {
    Session session(std::move(options));
    session.run([](Comm) {});
  }  // destructor runs shutdown; the test passes if it does not hang
  SUCCEED();
}

TEST(Devices, ResetClocks) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) { comm.barrier(); });
  EXPECT_GT(session.node_of(0).clock().now(), 0.0);
  session.reset_clocks();
  EXPECT_EQ(session.node_of(0).clock().now(), 0.0);
  EXPECT_EQ(session.node_of(1).clock().now(), 0.0);
}

}  // namespace
}  // namespace madmpi
