// The hierarchical collective engine (PR 9): topology digest, hierarchical
// and NIC-offloaded algorithms, kAuto resolution (env override > tuner
// table > heuristic), the nonblocking-collective schedules, and the FT
// interop pin (FT mode always falls back to the flat survivable path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::AllreduceAlgorithm;
using mpi::BarrierAlgorithm;
using mpi::BcastAlgorithm;
using mpi::CollectiveConfig;
using mpi::Comm;
using mpi::Datatype;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

/// `clusters` SCI islands of `nodes_per` machines, every machine also on
/// the Fast-Ethernet interconnect — the paper's cluster-of-clusters with a
/// configurable cluster count (cluster_of_clusters() hard-codes two).
sim::ClusterSpec meta_cluster(int clusters, int nodes_per, int ranks_per) {
  sim::ClusterSpec spec;
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (int c = 0; c < clusters; ++c) {
    sim::NetworkSpec sci;
    sci.protocol = sim::Protocol::kSisci;
    sci.adapter = static_cast<adapter_id_t>(c);
    for (int n = 0; n < nodes_per; ++n) {
      sim::NodeSpec node;
      node.name = "c" + std::to_string(c) + "n" + std::to_string(n);
      node.ranks = ranks_per;
      spec.nodes.push_back(node);
      sci.members.push_back(node.name);
      tcp.members.push_back(node.name);
    }
    spec.networks.push_back(std::move(sci));
  }
  spec.networks.push_back(std::move(tcp));
  return spec;
}

/// Misaligned variant: `ranks` total, spread over `clusters` SCI islands as
/// evenly as possible with `ranks_per`-rank machines (the last machine of a
/// cluster takes the remainder). With non-power-of-two cluster and node
/// sizes, a flat binomial tree's rank±2^k edges cross the interconnect at
/// many levels — the shape where hierarchy matters. (On power-of-two-
/// aligned shapes the flat binomial tree IS the hierarchical tree and the
/// two time identically.)
sim::ClusterSpec misaligned_meta_cluster(int ranks, int clusters,
                                         int ranks_per) {
  sim::ClusterSpec spec;
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (int c = 0; c < clusters; ++c) {
    int remaining = ranks / clusters + (c < ranks % clusters ? 1 : 0);
    sim::NetworkSpec sci;
    sci.protocol = sim::Protocol::kSisci;
    sci.adapter = static_cast<adapter_id_t>(c);
    for (int n = 0; remaining > 0; ++n) {
      sim::NodeSpec node;
      node.name = "c" + std::to_string(c) + "n" + std::to_string(n);
      node.ranks = std::min(ranks_per, remaining);
      remaining -= node.ranks;
      spec.nodes.push_back(node);
      sci.members.push_back(node.name);
      tcp.members.push_back(node.name);
    }
    spec.networks.push_back(std::move(sci));
  }
  spec.networks.push_back(std::move(tcp));
  return spec;
}

TEST(CollTopo, MetaClusterDigest) {
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);  // 8 ranks, 4 nodes, 2 clusters
  Session session(std::move(options));
  session.run([](Comm comm) {
    const mpi::CollTopo& topo = comm.coll_topo();
    ASSERT_EQ(topo.islands.size(), 4u);
    ASSERT_EQ(topo.clusters.size(), 2u);
    EXPECT_FALSE(topo.single_island());
    // Mixed SCI/TCP leader fabric: no homogeneous offload tree.
    EXPECT_FALSE(topo.offload_capable);
    // Islands hold node-major rank pairs; leaders are the even ranks.
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_EQ(topo.islands[i].members.size(), 2u);
      EXPECT_EQ(topo.leader_of_island(static_cast<int>(i)),
                static_cast<rank_t>(2 * i));
    }
    // Clusters pair islands {0,1} and {2,3} (the two SCI networks).
    EXPECT_EQ(topo.islands[0].cluster, topo.islands[1].cluster);
    EXPECT_EQ(topo.islands[2].cluster, topo.islands[3].cluster);
    EXPECT_NE(topo.islands[0].cluster, topo.islands[2].cluster);
  });
}

TEST(CollTopo, HomogeneousSciIsOffloadCapable) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const mpi::CollTopo& topo = comm.coll_topo();
    EXPECT_EQ(topo.islands.size(), 4u);
    EXPECT_TRUE(topo.single_cluster());
    EXPECT_TRUE(topo.offload_capable);
    EXPECT_GT(topo.offload_bytes_per_us, 0.0);
  });
}

TEST(CollEngine, AutoResolvesHierAcrossIslandsFlatWithin) {
  {
    Session::Options options;
    options.cluster = meta_cluster(2, 2, 2);
    Session session(std::move(options));
    session.run([](Comm comm) {
      EXPECT_EQ(comm.resolve_bcast(64 * 1024), BcastAlgorithm::kHierarchical);
      EXPECT_EQ(comm.resolve_allreduce(64 * 1024),
                AllreduceAlgorithm::kHierarchical);
      EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kHierarchical);
    });
  }
  {
    Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, 8);
    Session session(std::move(options));
    session.run([](Comm comm) {
      // Single island: the historical flat algorithms, bit-identical.
      EXPECT_EQ(comm.resolve_bcast(4), BcastAlgorithm::kBinomial);
      EXPECT_EQ(comm.resolve_allreduce(4), AllreduceAlgorithm::kReduceBcast);
      EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kDissemination);
    });
  }
}

TEST(CollEngine, AutoElectsOffloadBarrierOnCapableFabric) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kOffload);
    CollectiveConfig config = comm.collective_config();
    config.offload = false;  // MADMPI_COLL_OFFLOAD=0 equivalent
    comm.set_collective_config(config);
    EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kHierarchical);
  });
}

TEST(CollEngine, EnvOverrideBeatsAuto) {
  ScopedEnv bcast_env("MADMPI_COLL_BCAST", "linear");
  ScopedEnv barrier_env("MADMPI_COLL_BARRIER", "dissemination");
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    EXPECT_EQ(comm.resolve_bcast(64 * 1024), BcastAlgorithm::kLinear);
    EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kDissemination);
    // The overridden algorithm still delivers.
    std::vector<int> data(128, comm.rank() == 1 ? 41 : -1);
    if (comm.rank() == 1) std::iota(data.begin(), data.end(), 5);
    comm.bcast(data.data(), 128, Datatype::int32(), 1);
    for (int i = 0; i < 128; ++i) ASSERT_EQ(data[i], 5 + i);
  });
}

// Hierarchical and offloaded algorithms must agree with the flat ones
// bit-for-bit (payloads travel as opaque host-order bytes; integer ops are
// exact), including re-rooting at every rank.
TEST(CollEngine, HierMatchesFlatOnEveryRoot) {
  Session::Options options;
  options.cluster = meta_cluster(3, 2, 2);  // 12 ranks, misaligned islands
  Session session(std::move(options));
  session.run([](Comm comm) {
    constexpr int kCount = 1000;
    for (int root = 0; root < comm.size(); ++root) {
      CollectiveConfig config;
      config.bcast = BcastAlgorithm::kHierarchical;
      config.allreduce = AllreduceAlgorithm::kHierarchical;
      config.barrier = BarrierAlgorithm::kHierarchical;
      comm.set_collective_config(config);

      std::vector<int> data(kCount, -1);
      if (comm.rank() == root) {
        for (int i = 0; i < kCount; ++i) data[i] = root * 100000 + i;
      }
      comm.bcast(data.data(), kCount, Datatype::int32(), root);
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(data[i], root * 100000 + i) << "root " << root;
      }

      std::vector<std::int64_t> mine(kCount), total(kCount, -1);
      for (int i = 0; i < kCount; ++i) mine[i] = comm.rank() + i;
      comm.allreduce(mine.data(), total.data(), kCount, Datatype::int64(),
                     mpi::Op::sum());
      const std::int64_t n = comm.size();
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(total[i], n * (n - 1) / 2 + n * i);
      }

      std::vector<std::int64_t> reduced(kCount, -7);
      comm.reduce(mine.data(), reduced.data(), kCount, Datatype::int64(),
                  mpi::Op::sum(), root);
      if (comm.rank() == root) {
        for (int i = 0; i < kCount; ++i) {
          ASSERT_EQ(reduced[i], n * (n - 1) / 2 + n * i);
        }
      }
      comm.barrier();
    }
  });
}

TEST(CollEngine, OffloadBcastAndBarrierDeliver) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(5, sim::Protocol::kSisci, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    CollectiveConfig config;
    config.bcast = BcastAlgorithm::kOffload;
    config.barrier = BarrierAlgorithm::kOffload;
    comm.set_collective_config(config);
    for (int root : {0, 3, 9}) {
      std::vector<int> data(512, -1);
      if (comm.rank() == root) std::iota(data.begin(), data.end(), root);
      comm.bcast(data.data(), 512, Datatype::int32(), root);
      for (int i = 0; i < 512; ++i) ASSERT_EQ(data[i], root + i);
      comm.barrier();
    }
  });
}

TEST(CollEngine, OffloadBarrierBeatsHostTrees) {
  // Acceptance pin: the modeled NIC combine/forward tree beats both host
  // algorithms at every probed scale (the barrier is pure latency, which
  // is exactly what the firmware tree removes).
  for (int nodes : {4, 8, 16}) {
    auto measure = [nodes](BarrierAlgorithm algorithm) {
      Session::Options options;
      options.cluster =
          sim::ClusterSpec::homogeneous(nodes, sim::Protocol::kSisci, 2);
      Session session(std::move(options));
      usec_t elapsed = 0.0;
      session.run([&](Comm comm) {
        CollectiveConfig config;
        config.barrier = algorithm;
        comm.set_collective_config(config);
        comm.barrier();  // warm-up / sync
        const usec_t t0 = comm.wtime_us();
        comm.barrier();
        if (comm.rank() == 0) elapsed = comm.wtime_us() - t0;
      });
      return elapsed;
    };
    const usec_t dissemination = measure(BarrierAlgorithm::kDissemination);
    const usec_t hier = measure(BarrierAlgorithm::kHierarchical);
    const usec_t offload = measure(BarrierAlgorithm::kOffload);
    EXPECT_LT(offload, dissemination) << nodes << " nodes";
    EXPECT_LT(offload, hier) << nodes << " nodes";
  }
}

TEST(CollEngine, HierBcastBeatsFlatOnMetaCluster) {
  ScopedEnv engine("MADMPI_ENGINE", "sharded");
  auto measure = [](BcastAlgorithm algorithm) {
    Session::Options options;
    // 256 ranks, misaligned: 3 clusters of 86/85/85 ranks on 6-rank nodes.
    options.cluster = misaligned_meta_cluster(256, 3, 6);
    Session session(std::move(options));
    usec_t elapsed = 0.0;
    session.run([&](Comm comm) {
      CollectiveConfig config;
      config.bcast = algorithm;
      comm.set_collective_config(config);
      std::vector<std::byte> payload(64 * 1024);
      comm.bcast(payload.data(), static_cast<int>(payload.size()),
                 Datatype::byte(), 0);  // warm-up
      comm.barrier();
      const usec_t t0 = comm.wtime_us();
      comm.bcast(payload.data(), static_cast<int>(payload.size()),
                 Datatype::byte(), 0);
      // Completion latency is the *slowest* rank's elapsed — the root's
      // own elapsed only covers its sends.
      usec_t local = comm.wtime_us() - t0;
      usec_t slowest = 0.0;
      comm.allreduce(&local, &slowest, 1, Datatype::float64(),
                     mpi::Op::max());
      if (comm.rank() == 0) elapsed = slowest;
    });
    return elapsed;
  };
  const usec_t flat = measure(BcastAlgorithm::kBinomial);
  const usec_t hier = measure(BcastAlgorithm::kHierarchical);
  EXPECT_LT(hier, flat);
}

// --- Nonblocking collectives -------------------------------------------

TEST(CollEngine, IcollsCompleteWithCorrectResults) {
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<int> bcast_data(777, comm.rank() == 2 ? 0 : -1);
    if (comm.rank() == 2) std::iota(bcast_data.begin(), bcast_data.end(), 3);
    mpi::Request bcast_req =
        comm.ibcast(bcast_data.data(), 777, Datatype::int32(), 2);

    std::vector<double> mine(33), total(33, -1.0);
    for (int i = 0; i < 33; ++i) mine[i] = comm.rank() + i;
    mpi::Request reduce_req = comm.iallreduce(
        mine.data(), total.data(), 33, Datatype::float64(), mpi::Op::sum());

    mpi::MpiStatus status = bcast_req.wait();
    EXPECT_EQ(status.error, ErrorCode::kOk);
    status = reduce_req.wait();
    EXPECT_EQ(status.error, ErrorCode::kOk);

    for (int i = 0; i < 777; ++i) ASSERT_EQ(bcast_data[i], 3 + i);
    const double n = comm.size();
    for (int i = 0; i < 33; ++i) {
      ASSERT_NEAR(total[i], n * (n - 1) / 2.0 + n * i, 1e-9);
    }

    mpi::Request barrier_req = comm.ibarrier();
    EXPECT_EQ(barrier_req.wait().error, ErrorCode::kOk);
  });
}

TEST(CollEngine, ConcurrentIcollsDoNotCrossMatch) {
  // Three operations in flight at once: the per-instance tags must keep
  // their wire traffic apart even though they share the collective
  // context.
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 1);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<std::int64_t> a(100), a_out(100), b(100), b_out(100);
    for (int i = 0; i < 100; ++i) {
      a[i] = comm.rank() * 2 + i;
      b[i] = comm.rank() * 3 - i;
    }
    std::vector<int> c(256, comm.rank() == 0 ? 11 : -1);
    mpi::Request ra = comm.iallreduce(a.data(), a_out.data(), 100,
                                      Datatype::int64(), mpi::Op::sum());
    mpi::Request rb = comm.iallreduce(b.data(), b_out.data(), 100,
                                      Datatype::int64(), mpi::Op::max());
    mpi::Request rc = comm.ibcast(c.data(), 256, Datatype::int32(), 0);
    // Complete in reverse start order.
    EXPECT_EQ(rc.wait().error, ErrorCode::kOk);
    EXPECT_EQ(rb.wait().error, ErrorCode::kOk);
    EXPECT_EQ(ra.wait().error, ErrorCode::kOk);
    const std::int64_t n = comm.size();
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(a_out[i], n * (n - 1) + n * i);
      ASSERT_EQ(b_out[i], (n - 1) * 3 - i);
    }
    for (int i = 0; i < 256; ++i) ASSERT_EQ(c[i], 11);
  });
}

TEST(CollEngine, SpinTestDrivesIcollProgress) {
  // Satellite pin: MPI_Test-style spin loops must complete on both
  // engines — Request::test yields the shard, so a fiber polling its own
  // i-coll cannot starve the peers that complete it (the sharded ctest
  // registration runs this same body under MADMPI_ENGINE=sharded).
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<int> mine(50), total(50, -1);
    for (int i = 0; i < 50; ++i) mine[i] = comm.rank() + i;
    mpi::Request req = comm.iallreduce(mine.data(), total.data(), 50,
                                       Datatype::int32(), mpi::Op::sum());
    mpi::MpiStatus status;
    while (!req.test(&status)) {
    }
    EXPECT_EQ(status.error, ErrorCode::kOk);
    const int n = comm.size();
    for (int i = 0; i < 50; ++i) ASSERT_EQ(total[i], n * (n - 1) / 2 + n * i);
  });
}

// --- Auto-tuner ---------------------------------------------------------

TEST(CollTuner, ProducesDeterministicValidTable) {
  // Exact run-to-run determinism holds exactly where the engine's replay
  // contract does: single-node topologies, where every transfer carries a
  // causal virtual stamp and no channel poller races the drain order. On
  // multi-node fabrics the probes are only statistically stable (min-of-
  // reps + decisive-margin hysteresis); MultiNodeTableIsValid covers that.
  auto tune_once = [] {
    Session::Options options;
    options.cluster =
        sim::ClusterSpec::homogeneous(1, sim::Protocol::kSisci, 8);
    Session session(std::move(options));
    session.run([](Comm comm) { mpi::tune_collectives(comm); });
    return session.coll_decision_table();
  };
  const mpi::CollDecisionTable first = tune_once();
  const mpi::CollDecisionTable second = tune_once();
  EXPECT_TRUE(first.valid);
  EXPECT_NE(first.serialize(), "untuned");
  EXPECT_EQ(first.serialize(), second.serialize());
}

TEST(CollTuner, MultiNodeTableIsValid) {
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) { mpi::tune_collectives(comm); });
  const mpi::CollDecisionTable table = session.coll_decision_table();
  EXPECT_TRUE(table.valid);
  EXPECT_NE(table.serialize(), "untuned");
}

TEST(CollTuner, TableDrivesAutoResolution) {
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) { mpi::tune_collectives(comm); });
  const mpi::CollDecisionTable table = session.coll_decision_table();
  ASSERT_TRUE(table.valid);
  session.run([&table](Comm comm) {
    EXPECT_EQ(comm.resolve_bcast(64), table.bcast_small);
    EXPECT_EQ(comm.resolve_bcast(1 << 20), table.bcast_large);
    EXPECT_EQ(comm.resolve_allreduce(64), table.allreduce_small);
    EXPECT_EQ(comm.resolve_allreduce(1 << 20), table.allreduce_large);
    EXPECT_EQ(comm.resolve_barrier(), table.barrier);
  });
}

TEST(CollTuner, EnvRunsTunerBeforeRankMain) {
  ScopedEnv tune_env("MADMPI_COLL_TUNE", "1");
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 1);
  Session session(std::move(options));
  session.run([](Comm comm) {
    // rank_main starts with the table already installed.
    int one = 1, sum = 0;
    comm.allreduce(&one, &sum, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_EQ(sum, comm.size());
  });
  EXPECT_TRUE(session.coll_decision_table().valid);
}

// --- FT interop guard ---------------------------------------------------

TEST(CollEngine, FtModeResolvesToFlatSurvivablePath) {
  // Satellite pin: MADMPI_FT_COLLECTIVES=1 must force the flat survivable
  // algorithms regardless of topology, tuner table or explicit hierarchy
  // selection — the digest could diverge across ranks under faults, so FT
  // mode refuses it by construction.
  Session::Options options;
  options.cluster = meta_cluster(2, 2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    CollectiveConfig config;
    config.fault_tolerant = true;
    config.bcast = BcastAlgorithm::kHierarchical;
    config.allreduce = AllreduceAlgorithm::kHierarchical;
    config.barrier = BarrierAlgorithm::kOffload;
    comm.set_collective_config(config);
    EXPECT_EQ(comm.resolve_bcast(64 * 1024), BcastAlgorithm::kBinomial);
    EXPECT_EQ(comm.resolve_allreduce(64 * 1024),
              AllreduceAlgorithm::kReduceBcast);
    EXPECT_EQ(comm.resolve_barrier(), BarrierAlgorithm::kDissemination);
    // And the wrapped collective still delivers.
    std::vector<int> data(64, comm.rank() == 0 ? 9 : -1);
    comm.bcast(data.data(), 64, Datatype::int32(), 0);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(data[i], 9);
  });
}

}  // namespace
}  // namespace madmpi
