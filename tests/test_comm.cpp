// Communicator management: dup, split, context isolation, wtime.
#include <gtest/gtest.h>

#include <vector>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::unique_ptr<Session> session_of(int ranks) {
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(ranks, sim::Protocol::kSisci);
  return std::make_unique<Session>(std::move(options));
}

TEST(Comm, WorldBasics) {
  auto session = session_of(3);
  session->run([](Comm comm) {
    EXPECT_TRUE(comm.valid());
    EXPECT_EQ(comm.size(), 3);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 3);
    EXPECT_EQ(comm.global_rank_of(comm.rank()), comm.rank());
    EXPECT_EQ(comm.context(), 0);
  });
}

TEST(Comm, DupGetsFreshContextButSameGroup) {
  auto session = session_of(2);
  session->run([](Comm comm) {
    Comm dup = comm.dup();
    EXPECT_EQ(dup.size(), comm.size());
    EXPECT_EQ(dup.rank(), comm.rank());
    EXPECT_NE(dup.context(), comm.context());

    // Traffic on the dup must not match receives on the world.
    if (comm.rank() == 0) {
      int value = 1;
      dup.send(&value, 1, Datatype::int32(), 1, 0);
      value = 2;
      comm.send(&value, 1, Datatype::int32(), 1, 0);
    } else {
      int from_world = 0, from_dup = 0;
      comm.recv(&from_world, 1, Datatype::int32(), 0, 0);
      dup.recv(&from_dup, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(from_world, 2);
      EXPECT_EQ(from_dup, 1);
    }
  });
}

TEST(Comm, RepeatedDupsGetDistinctMatchingContexts) {
  auto session = session_of(2);
  session->run([](Comm comm) {
    Comm a = comm.dup();
    Comm b = comm.dup();
    EXPECT_NE(a.context(), b.context());
    // All ranks must agree on the derived ids: verify by exchanging them.
    int my_ids[2] = {a.context(), b.context()};
    int peer_ids[2] = {-1, -1};
    const int peer = 1 - comm.rank();
    comm.sendrecv(my_ids, 2, Datatype::int32(), peer, 0, peer_ids, 2,
                  Datatype::int32(), peer, 0);
    EXPECT_EQ(my_ids[0], peer_ids[0]);
    EXPECT_EQ(my_ids[1], peer_ids[1]);
  });
}

TEST(Comm, SplitEvenOdd) {
  auto session = session_of(5);
  session->run([](Comm comm) {
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_TRUE(half.valid());
    const int expected_size = comm.rank() % 2 == 0 ? 3 : 2;
    EXPECT_EQ(half.size(), expected_size);
    EXPECT_EQ(half.rank(), comm.rank() / 2);
    EXPECT_EQ(half.global_rank_of(half.rank()), comm.rank());

    // A collective inside each half.
    int mine = comm.rank();
    int sum = 0;
    half.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3);
  });
}

TEST(Comm, SplitReversedKeysReorderRanks) {
  auto session = session_of(4);
  session->run([](Comm comm) {
    Comm reversed = comm.split(0, -comm.rank());
    EXPECT_EQ(reversed.size(), 4);
    EXPECT_EQ(reversed.rank(), 3 - comm.rank());
  });
}

TEST(Comm, SplitUndefinedColorYieldsInvalid) {
  auto session = session_of(3);
  session->run([](Comm comm) {
    Comm sub = comm.split(comm.rank() == 0 ? -1 : 0, 0);
    if (comm.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
    }
  });
}

TEST(Comm, NestedSplits) {
  auto session = session_of(8);
  session->run([](Comm comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    // Ring exchange in the quarter to prove it is wired correctly.
    const int peer = 1 - quarter.rank();
    int token = comm.rank();
    int incoming = -1;
    quarter.sendrecv(&token, 1, Datatype::int32(), peer, 0, &incoming, 1,
                     Datatype::int32(), peer, 0);
    const int expected_peer_world =
        (comm.rank() / 2) * 2 + (1 - comm.rank() % 2);
    EXPECT_EQ(incoming, expected_peer_world);
  });
}

TEST(Comm, WtimeMonotonicAndPositiveAfterTraffic) {
  auto session = session_of(2);
  session->run([](Comm comm) {
    const double t0 = comm.wtime();
    EXPECT_GE(t0, 0.0);
    comm.barrier();
    const double t1 = comm.wtime();
    EXPECT_GT(t1, t0);
    EXPECT_DOUBLE_EQ(comm.wtime_us(), comm.wtime() * 1e6);
  });
}

TEST(Comm, SplitGroupCollectivesDoNotCrossTalk) {
  auto session = session_of(4);
  session->run([](Comm comm) {
    Comm mine = comm.split(comm.rank() % 2, comm.rank());
    // Both halves run a bcast "simultaneously" with different payloads.
    int value = mine.rank() == 0 ? (comm.rank() % 2 == 0 ? 111 : 222) : -1;
    mine.bcast(&value, 1, Datatype::int32(), 0);
    EXPECT_EQ(value, comm.rank() % 2 == 0 ? 111 : 222);
  });
}

}  // namespace
}  // namespace madmpi
