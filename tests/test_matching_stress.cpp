// Matching-engine stress over full sessions: wildcard and specific-source
// receives interleaved with dense isend trains from many peers, asserting
// the MPI non-overtaking rule and status correctness under queue depths
// that make the matcher's bucket/wildcard interplay do real work.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;
using mpi::Request;

std::unique_ptr<Session> cluster(int nodes, sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(nodes, protocol);
  return std::make_unique<Session>(std::move(options));
}

// Payloads encode (sender, sequence) so any receive can be audited.
int encode(rank_t src, int seq) { return static_cast<int>(src) * 10000 + seq; }
rank_t sender_of(int payload) { return payload / 10000; }
int seq_of(int payload) { return payload % 10000; }

// Every sender fires a train; the receiver posts one specific-source
// receive per expected message, round-robin across senders, *before*
// touching any of them — deep posted queues on every bucket.
TEST(MatchingStress, SpecificSourceTrainsStayFifo) {
  constexpr int kSenders = 4;
  constexpr int kTrain = 32;
  auto session = cluster(kSenders + 1, sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() > 0) {
      std::vector<int> payloads(kTrain);
      std::vector<Request> sends;
      for (int seq = 0; seq < kTrain; ++seq) {
        payloads[seq] = encode(comm.rank(), seq);
        sends.push_back(comm.isend(&payloads[seq], 1, Datatype::int32(), 0,
                                   17));
      }
      Request::wait_all(sends);
      return;
    }
    std::vector<int> inbox(kSenders * kTrain, -1);
    std::vector<Request> recvs;
    for (int seq = 0; seq < kTrain; ++seq) {
      for (rank_t src = 1; src <= kSenders; ++src) {
        recvs.push_back(comm.irecv(&inbox[recvs.size()], 1,
                                   Datatype::int32(), src, 17));
      }
    }
    std::map<rank_t, int> last_seq;
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      auto status = recvs[i].wait();
      EXPECT_EQ(status.tag, 17);
      EXPECT_EQ(status.bytes, sizeof(int));
      ASSERT_GE(inbox[i], 0);
      const rank_t src = sender_of(inbox[i]);
      EXPECT_EQ(status.source, src);
      // Non-overtaking: in post order, each source's sequence climbs by 1.
      auto it = last_seq.find(src);
      const int expected = it == last_seq.end() ? 0 : it->second + 1;
      EXPECT_EQ(seq_of(inbox[i]), expected)
          << "source " << src << " overtook at receive " << i;
      last_seq[src] = seq_of(inbox[i]);
    }
    for (rank_t src = 1; src <= kSenders; ++src) {
      EXPECT_EQ(last_seq[src], kTrain - 1);
    }
  });
}

// Wildcard receives interleaved with specific ones, split by tag so the
// counts balance under every schedule. (With wildcards and specific
// receives competing for ONE message pool, which source a wildcard grabs
// is schedule-dependent and any skew starves a specific receive — a legal
// deadlock, not a matcher bug.) The posted queues still hold wildcard and
// specific entries simultaneously, so every delivery arbitrates between
// the bucket hit and the wildcard list by post seq; per-source seqs must
// climb independently within each stream.
TEST(MatchingStress, WildcardInterleavedWithSpecific) {
  constexpr int kSenders = 4;
  constexpr int kTrain = 24;  // specific messages per sender, tag 5
  constexpr int kWild = 8;    // wildcard messages per sender, tag 6
  auto session = cluster(kSenders + 1, sim::Protocol::kSisci);
  session->run([=](Comm comm) {
    if (comm.rank() > 0) {
      for (int seq = 0; seq < kTrain; ++seq) {
        int payload = encode(comm.rank(), seq);
        comm.send(&payload, 1, Datatype::int32(), 0, 5);
        if (seq % 3 == 2) {
          int wild_payload = encode(comm.rank(), seq / 3);
          comm.send(&wild_payload, 1, Datatype::int32(), 0, 6);
        }
      }
      return;
    }
    const int total = kSenders * (kTrain + kWild);
    std::vector<int> inbox(total, -1);
    std::vector<mpi::MpiStatus> statuses(total);
    std::vector<Request> recvs;
    std::vector<bool> wild_post;
    // Per round: one specific receive per sender; every third round also
    // lands a burst of ANY_SOURCE receives on the wild tag between them.
    for (int round = 0; round < kTrain; ++round) {
      for (rank_t src = 1; src <= kSenders; ++src) {
        recvs.push_back(comm.irecv(&inbox[recvs.size()], 1,
                                   Datatype::int32(), src, 5));
        wild_post.push_back(false);
      }
      if (round % 3 == 2) {
        for (int burst = 0; burst < kSenders; ++burst) {
          recvs.push_back(comm.irecv(&inbox[recvs.size()], 1,
                                     Datatype::int32(), mpi::kAnySource,
                                     6));
          wild_post.push_back(true);
        }
      }
    }
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      statuses[i] = recvs[i].wait();
    }
    std::map<rank_t, int> next_seq;
    std::map<rank_t, int> wild_seq;
    for (int i = 0; i < total; ++i) {
      ASSERT_GE(inbox[i], 0) << "receive " << i << " never filled";
      const rank_t src = sender_of(inbox[i]);
      EXPECT_EQ(statuses[i].source, src);
      EXPECT_EQ(statuses[i].tag, wild_post[i] ? 6 : 5);
      auto& cursor = wild_post[i] ? wild_seq : next_seq;
      EXPECT_EQ(seq_of(inbox[i]), cursor[src])
          << "source " << src << " overtaken at post index " << i;
      ++cursor[src];
    }
    for (rank_t src = 1; src <= kSenders; ++src) {
      EXPECT_EQ(next_seq[src], kTrain);
      EXPECT_EQ(wild_seq[src], kWild);
    }
  });
}

// Wildcard-tag receives pinned to one source: tags must surface in send
// order (per-source FIFO is independent of the tag pattern).
TEST(MatchingStress, WildcardTagSeesTagsInSendOrder) {
  constexpr int kTrain = 48;
  auto session = cluster(2, sim::Protocol::kBip);
  session->run([](Comm comm) {
    if (comm.rank() == 1) {
      for (int seq = 0; seq < kTrain; ++seq) {
        int payload = encode(1, seq);
        comm.send(&payload, 1, Datatype::int32(), 0, /*tag=*/seq * 3);
      }
      return;
    }
    for (int seq = 0; seq < kTrain; ++seq) {
      int payload = -1;
      auto status =
          comm.recv(&payload, 1, Datatype::int32(), 1, mpi::kAnyTag);
      EXPECT_EQ(status.tag, seq * 3);
      EXPECT_EQ(seq_of(payload), seq);
    }
  });
}

// Unexpected storm: every sender floods before the receiver posts a
// thing, then the receiver drains with a skewed mix of wildcard and
// specific receives. Exercises the unexpected buckets and store charges.
TEST(MatchingStress, UnexpectedStormDrainsInOrder) {
  constexpr int kSenders = 6;
  constexpr int kTrain = 16;
  auto session = cluster(kSenders + 1, sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() > 0) {
      for (int seq = 0; seq < kTrain; ++seq) {
        int payload = encode(comm.rank(), seq);
        comm.send(&payload, 1, Datatype::int32(), 0, 9);
      }
      int done = comm.rank();
      comm.send(&done, 1, Datatype::int32(), 0, 99);
      return;
    }
    // Wait until every train has fully landed (the tag-99 fences arrive
    // last per source), so each drain below starts from a deep store.
    for (int fences = 0; fences < kSenders; ++fences) {
      int done = -1;
      comm.recv(&done, 1, Datatype::int32(), mpi::kAnySource, 99);
      EXPECT_GT(done, 0);
    }
    std::map<rank_t, int> next_seq;
    // Drain: senders in descending order, half specific, half wildcard-tag.
    for (rank_t src = kSenders; src >= 1; --src) {
      for (int seq = 0; seq < kTrain; ++seq) {
        int payload = -1;
        auto status = seq % 2 == 0
                          ? comm.recv(&payload, 1, Datatype::int32(), src, 9)
                          : comm.recv(&payload, 1, Datatype::int32(), src,
                                      mpi::kAnyTag);
        EXPECT_EQ(status.source, src);
        EXPECT_EQ(status.tag, 9);
        EXPECT_EQ(sender_of(payload), src);
        EXPECT_EQ(seq_of(payload), next_seq[src]) << "source " << src;
        ++next_seq[src];
      }
    }
  });
}

}  // namespace
}  // namespace madmpi
