// Property tests: every collective, random inputs, random communicator
// shapes, verified against a sequential reference computed from the same
// seed — across all three collective algorithm configurations.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// All ranks regenerate everyone's contribution from the shared seed, so
/// each can compute the expected result locally.
std::vector<std::int64_t> contribution(int rank, int count,
                                       std::uint64_t seed) {
  Rng rng(seed * 1315423911u + static_cast<std::uint64_t>(rank));
  std::vector<std::int64_t> out(static_cast<std::size_t>(count));
  for (auto& v : out) {
    v = static_cast<std::int64_t>(rng.next_range(0, 1000)) - 500;
  }
  return out;
}

struct PropertyCase {
  int ranks;
  int count;
  std::uint64_t seed;
  mpi::AllreduceAlgorithm algorithm;
};

class CollectiveProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CollectiveProperty, AllreduceSumMinMaxAgainstReference) {
  const auto& param = GetParam();
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(param.ranks, sim::Protocol::kBip);
  Session session(std::move(options));
  session.run([&param](Comm comm) {
    mpi::CollectiveConfig config;
    config.allreduce = param.algorithm;
    comm.set_collective_config(config);

    const auto mine = contribution(comm.rank(), param.count, param.seed);

    // Sequential reference over all ranks' regenerated contributions.
    std::vector<std::int64_t> expected_sum(mine.size(), 0);
    std::vector<std::int64_t> expected_min(
        mine.size(), std::numeric_limits<std::int64_t>::max());
    std::vector<std::int64_t> expected_max(
        mine.size(), std::numeric_limits<std::int64_t>::min());
    for (int r = 0; r < comm.size(); ++r) {
      const auto theirs = contribution(r, param.count, param.seed);
      for (std::size_t i = 0; i < theirs.size(); ++i) {
        expected_sum[i] += theirs[i];
        expected_min[i] = std::min(expected_min[i], theirs[i]);
        expected_max[i] = std::max(expected_max[i], theirs[i]);
      }
    }

    std::vector<std::int64_t> got(mine.size());
    comm.allreduce(mine.data(), got.data(), param.count, Datatype::int64(),
                   mpi::Op::sum());
    ASSERT_EQ(got, expected_sum);
    comm.allreduce(mine.data(), got.data(), param.count, Datatype::int64(),
                   mpi::Op::min());
    ASSERT_EQ(got, expected_min);
    comm.allreduce(mine.data(), got.data(), param.count, Datatype::int64(),
                   mpi::Op::max());
    ASSERT_EQ(got, expected_max);
  });
}

TEST_P(CollectiveProperty, GatherScatterAllgatherAgainstReference) {
  const auto& param = GetParam();
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(param.ranks, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([&param](Comm comm) {
    const int n = comm.size();
    const auto mine = contribution(comm.rank(), param.count, param.seed);

    std::vector<std::int64_t> everyone;
    for (int r = 0; r < n; ++r) {
      const auto theirs = contribution(r, param.count, param.seed);
      everyone.insert(everyone.end(), theirs.begin(), theirs.end());
    }

    // allgather == concatenation.
    std::vector<std::int64_t> gathered(everyone.size(), -1);
    comm.allgather(mine.data(), param.count, Datatype::int64(),
                   gathered.data(), param.count, Datatype::int64());
    ASSERT_EQ(gathered, everyone);

    // gather to a rotating root.
    const int root = static_cast<int>(param.seed % n);
    std::vector<std::int64_t> rooted(
        comm.rank() == root ? everyone.size() : 0);
    comm.gather(mine.data(), param.count, Datatype::int64(),
                comm.rank() == root ? rooted.data() : nullptr, param.count,
                Datatype::int64(), root);
    if (comm.rank() == root) {
      ASSERT_EQ(rooted, everyone);
    }

    // scatter back: each rank must recover its own contribution.
    std::vector<std::int64_t> back(static_cast<std::size_t>(param.count),
                                   -1);
    comm.scatter(comm.rank() == root ? everyone.data() : nullptr,
                 param.count, Datatype::int64(), back.data(), param.count,
                 Datatype::int64(), root);
    ASSERT_EQ(back, mine);
  });
}

TEST_P(CollectiveProperty, ScanAgainstReference) {
  const auto& param = GetParam();
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(param.ranks, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([&param](Comm comm) {
    const auto mine = contribution(comm.rank(), param.count, param.seed);
    std::vector<std::int64_t> expected(mine.size(), 0);
    for (int r = 0; r <= comm.rank(); ++r) {
      const auto theirs = contribution(r, param.count, param.seed);
      for (std::size_t i = 0; i < theirs.size(); ++i) {
        expected[i] += theirs[i];
      }
    }
    std::vector<std::int64_t> got(mine.size(), -1);
    comm.scan(mine.data(), got.data(), param.count, Datatype::int64(),
              mpi::Op::sum());
    ASSERT_EQ(got, expected);
  });
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  Rng rng(20260707);
  const mpi::AllreduceAlgorithm algos[] = {
      mpi::AllreduceAlgorithm::kReduceBcast,
      mpi::AllreduceAlgorithm::kRecursiveDoubling,
      mpi::AllreduceAlgorithm::kRing,
  };
  for (int i = 0; i < 12; ++i) {
    PropertyCase c;
    c.ranks = static_cast<int>(rng.next_range(2, 9));
    c.count = static_cast<int>(rng.next_range(1, 600));
    c.seed = rng.next_u64() % 100000;
    c.algorithm = algos[i % 3];
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, CollectiveProperty,
                         ::testing::ValuesIn(property_cases()),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param.ranks) +
                                  "_c" + std::to_string(info.param.count) +
                                  "_s" + std::to_string(info.param.seed) +
                                  "_a" +
                                  std::to_string(static_cast<int>(
                                      info.param.algorithm));
                         });

}  // namespace
}  // namespace madmpi
