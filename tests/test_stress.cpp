// Stress and robustness: concurrency storms, queue floods, lifecycle
// churn, cross-layer concurrent use.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "common/rng.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// Seed for the randomized stress streams. Deterministic by default so a
/// failure reproduces, overridable (MADMPI_STRESS_SEED=n) so sweeps can
/// explore other size patterns; always echoed through SCOPED_TRACE so a
/// red run records which stream it was on.
std::uint64_t stress_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("MADMPI_STRESS_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    }
    return static_cast<std::uint64_t>(777);
  }();
  return seed;
}

TEST(Stress, RandomTrafficStormOnHeterogeneousCluster) {
  // 12 ranks across SCI/Myrinet/TCP + smp_plug; every rank sends a
  // checksummed random-size message to every other rank per round.
  SCOPED_TRACE("MADMPI_STRESS_SEED=" + std::to_string(stress_seed()));
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2, 3);
  Session session(std::move(options));
  constexpr int kRounds = 5;

  session.run([](Comm comm) {
    const int n = comm.size();
    // Same stream on every rank: sizes are globally agreed.
    Rng rng(stress_seed());
    for (int round = 0; round < kRounds; ++round) {
      // sizes[src][dst]
      std::vector<std::vector<std::size_t>> sizes(
          static_cast<std::size_t>(n),
          std::vector<std::size_t>(static_cast<std::size_t>(n)));
      for (auto& row : sizes) {
        for (auto& size : row) size = rng.next_range(1, 30000);
      }

      std::vector<std::vector<std::uint8_t>> inbox(
          static_cast<std::size_t>(n));
      std::vector<mpi::Request> recvs;
      for (int src = 0; src < n; ++src) {
        if (src == comm.rank()) continue;
        auto& buffer = inbox[static_cast<std::size_t>(src)];
        buffer.resize(sizes[static_cast<std::size_t>(src)]
                           [static_cast<std::size_t>(comm.rank())]);
        recvs.push_back(comm.irecv(buffer.data(),
                                   static_cast<int>(buffer.size()),
                                   Datatype::uint8(), src, round));
      }
      for (int dst = 0; dst < n; ++dst) {
        if (dst == comm.rank()) continue;
        const std::size_t bytes =
            sizes[static_cast<std::size_t>(comm.rank())]
                 [static_cast<std::size_t>(dst)];
        std::vector<std::uint8_t> payload(bytes);
        for (std::size_t i = 0; i < bytes; ++i) {
          payload[i] = static_cast<std::uint8_t>(
              (comm.rank() * 31 + dst * 7 + static_cast<int>(i)) & 0xff);
        }
        comm.send(payload.data(), static_cast<int>(bytes), Datatype::uint8(),
                  dst, round);
      }
      mpi::Request::wait_all(recvs);
      for (int src = 0; src < n; ++src) {
        if (src == comm.rank()) continue;
        const auto& buffer = inbox[static_cast<std::size_t>(src)];
        for (std::size_t i = 0; i < buffer.size(); ++i) {
          ASSERT_EQ(buffer[i],
                    static_cast<std::uint8_t>(
                        (src * 31 + comm.rank() * 7 + static_cast<int>(i)) &
                        0xff))
              << "round " << round << " src " << src << " byte " << i
              << " (MADMPI_STRESS_SEED=" << stress_seed() << ")";
        }
      }
    }
  });
}

TEST(Stress, ConcurrentCollectivesOnDisjointComms) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(8, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    // Four pairs, each spinning its own allreduce loop concurrently.
    Comm pair = comm.split(comm.rank() / 2, comm.rank());
    for (int round = 0; round < 50; ++round) {
      int mine = comm.rank() * 1000 + round;
      int sum = 0;
      pair.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
      const int partner = (comm.rank() ^ 1) * 1000 + round;
      ASSERT_EQ(sum, mine + partner);
    }
  });
}

TEST(Stress, UnexpectedQueueFlood) {
  // Rank 0 floods rank 1 with 500 eager messages before any receive is
  // posted; matching must drain them in order afterwards.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
  Session session(std::move(options));
  static constexpr int kFlood = 500;
  session.run([](Comm comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kFlood; ++i) {
        comm.send(&i, 1, Datatype::int32(), 1, 4);
      }
      int done = 0;
      comm.recv(&done, 1, Datatype::int32(), 1, 5);
      EXPECT_EQ(done, kFlood);
    } else {
      // Wait until the flood has landed unexpected.
      while (!comm.iprobe(0, 4)) {
      }
      int count = 0;
      for (int i = 0; i < kFlood; ++i) {
        int value = -1;
        comm.recv(&value, 1, Datatype::int32(), 0, 4);
        ASSERT_EQ(value, i);  // non-overtaking through the unexpected queue
        ++count;
      }
      comm.send(&count, 1, Datatype::int32(), 0, 5);
    }
  });
}

TEST(Stress, SessionLifecycleChurn) {
  for (int cycle = 0; cycle < 10; ++cycle) {
    Session::Options options;
    options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
    Session session(std::move(options));
    session.run([cycle](Comm comm) {
      int mine = comm.rank() + cycle;
      int sum = 0;
      comm.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
      EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4 * cycle);
    });
  }  // destructor: TERM broadcast + poller join, 10x
}

TEST(Stress, RawChannelAndMpiTrafficConcurrently) {
  // A raw Madeleine channel streams blocks while MPI collectives run over
  // the same physical network — channel isolation under load.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session session(std::move(options));
  mad::Channel& raw = session.open_raw_channel();

  std::atomic<int> raw_received{0};
  std::thread raw_receiver([&] {
    for (int i = 0; i < 100; ++i) {
      auto incoming = raw.at(1)->begin_unpacking();
      ASSERT_TRUE(incoming.has_value());
      int seq = -1;
      incoming->unpack(&seq, sizeof seq, mad::SendMode::kSafer,
                       mad::RecvMode::kExpress);
      incoming->end_unpacking();
      ASSERT_EQ(seq, i);
      ++raw_received;
    }
  });
  std::thread raw_sender([&] {
    for (int i = 0; i < 100; ++i) {
      mad::Packing packing = raw.at(0)->begin_packing(1);
      packing.pack(&i, sizeof i, mad::SendMode::kSafer,
                   mad::RecvMode::kExpress);
      packing.end_packing();
    }
  });

  session.run([](Comm comm) {
    for (int round = 0; round < 20; ++round) {
      double mine = comm.rank() + round;
      double sum = 0.0;
      comm.allreduce(&mine, &sum, 1, Datatype::float64(), mpi::Op::sum());
      ASSERT_EQ(sum, 1.0 + 2 * round);
    }
  });
  raw_sender.join();
  raw_receiver.join();
  EXPECT_EQ(raw_received.load(), 100);
}

TEST(Stress, ManyCommunicatorsActiveAtOnce) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<Comm> comms;
    for (int i = 0; i < 16; ++i) comms.push_back(comm.dup());
    // Interleave traffic over all of them; contexts must never cross.
    const int peer = comm.rank() ^ 1;
    std::vector<mpi::Request> recvs;
    std::vector<int> in(16, -1);
    for (int i = 0; i < 16; ++i) {
      recvs.push_back(comms[static_cast<std::size_t>(i)].irecv(
          &in[static_cast<std::size_t>(i)], 1, Datatype::int32(), peer, 0));
    }
    for (int i = 15; i >= 0; --i) {  // send in reverse comm order
      int value = i * 100 + comm.rank();
      comms[static_cast<std::size_t>(i)].send(&value, 1, Datatype::int32(),
                                              peer, 0);
    }
    mpi::Request::wait_all(recvs);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(in[static_cast<std::size_t>(i)], i * 100 + peer);
    }
  });
}

TEST(Stress, StatsReportAfterTraffic) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::vector<std::byte> blob(20000);
    const int peer = (comm.rank() + 1) % comm.size();
    const int from = (comm.rank() - 1 + comm.size()) % comm.size();
    auto req = comm.irecv(blob.data(), 20000, Datatype::byte(), from, 0);
    comm.send(blob.data(), 20000, Datatype::byte(), peer, 0);
    req.wait();
  });
  // Aggregate counters must reflect the ring (4 data messages + protocol).
  std::uint64_t total_messages = 0;
  for (mad::Channel* channel : session.madeleine().channels()) {
    total_messages += channel->traffic().messages_sent;
  }
  EXPECT_GE(total_messages, 4u);
  // And the report renders without issue.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  session.print_stats(sink);
  EXPECT_GT(std::ftell(sink), 0);
  std::fclose(sink);
}

}  // namespace
}  // namespace madmpi
