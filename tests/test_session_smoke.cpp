// End-to-end smoke tests: full sessions over each network type.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

Session::Options two_node_options(sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return options;
}

TEST(SessionSmoke, TcpPingPong) {
  Session session(two_node_options(sim::Protocol::kTcp));
  session.run([](Comm comm) {
    std::vector<int> data(16, comm.rank());
    if (comm.rank() == 0) {
      comm.send(data.data(), 16, Datatype::int32(), 1, 7);
      std::vector<int> back(16, -1);
      comm.recv(back.data(), 16, Datatype::int32(), 1, 8);
      for (int v : back) EXPECT_EQ(v, 1);
    } else {
      std::vector<int> in(16, -1);
      comm.recv(in.data(), 16, Datatype::int32(), 0, 7);
      for (int v : in) EXPECT_EQ(v, 0);
      comm.send(data.data(), 16, Datatype::int32(), 0, 8);
    }
  });
}

TEST(SessionSmoke, SciRendezvousLargeMessage) {
  Session session(two_node_options(sim::Protocol::kSisci));
  constexpr std::size_t kCount = 64 * 1024;  // 256 KB > 8 KB switch point
  session.run([](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<int> data(kCount);
      std::iota(data.begin(), data.end(), 0);
      comm.send(data.data(), static_cast<int>(kCount), Datatype::int32(), 1,
                0);
    } else {
      std::vector<int> in(kCount, -1);
      auto status =
          comm.recv(in.data(), static_cast<int>(kCount), Datatype::int32(),
                    0, 0);
      EXPECT_EQ(status.bytes, kCount * sizeof(int));
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(in[i], static_cast<int>(i)) << "at index " << i;
      }
    }
  });
}

TEST(SessionSmoke, MultiProtocolClusterOfClusters) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  Session session(std::move(options));
  // SCI pair routes over SISCI, Myrinet pair over BIP, cross-cluster TCP.
  auto* device = session.ch_mad();
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->switch_point(), 8u * 1024u);  // SCI present -> 8 KB
  EXPECT_EQ(device->router().route(0, 1)->protocol(), sim::Protocol::kSisci);
  EXPECT_EQ(device->router().route(2, 3)->protocol(), sim::Protocol::kBip);
  EXPECT_EQ(device->router().route(0, 2)->protocol(), sim::Protocol::kTcp);

  session.run([](Comm comm) {
    // Ring exchange touching all three networks.
    const int to = (comm.rank() + 1) % comm.size();
    const int from = (comm.rank() - 1 + comm.size()) % comm.size();
    int token = comm.rank() * 100;
    int incoming = -1;
    comm.sendrecv(&token, 1, Datatype::int32(), to, 1, &incoming, 1,
                  Datatype::int32(), from, 1);
    EXPECT_EQ(incoming, from * 100);
  });
}

TEST(SessionSmoke, IntraNodeAndSelf) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, 2);
  // A single network needs >= 2 members; with one dual-rank node there is
  // no inter-node traffic, so drop the network entirely.
  options.cluster.networks.clear();
  Session session(std::move(options));
  session.run([](Comm comm) {
    // Self round-trip via irecv.
    int self_in = -1;
    auto req = comm.irecv(&self_in, 1, Datatype::int32(), comm.rank(), 5);
    const int self_out = 42 + comm.rank();
    comm.send(&self_out, 1, Datatype::int32(), comm.rank(), 5);
    req.wait();
    EXPECT_EQ(self_in, 42 + comm.rank());

    // smp_plug exchange between the two ranks of the node.
    const int peer = 1 - comm.rank();
    int out = comm.rank() + 1000;
    int in = -1;
    comm.sendrecv(&out, 1, Datatype::int32(), peer, 2, &in, 1,
                  Datatype::int32(), peer, 2);
    EXPECT_EQ(in, peer + 1000);
  });
}

TEST(SessionSmoke, VirtualTimeAdvances) {
  Session session(two_node_options(sim::Protocol::kTcp));
  session.run([](Comm comm) {
    const double t0 = comm.wtime_us();
    if (comm.rank() == 0) {
      char byte = 'x';
      comm.send(&byte, 1, Datatype::byte(), 1, 0);
      comm.recv(&byte, 1, Datatype::byte(), 1, 0);
      const double elapsed = comm.wtime_us() - t0;
      // A TCP round trip costs on the order of 2 x ~150 us of virtual time.
      EXPECT_GT(elapsed, 150.0);
      EXPECT_LT(elapsed, 1500.0);
    } else {
      char byte = 0;
      comm.recv(&byte, 1, Datatype::byte(), 0, 0);
      comm.send(&byte, 1, Datatype::byte(), 0, 0);
    }
  });
}

}  // namespace
}  // namespace madmpi
