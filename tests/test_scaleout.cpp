// Rank-scaling stress tier for the sharded run-to-completion engine:
// 256- and 1024-rank sessions on one machine (p2p ring, allreduce, an FT
// bcast under a seeded outage), a replay test asserting two sharded runs
// with the same schedule seed produce bit-identical VirtualClock stamps
// and message orders, and the teardown-drain regression for poll-wakeup
// accounting. The big tests pin MADMPI_ENGINE=sharded themselves — a
// thread-per-rank 1024-way session is exactly what the fiber engine
// exists to avoid — so both ctest registrations exercise the same engine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/datapath_stats.hpp"
#include "core/session.hpp"
#include "sim/fault.hpp"
#include "sim/sched.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// Set an environment variable for one scope, restoring the previous value
/// (or absence) on exit. The engine knobs are read per Session::run(), so
/// in-process setenv is enough to steer individual tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, sim::Protocol::kTcp);
  EXPECT_NE(nic, nullptr);
  nic->mutable_model().fault_plan = plan;
  return plan;
}

TEST(Scaleout, Ring256AcrossNodes) {
  // 256 ranks as 8 nodes x 32: the ring crosses a node boundary every 32
  // hops, so this exercises smp delivery, ch_mad credit flow and the
  // poller threads all under the fiber engine at once.
  ScopedEnv engine("MADMPI_ENGINE", "sharded");
  ScopedEnv shards("MADMPI_SHARDS", "4");
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(8, sim::Protocol::kTcp, 32);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    const int me = comm.rank();
    ASSERT_EQ(n, 256);
    std::int32_t token = me;
    std::int32_t from_left = -1;
    const auto status = comm.sendrecv(
        &token, 1, Datatype::int32(), (me + 1) % n, /*send_tag=*/7,
        &from_left, 1, Datatype::int32(), (me + n - 1) % n, /*recv_tag=*/7);
    ASSERT_EQ(status.error, ErrorCode::kOk);
    EXPECT_EQ(from_left, (me + n - 1) % n);
  });
}

TEST(Scaleout, Allreduce1024SingleNode) {
  // The headline count: 1024 ranks in one session on one machine. A
  // thread-per-rank engine would need 1024 OS threads; the sharded engine
  // runs them as fibers on a handful of workers. The smaller stack knob is
  // exercised here too — collective bodies are shallow.
  ScopedEnv engine("MADMPI_ENGINE", "sharded");
  ScopedEnv stack("MADMPI_FIBER_STACK_KB", "256");
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, 1024);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int n = comm.size();
    ASSERT_EQ(n, 1024);
    const std::int64_t mine = comm.rank();
    std::int64_t total = -1;
    const Status status = comm.allreduce(&mine, &total, 1,
                                         Datatype::int64(), mpi::Op::sum());
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
  });
}

TEST(Scaleout, FtBcast256UnderSeededOutage) {
  // Fault-tolerant bcast at 256 ranks while the root node's NIC is both
  // dark for the opening window and lossy afterwards (seeded drops). The
  // survivable tree must reroute/retry until every rank holds the payload.
  ScopedEnv engine("MADMPI_ENGINE", "sharded");
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(8, sim::Protocol::kTcp, 32);
  Session session(std::move(options));
  install_plan(session, 0, /*seed=*/17)
      ->outage(0.0, 150.0, /*src=*/0, /*dst=*/1)
      .drop(0.10);
  std::mutex mutex;
  std::map<int, Status> statuses;
  session.run([&](Comm comm) {
    mpi::CollectiveConfig config;
    config.fault_tolerant = true;
    comm.set_collective_config(config);
    std::vector<int> data(512);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 3);
    const Status status = comm.bcast(data.data(), 512, Datatype::int32(), 0);
    for (int i = 0; i < 512; ++i) {
      ASSERT_EQ(data[i], i + 3) << "rank " << comm.rank();
    }
    std::lock_guard<std::mutex> lock(mutex);
    statuses[comm.rank()] = status;
  });
  ASSERT_EQ(statuses.size(), 256u);
  for (const auto& [rank, status] : statuses) {
    EXPECT_TRUE(status.is_ok()) << "rank " << rank << ": "
                                << status.to_string();
  }
}

/// One run's observable schedule: per-rank wildcard delivery order plus
/// the per-rank fiber-lane clock reading at the end of the body, and the
/// node's folded high-water mark. Compared bitwise across replays.
struct ScheduleFingerprint {
  std::vector<std::vector<std::pair<int, int>>> order;  // (source, tag)
  std::vector<double> stamps;
  double high_water = 0.0;

  bool operator==(const ScheduleFingerprint& other) const {
    return order == other.order && stamps == other.stamps &&
           high_water == other.high_water;
  }
};

ScheduleFingerprint run_replay_workload(std::uint64_t seed) {
  // Fresh controller per run so choice streams start from the same state.
  sim::ScheduleController::install(seed);
  constexpr int kRanks = 64;
  constexpr int kRounds = 4;
  constexpr int kOffsets[kRounds] = {1, 3, 7, 11};
  ScheduleFingerprint print;
  print.order.resize(kRanks);
  print.stamps.resize(kRanks, 0.0);
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(1, sim::Protocol::kTcp, kRanks);
  Session session(std::move(options));
  session.run([&](Comm comm) {
    const int n = comm.size();
    const int me = comm.rank();
    std::vector<mpi::Request> sends;
    std::vector<std::int32_t> payloads(kRounds);
    for (int k = 0; k < kRounds; ++k) {
      payloads[k] = me;
      sends.push_back(comm.isend(&payloads[k], 1, Datatype::int32(),
                                 (me + kOffsets[k]) % n, 100 + k));
    }
    // Each offset is a bijection on ranks, so everyone receives exactly
    // kRounds messages; wildcard receives make the arrival order itself
    // part of the fingerprint.
    for (int k = 0; k < kRounds; ++k) {
      std::int32_t value = -1;
      const auto status = comm.recv(&value, 1, Datatype::int32(),
                                    mpi::kAnySource, mpi::kAnyTag);
      ASSERT_EQ(status.error, ErrorCode::kOk);
      EXPECT_EQ(value, status.source);
      print.order[me].emplace_back(status.source, status.tag);
    }
    for (auto& request : sends) request.wait();
    std::int64_t mine = me;
    std::int64_t total = -1;
    comm.allreduce(&mine, &total, 1, Datatype::int64(), mpi::Op::sum());
    EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
    // Fibers run on their node's clock via private lanes: this reads the
    // calling fiber's own causal time, a direct schedule observable.
    print.stamps[me] = session.node_of(me).clock().now();
  });
  print.high_water = session.fabric().node(0).clock().high_water();
  sim::ScheduleController::uninstall();
  return print;
}

TEST(Scaleout, ShardedReplayIsBitIdentical) {
  // The determinism contract: MADMPI_SHARDS=1 on a single-node (smp-only)
  // topology leaves the fibers as the only actors touching rank state, so
  // a fixed MADMPI_SCHED_SEED must replay the exact schedule — identical
  // wildcard delivery orders and bit-identical VirtualClock stamps.
  ScopedEnv engine("MADMPI_ENGINE", "sharded");
  ScopedEnv shards("MADMPI_SHARDS", "1");
  ScopedEnv env_seed("MADMPI_SCHED_SEED", "0");  // explicit install below
  const ScheduleFingerprint first = run_replay_workload(2026);
  const ScheduleFingerprint second = run_replay_workload(2026);
  EXPECT_TRUE(first == second)
      << "same seed, different schedule: replay is broken";
  for (int r = 0; r < 64; ++r) {
    ASSERT_EQ(first.order[r].size(), 4u);
    ASSERT_GT(first.stamps[r], 0.0);
  }
  EXPECT_EQ(first.high_water, second.high_water);
}

TEST(Scaleout, TeardownDrainKeepsWakeupCountsQuiet) {
  // Regression for the mid-poll teardown leak: TERM sweeps during
  // Session::finalize() used to smear poller wakeups into whatever stats
  // window a benchmark had open. With begin_drain() raised before the
  // close sequence, the workload's own wakeups still count but the
  // teardown's must not. Payloads stay tiny so no batched credit-return
  // packet is still in flight when the workload snapshot is taken.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  const auto before = DatapathStats::global().snapshot();
  session.run([](Comm comm) {
    for (int i = 0; i < 8; ++i) {
      std::int32_t value = 40 + i;
      if (comm.rank() == 0) {
        comm.send(&value, 1, Datatype::int32(), 1, i);
      } else {
        std::int32_t got = -1;
        const auto status =
            comm.recv(&got, 1, Datatype::int32(), 0, i);
        ASSERT_EQ(status.error, ErrorCode::kOk);
        EXPECT_EQ(got, value);
      }
    }
  });
  const auto after_run = DatapathStats::global().snapshot();
  EXPECT_GT((after_run - before).poll_wakeups, 0u)
      << "cross-node eager traffic should wake the destination poller";
  session.finalize();
  const auto after_teardown = DatapathStats::global().snapshot();
  EXPECT_EQ((after_teardown - after_run).poll_wakeups, 0u)
      << "teardown TERM sweep leaked into the wakeup counter";
}

}  // namespace
}  // namespace madmpi
