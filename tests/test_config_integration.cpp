// End-to-end from a topology description file: parse -> session -> traffic.
// This is the path a downstream user takes (write a cluster file, run).
#include <gtest/gtest.h>

#include <numeric>

#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

constexpr const char* kMetaClusterConfig = R"(
# The paper's testbed, as a user would describe it.
node sci0  cpus=2 ranks=2
node sci1  cpus=2 ranks=2
node myri0 cpus=2 ranks=1
node myri1 cpus=2 ranks=1

network tcp     sci0 sci1 myri0 myri1
network sci     sci0 sci1
network myrinet myri0 myri1
)";

TEST(ConfigIntegration, MetaClusterFromText) {
  sim::ClusterSpec spec;
  ASSERT_TRUE(sim::ClusterSpec::parse(kMetaClusterConfig, &spec).is_ok());
  EXPECT_EQ(spec.total_ranks(), 6);

  Session::Options options;
  options.cluster = std::move(spec);
  Session session(std::move(options));

  // Routing shaped by the file: SCI inside, TCP across.
  auto* device = session.ch_mad();
  EXPECT_EQ(device->router().route(0, 1)->protocol(), sim::Protocol::kSisci);
  EXPECT_EQ(device->router().route(2, 3)->protocol(), sim::Protocol::kBip);
  EXPECT_EQ(device->router().route(0, 2)->protocol(), sim::Protocol::kTcp);
  EXPECT_EQ(device->switch_point(), 8u * 1024u);

  session.run([](Comm comm) {
    // All-pairs exchange touching smp_plug (ranks 0/1 and 2/3 share
    // nodes), SISCI, BIP and TCP.
    std::vector<int> received(static_cast<std::size_t>(comm.size()), -1);
    std::vector<mpi::Request> recvs;
    for (int src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      recvs.push_back(
          comm.irecv(&received[static_cast<std::size_t>(src)], 1,
                     Datatype::int32(), src, 0));
    }
    for (int dst = 0; dst < comm.size(); ++dst) {
      if (dst == comm.rank()) continue;
      int token = comm.rank() * 7;
      comm.send(&token, 1, Datatype::int32(), dst, 0);
    }
    mpi::Request::wait_all(recvs);
    for (int src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      ASSERT_EQ(received[static_cast<std::size_t>(src)], src * 7);
    }
  });
}

TEST(ConfigIntegration, MixedEndianClusterFromText) {
  sim::ClusterSpec spec;
  ASSERT_TRUE(sim::ClusterSpec::parse(
                  "node intel endian=little ranks=1\n"
                  "node sparc endian=big ranks=1\n"
                  "network myrinet intel sparc\n",
                  &spec)
                  .is_ok());
  Session::Options options;
  options.cluster = std::move(spec);
  Session session(std::move(options));
  session.run([](Comm comm) {
    const int peer = 1 - comm.rank();
    std::vector<std::int64_t> out(64);
    std::iota(out.begin(), out.end(), comm.rank() * 1000);
    std::vector<std::int64_t> in(64, -1);
    comm.sendrecv(out.data(), 64, Datatype::int64(), peer, 0, in.data(), 64,
                  Datatype::int64(), peer, 0);
    EXPECT_EQ(in[0], peer * 1000);
    EXPECT_EQ(in[63], peer * 1000 + 63);
  });
}

TEST(ConfigIntegration, ForwardedIslandsFromText) {
  sim::ClusterSpec spec;
  ASSERT_TRUE(sim::ClusterSpec::parse(
                  "node a\nnode gw\nnode b\n"
                  "network sci a gw\n"
                  "network myrinet gw b\n",
                  &spec)
                  .is_ok());
  Session::Options options;
  options.cluster = std::move(spec);
  options.enable_forwarding = true;
  Session session(std::move(options));
  session.run([](Comm comm) {
    if (comm.rank() == 0) {
      double value = 6.5;
      comm.send(&value, 1, Datatype::float64(), 2, 0);
    } else if (comm.rank() == 2) {
      double value = 0.0;
      comm.recv(&value, 1, Datatype::float64(), 0, 0);
      EXPECT_EQ(value, 6.5);
    }
  });
  EXPECT_GE(session.ch_mad()->forwarded(), 1u);
}

TEST(ConfigIntegration, StatsReportNamesFileChannels) {
  sim::ClusterSpec spec;
  ASSERT_TRUE(sim::ClusterSpec::parse(
                  "node x\nnode y\nnetwork tcp x y\nnetwork sci x y\n",
                  &spec)
                  .is_ok());
  Session::Options options;
  options.cluster = std::move(spec);
  Session session(std::move(options));
  session.run([](Comm comm) { comm.barrier(); });

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  session.print_stats(sink);
  std::rewind(sink);
  char buffer[4096] = {};
  const auto read = std::fread(buffer, 1, sizeof buffer - 1, sink);
  std::fclose(sink);
  ASSERT_GT(read, 0u);
  const std::string report(buffer);
  EXPECT_NE(report.find("tcp-0"), std::string::npos);
  EXPECT_NE(report.find("sci-1"), std::string::npos);
  EXPECT_NE(report.find("ch_mad"), std::string::npos);
}

}  // namespace
}  // namespace madmpi
