// Tests for the Marcel-like thread layer: semaphores, threads, poll server.
#include <gtest/gtest.h>

#include <atomic>

#include "marcel/poll_server.hpp"
#include "marcel/semaphore.hpp"
#include "marcel/thread.hpp"

namespace madmpi::marcel {
namespace {

TEST(Semaphore, SignalThenWait) {
  sim::Node node(0, "n", 2);
  Semaphore sem(node, 0);
  sem.signal();
  EXPECT_EQ(sem.value(), 1);
  sem.wait();
  EXPECT_EQ(sem.value(), 0);
}

TEST(Semaphore, InitialPermits) {
  sim::Node node(0, "n", 2);
  Semaphore sem(node, 2);
  EXPECT_TRUE(sem.try_wait());
  EXPECT_TRUE(sem.try_wait());
  EXPECT_FALSE(sem.try_wait());
}

TEST(Semaphore, WaiterClockSyncsToReleaser) {
  sim::Node node(0, "n", 2);
  Semaphore sem(node, 0);
  node.clock().advance(100.0);  // "releaser" time
  sem.signal();
  // Simulate a waiter whose logical position was earlier: reset would be
  // wrong (shared clock), so instead check the wait charges the wake cost
  // beyond the release time.
  const usec_t release_time = node.clock().now();
  sem.wait();
  EXPECT_GE(node.clock().now(), release_time + ThreadCosts::kWake - 1e-9);
}

TEST(Semaphore, CrossThreadHandoff) {
  sim::Node node(0, "n", 2);
  Semaphore sem(node, 0);
  std::atomic<bool> released{false};
  std::thread releaser([&] {
    released = true;
    sem.signal();
  });
  sem.wait();
  EXPECT_TRUE(released.load());
  releaser.join();
}

TEST(Thread, CreationChargesMarcelCost) {
  sim::Node node(0, "n", 2);
  const usec_t before = node.clock().now();
  {
    Thread thread(node, "worker", [] {});
    thread.join();
  }
  EXPECT_DOUBLE_EQ(node.clock().now(), before + ThreadCosts::kCreate);
}

TEST(Thread, JoinsOnDestruction) {
  sim::Node node(0, "n", 2);
  std::atomic<bool> ran{false};
  { Thread thread(node, "t", [&] { ran = true; }); }
  EXPECT_TRUE(ran.load());
}

TEST(PollServer, PollersRegisterAndUnregisterOnNode) {
  sim::Node node(0, "n", 2);
  {
    PollServer server(node);
    std::atomic<int> remaining{3};
    server.add_poller(7, 15.0, [&] { return --remaining > 0; });
    EXPECT_EQ(server.poller_count(), 1u);
    server.join();
  }
  // After the poller exits it must have unregistered itself.
  EXPECT_EQ(node.active_pollers(), 0u);
}

TEST(PollServer, WakeupChargesWakePlusInterference) {
  sim::Node node(0, "n", 2);
  PollServer server(node);
  node.register_poller(1, 15.0);  // a concurrent TCP-ish poller
  node.register_poller(2, 0.4);   // the channel being handled
  const usec_t before = node.clock().now();
  const usec_t charged = server.charge_wakeup(2);
  EXPECT_DOUBLE_EQ(charged, ThreadCosts::kWake + 0.5 * 15.0);
  EXPECT_DOUBLE_EQ(node.clock().now(), before + charged);
}

TEST(PollServer, MultiplePollersRunConcurrently) {
  sim::Node node(0, "n", 2);
  PollServer server(node);
  std::atomic<int> alive{0};
  std::atomic<int> peak{0};
  std::atomic<bool> release{false};
  for (channel_id_t c = 0; c < 3; ++c) {
    server.add_poller(c, 1.0, [&] {
      const int now = ++alive;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      while (!release.load()) std::this_thread::yield();
      return false;  // one iteration then exit
    });
  }
  while (alive.load() < 3) std::this_thread::yield();
  release = true;
  server.join();
  EXPECT_EQ(peak.load(), 3);
}

}  // namespace
}  // namespace madmpi::marcel
