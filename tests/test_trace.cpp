// Event tracing and timing-fault injection.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "sim/trace.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// RAII guard: enable the global tracer for one test, restore after.
struct TraceGuard {
  TraceGuard() {
    sim::Tracer::global().clear();
    sim::Tracer::global().enable();
  }
  ~TraceGuard() {
    sim::Tracer::global().disable();
    sim::Tracer::global().clear();
  }
};

TEST(Trace, DisabledByDefaultAndCheap) {
  sim::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  sim::trace(1.0, 0, sim::TraceCategory::kSend, 10, "x");  // global off
  EXPECT_EQ(sim::Tracer::global().size(), 0u);
}

TEST(Trace, RecordsAndRendersCsv) {
  sim::Tracer tracer;
  tracer.enable();
  tracer.record(2.5, 1, sim::TraceCategory::kArrive, 100, "TCP");
  tracer.record(1.0, 0, sim::TraceCategory::kSend, 100, "TCP");
  EXPECT_EQ(tracer.size(), 2u);
  const std::string csv = tracer.to_csv();
  // Sorted by time, header first.
  const auto send_pos = csv.find("1.000,0,send,100,TCP");
  const auto arrive_pos = csv.find("2.500,1,arrive,100,TCP");
  ASSERT_NE(send_pos, std::string::npos);
  ASSERT_NE(arrive_pos, std::string::npos);
  EXPECT_LT(send_pos, arrive_pos);
  EXPECT_EQ(csv.rfind("time_us,node,category,bytes,label", 0), 0u);
}

TEST(Trace, CategoriesHaveNames) {
  for (int c = 0; c <= static_cast<int>(sim::TraceCategory::kRelay); ++c) {
    EXPECT_STRNE(trace_category_name(static_cast<sim::TraceCategory>(c)),
                 "?");
  }
}

TEST(Trace, PingPongProducesACoherentTimeline) {
  TraceGuard guard;
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session session(std::move(options));
  session.run([](Comm comm) {
    int value = comm.rank();
    if (comm.rank() == 0) {
      comm.send(&value, 1, Datatype::int32(), 1, 0);
      comm.recv(&value, 1, Datatype::int32(), 1, 0);
    } else {
      comm.recv(&value, 1, Datatype::int32(), 0, 0);
      comm.send(&value, 1, Datatype::int32(), 0, 0);
    }
  });

  const auto events = sim::Tracer::global().snapshot();
  int sends = 0, arrives = 0, dispatches = 0, completes = 0;
  for (const auto& event : events) {
    switch (event.category) {
      case sim::TraceCategory::kSend: ++sends; break;
      case sim::TraceCategory::kArrive: ++arrives; break;
      case sim::TraceCategory::kDispatch: ++dispatches; break;
      case sim::TraceCategory::kComplete: ++completes; break;
      default: break;
    }
  }
  // The two data messages (TERM broadcasts happen later, at teardown).
  EXPECT_GE(sends, 2);
  EXPECT_GE(arrives, 2);
  EXPECT_GE(dispatches, 2);
  EXPECT_EQ(completes, 2);

  // Causality in the CSV: every arrive must be no earlier than some send.
  double first_send = 1e18, first_arrive = 1e18;
  for (const auto& event : events) {
    if (event.category == sim::TraceCategory::kSend) {
      first_send = std::min(first_send, event.time_us);
    }
    if (event.category == sim::TraceCategory::kArrive) {
      first_arrive = std::min(first_arrive, event.time_us);
    }
  }
  EXPECT_LT(first_send, first_arrive);
}

TEST(Trace, RelayEventsOnGatewayPaths) {
  TraceGuard guard;
  sim::ClusterSpec spec;
  for (const char* name : {"a", "gw", "b"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"a", "gw"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"gw", "b"}});
  Session::Options options;
  options.cluster = std::move(spec);
  options.enable_forwarding = true;
  Session session(std::move(options));
  session.run([](Comm comm) {
    int value = 11;
    if (comm.rank() == 0) {
      comm.send(&value, 1, Datatype::int32(), 2, 0);
    } else if (comm.rank() == 2) {
      comm.recv(&value, 1, Datatype::int32(), 0, 0);
    }
  });
  int relays = 0;
  for (const auto& event : sim::Tracer::global().snapshot()) {
    if (event.category == sim::TraceCategory::kRelay) ++relays;
  }
  EXPECT_GE(relays, 1);
}

TEST(FaultInjection, JitterPreservesCorrectness) {
  // Heavy per-frame timing perturbation must not affect any delivered
  // byte — only timings.
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session session(std::move(options));
  // Crank jitter on every NIC after setup.
  for (node_id_t node = 0; node < 2; ++node) {
    for (auto* nic : session.fabric().nics_of(node)) {
      nic->mutable_model().jitter_us = 500.0;
    }
  }
  // WirePaths reference the NIC models live, so the knob above reaches
  // every wire, including this fresh channel's.
  mad::Channel& late = session.open_raw_channel();
  std::thread sender([&] {
    for (int i = 0; i < 50; ++i) {
      mad::Packing packing = late.at(0)->begin_packing(1);
      packing.pack(&i, sizeof i, mad::SendMode::kSafer,
                   mad::RecvMode::kExpress);
      packing.end_packing();
    }
  });
  for (int i = 0; i < 50; ++i) {
    auto incoming = late.at(1)->begin_unpacking();
    ASSERT_TRUE(incoming.has_value());
    int seq = -1;
    incoming->unpack(&seq, sizeof seq, mad::SendMode::kSafer,
                     mad::RecvMode::kExpress);
    incoming->end_unpacking();
    ASSERT_EQ(seq, i);  // per-connection order survives jitter
  }
  sender.join();
}

TEST(FaultInjection, JitterActuallyPerturbsTiming) {
  auto measure = [](usec_t jitter) {
    sim::Fabric fabric;
    fabric.add_node("a");
    fabric.add_node("b");
    sim::LinkCostModel model = sim::sisci_sci_model();
    model.jitter_us = jitter;
    sim::Nic& src = fabric.add_nic(0, model);
    sim::Nic& dst = fabric.add_nic(1, model);
    sim::Port& port = fabric.make_port(1);
    sim::WirePath path = fabric.make_path(src, dst, port);
    sim::Frame frame;
    frame.seq = 42;
    frame.payload.resize(100);
    return path.transmit(std::move(frame));
  };
  const usec_t clean = measure(0.0);
  const usec_t jittered = measure(1000.0);
  EXPECT_GT(jittered, clean);
  EXPECT_LE(jittered, clean + 1000.0);
  // Deterministic: same frame identity, same jitter.
  EXPECT_DOUBLE_EQ(measure(1000.0), jittered);
}

}  // namespace
}  // namespace madmpi
