// MPI error-handler semantics under failures: a custom handler runs
// exactly once per failed user-visible operation (collectives included,
// despite their nested implementations), MPI_ERRORS_RETURN propagates
// through collectives, and handlers are inherited across MPI_Comm_dup.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "mpi/compat.hpp"
#include "sim/fault.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             sim::Protocol protocol,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, protocol);
  EXPECT_NE(nic, nullptr);
  nic->mutable_model().fault_plan = plan;
  return plan;
}

/// Two nodes on TCP; node 0's NIC is killed at t=0, so the 0->1 direction
/// is dead (1->0 stays alive) and any wait on data from rank 0 is
/// watchdog-cancelled within the horizon.
std::unique_ptr<Session> severed_pair() {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  options.watchdog_horizon_us = 2000.0;
  auto session = std::make_unique<Session>(std::move(options));
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  return session;
}

TEST(Errhandler, CustomHandlerRunsOncePerFailedPointToPoint) {
  auto session = severed_pair();
  std::atomic<int> handled{0};
  session->run([&](Comm comm) {
    if (comm.rank() != 1) return;
    comm.set_errhandler(mpi::Errhandler::custom(
        [&](ErrorCode, const std::string&) { handled.fetch_add(1); }));
    int value = 0;
    // Two independent failed receives: the handler must run once each.
    EXPECT_EQ(comm.recv(&value, 1, Datatype::int32(), 0, 0).error,
              ErrorCode::kTimedOut);
    EXPECT_EQ(handled.load(), 1);
    EXPECT_EQ(comm.recv(&value, 1, Datatype::int32(), 0, 1).error,
              ErrorCode::kTimedOut);
    EXPECT_EQ(handled.load(), 2);
  });
}

TEST(Errhandler, CustomHandlerRunsOncePerFailedCollective) {
  // allreduce = reduce + bcast internally. The reduce phase (rank 1 sends
  // towards root 0 over the live 1->0 direction) succeeds; the bcast phase
  // (rank 1 waits on dead 0->1) is cancelled. The handler must fire ONCE
  // for the whole allreduce — not once per nested phase, and not zero
  // times because a nested call already consumed the error.
  auto session = severed_pair();
  std::atomic<int> handled{0};
  std::atomic<bool> saw_timeout{false};
  session->run([&](Comm comm) {
    if (comm.rank() != 1) return;
    comm.set_errhandler(mpi::Errhandler::custom(
        [&](ErrorCode code, const std::string&) {
          handled.fetch_add(1);
          if (code == ErrorCode::kTimedOut) saw_timeout.store(true);
        }));
    int mine = 3, sum = 0;
    const Status status =
        comm.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(handled.load(), 1);
  });
  EXPECT_TRUE(saw_timeout.load());
}

TEST(Errhandler, ErrorsReturnPropagatesThroughEveryCollectivePhase) {
  // Default C++ handler is errors_return: the collective's Status carries
  // the failure out without aborting, on both the waiting rank and the
  // sending root whose route is dead.
  auto session = severed_pair();
  session->run([&](Comm comm) {
    int value = comm.rank();
    const Status status = comm.bcast(&value, 1, Datatype::int32(), 0);
    EXPECT_FALSE(status.is_ok()) << "rank " << comm.rank();
  });
}

TEST(Errhandler, DupInheritsTheCustomHandler) {
  auto session = severed_pair();
  std::atomic<int> handled{0};
  session->run([&](Comm comm) {
    if (comm.rank() != 1) return;
    comm.set_errhandler(mpi::Errhandler::custom(
        [&](ErrorCode, const std::string&) { handled.fetch_add(1); }));
    Comm clone = comm.dup();  // MPI §8.3: the handler travels with dup
    int value = 0;
    EXPECT_EQ(clone.recv(&value, 1, Datatype::int32(), 0, 0).error,
              ErrorCode::kTimedOut);
    EXPECT_EQ(handled.load(), 1);
    // And the original is unaffected by anything the clone did.
    EXPECT_EQ(comm.recv(&value, 1, Datatype::int32(), 0, 0).error,
              ErrorCode::kTimedOut);
    EXPECT_EQ(handled.load(), 2);
  });
}

// ----------------------------------------------------------- compat layer

int g_handler_calls = 0;
int g_handler_code = MPI_SUCCESS;

void count_errors(MPI_Comm*, int* code) {
  ++g_handler_calls;
  g_handler_code = *code;
}

TEST(Errhandler, CompatErrorsReturnThroughCollectives) {
  // One failed collective per session: the first failure exhausts failover
  // and tears the only route down, so a second collective on the same
  // session would be a topology error (peer unreachable), not a delivery
  // failure with a Status to return.
  for (const int which : {0, 1}) {
    auto session = severed_pair();
    session->run([which](Comm world) {
      compat::bind_world(std::move(world));
      MPI_Init(nullptr, nullptr);
      // Both ranks must switch off the fatal default before the
      // collective: the root's send fails too (its route to 1 is dead).
      MPI_Comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
      int value = 1;
      if (which == 0) {
        EXPECT_NE(MPI_Bcast(&value, 1, MPI_INT, 0, MPI_COMM_WORLD),
                  MPI_SUCCESS);
      } else {
        int sum = 0;
        EXPECT_NE(MPI_Allreduce(&value, &sum, 1, MPI_INT, MPI_SUM,
                                MPI_COMM_WORLD),
                  MPI_SUCCESS);
      }
      MPI_Finalize();
      compat::unbind_world();
    });
  }
}

TEST(Errhandler, CompatDupInheritsHandlerAndInvokesItOnce) {
  g_handler_calls = 0;
  g_handler_code = MPI_SUCCESS;
  auto session = severed_pair();
  session->run([](Comm world) {
    compat::bind_world(std::move(world));
    MPI_Init(nullptr, nullptr);
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 1) {
      MPI_Errhandler handler = MPI_ERRHANDLER_NULL;
      MPI_Comm_create_errhandler(&count_errors, &handler);
      MPI_Comm_set_errhandler(MPI_COMM_WORLD, handler);

      MPI_Comm clone = MPI_COMM_NULL;
      MPI_Comm_dup(MPI_COMM_WORLD, &clone);
      MPI_Errhandler inherited = MPI_ERRHANDLER_NULL;
      MPI_Comm_get_errhandler(clone, &inherited);
      EXPECT_EQ(inherited, handler);

      int value = 0;
      const int rc = MPI_Recv(&value, 1, MPI_INT, 0, 0, clone,
                              MPI_STATUS_IGNORE);
      EXPECT_EQ(rc, MPI_ERR_OTHER);
      EXPECT_EQ(g_handler_calls, 1);
      EXPECT_EQ(g_handler_code, MPI_ERR_OTHER);
      MPI_Errhandler_free(&handler);
      MPI_Comm_free(&clone);
    }
    MPI_Finalize();
    compat::unbind_world();
  });
}

}  // namespace
}  // namespace madmpi
