// Tests for process groups and group-based communicator creation.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "mpi/group.hpp"

namespace madmpi::mpi {
namespace {

TEST(Group, EmptyAndBasics) {
  Group empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.rank_of(0), -1);

  Group group({4, 2, 7});
  EXPECT_EQ(group.size(), 3);
  EXPECT_EQ(group.world_rank(0), 4);
  EXPECT_EQ(group.world_rank(2), 7);
  EXPECT_EQ(group.rank_of(2), 1);
  EXPECT_EQ(group.rank_of(9), -1);
  EXPECT_TRUE(group.contains(7));
  EXPECT_FALSE(group.contains(5));
}

TEST(Group, DuplicatesRejected) {
  EXPECT_DEATH(Group({1, 2, 1}), "duplicate");
  EXPECT_DEATH(Group({-1}), "negative");
}

TEST(Group, UnionKeepsOrderAThenNewB) {
  Group a({0, 2, 4});
  Group b({4, 1, 2, 5});
  const Group u = Group::set_union(a, b);
  EXPECT_EQ(u.members(), (std::vector<rank_t>{0, 2, 4, 1, 5}));
}

TEST(Group, IntersectionInAOrder) {
  Group a({5, 3, 1});
  Group b({1, 2, 3});
  EXPECT_EQ(Group::set_intersection(a, b).members(),
            (std::vector<rank_t>{3, 1}));
}

TEST(Group, Difference) {
  Group a({0, 1, 2, 3});
  Group b({1, 3});
  EXPECT_EQ(Group::set_difference(a, b).members(),
            (std::vector<rank_t>{0, 2}));
  EXPECT_TRUE(Group::set_difference(b, a).empty());
}

TEST(Group, InclExcl) {
  Group group({10, 20, 30, 40});
  const int pick[] = {3, 0};
  EXPECT_EQ(group.incl(pick).members(), (std::vector<rank_t>{40, 10}));
  const int drop[] = {1, 2};
  EXPECT_EQ(group.excl(drop).members(), (std::vector<rank_t>{10, 40}));
}

TEST(Group, TranslateRanks) {
  Group a({0, 1, 2, 3});
  Group b({3, 1});
  const int queries[] = {0, 1, 2, 3};
  EXPECT_EQ(Group::translate_ranks(a, queries, b),
            (std::vector<int>{-1, 1, -1, 0}));
}

TEST(Group, EqualityAndSimilarity) {
  Group a({1, 2, 3});
  Group b({1, 2, 3});
  Group c({3, 2, 1});
  Group d({1, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.similar(c));
  EXPECT_FALSE(a.similar(d));
}

TEST(Group, DigestSeparatesGroups) {
  EXPECT_NE(Group({0, 1}).digest(), Group({1, 0}).digest());
  EXPECT_NE(Group({0, 1}).digest(), Group({0, 2}).digest());
  EXPECT_EQ(Group({0, 1, 2}).digest(), Group({0, 1, 2}).digest());
}

TEST(GroupComm, CommGroupReflectsMembership) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
  core::Session session(std::move(options));
  session.run([](Comm comm) {
    const Group world = comm.group();
    EXPECT_EQ(world.size(), 4);
    EXPECT_EQ(world.rank_of(comm.global_rank_of(comm.rank())), comm.rank());

    Comm odds_comm = comm.split(comm.rank() % 2, comm.rank());
    const Group sub = odds_comm.group();
    EXPECT_EQ(sub.size(), 2);
  });
}

TEST(GroupComm, CommCreateSubgroup) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kBip);
  core::Session session(std::move(options));
  session.run([](Comm comm) {
    // Everyone collectively creates the {3, 1} communicator (reversed
    // order: rank 3 becomes rank 0 of the new comm).
    const Group subset({3, 1});
    Comm sub = comm.create(subset);
    if (comm.rank() == 1 || comm.rank() == 3) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
      EXPECT_EQ(sub.rank(), comm.rank() == 3 ? 0 : 1);
      // Exchange across the new comm to prove the wiring.
      const int peer = 1 - sub.rank();
      int token = comm.rank() * 10;
      int incoming = -1;
      sub.sendrecv(&token, 1, Datatype::int32(), peer, 0, &incoming, 1,
                   Datatype::int32(), peer, 0);
      EXPECT_EQ(incoming, comm.rank() == 3 ? 10 : 30);
    } else {
      EXPECT_FALSE(sub.valid());
    }
  });
}

TEST(GroupComm, DisjointCreatesInOneCall) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
  core::Session session(std::move(options));
  session.run([](Comm comm) {
    // MPI-2.2 style: different callers pass disjoint groups in the same
    // collective call; each subgroup gets its own context.
    const Group mine = comm.rank() < 2 ? Group({0, 1}) : Group({2, 3});
    Comm sub = comm.create(mine);
    ASSERT_TRUE(sub.valid());
    int total = 0;
    int one = comm.rank();
    sub.allreduce(&one, &total, 1, Datatype::int32(), Op::sum());
    EXPECT_EQ(total, comm.rank() < 2 ? 1 : 5);
  });
}

TEST(GroupComm, CreateRejectsNonSubgroup) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  core::Session session(std::move(options));
  session.run([](Comm comm) {
    // Collective: both ranks create their singleton communicator.
    Comm solo = comm.create(Group({comm.global_rank_of(comm.rank())}));
    ASSERT_TRUE(solo.valid());
    EXPECT_EQ(solo.size(), 1);
    if (comm.rank() == 0) {
      // Rank 1's world rank is not a member of rank 0's solo comm.
      EXPECT_DEATH(solo.create(Group({1})), "subgroup");
    }
  });
}

}  // namespace
}  // namespace madmpi::mpi
