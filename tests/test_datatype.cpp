// Tests for the MPI datatype engine.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "mpi/datatype.hpp"

namespace madmpi::mpi {
namespace {

TEST(Datatype, PrimitiveSizes) {
  EXPECT_EQ(Datatype::int8().size(), 1u);
  EXPECT_EQ(Datatype::uint8().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::uint32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::uint64().size(), 8u);
  EXPECT_EQ(Datatype::float32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_EQ(Datatype::byte().size(), 1u);
}

TEST(Datatype, PrimitivesAreContiguous) {
  EXPECT_TRUE(Datatype::int32().is_contiguous());
  EXPECT_EQ(Datatype::int32().extent(), Datatype::int32().size());
  EXPECT_EQ(Datatype::float64().type_class(), TypeClass::kDouble);
}

TEST(Datatype, ContiguousOfPrimitive) {
  const auto type = Datatype::contiguous(10, Datatype::int32());
  EXPECT_EQ(type.size(), 40u);
  EXPECT_EQ(type.extent(), 40u);
  EXPECT_TRUE(type.is_contiguous());
  EXPECT_EQ(type.type_class(), TypeClass::kInt32);
  ASSERT_EQ(type.segments().size(), 1u);  // coalesced into one run
}

TEST(Datatype, VectorStridedLayout) {
  // 3 blocks of 2 ints, stride 4 ints: |XX..|XX..|XX|
  const auto type = Datatype::vector(3, 2, 4, Datatype::int32());
  EXPECT_EQ(type.size(), 24u);
  EXPECT_EQ(type.extent(), (2 * 4 + 2) * 4u);
  EXPECT_FALSE(type.is_contiguous());
  ASSERT_EQ(type.segments().size(), 3u);
  EXPECT_EQ(type.segments()[1].offset, 16u);
  EXPECT_EQ(type.segments()[1].length, 8u);
}

TEST(Datatype, VectorPackUnpackRoundTrip) {
  const auto column = Datatype::vector(4, 1, 5, Datatype::int32());
  // A 4x5 row-major matrix; the type extracts column 0.
  std::array<int, 20> matrix;
  std::iota(matrix.begin(), matrix.end(), 0);
  std::array<std::byte, 16> wire;
  column.pack(matrix.data(), 1, wire.data());
  std::array<int, 4> unpacked;
  std::memcpy(unpacked.data(), wire.data(), sizeof unpacked);
  EXPECT_EQ(unpacked, (std::array<int, 4>{0, 5, 10, 15}));

  std::array<int, 20> restored;
  restored.fill(-1);
  column.unpack(wire.data(), 1, restored.data());
  EXPECT_EQ(restored[0], 0);
  EXPECT_EQ(restored[5], 5);
  EXPECT_EQ(restored[10], 10);
  EXPECT_EQ(restored[15], 15);
  EXPECT_EQ(restored[1], -1);  // untouched holes
}

TEST(Datatype, UnitStrideVectorCoalesces) {
  const auto type = Datatype::vector(5, 1, 1, Datatype::float64());
  EXPECT_TRUE(type.is_contiguous());
  EXPECT_EQ(type.size(), 40u);
}

TEST(Datatype, IndexedRaggedBlocks) {
  const int lengths[] = {2, 1, 3};
  const int displs[] = {0, 4, 6};
  const auto type = Datatype::indexed(lengths, displs, Datatype::int32());
  EXPECT_EQ(type.size(), 24u);
  EXPECT_EQ(type.extent(), 36u);  // up to element 9

  std::array<int, 9> data{10, 11, 12, 13, 14, 15, 16, 17, 18};
  std::array<std::byte, 24> wire;
  type.pack(data.data(), 1, wire.data());
  std::array<int, 6> packed;
  std::memcpy(packed.data(), wire.data(), sizeof packed);
  EXPECT_EQ(packed, (std::array<int, 6>{10, 11, 14, 16, 17, 18}));
}

TEST(Datatype, StructHeterogeneous) {
  struct Particle {
    double position[3];
    float mass;
    std::int32_t id;
    std::int32_t padding_do_not_send;
  };
  const int lengths[] = {3, 1, 1};
  const std::ptrdiff_t displs[] = {offsetof(Particle, position),
                                   offsetof(Particle, mass),
                                   offsetof(Particle, id)};
  const Datatype types[] = {Datatype::float64(), Datatype::float32(),
                            Datatype::int32()};
  auto particle = Datatype::create_struct(lengths, displs, types);
  particle = Datatype::resized(particle, sizeof(Particle));

  EXPECT_EQ(particle.size(), 3 * 8 + 4 + 4u);
  EXPECT_EQ(particle.extent(), sizeof(Particle));
  EXPECT_EQ(particle.type_class(), TypeClass::kDerived);

  std::array<Particle, 2> particles{};
  particles[0] = {{1.0, 2.0, 3.0}, 0.5f, 7, -999};
  particles[1] = {{4.0, 5.0, 6.0}, 1.5f, 8, -999};
  std::vector<std::byte> wire(particle.size() * 2);
  particle.pack(particles.data(), 2, wire.data());

  std::array<Particle, 2> restored{};
  restored[0].padding_do_not_send = 42;
  particle.unpack(wire.data(), 2, restored.data());
  EXPECT_EQ(restored[0].position[2], 3.0);
  EXPECT_EQ(restored[1].position[0], 4.0);
  EXPECT_EQ(restored[0].mass, 0.5f);
  EXPECT_EQ(restored[1].id, 8);
  EXPECT_EQ(restored[0].padding_do_not_send, 42);  // never transmitted
}

TEST(Datatype, NestedDerivedTypes) {
  // vector of contiguous: 2 blocks of (3 ints), stride 2 in units of the
  // inner type's extent.
  const auto inner = Datatype::contiguous(3, Datatype::int32());
  const auto outer = Datatype::vector(2, 1, 2, inner);
  EXPECT_EQ(outer.size(), 24u);
  EXPECT_EQ(outer.extent(), 3 * 4 * 2 + 12u);

  std::array<int, 9> data{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::byte> wire(outer.size());
  outer.pack(data.data(), 1, wire.data());
  std::array<int, 6> packed;
  std::memcpy(packed.data(), wire.data(), sizeof packed);
  EXPECT_EQ(packed, (std::array<int, 6>{0, 1, 2, 6, 7, 8}));
}

TEST(Datatype, MultiElementPackUsesExtent) {
  const auto type = Datatype::vector(2, 1, 2, Datatype::int32());
  // extent = 3 ints (stride 2 blocks minus trailing hole -> 2*2-1 = 3).
  EXPECT_EQ(type.extent(), 12u);
  std::array<int, 7> data{0, 1, 2, 3, 4, 5, 6};
  std::vector<std::byte> wire(type.size() * 2);
  type.pack(data.data(), 2, wire.data());
  std::array<int, 4> packed;
  std::memcpy(packed.data(), wire.data(), sizeof packed);
  // Element 0 picks data[0], data[2]; element 1 starts at data[3].
  EXPECT_EQ(packed, (std::array<int, 4>{0, 2, 3, 5}));
}

TEST(Datatype, ResizedChangesExtentOnly) {
  const auto base = Datatype::contiguous(2, Datatype::int32());
  const auto resized = Datatype::resized(base, 32);
  EXPECT_EQ(resized.size(), 8u);
  EXPECT_EQ(resized.extent(), 32u);
  EXPECT_FALSE(resized.is_contiguous());
}

TEST(Datatype, ZeroCountTypes) {
  const auto type = Datatype::contiguous(0, Datatype::float64());
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.extent(), 0u);
}

TEST(Datatype, EqualityIsIdentity) {
  const auto a = Datatype::int32();
  const auto b = Datatype::int32();
  EXPECT_TRUE(a == b);  // primitives share a singleton
  const auto c = Datatype::contiguous(1, a);
  EXPECT_FALSE(c == a);
}

TEST(Datatype, PropertyRandomIndexedRoundTrips) {
  Rng rng(2026);
  for (int round = 0; round < 50; ++round) {
    const int blocks = static_cast<int>(rng.next_range(1, 8));
    std::vector<int> lengths, displs;
    int cursor = 0;
    for (int b = 0; b < blocks; ++b) {
      displs.push_back(cursor + static_cast<int>(rng.next_range(0, 3)));
      lengths.push_back(static_cast<int>(rng.next_range(1, 5)));
      cursor = displs.back() + lengths.back();
    }
    const auto type = Datatype::indexed(lengths, displs, Datatype::int32());
    const int total = cursor;
    std::vector<int> data(static_cast<std::size_t>(total));
    std::iota(data.begin(), data.end(), round * 100);
    std::vector<std::byte> wire(type.size());
    type.pack(data.data(), 1, wire.data());
    std::vector<int> restored(static_cast<std::size_t>(total), -1);
    type.unpack(wire.data(), 1, restored.data());
    for (int b = 0; b < blocks; ++b) {
      for (int j = 0; j < lengths[b]; ++j) {
        const int at = displs[b] + j;
        ASSERT_EQ(restored[static_cast<std::size_t>(at)],
                  data[static_cast<std::size_t>(at)])
            << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace madmpi::mpi
