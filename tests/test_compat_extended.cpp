// Extended C facade: derived datatypes, persistent requests, buffered
// sends, multi-request completion, cartesian topologies — textbook MPI
// patterns running unmodified.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/compat.hpp"
#include "sim/topology.hpp"

namespace madmpi {
namespace {

sim::ClusterSpec four_nodes() {
  return sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
}

TEST(CompatExtended, DerivedDatatypeVector) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);

    MPI_Datatype column;
    MPI_Type_vector(4, 1, 4, MPI_INT, &column);
    MPI_Type_commit(&column);
    int type_size = 0;
    MPI_Type_size(column, &type_size);
    EXPECT_EQ(type_size, 16);

    if (rank == 0) {
      std::vector<int> matrix(16);
      std::iota(matrix.begin(), matrix.end(), 0);
      MPI_Send(matrix.data(), 1, column, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
      std::vector<int> col(4, -1);
      MPI_Recv(col.data(), 4, MPI_INT, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      EXPECT_EQ(col, (std::vector<int>{0, 4, 8, 12}));
    }
    MPI_Type_free(&column);
    MPI_Finalize();
  });
}

TEST(CompatExtended, PackUnpack) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      char buffer[64];
      int position = 0;
      int header = 3;
      double values[3] = {1.5, 2.5, 3.5};
      int needed = 0;
      MPI_Pack_size(3, MPI_DOUBLE, MPI_COMM_WORLD, &needed);
      EXPECT_EQ(needed, 24);
      MPI_Pack(&header, 1, MPI_INT, buffer, 64, &position, MPI_COMM_WORLD);
      MPI_Pack(values, 3, MPI_DOUBLE, buffer, 64, &position, MPI_COMM_WORLD);
      MPI_Send(buffer, position, MPI_BYTE, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
      char buffer[64];
      MPI_Status status;
      MPI_Recv(buffer, 64, MPI_BYTE, 0, 0, MPI_COMM_WORLD, &status);
      int bytes = 0;
      MPI_Get_count(&status, MPI_BYTE, &bytes);
      int position = 0;
      int header = 0;
      MPI_Unpack(buffer, bytes, &position, &header, 1, MPI_INT,
                 MPI_COMM_WORLD);
      ASSERT_EQ(header, 3);
      std::vector<double> values(3);
      MPI_Unpack(buffer, bytes, &position, values.data(), 3, MPI_DOUBLE,
                 MPI_COMM_WORLD);
      EXPECT_EQ(values[2], 3.5);
    }
    MPI_Finalize();
  });
}

TEST(CompatExtended, PersistentHaloPattern) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const int right = (rank + 1) % size;
    const int left = (rank + size - 1) % size;

    int out = 0;
    int in = -1;
    MPI_Request requests[2];
    MPI_Recv_init(&in, 1, MPI_INT, left, 0, MPI_COMM_WORLD, &requests[0]);
    MPI_Send_init(&out, 1, MPI_INT, right, 0, MPI_COMM_WORLD, &requests[1]);

    for (int iter = 0; iter < 10; ++iter) {
      out = rank * 100 + iter;
      MPI_Startall(2, requests);
      int flag = 0;
      MPI_Testall(2, requests, &flag, MPI_STATUSES_IGNORE);
      while (flag == 0) {
        MPI_Testall(2, requests, &flag, MPI_STATUSES_IGNORE);
      }
      ASSERT_EQ(in, left * 100 + iter);
    }
    MPI_Request_free(&requests[0]);
    MPI_Request_free(&requests[1]);
    MPI_Finalize();
  });
}

TEST(CompatExtended, BsendWithAttachedBuffer) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      static char pool[1 << 16];
      MPI_Buffer_attach(pool, sizeof pool);
      std::vector<int> data(1000, 7);
      MPI_Bsend(data.data(), 1000, MPI_INT, 1, 0, MPI_COMM_WORLD);
      std::fill(data.begin(), data.end(), -1);  // reusable immediately
      void* detached = nullptr;
      int detached_size = 0;
      MPI_Buffer_detach(&detached, &detached_size);
      EXPECT_EQ(detached_size, 1 << 16);
    } else if (rank == 1) {
      std::vector<int> data(1000, 0);
      MPI_Recv(data.data(), 1000, MPI_INT, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      for (int v : data) ASSERT_EQ(v, 7);
    }
    MPI_Finalize();
  });
}

TEST(CompatExtended, WaitanyPicksCompleted) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int a = -1, b = -1;
      MPI_Request requests[2];
      MPI_Irecv(&a, 1, MPI_INT, 1, 1, MPI_COMM_WORLD, &requests[0]);
      MPI_Irecv(&b, 1, MPI_INT, 2, 2, MPI_COMM_WORLD, &requests[1]);
      MPI_Status status;
      int index = -1;
      MPI_Waitany(2, requests, &index, &status);
      ASSERT_TRUE(index == 0 || index == 1);
      EXPECT_EQ(requests[index], MPI_REQUEST_NULL);
      int second = -1;
      MPI_Waitany(2, requests, &second, &status);
      EXPECT_NE(second, index);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    } else if (rank == 1) {
      int v = 111;
      MPI_Send(&v, 1, MPI_INT, 0, 1, MPI_COMM_WORLD);
    } else if (rank == 2) {
      int v = 222;
      MPI_Send(&v, 1, MPI_INT, 0, 2, MPI_COMM_WORLD);
    }
    MPI_Finalize();
  });
}

TEST(CompatExtended, CartesianTorus) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    int dims[2] = {0, 0};
    MPI_Dims_create(size, 2, dims);
    EXPECT_EQ(dims[0] * dims[1], size);

    int periods[2] = {1, 1};
    MPI_Comm torus;
    MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 0, &torus);
    ASSERT_NE(torus, MPI_COMM_NULL);

    int coords[2] = {-1, -1};
    MPI_Cart_coords(torus, rank, 2, coords);
    int back = -1;
    MPI_Cart_rank(torus, coords, &back);
    EXPECT_EQ(back, rank);

    int source = MPI_PROC_NULL, dest = MPI_PROC_NULL;
    MPI_Cart_shift(torus, 0, 1, &source, &dest);
    ASSERT_NE(dest, MPI_PROC_NULL);  // periodic: always a neighbour

    int token = rank;
    int incoming = -1;
    MPI_Sendrecv(&token, 1, MPI_INT, dest, 0, &incoming, 1, MPI_INT, source,
                 0, torus, MPI_STATUS_IGNORE);
    EXPECT_EQ(incoming, source);
    MPI_Finalize();
  });
}

TEST(CompatExtended, NonPeriodicBoundaryIsProcNull) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    int dims[1] = {4};
    int periods[1] = {0};
    MPI_Comm line;
    MPI_Cart_create(MPI_COMM_WORLD, 1, dims, periods, 0, &line);
    int source, dest;
    MPI_Cart_shift(line, 0, 1, &source, &dest);
    if (rank == 3) {
      EXPECT_EQ(dest, MPI_PROC_NULL);
    }
    if (rank == 0) {
      EXPECT_EQ(source, MPI_PROC_NULL);
    }
    MPI_Finalize();
  });
}

TEST(CompatExtended, GathervScattervAllgatherv) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    // Ragged gatherv: rank r contributes r+1 ints.
    std::vector<int> mine(static_cast<std::size_t>(rank + 1), rank);
    const int counts[4] = {1, 2, 3, 4};
    const int displs[4] = {0, 1, 3, 6};
    std::vector<int> gathered(10, -1);
    MPI_Gatherv(mine.data(), rank + 1, MPI_INT, gathered.data(), counts,
                displs, MPI_INT, 0, MPI_COMM_WORLD);
    if (rank == 0) {
      EXPECT_EQ(gathered,
                (std::vector<int>{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}));
    }

    // allgatherv: everyone sees the ragged concatenation.
    std::vector<int> all(10, -1);
    MPI_Allgatherv(mine.data(), rank + 1, MPI_INT, all.data(), counts,
                   displs, MPI_INT, MPI_COMM_WORLD);
    EXPECT_EQ(all, (std::vector<int>{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}));

    // scatterv sends each rank its slice back.
    std::vector<int> back(static_cast<std::size_t>(rank + 1), -1);
    MPI_Scatterv(rank == 0 ? all.data() : nullptr, counts, displs, MPI_INT,
                 back.data(), rank + 1, MPI_INT, 0, MPI_COMM_WORLD);
    EXPECT_EQ(back, mine);
    MPI_Finalize();
  });
}

TEST(CompatExtended, Alltoallv) {
  compat::run(four_nodes(), [] {
    MPI_Init(nullptr, nullptr);
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    // Uniform one int per peer (alltoallv degenerate case).
    std::vector<int> out(static_cast<std::size_t>(size));
    std::vector<int> counts(static_cast<std::size_t>(size), 1);
    std::vector<int> displs(static_cast<std::size_t>(size));
    for (int d = 0; d < size; ++d) {
      out[static_cast<std::size_t>(d)] = rank * 10 + d;
      displs[static_cast<std::size_t>(d)] = d;
    }
    std::vector<int> in(static_cast<std::size_t>(size), -1);
    MPI_Alltoallv(out.data(), counts.data(), displs.data(), MPI_INT,
                  in.data(), counts.data(), displs.data(), MPI_INT,
                  MPI_COMM_WORLD);
    for (int s = 0; s < size; ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)], s * 10 + rank);
    }
    MPI_Finalize();
  });
}

}  // namespace
}  // namespace madmpi

// Alltoallv lives in the C++ API; test it here alongside for convenience.
#include "core/session.hpp"

namespace madmpi {
namespace {

TEST(Alltoallv, RaggedExchange) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kBip);
  core::Session session(std::move(options));
  session.run([](mpi::Comm comm) {
    const int n = comm.size();
    // Rank r sends (d + 1) ints to rank d, values r*100+d repeated.
    std::vector<int> send_counts(static_cast<std::size_t>(n));
    std::vector<int> send_displs(static_cast<std::size_t>(n));
    std::vector<int> send_data;
    for (int d = 0; d < n; ++d) {
      send_counts[static_cast<std::size_t>(d)] = d + 1;
      send_displs[static_cast<std::size_t>(d)] =
          static_cast<int>(send_data.size());
      for (int k = 0; k <= d; ++k) send_data.push_back(comm.rank() * 100 + d);
    }
    // Rank r receives (r + 1) ints from every source.
    std::vector<int> recv_counts(static_cast<std::size_t>(n),
                                 comm.rank() + 1);
    std::vector<int> recv_displs(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      recv_displs[static_cast<std::size_t>(s)] = s * (comm.rank() + 1);
    }
    std::vector<int> recv_data(
        static_cast<std::size_t>(n * (comm.rank() + 1)), -1);

    comm.alltoallv(send_data.data(), send_counts, send_displs,
                   mpi::Datatype::int32(), recv_data.data(), recv_counts,
                   recv_displs, mpi::Datatype::int32());

    for (int s = 0; s < n; ++s) {
      for (int k = 0; k <= comm.rank(); ++k) {
        ASSERT_EQ(recv_data[static_cast<std::size_t>(
                      s * (comm.rank() + 1) + k)],
                  s * 100 + comm.rank())
            << "from " << s << " item " << k;
      }
    }
  });
}

TEST(Alltoallv, ZeroCountsAreFine) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  core::Session session(std::move(options));
  session.run([](mpi::Comm comm) {
    // Only rank 0 -> rank 1 carries data; all other blocks are empty.
    std::vector<int> counts_send(2, 0), counts_recv(2, 0);
    std::vector<int> displs(2, 0);
    int payload = 5;
    int received = -1;
    if (comm.rank() == 0) counts_send[1] = 1;
    if (comm.rank() == 1) counts_recv[0] = 1;
    comm.alltoallv(&payload, counts_send, displs, mpi::Datatype::int32(),
                   &received, counts_recv, displs, mpi::Datatype::int32());
    if (comm.rank() == 1) {
      EXPECT_EQ(received, 5);
    }
  });
}

}  // namespace
}  // namespace madmpi

namespace madmpi {
namespace {

TEST(CompatExtended, WaitOnInactivePersistentIsImmediate) {
  compat::run(sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp), [] {
    MPI_Init(nullptr, nullptr);
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int buf = 0;
      MPI_Request request;
      MPI_Recv_init(&buf, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, &request);
      // Never started: wait/test must return immediately (MPI semantics
      // for inactive persistent requests).
      MPI_Wait(&request, MPI_STATUS_IGNORE);
      int flag = 0;
      MPI_Test(&request, &flag, MPI_STATUS_IGNORE);
      EXPECT_EQ(flag, 1);
      MPI_Testall(1, &request, &flag, MPI_STATUSES_IGNORE);
      EXPECT_EQ(flag, 1);
      MPI_Request_free(&request);
      EXPECT_EQ(request, MPI_REQUEST_NULL);
    }
    MPI_Finalize();
  });
}

}  // namespace
}  // namespace madmpi
