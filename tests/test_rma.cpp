// One-sided communication over the zero-copy datapath: windows,
// put/get/accumulate, fence and lock/unlock epochs, heterogeneous peers —
// plus regression tests for the MPI_Get_count zero-size-datatype edge, the
// negative MPI_Comm_split color, and recoverable stream truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "harness.hpp"
#include "mad/madeleine.hpp"
#include "mpi/compat.hpp"
#include "mpi/win.hpp"
#include "sim/sched.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;
using mpi::RmaLockType;
using mpi::RmaOp;
using mpi::RmaType;
using mpi::Win;

std::unique_ptr<Session> pair_session(sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  return std::make_unique<Session>(std::move(options));
}

// ----------------------------------------------------------- active target

TEST(Rma, PutVisibleAfterFence) {
  auto session = pair_session(sim::Protocol::kSisci);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 256);
    ASSERT_TRUE(win.valid());
    EXPECT_EQ(win.size(), 256u);

    ASSERT_TRUE(win.fence().is_ok());
    std::vector<std::uint8_t> payload(64);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 3 + 1);
      }
      EXPECT_TRUE(win.put(payload.data(), static_cast<int>(payload.size()),
                          RmaType::kUint8, 1, 0)
                      .is_ok());
    }
    ASSERT_TRUE(win.fence().is_ok());
    if (comm.rank() == 1) {
      EXPECT_EQ(win.puts_applied(), 1u);
      const auto* exposed =
          reinterpret_cast<const std::uint8_t*>(win.base());
      for (std::size_t i = 0; i < payload.size(); ++i) {
        ASSERT_EQ(exposed[i], static_cast<std::uint8_t>(i * 3 + 1)) << i;
      }
      // Untouched remainder stays zeroed (Win::allocate zero-fills).
      EXPECT_EQ(exposed[64], 0u);
    }
    EXPECT_TRUE(win.free().is_ok());
  });
}

TEST(Rma, GetRoundtrip) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 128);
    if (comm.rank() == 1) {
      // Local stores into one's own exposed window need no epoch.
      std::int32_t values[4] = {11, -22, 33, -44};
      std::memcpy(win.base(), values, sizeof values);
    }
    ASSERT_TRUE(win.fence().is_ok());
    std::int32_t fetched[4] = {0, 0, 0, 0};
    if (comm.rank() == 0) {
      ASSERT_TRUE(win.get(fetched, 4, RmaType::kInt32, 1, 0).is_ok());
    }
    ASSERT_TRUE(win.fence().is_ok());  // completes the get
    if (comm.rank() == 0) {
      EXPECT_EQ(fetched[0], 11);
      EXPECT_EQ(fetched[1], -22);
      EXPECT_EQ(fetched[2], 33);
      EXPECT_EQ(fetched[3], -44);
    }
    EXPECT_TRUE(win.free().is_ok());
  });
}

TEST(Rma, AccumulateSumAndReplace) {
  auto session = pair_session(sim::Protocol::kSisci);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 64);
    ASSERT_TRUE(win.fence().is_ok());
    if (comm.rank() == 0) {
      std::int32_t addend = 40;
      EXPECT_TRUE(
          win.accumulate(&addend, 1, RmaType::kInt32, RmaOp::kSum, 1, 0)
              .is_ok());
      addend = 2;
      EXPECT_TRUE(
          win.accumulate(&addend, 1, RmaType::kInt32, RmaOp::kSum, 1, 0)
              .is_ok());
      const double replaced = 2.5;
      EXPECT_TRUE(win.accumulate(&replaced, 1, RmaType::kFloat64,
                                 RmaOp::kReplace, 1, 8)
                      .is_ok());
    }
    ASSERT_TRUE(win.fence().is_ok());
    if (comm.rank() == 1) {
      EXPECT_EQ(win.accumulates_applied(), 3u);
      std::int32_t sum = 0;
      std::memcpy(&sum, win.base(), sizeof sum);
      EXPECT_EQ(sum, 42);  // window starts zeroed: 0 + 40 + 2
      double stored = 0.0;
      std::memcpy(&stored, win.base() + 8, sizeof stored);
      EXPECT_EQ(stored, 2.5);
    }
    EXPECT_TRUE(win.free().is_ok());
  });
}

// ---------------------------------------------------------- passive target

TEST(Rma, LockUnlockExclusiveRemote) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 64);
    if (comm.rank() == 0) {
      ASSERT_TRUE(win.lock(RmaLockType::kExclusive, 1).is_ok());
      const std::int64_t value = 0x0123456789abcdefLL;
      EXPECT_TRUE(win.put(&value, 1, RmaType::kInt64, 1, 0).is_ok());
      ASSERT_TRUE(win.unlock(1).is_ok());
    }
    // unlock() returning means the put has been applied at the target; the
    // barrier sequences rank 1's read behind rank 0's unlock.
    ASSERT_TRUE(comm.barrier().is_ok());
    if (comm.rank() == 1) {
      std::int64_t stored = 0;
      std::memcpy(&stored, win.base(), sizeof stored);
      EXPECT_EQ(stored, 0x0123456789abcdefLL);
      EXPECT_EQ(win.puts_applied(), 1u);
    }
    EXPECT_TRUE(win.free().is_ok());
  });
}

TEST(Rma, LockSelfSameNodePath) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 64);
    // Same-node (here: self) lock and put go through the direct host-store
    // path — no wire traffic, still epoch-checked.
    ASSERT_TRUE(win.lock(RmaLockType::kExclusive, comm.rank()).is_ok());
    const std::int32_t value = 7 + comm.rank();
    EXPECT_TRUE(
        win.put(&value, 1, RmaType::kInt32, comm.rank(), 16).is_ok());
    ASSERT_TRUE(win.unlock(comm.rank()).is_ok());
    std::int32_t stored = 0;
    std::memcpy(&stored, win.base() + 16, sizeof stored);
    EXPECT_EQ(stored, 7 + comm.rank());
    EXPECT_TRUE(win.free().is_ok());
  });
}

// ------------------------------------------------------------ heterogeneity

TEST(Rma, HeterogeneousPutAndAccumulate) {
  // Node 1 is big-endian: its puts stage-and-swap at the origin, and every
  // payload it receives is swapped back on landing — values survive both
  // directions (receiver-makes-right, same convention as two-sided).
  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  options.cluster.nodes[1].big_endian = true;
  Session session(std::move(options));
  session.run([&](Comm comm) {
    Win win = Win::allocate(comm, 256);
    if (comm.rank() == 0) {
      const std::int32_t seed = 37;  // rank 1 accumulates onto this
      std::memcpy(win.base() + 128, &seed, sizeof seed);
    }
    ASSERT_TRUE(win.fence().is_ok());
    const std::int32_t out[3] = {0x01020304, -7, 1 << 30};
    if (comm.rank() == 0) {
      // Little-endian origin, big-endian target.
      EXPECT_TRUE(win.put(out, 3, RmaType::kInt32, 1, 0).is_ok());
    } else {
      // Big-endian origin, little-endian target — put and accumulate.
      EXPECT_TRUE(win.put(out, 3, RmaType::kInt32, 0, 64).is_ok());
      const std::int32_t addend = 5;
      EXPECT_TRUE(
          win.accumulate(&addend, 1, RmaType::kInt32, RmaOp::kSum, 0, 128)
              .is_ok());
    }
    ASSERT_TRUE(win.fence().is_ok());
    std::int32_t in[3] = {0, 0, 0};
    const std::size_t offset = comm.rank() == 0 ? 64 : 0;
    std::memcpy(in, win.base() + offset, sizeof in);
    EXPECT_EQ(in[0], 0x01020304);
    EXPECT_EQ(in[1], -7);
    EXPECT_EQ(in[2], 1 << 30);
    if (comm.rank() == 0) {
      std::int32_t sum = 0;
      std::memcpy(&sum, win.base() + 128, sizeof sum);
      EXPECT_EQ(sum, 42);  // 37 + 5, applied in host order
    }
    EXPECT_TRUE(win.free().is_ok());
  });
}

// ------------------------------------------------------------ error paths

TEST(Rma, WindowBoundsAndBadTargetAreRefused) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 64);
    ASSERT_TRUE(win.fence().is_ok());
    std::vector<std::uint8_t> payload(65, 0xee);
    const int peer = 1 - comm.rank();
    // Larger than the whole target window.
    Status status = win.put(payload.data(), 65, RmaType::kUint8, peer, 0);
    EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
    // In range by size, out of range by offset.
    status = win.put(payload.data(), 8, RmaType::kUint8, peer, 60);
    EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
    // Target rank outside the communicator.
    status = win.put(payload.data(), 1, RmaType::kUint8, 5, 0);
    EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
    // Nothing was transmitted or applied anywhere.
    ASSERT_TRUE(win.fence().is_ok());
    EXPECT_EQ(win.puts_applied(), 0u);
    EXPECT_TRUE(win.free().is_ok());
  });
}

TEST(Rma, AccessOutsideEpochIsRefused) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    Win win = Win::allocate(comm, 64);
    // No fence yet, no lock held: every access must be refused locally.
    std::uint8_t byte = 1;
    EXPECT_EQ(win.put(&byte, 1, RmaType::kByte, 1 - comm.rank(), 0).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(win.get(&byte, 1, RmaType::kByte, 1 - comm.rank(), 0).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(win.accumulate(&byte, 1, RmaType::kUint8, RmaOp::kSum,
                             1 - comm.rank(), 0)
                  .code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(win.puts_applied(), 0u);
    EXPECT_TRUE(win.free().is_ok());
  });
}

// ------------------------------------------------- conformance integration

TEST(Rma, ConformanceScenarioPassesUnperturbed) {
  const conformance::Scenario* scenario = conformance::find_scenario("rma");
  ASSERT_NE(scenario, nullptr);
  // Seed 0 = perturbation off; the 20-seed sweep runs as the `rma_sweep`
  // ctest entry (label: sweep) and in the nightly --scenario=all sweep.
  const auto result =
      conformance::run_scenario(*scenario, 0, sim::kSchedAllChoices);
  EXPECT_TRUE(result.passed())
      << (result.violations.empty()
              ? ""
              : result.violations.front().oracle + ": " +
                    result.violations.front().detail);
}

// ------------------------------------------------- regression: MPI_Get_count

TEST(RmaRegression, ElementCountZeroSizeDatatype) {
  // An empty message counts zero elements even of a zero-size (empty
  // derived) datatype; only a non-dividing byte count is MPI_UNDEFINED.
  EXPECT_EQ(mpi::element_count(0, 0), 0);
  EXPECT_EQ(mpi::element_count(0, 4), 0);
  EXPECT_EQ(mpi::element_count(4, 0), -1);
  EXPECT_EQ(mpi::element_count(5, 4), -1);
  EXPECT_EQ(mpi::element_count(8, 4), 2);

  mpi::MpiStatus status;
  status.bytes = 0;
  EXPECT_EQ(status.count(0), 0);
  status.bytes = 12;
  EXPECT_EQ(status.count(0), -1);
  EXPECT_EQ(status.count(4), 3);
}

TEST(RmaRegression, CompatGetCountZeroSizeDatatype) {
  compat::run(sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp), [] {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype empty;
    MPI_Type_contiguous(0, MPI_INT, &empty);
    MPI_Type_commit(&empty);

    MPI_Status status{};
    status.internal_bytes = 0;
    int count = -1;
    EXPECT_EQ(MPI_Get_count(&status, empty, &count), MPI_SUCCESS);
    EXPECT_EQ(count, 0);  // empty message: 0, not MPI_UNDEFINED

    status.internal_bytes = 4;
    EXPECT_EQ(MPI_Get_count(&status, empty, &count), MPI_SUCCESS);
    EXPECT_EQ(count, MPI_UNDEFINED);  // 4 bytes never divide into 0-size

    MPI_Type_free(&empty);
    MPI_Finalize();
  });
}

// --------------------------------------------- regression: negative color

TEST(RmaRegression, SplitNegativeColorRaisesInvalidArgument) {
  auto session = pair_session(sim::Protocol::kTcp);
  session->run([&](Comm comm) {
    ErrorCode seen = ErrorCode::kOk;
    comm.set_errhandler(mpi::Errhandler::custom(
        [&](ErrorCode code, const std::string&) { seen = code; }));
    Comm split = comm.split(-5, 0);
    EXPECT_FALSE(split.valid());
    EXPECT_EQ(seen, ErrorCode::kInvalidArgument);
    // The guard fires before the collective exchange, so no rank is left
    // stuck inside the allgather — a legal split still works afterwards.
    comm.set_errhandler(mpi::Errhandler::errors_return());
    Comm legal = comm.split(0, comm.rank());
    ASSERT_TRUE(legal.valid());
    EXPECT_EQ(legal.size(), comm.size());
  });
}

TEST(RmaRegression, CompatSplitNegativeColorReturnsErrArg) {
  compat::run(sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp), [] {
    MPI_Init(nullptr, nullptr);
    MPI_Comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    MPI_Comm out = 99;
    EXPECT_EQ(MPI_Comm_split(MPI_COMM_WORLD, -5, 0, &out), MPI_ERR_ARG);
    EXPECT_EQ(out, MPI_COMM_NULL);
    // MPI_UNDEFINED stays the legal "no membership" sentinel.
    EXPECT_EQ(MPI_Comm_split(MPI_COMM_WORLD, MPI_UNDEFINED, 0, &out),
              MPI_SUCCESS);
    EXPECT_EQ(out, MPI_COMM_NULL);
    MPI_Finalize();
  });
}

// ----------------------------------------------- regression: truncation

TEST(RmaRegression, TruncatedUnpackViewIsRecoverable) {
  // Unpacking past the end of a message marks the stream truncated and
  // returns an empty view instead of aborting the rank; end_unpacking()
  // stays callable (the consumer maps this onto MPI_ERR_TRUNCATE).
  sim::Fabric fabric;
  mad::Madeleine madeleine(
      fabric, sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp));
  mad::Channel& channel =
      madeleine.open_channel(madeleine.cluster().networks[0], "c0");

  std::thread sender([&] {
    std::int64_t value = 41;
    mad::Packing packing = channel.at(0)->begin_packing(1);
    packing.pack(&value, sizeof value, mad::SendMode::kCheaper,
                 mad::RecvMode::kExpress);
    packing.end_packing();
  });

  auto incoming = channel.at(1)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  const auto first = incoming->unpack_view(8, mad::SendMode::kCheaper,
                                           mad::RecvMode::kExpress);
  EXPECT_EQ(first.bytes.size(), 8u);
  EXPECT_FALSE(incoming->truncated());

  // The message carried one block; asking for another truncates.
  const auto past = incoming->unpack_view(4, mad::SendMode::kCheaper,
                                          mad::RecvMode::kExpress);
  EXPECT_TRUE(incoming->truncated());
  EXPECT_TRUE(past.bytes.empty());
  incoming->end_unpacking();
  sender.join();
}

}  // namespace
}  // namespace madmpi
