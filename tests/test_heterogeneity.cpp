// Heterogeneity management: mixed-endianness clusters (the "datatype
// management, heterogeneity" responsibility of the generic ADI, paper
// Figure 1). Wire data travels in the sender's byte order; the receiver
// makes it right.
#include <gtest/gtest.h>

#include <numeric>

#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

/// Two TCP nodes, the second declared big-endian.
std::unique_ptr<Session> mixed_pair(sim::Protocol protocol) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  options.cluster.nodes[1].big_endian = true;
  return std::make_unique<Session>(std::move(options));
}

TEST(Heterogeneity, SwapPackedPrimitives) {
  const auto i32 = Datatype::int32();
  std::uint32_t values[2] = {0x01020304u, 0xa0b0c0d0u};
  i32.swap_packed(reinterpret_cast<std::byte*>(values), 2);
  EXPECT_EQ(values[0], 0x04030201u);
  EXPECT_EQ(values[1], 0xd0c0b0a0u);
  i32.swap_packed(reinterpret_cast<std::byte*>(values), 2);  // involution
  EXPECT_EQ(values[0], 0x01020304u);
}

TEST(Heterogeneity, SwapPackedBytesUntouched) {
  const auto bytes = Datatype::byte();
  std::uint8_t data[4] = {1, 2, 3, 4};
  bytes.swap_packed(reinterpret_cast<std::byte*>(data), 4);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[3], 4);
}

TEST(Heterogeneity, SwapPackedMixedStruct) {
  // Wire layout of struct(int32, double, int8): widths 4, 8, 1.
  const int lengths[] = {1, 1, 1};
  const std::ptrdiff_t displs[] = {0, 8, 16};
  const Datatype types[] = {Datatype::int32(), Datatype::float64(),
                            Datatype::int8()};
  const auto particle = Datatype::create_struct(lengths, displs, types);

  // Segment widths must survive flattening.
  ASSERT_EQ(particle.segments().size(), 3u);
  EXPECT_EQ(particle.segments()[0].width, 4u);
  EXPECT_EQ(particle.segments()[1].width, 8u);
  EXPECT_EQ(particle.segments()[2].width, 1u);

  std::array<std::byte, 13> wire{};
  for (std::size_t i = 0; i < wire.size(); ++i) {
    wire[i] = static_cast<std::byte>(i);
  }
  particle.swap_packed(wire.data(), 1);
  // int32 reversed:
  EXPECT_EQ(wire[0], std::byte{3});
  EXPECT_EQ(wire[3], std::byte{0});
  // double reversed:
  EXPECT_EQ(wire[4], std::byte{11});
  EXPECT_EQ(wire[11], std::byte{4});
  // int8 untouched:
  EXPECT_EQ(wire[12], std::byte{12});
}

TEST(Heterogeneity, CoalescePreservesWidthBoundaries) {
  // int32 followed by float32 at adjacent offsets: same width -> may
  // coalesce; int32 followed by double must not merge into one run.
  const int lengths[] = {1, 1};
  const std::ptrdiff_t displs[] = {0, 4};
  const Datatype mixed_types[] = {Datatype::int32(), Datatype::float64()};
  const auto mixed = Datatype::create_struct(lengths, displs, mixed_types);
  ASSERT_EQ(mixed.segments().size(), 2u);
  EXPECT_EQ(mixed.segments()[0].width, 4u);
  EXPECT_EQ(mixed.segments()[1].width, 8u);

  const Datatype same_types[] = {Datatype::int32(), Datatype::float32()};
  const auto same = Datatype::create_struct(lengths, displs, same_types);
  ASSERT_EQ(same.segments().size(), 1u);  // merged: equal widths
  EXPECT_EQ(same.segments()[0].width, 4u);
}

struct EndianCase {
  sim::Protocol protocol;
  std::size_t count;  // straddle eager and rendezvous
};

class MixedEndianTransfer : public ::testing::TestWithParam<EndianCase> {};

TEST_P(MixedEndianTransfer, ValuesSurviveBothDirections) {
  const auto& param = GetParam();
  auto session = mixed_pair(param.protocol);
  const int count = static_cast<int>(param.count);
  session->run([count](Comm comm) {
    const int peer = 1 - comm.rank();
    std::vector<std::int32_t> out(static_cast<std::size_t>(count));
    std::iota(out.begin(), out.end(), comm.rank() * 1000000 + 1);
    std::vector<std::int32_t> in(static_cast<std::size_t>(count), -1);
    auto req = comm.irecv(in.data(), count, Datatype::int32(), peer, 0);
    comm.send(out.data(), count, Datatype::int32(), peer, 0);
    req.wait();
    for (int i = 0; i < count; ++i) {
      ASSERT_EQ(in[static_cast<std::size_t>(i)], peer * 1000000 + 1 + i)
          << "element " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MixedEndianTransfer,
    ::testing::Values(EndianCase{sim::Protocol::kTcp, 16},
                      EndianCase{sim::Protocol::kSisci, 16},
                      EndianCase{sim::Protocol::kSisci, 50000},  // rendezvous
                      EndianCase{sim::Protocol::kBip, 50000}),
    [](const auto& info) {
      return std::string(sim::protocol_name(info.param.protocol)) + "_" +
             std::to_string(info.param.count);
    });

TEST(Heterogeneity, DoublesSurviveMixedCluster) {
  auto session = mixed_pair(sim::Protocol::kSisci);
  session->run([](Comm comm) {
    if (comm.rank() == 1) {  // the big-endian node sends
      std::vector<double> data{3.14159, -2.71828, 1e300, -1e-300};
      comm.send(data.data(), 4, Datatype::float64(), 0, 0);
    } else {
      std::vector<double> data(4, 0.0);
      comm.recv(data.data(), 4, Datatype::float64(), 1, 0);
      EXPECT_EQ(data[0], 3.14159);
      EXPECT_EQ(data[1], -2.71828);
      EXPECT_EQ(data[2], 1e300);
      EXPECT_EQ(data[3], -1e-300);
    }
  });
}

TEST(Heterogeneity, DerivedDatatypeAcrossEndianness) {
  auto session = mixed_pair(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    const auto column = Datatype::vector(4, 1, 4, Datatype::int32());
    if (comm.rank() == 1) {
      std::vector<int> matrix(16);
      std::iota(matrix.begin(), matrix.end(), 100);
      comm.send(matrix.data(), 1, column, 0, 0);
    } else {
      std::vector<int> col(4, -1);
      comm.recv(col.data(), 4, Datatype::int32(), 1, 0);
      EXPECT_EQ(col, (std::vector<int>{100, 104, 108, 112}));
    }
  });
}

TEST(Heterogeneity, CollectivesOnMixedCluster) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kSisci);
  options.cluster.nodes[1].big_endian = true;
  options.cluster.nodes[3].big_endian = true;
  Session session(std::move(options));
  session.run([](Comm comm) {
    std::int64_t mine = (comm.rank() + 1) * 1000;
    std::int64_t sum = 0;
    comm.allreduce(&mine, &sum, 1, Datatype::int64(), mpi::Op::sum());
    EXPECT_EQ(sum, 10000);

    double value = comm.rank() == 1 ? 42.5 : -1.0;
    comm.bcast(&value, 1, Datatype::float64(), 1);
    EXPECT_EQ(value, 42.5);
  });
}

TEST(Heterogeneity, ConversionChargedOnlyAcrossUnlikeNodes) {
  // little->big transfer pays a conversion pass the little->little one
  // does not.
  auto measure = [](bool mixed) {
    Session::Options options;
    options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
    options.cluster.nodes[1].big_endian = mixed;
    Session session(std::move(options));
    return core::mpi_pingpong(session, 64 * 1024, 2).one_way_us;
  };
  const double same = measure(false);
  const double mixed = measure(true);
  // 64 KB * 0.0032 us/B ~ 210 us of conversion per direction.
  EXPECT_GT(mixed, same + 100.0);
}

TEST(Heterogeneity, SwapPackedBytesHandlesRaggedTail) {
  // 10 bytes of int32 wire data: two whole elements plus a 2-byte tail.
  // The whole elements byte-reverse; the partial one reverses what it has.
  const auto i32 = Datatype::int32();
  std::array<std::byte, 10> wire{};
  for (std::size_t i = 0; i < wire.size(); ++i) {
    wire[i] = static_cast<std::byte>(i);
  }
  i32.swap_packed_bytes(wire.data(), wire.size());
  EXPECT_EQ(wire[0], std::byte{3});
  EXPECT_EQ(wire[3], std::byte{0});
  EXPECT_EQ(wire[4], std::byte{7});
  EXPECT_EQ(wire[7], std::byte{4});
  // Partial trailing element: best-effort reversal of the 2 present bytes.
  EXPECT_EQ(wire[8], std::byte{9});
  EXPECT_EQ(wire[9], std::byte{8});
}

TEST(Heterogeneity, TruncatedRecvFromBigEndianConvertsTheTailCorrectly) {
  // A big-endian sender ships 4 ints; the receiver has room for 2. The
  // delivered prefix must still be byte-swapped (the old code swapped
  // `bytes / elem` elements of the *wire* length, corrupting short recvs).
  auto session = mixed_pair(sim::Protocol::kTcp);
  session->run([](Comm comm) {
    if (comm.rank() == 1) {  // big-endian sender
      std::vector<std::int32_t> data{0x01020304, 0x0a0b0c0d, 3, 4};
      comm.send(data.data(), 4, Datatype::int32(), 0, 0);
    } else {
      std::vector<std::int32_t> data(2, -1);
      auto status = comm.recv(data.data(), 2, Datatype::int32(), 1, 0);
      EXPECT_EQ(status.error, ErrorCode::kTruncated);
      EXPECT_EQ(status.bytes, 8u);
      EXPECT_EQ(data[0], 0x01020304);
      EXPECT_EQ(data[1], 0x0a0b0c0d);
    }
  });
}

TEST(Heterogeneity, ParserAcceptsEndianOption) {
  sim::ClusterSpec spec;
  ASSERT_TRUE(sim::ClusterSpec::parse(
                  "node sparc endian=big\nnode x86 endian=little\n"
                  "network tcp sparc x86\n",
                  &spec)
                  .is_ok());
  EXPECT_TRUE(spec.nodes[0].big_endian);
  EXPECT_FALSE(spec.nodes[1].big_endian);
}

}  // namespace
}  // namespace madmpi
