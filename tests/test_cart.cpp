// Tests for cartesian topologies.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "mpi/cart.hpp"

namespace madmpi::mpi {
namespace {

std::unique_ptr<core::Session> session_of(int ranks) {
  core::Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(ranks, sim::Protocol::kSisci);
  return std::make_unique<core::Session>(std::move(options));
}

TEST(Cart, BalancedDims) {
  EXPECT_EQ(CartComm::balanced_dims(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(CartComm::balanced_dims(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(CartComm::balanced_dims(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(CartComm::balanced_dims(1, 2), (std::vector<int>{1, 1}));
  EXPECT_EQ(CartComm::balanced_dims(36, 2), (std::vector<int>{6, 6}));
}

TEST(Cart, CoordsRankRoundTrip) {
  auto session = session_of(6);
  session->run([](Comm comm) {
    const int dims[] = {3, 2};
    const bool periods[] = {false, false};
    CartComm cart = CartComm::create(comm, dims, periods);
    ASSERT_TRUE(cart.valid());
    EXPECT_EQ(cart.ndims(), 2);

    // Row-major: rank = x*2 + y.
    const auto mine = cart.my_coords();
    EXPECT_EQ(cart.rank_at(mine), cart.comm().rank());
    EXPECT_EQ(mine[0], cart.comm().rank() / 2);
    EXPECT_EQ(mine[1], cart.comm().rank() % 2);

    for (rank_t r = 0; r < cart.comm().size(); ++r) {
      EXPECT_EQ(cart.rank_at(cart.coords(r)), r);
    }
  });
}

TEST(Cart, SurplusRanksGetInvalidComm) {
  auto session = session_of(5);
  session->run([](Comm comm) {
    const int dims[] = {2, 2};
    const bool periods[] = {false, false};
    CartComm cart = CartComm::create(comm, dims, periods);
    if (comm.rank() < 4) {
      EXPECT_TRUE(cart.valid());
    } else {
      EXPECT_FALSE(cart.valid());
    }
  });
}

TEST(Cart, ShiftNonPeriodicBoundaries) {
  auto session = session_of(4);
  session->run([](Comm comm) {
    const int dims[] = {4};
    const bool periods[] = {false};
    CartComm cart = CartComm::create(comm, dims, periods);
    ASSERT_TRUE(cart.valid());
    const auto shift = cart.shift(0, 1);
    const int r = cart.comm().rank();
    EXPECT_EQ(shift.dest, r == 3 ? kInvalidRank : r + 1);
    EXPECT_EQ(shift.source, r == 0 ? kInvalidRank : r - 1);
  });
}

TEST(Cart, ShiftPeriodicWraps) {
  auto session = session_of(4);
  session->run([](Comm comm) {
    const int dims[] = {4};
    const bool periods[] = {true};
    CartComm cart = CartComm::create(comm, dims, periods);
    const auto shift = cart.shift(0, 1);
    const int r = cart.comm().rank();
    EXPECT_EQ(shift.dest, (r + 1) % 4);
    EXPECT_EQ(shift.source, (r + 3) % 4);
    // Larger displacement also wraps.
    const auto far = cart.shift(0, 3);
    EXPECT_EQ(far.dest, (r + 3) % 4);
  });
}

TEST(Cart, TorusHaloExchange) {
  auto session = session_of(4);
  session->run([](Comm comm) {
    const int dims[] = {2, 2};
    const bool periods[] = {true, true};
    CartComm cart = CartComm::create(comm, dims, periods);
    ASSERT_TRUE(cart.valid());
    Comm& grid = cart.comm();

    // Exchange along each dimension; verify the received value matches the
    // expected neighbour rank.
    for (int dim = 0; dim < 2; ++dim) {
      const auto shift = cart.shift(dim, 1);
      int mine = grid.rank();
      int incoming = -1;
      grid.sendrecv(&mine, 1, Datatype::int32(), shift.dest, dim, &incoming,
                    1, Datatype::int32(), shift.source, dim);
      EXPECT_EQ(incoming, shift.source);
    }
  });
}

TEST(Cart, GridLargerThanCommAborts) {
  auto session = session_of(2);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;
    const int dims[] = {2, 2};
    const bool periods[] = {false, false};
    EXPECT_DEATH(CartComm::create(comm, dims, periods), "larger");
  });
}

}  // namespace
}  // namespace madmpi::mpi
