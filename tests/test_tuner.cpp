// Switch-point auto-tuner tests: the measured crossovers must land near
// the paper's experimentally chosen values.
#include <gtest/gtest.h>

#include "core/switchpoint.hpp"
#include "core/tuner.hpp"

namespace madmpi {
namespace {

TEST(Tuner, SciCrossoverNearEightKilobytes) {
  const auto result = core::tune_switch_point(sim::Protocol::kSisci);
  // Paper: 8 KB. Accept the right order of magnitude — the tuner measures
  // OUR cost model, which was calibrated to endpoints, not the crossover.
  EXPECT_GE(result.switch_point_bytes, 1u * 1024u);
  EXPECT_LE(result.switch_point_bytes, 32u * 1024u);
  EXPECT_FALSE(result.samples.empty());
}

TEST(Tuner, BipCrossoverNearSevenKilobytes) {
  const auto result = core::tune_switch_point(sim::Protocol::kBip);
  EXPECT_GE(result.switch_point_bytes, 1u * 1024u);
  EXPECT_LE(result.switch_point_bytes, 32u * 1024u);
}

TEST(Tuner, TcpCrossoverIsMuchLarger) {
  const auto tcp = core::tune_switch_point(sim::Protocol::kTcp);
  const auto sci = core::tune_switch_point(sim::Protocol::kSisci);
  // Paper ordering: TCP's switch point (64 KB) is far above SCI's (8 KB)
  // because the rendezvous handshake costs three TCP latencies.
  EXPECT_GT(tcp.switch_point_bytes, 2 * sci.switch_point_bytes);
}

TEST(Tuner, SamplesRecordBothModes) {
  const auto result = core::tune_switch_point(sim::Protocol::kBip, 1024);
  for (const auto& sample : result.samples) {
    EXPECT_GT(sample.eager_us, 0.0);
    EXPECT_GT(sample.rendezvous_us, 0.0);
  }
  // Below the crossover eager must win; above, rendezvous.
  const auto& first = result.samples.front();
  EXPECT_LT(first.eager_us, first.rendezvous_us);
}

TEST(Tuner, ResolutionBoundsRespected) {
  const auto coarse = core::tune_switch_point(sim::Protocol::kSisci, 4096);
  const auto fine = core::tune_switch_point(sim::Protocol::kSisci, 128);
  // Both must land in the same region; the finer one within its interval.
  EXPECT_NEAR(static_cast<double>(coarse.switch_point_bytes),
              static_cast<double>(fine.switch_point_bytes), 4096.0);
}

// Election regression: shared memory outranks every network, but its
// 32 KB crossover must never decide the device-wide (inter-node) switch
// point — only real networks vote.
TEST(Election, ShmemDoesNotHijackTheSwitchPoint) {
  using sim::Protocol;
  EXPECT_EQ(core::elect_switch_point({Protocol::kShmem, Protocol::kTcp}),
            64u * 1024u);
  EXPECT_EQ(core::elect_switch_point(
                {Protocol::kShmem, Protocol::kSisci, Protocol::kTcp}),
            8u * 1024u);
  EXPECT_EQ(core::elect_switch_point({Protocol::kShmem, Protocol::kBip}),
            7u * 1024u);
  // Single-node cluster: shmem is all there is, so its value stands.
  EXPECT_EQ(core::elect_switch_point({Protocol::kShmem}), 32u * 1024u);
}

TEST(Election, SciStillWinsAmongNetworks) {
  using sim::Protocol;
  EXPECT_EQ(core::elect_switch_point(
                {Protocol::kBip, Protocol::kSisci, Protocol::kTcp}),
            8u * 1024u);
  EXPECT_EQ(core::elect_switch_point({Protocol::kBip, Protocol::kTcp}),
            7u * 1024u);
}

}  // namespace
}  // namespace madmpi
