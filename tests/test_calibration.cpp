// Calibration guardrails: the simulated stack must stay close to the
// paper's published numbers (Tables 1 and 2). Tolerances are deliberately
// loose — the goal is shape fidelity, and these tests pin the anchors so a
// refactor cannot silently drift the cost models.
#include <gtest/gtest.h>

#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using core::Session;

struct Anchor {
  sim::Protocol protocol;
  double raw_latency_us;     // Table 1 (4 B message)
  double raw_bandwidth;      // Table 1 (8 MB message), MB/s
  double chmad_latency0_us;  // Table 2, 0 B
  double chmad_latency4_us;  // Table 2, 4 B
  double chmad_bandwidth;    // Table 2, 8 MB, MB/s
};

// Paper values.
const Anchor kAnchors[] = {
    {sim::Protocol::kTcp, 121.0, 11.2, 130.0, 148.7, 11.2},
    {sim::Protocol::kBip, 9.2, 122.0, 16.9, 18.9, 115.0},
    {sim::Protocol::kSisci, 4.4, 82.6, 13.0, 20.0, 82.5},
};

class CalibrationTest : public ::testing::TestWithParam<Anchor> {};

TEST_P(CalibrationTest, RawMadeleineMatchesTable1) {
  const Anchor& anchor = GetParam();
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, anchor.protocol);
  Session session(std::move(options));
  mad::Channel* channel = &session.open_raw_channel();

  const auto latency = core::raw_madeleine_pingpong(*channel, 0, 1, 4);
  EXPECT_NEAR(latency.one_way_us, anchor.raw_latency_us,
              anchor.raw_latency_us * 0.15)
      << "raw latency off for " << sim::protocol_name(anchor.protocol);

  const auto bandwidth =
      core::raw_madeleine_pingpong(*channel, 0, 1, 8u << 20, 1);
  EXPECT_NEAR(bandwidth.bandwidth_mb_s, anchor.raw_bandwidth,
              anchor.raw_bandwidth * 0.10)
      << "raw bandwidth off for " << sim::protocol_name(anchor.protocol);
}

TEST_P(CalibrationTest, ChMadMatchesTable2) {
  const Anchor& anchor = GetParam();
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, anchor.protocol);
  Session session(std::move(options));

  const auto lat0 = core::mpi_pingpong(session, 0);
  EXPECT_NEAR(lat0.one_way_us, anchor.chmad_latency0_us,
              anchor.chmad_latency0_us * 0.25)
      << "0-byte ch_mad latency off for "
      << sim::protocol_name(anchor.protocol);

  const auto lat4 = core::mpi_pingpong(session, 4);
  EXPECT_NEAR(lat4.one_way_us, anchor.chmad_latency4_us,
              anchor.chmad_latency4_us * 0.25)
      << "4-byte ch_mad latency off for "
      << sim::protocol_name(anchor.protocol);

  const auto bw = core::mpi_pingpong(session, 8u << 20, 1);
  EXPECT_NEAR(bw.bandwidth_mb_s, anchor.chmad_bandwidth,
              anchor.chmad_bandwidth * 0.15)
      << "8 MB ch_mad bandwidth off for "
      << sim::protocol_name(anchor.protocol);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CalibrationTest,
                         ::testing::ValuesIn(kAnchors),
                         [](const auto& info) {
                           return std::string(
                               sim::protocol_name(info.param.protocol));
                         });

}  // namespace
}  // namespace madmpi
