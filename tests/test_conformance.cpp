// The schedule-exploration harness itself: decision determinism, replay
// (same seed => byte-identical trace), sweep mechanics, and the end-to-end
// proof that a planted violation is caught, replayed and shrunk.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/session.hpp"
#include "core/watchdog.hpp"
#include "harness.hpp"
#include "sim/sched.hpp"
#include "sim/trace.hpp"

namespace madmpi {
namespace {

using conformance::find_scenario;
using conformance::run_scenario;
using conformance::run_sweep;
using conformance::Scenario;
using conformance::shrink_mask;
using sim::kSchedAllChoices;
using sim::sched_bit;
using sim::SchedChoice;
using sim::ScheduleController;

/// Restore the process-global controller state after each test.
struct SchedGuard {
  ~SchedGuard() { ScheduleController::uninstall(); }
};

TEST(ScheduleController, DecisionsArePureInSeedAndIdentity) {
  ScheduleController a(1234);
  ScheduleController b(1234);
  ScheduleController other(99);
  bool any_differs = false;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const node_id_t node = static_cast<node_id_t>(i % 3);
    EXPECT_DOUBLE_EQ(a.poll_wakeup_jitter_us(node, 1, i),
                     b.poll_wakeup_jitter_us(node, 1, i));
    EXPECT_DOUBLE_EQ(a.poll_frequency_jitter_us(node, 2, 10.0),
                     b.poll_frequency_jitter_us(node, 2, 10.0));
    EXPECT_DOUBLE_EQ(a.delivery_bias_us(0, node, i),
                     b.delivery_bias_us(0, node, i));
    EXPECT_EQ(a.credit_batch_threshold(0, 1, i, 4096),
              b.credit_batch_threshold(0, 1, i, 4096));
    EXPECT_DOUBLE_EQ(a.fault_offset_us(i), b.fault_offset_us(i));
    any_differs |=
        a.delivery_bias_us(0, node, i) != other.delivery_bias_us(0, node, i);
  }
  EXPECT_TRUE(any_differs);  // the seed actually reaches the decisions
}

TEST(ScheduleController, DecisionsStayInsideTheirDocumentedRanges) {
  ScheduleController sched(42);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const usec_t wakeup = sched.poll_wakeup_jitter_us(0, 0, i);
    EXPECT_GE(wakeup, 0.0);
    EXPECT_LT(wakeup, 4.0);
    const usec_t freq = sched.poll_frequency_jitter_us(
        static_cast<node_id_t>(i % 7), static_cast<channel_id_t>(i % 5),
        10.0);
    EXPECT_GE(freq, 0.0);
    EXPECT_LE(freq, 5.0);
    const usec_t bias = sched.delivery_bias_us(1, 0, i);
    EXPECT_GE(bias, 0.0);
    EXPECT_LT(bias, 5.0);
    const std::size_t threshold = sched.credit_batch_threshold(0, 1, i, 4096);
    EXPECT_GE(threshold, 1024u);
    EXPECT_LE(threshold, 3072u);
    const usec_t offset = sched.fault_offset_us(i);
    EXPECT_GE(offset, 0.0);
    EXPECT_LT(offset, 500.0);
  }
}

TEST(ScheduleController, MaskBitsGateEachChoicePoint) {
  ScheduleController only_bias(7, sched_bit(SchedChoice::kDeliveryOrder));
  EXPECT_DOUBLE_EQ(only_bias.poll_wakeup_jitter_us(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(only_bias.poll_frequency_jitter_us(0, 0, 10.0), 0.0);
  EXPECT_EQ(only_bias.credit_batch_threshold(0, 1, 0, 4096), 2048u);
  EXPECT_DOUBLE_EQ(only_bias.fault_offset_us(3), 0.0);
  // The enabled bit still perturbs (for this seed the bias is nonzero).
  EXPECT_GT(only_bias.delivery_bias_us(0, 1, 0), 0.0);
}

TEST(ScheduleController, InstallZeroUninstalls) {
  SchedGuard guard;
  EXPECT_NE(ScheduleController::install(5), nullptr);
  EXPECT_NE(ScheduleController::current(), nullptr);
  EXPECT_EQ(ScheduleController::install(0), nullptr);
  EXPECT_EQ(ScheduleController::current(), nullptr);
}

TEST(Replay, SameSeedProducesByteIdenticalTrace) {
  // The acceptance property of the whole subsystem: two runs of the same
  // scenario under the same seed render the exact same event trace.
  SchedGuard guard;
  const Scenario* scenario = find_scenario("probe");
  ASSERT_NE(scenario, nullptr);

  auto trace_once = [&] {
    sim::Tracer::global().clear();
    sim::Tracer::global().enable();
    const auto result = run_scenario(*scenario, 42, kSchedAllChoices);
    EXPECT_TRUE(result.passed());
    std::string csv = sim::Tracer::global().to_csv();
    sim::Tracer::global().disable();
    sim::Tracer::global().clear();
    return csv;
  };
  const std::string first = trace_once();
  const std::string second = trace_once();
  EXPECT_GT(first.size(), 100u);  // the run actually traced something
  EXPECT_EQ(first, second);
}

TEST(Replay, DifferentSeedsPerturbDifferently) {
  SchedGuard guard;
  // Not a correctness requirement seed-by-seed, but if every seed produced
  // the same schedule the fuzzer would explore nothing. Compare decision
  // streams, which is cheap and deterministic.
  ScheduleController a(1), b(2);
  bool differs = false;
  for (std::uint64_t i = 0; i < 32 && !differs; ++i) {
    differs = a.poll_wakeup_jitter_us(0, 0, i) !=
              b.poll_wakeup_jitter_us(0, 0, i);
  }
  EXPECT_TRUE(differs);
}

TEST(Sweep, ShortSweepOfRealScenariosIsGreen) {
  SchedGuard guard;
  for (const char* name : {"probe", "flowcontrol"}) {
    const Scenario* scenario = find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    const auto report =
        run_sweep(*scenario, /*seeds=*/3, /*seed_base=*/1, kSchedAllChoices);
    EXPECT_TRUE(report.passed())
        << name << ": " << report.failures.size() << " failing seeds, first "
        << (report.failures.empty() ? 0u : report.failures.front().seed);
  }
}

TEST(Sweep, SeedZeroIsNeverSwept) {
  SchedGuard guard;
  const Scenario* scenario = find_scenario("selftest");
  ASSERT_NE(scenario, nullptr);
  // seed_base 0 would make the first seed 0 ("perturbation off"), which
  // must be remapped — selftest trivially passes unperturbed, so a sweep
  // that silently ran seed 0 would under-count failures.
  const auto report = run_sweep(*scenario, /*seeds=*/2, /*seed_base=*/0,
                                kSchedAllChoices, /*shrink=*/false);
  for (const auto& failure : report.failures) {
    EXPECT_NE(failure.seed, 0u);
  }
}

TEST(Sweep, InjectedViolationIsCaughtReplayedAndShrunk) {
  // End-to-end proof of the kit using the planted selftest scenario (its
  // oracle fails whenever the delivery bias of one fixed message identity
  // exceeds 2.5us — true for roughly half of all seeds).
  SchedGuard guard;
  const Scenario* scenario = find_scenario("selftest");
  ASSERT_NE(scenario, nullptr);

  // 1. The sweep catches it.
  const auto report = run_sweep(*scenario, /*seeds=*/16, /*seed_base=*/1,
                                kSchedAllChoices, /*shrink=*/false);
  ASSERT_FALSE(report.failures.empty())
      << "16 seeds should include at least one with bias > 2.5us";
  const std::uint64_t seed = report.failures.front().seed;

  // 2. The recorded seed replays the violation, bit-identically.
  const auto once = run_scenario(*scenario, seed, kSchedAllChoices);
  const auto twice = run_scenario(*scenario, seed, kSchedAllChoices);
  ASSERT_EQ(once.violations.size(), 1u);
  ASSERT_EQ(twice.violations.size(), 1u);
  EXPECT_EQ(once.violations[0].detail, twice.violations[0].detail);

  // 3. Shrinking isolates exactly the choice point that matters.
  EXPECT_EQ(shrink_mask(*scenario, seed, kSchedAllChoices),
            sched_bit(SchedChoice::kDeliveryOrder));

  // 4. And the scenario passes with that choice point disabled — the
  //    shrunk mask is minimal, not just sufficient.
  EXPECT_TRUE(run_scenario(*scenario, seed,
                           kSchedAllChoices &
                               ~sched_bit(SchedChoice::kDeliveryOrder))
                  .passed());
}

TEST(Sweep, SweepSeedCountReadsTheEnvironment) {
  EXPECT_GT(conformance::sweep_seed_count(), 0);
}

TEST(Sweep, JsonArtifactRecordsFailures) {
  SchedGuard guard;
  const Scenario* scenario = find_scenario("selftest");
  ASSERT_NE(scenario, nullptr);
  auto report = run_sweep(*scenario, /*seeds=*/8, /*seed_base=*/1,
                          kSchedAllChoices);
  ASSERT_FALSE(report.failures.empty());
  const std::string json = conformance::to_json({report});
  EXPECT_NE(json.find("\"scenario\": \"selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": " +
                      std::to_string(report.failures.front().seed)),
            std::string::npos);
  EXPECT_NE(json.find("delivery-order"), std::string::npos);
  EXPECT_NE(json.find("injected violation"), std::string::npos);
}

TEST(Watchdog, FingerprintSkipsSweepsWhileTimeAdvances) {
  // A standalone watchdog whose fingerprint changes every tick: all sweeps
  // except the forced every-kForcedSweepPeriod-th are skipped.
  std::atomic<int> sweeps{0};
  std::atomic<std::uint64_t> print{0};
  core::ProgressWatchdog watchdog(
      [&sweeps] { sweeps.fetch_add(1); },
      std::chrono::milliseconds(1),
      [&print] { return print.fetch_add(1) + 1; });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  watchdog.stop();
  EXPECT_GT(watchdog.sweeps_skipped(), 0u);
  // Forced sweeps keep firing: the skip optimisation must never starve the
  // detector entirely.
  EXPECT_GT(sweeps.load(), 0);
}

TEST(Watchdog, StaticFingerprintNeverSkips) {
  std::atomic<int> sweeps{0};
  core::ProgressWatchdog watchdog([&sweeps] { sweeps.fetch_add(1); },
                                  std::chrono::milliseconds(1),
                                  [] { return std::uint64_t{7}; });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  watchdog.stop();
  EXPECT_EQ(watchdog.sweeps_skipped(), 0u);
  EXPECT_GT(sweeps.load(), 0);
}

TEST(Watchdog, SessionFingerprintTracksClockMovement) {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  core::Session session(std::move(options));
  ASSERT_NE(session.watchdog(), nullptr);  // finalize() retires the thread
  session.run([](mpi::Comm comm) {
    int value = comm.rank();
    int sum = 0;
    comm.allreduce(&value, &sum, 1, mpi::Datatype::int32(), mpi::Op::sum());
  });
  session.finalize();  // quiesce: every lane is now parked
  const std::uint64_t before = session.progress_fingerprint();
  EXPECT_EQ(before, session.progress_fingerprint());  // stable at rest
}

}  // namespace
}  // namespace madmpi
