// Unit tests for the simulation substrate: clocks, cost models, links,
// ports, fabric.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/fabric.hpp"
#include "sim/node.hpp"
#include "sim/port.hpp"
#include "sim/virtual_clock.hpp"

namespace madmpi::sim {
namespace {

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.advance(1.5), 1.5);
  EXPECT_DOUBLE_EQ(clock.advance(2.5), 4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

TEST(VirtualClock, SyncNeverMovesBackwards) {
  VirtualClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.sync_to(5.0), 10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  EXPECT_DOUBLE_EQ(clock.sync_to(12.0), 12.0);
  EXPECT_DOUBLE_EQ(clock.now(), 12.0);
}

TEST(VirtualClock, LanesAreIndependentAcrossThreads) {
  // Concurrent threads are independent activities: each accumulates its
  // own lane, and the clock's high-water mark is their max — NOT their
  // sum (two CPUs doing 10 us of work in parallel take 10 us, not 20).
  VirtualClock clock;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      clock.bind_lane(0.0);
      for (int i = 0; i < kPerThread; ++i) clock.advance(1.0);
      EXPECT_DOUBLE_EQ(clock.now(), kPerThread);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(clock.high_water(), kPerThread);
}

TEST(VirtualClock, FirstTouchAdoptsHighWater) {
  VirtualClock clock;
  std::thread worker([&clock] {
    clock.bind_lane(0.0);
    clock.advance(250.0);
  });
  worker.join();
  // A fresh observer thread sees the furthest point reached.
  std::thread observer(
      [&clock] { EXPECT_DOUBLE_EQ(clock.now(), 250.0); });
  observer.join();
}

TEST(VirtualClock, BindLaneSetsCausalBirth) {
  VirtualClock clock;
  clock.advance(100.0);
  std::thread child([&clock] {
    clock.bind_lane(40.0);  // spawned causally earlier
    EXPECT_DOUBLE_EQ(clock.now(), 40.0);
    clock.advance(5.0);
    EXPECT_DOUBLE_EQ(clock.now(), 45.0);
  });
  child.join();
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);       // own lane untouched
  EXPECT_DOUBLE_EQ(clock.high_water(), 100.0);
}

TEST(VirtualClock, Reset) {
  VirtualClock clock;
  clock.advance(100.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
  EXPECT_EQ(clock.high_water(), 0.0);
  // The resetting thread's own lane reinitializes too (generation bump).
  clock.advance(1.0);
  EXPECT_EQ(clock.now(), 1.0);
}

TEST(VirtualClock, LanesEnumeratesLiveLanes) {
  // lanes() is the introspection hook the progress fingerprint and the
  // schedule harness read: one entry per live lane, sorted by id, times
  // matching what each thread reached.
  VirtualClock clock;
  clock.advance(10.0);
  std::thread worker([&clock] {
    clock.bind_lane(0.0);
    clock.advance(3.0);
    const auto seen = clock.lanes();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_LT(seen[0].id, seen[1].id);
    // Sorted by id = creation order: the main thread's lane first.
    EXPECT_DOUBLE_EQ(seen[0].time, 10.0);
    EXPECT_DOUBLE_EQ(seen[1].time, 3.0);
  });
  worker.join();
}

TEST(VirtualClock, LanesDropExitedThreadsAndOldGenerations) {
  VirtualClock clock;
  clock.advance(1.0);
  std::thread worker([&clock] {
    clock.bind_lane(0.0);
    clock.advance(2.0);
  });
  worker.join();
  // The worker's lane expired with its thread.
  auto seen = clock.lanes();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_DOUBLE_EQ(seen[0].time, 1.0);
  // reset() bumps the generation: the old lane no longer counts, and the
  // next touch registers a fresh one.
  clock.reset();
  EXPECT_TRUE(clock.lanes().empty());
  clock.advance(4.0);
  seen = clock.lanes();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_DOUBLE_EQ(seen[0].time, 4.0);
}

TEST(VirtualClock, LaneIdsAreStableAcrossSnapshots) {
  VirtualClock clock;
  clock.advance(1.0);
  const auto before = clock.lanes();
  clock.advance(1.0);
  const auto after = clock.lanes();
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(before[0].id, after[0].id);  // successive snapshots correlate
  EXPECT_DOUBLE_EQ(after[0].time, 2.0);
}

TEST(CostModel, FactoriesMatchProtocol) {
  EXPECT_EQ(tcp_fast_ethernet_model().protocol, Protocol::kTcp);
  EXPECT_EQ(sisci_sci_model().protocol, Protocol::kSisci);
  EXPECT_EQ(bip_myrinet_model().protocol, Protocol::kBip);
  EXPECT_EQ(shmem_model().protocol, Protocol::kShmem);
  EXPECT_EQ(model_for(Protocol::kBip).protocol, Protocol::kBip);
}

TEST(CostModel, SegmentsRoundUp) {
  LinkCostModel m = tcp_fast_ethernet_model();  // mtu 1460
  EXPECT_EQ(m.segments(0), 1u);
  EXPECT_EQ(m.segments(1), 1u);
  EXPECT_EQ(m.segments(1460), 1u);
  EXPECT_EQ(m.segments(1461), 2u);
  EXPECT_EQ(m.segments(14600), 10u);
}

TEST(CostModel, SendRecvCosts) {
  LinkCostModel m = sisci_sci_model();
  EXPECT_DOUBLE_EQ(m.send_cost(0, false), m.send_overhead_us);
  EXPECT_GT(m.send_cost(1000, true), m.send_cost(1000, false));
  EXPECT_DOUBLE_EQ(m.recv_cost(100, true),
                   m.recv_overhead_us + 100 * m.copy_us_per_byte);
}

TEST(CostModel, WireTimeScalesWithSize) {
  LinkCostModel m = bip_myrinet_model();
  const usec_t t1 = m.wire_time(1000);
  const usec_t t2 = m.wire_time(100000);
  EXPECT_GT(t2, t1);
  // Large transfers approach the nominal bandwidth rate.
  const double effective = 99000.0 / (t2 - t1);
  EXPECT_GT(effective, 100.0);  // bytes/us
}

TEST(CostModel, BipLongPathPenalty) {
  LinkCostModel m = bip_myrinet_model();
  const usec_t at_limit = m.wire_time(m.short_message_limit);
  const usec_t above = m.wire_time(m.short_message_limit + 1);
  EXPECT_GT(above - at_limit, m.long_path_extra_us * 0.9);
}

TEST(CostModel, PaperBandwidthAnchors) {
  // The per-byte rates must land on Table 1 within a few percent.
  auto effective = [](const LinkCostModel& m) {
    return 1.0 / (1.0 / m.bandwidth_bytes_per_us +
                  m.per_segment_us / static_cast<double>(m.mtu_bytes));
  };
  EXPECT_NEAR(effective(tcp_fast_ethernet_model()) / 1.048576, 11.2, 0.5);
  EXPECT_NEAR(effective(sisci_sci_model()) / 1.048576, 82.6, 3.0);
  EXPECT_NEAR(effective(bip_myrinet_model()) / 1.048576, 122.0, 4.0);
}

TEST(LinkSerializer, BackToBackTransfersQueue) {
  LinkSerializer serializer;
  EXPECT_DOUBLE_EQ(serializer.reserve(0.0, 10.0), 0.0);
  // Second transfer posted at t=2 must wait until the first clears at 10.
  EXPECT_DOUBLE_EQ(serializer.reserve(2.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(serializer.busy_until(), 15.0);
  // A transfer posted after the link idles starts immediately.
  EXPECT_DOUBLE_EQ(serializer.reserve(20.0, 1.0), 20.0);
}

TEST(Port, FifoDelivery) {
  Port port;
  for (int i = 0; i < 3; ++i) {
    Frame frame;
    frame.seq = static_cast<std::uint64_t>(i);
    port.deliver(std::move(frame));
  }
  EXPECT_EQ(port.pending(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(port.try_take()->seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(port.try_take(), std::nullopt);
}

TEST(Port, BlockingTakeWakesOnDeliver) {
  Port port;
  std::thread producer([&port] {
    Frame frame;
    frame.seq = 7;
    port.deliver(std::move(frame));
  });
  auto frame = port.take_blocking();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 7u);
  producer.join();
}

TEST(Port, CloseDrainsThenEof) {
  Port port;
  Frame frame;
  port.deliver(std::move(frame));
  port.close();
  EXPECT_TRUE(port.take_blocking().has_value());
  EXPECT_FALSE(port.take_blocking().has_value());
  EXPECT_TRUE(port.closed());
}

TEST(Node, PollInterferenceSumsOtherChannels) {
  Node node(0, "n0", 2);
  EXPECT_EQ(node.poll_interference(0), 0.0);
  node.register_poller(0, 0.4);   // SCI-ish
  node.register_poller(1, 15.0);  // TCP-ish
  node.register_poller(2, 0.3);   // BIP-ish
  // Handling on channel 0 suffers half of the other pollers' costs.
  EXPECT_DOUBLE_EQ(node.poll_interference(0), 0.5 * (15.0 + 0.3));
  EXPECT_DOUBLE_EQ(node.poll_interference(1), 0.5 * (0.4 + 0.3));
  node.unregister_poller(1);
  EXPECT_DOUBLE_EQ(node.poll_interference(0), 0.5 * 0.3);
  EXPECT_EQ(node.active_pollers(), 2u);
}

TEST(Fabric, NodesAndNics) {
  Fabric fabric;
  Node& n0 = fabric.add_node("alpha", 2);
  Node& n1 = fabric.add_node("beta", 4);
  EXPECT_EQ(n0.id(), 0);
  EXPECT_EQ(n1.id(), 1);
  EXPECT_EQ(fabric.node(1).name(), "beta");
  EXPECT_EQ(fabric.node(1).cpus(), 4);

  fabric.add_nic(0, Protocol::kTcp);
  fabric.add_nic(0, Protocol::kSisci);
  fabric.add_nic(1, Protocol::kTcp);
  EXPECT_NE(fabric.find_nic(0, Protocol::kTcp), nullptr);
  EXPECT_EQ(fabric.find_nic(1, Protocol::kSisci), nullptr);
  EXPECT_EQ(fabric.nics_of(0).size(), 2u);
}

TEST(Fabric, WirePathComputesArrival) {
  Fabric fabric;
  fabric.add_node("a");
  fabric.add_node("b");
  Nic& src = fabric.add_nic(0, Protocol::kSisci);
  Nic& dst = fabric.add_nic(1, Protocol::kSisci);
  Port& port = fabric.make_port(1);
  WirePath path = fabric.make_path(src, dst, port);

  Frame frame;
  frame.src_node = 0;
  frame.dst_node = 1;
  frame.depart_time = 100.0;
  frame.payload.resize(8192);
  const usec_t arrival = path.transmit(std::move(frame));

  const LinkCostModel& m = src.model();
  const double per_byte = 1.0 / m.bandwidth_bytes_per_us +
                          m.per_segment_us / static_cast<double>(m.mtu_bytes);
  EXPECT_NEAR(arrival,
              100.0 + 8192 * per_byte + m.wire_latency_us + m.per_segment_us,
              1e-9);
  auto received = port.try_take();
  ASSERT_TRUE(received.has_value());
  EXPECT_DOUBLE_EQ(received->arrival_time, arrival);
}

TEST(Fabric, SerializationSharedBetweenPaths) {
  Fabric fabric;
  fabric.add_node("a");
  fabric.add_node("b");
  Nic& src = fabric.add_nic(0, Protocol::kTcp);
  Nic& dst = fabric.add_nic(1, Protocol::kTcp);
  Port& port1 = fabric.make_port(1);
  Port& port2 = fabric.make_port(1);
  WirePath path1 = fabric.make_path(src, dst, port1);
  WirePath path2 = fabric.make_path(src, dst, port2);

  Frame f1;
  f1.depart_time = 0.0;
  f1.payload.resize(14600);  // ~1.2 ms of wire occupation
  const usec_t a1 = path1.transmit(std::move(f1));

  Frame f2;
  f2.depart_time = 0.0;
  f2.payload.resize(10);
  const usec_t a2 = path2.transmit(std::move(f2));
  // The second frame had to wait for the first to serialize.
  EXPECT_GT(a2, a1 - src.model().wire_latency_us);
}

TEST(Fabric, MismatchedProtocolsAbort) {
  Fabric fabric;
  fabric.add_node("a");
  fabric.add_node("b");
  Nic& src = fabric.add_nic(0, Protocol::kTcp);
  Nic& dst = fabric.add_nic(1, Protocol::kBip);
  Port& port = fabric.make_port(1);
  EXPECT_DEATH(fabric.make_path(src, dst, port), "matching protocols");
}

TEST(Fabric, ZeroCopyHintSkipsBounceRate) {
  // Craft a model where the copy rate dominates the wire rate so the hint
  // visibly changes the arrival time. Use a fresh fabric per transfer so
  // link serialization cannot couple the two measurements.
  auto measure = [](bool copied_recv) {
    Fabric fabric;
    fabric.add_node("a");
    fabric.add_node("b");
    LinkCostModel model = sisci_sci_model();
    model.copy_us_per_byte = 1.0;  // absurdly slow copies
    Nic& src = fabric.add_nic(0, model);
    Nic& dst = fabric.add_nic(1, model);
    Port& port = fabric.make_port(1);
    WirePath path = fabric.make_path(src, dst, port);
    Frame frame;
    frame.payload.resize(1000);
    TransmitHints hints;
    hints.copied_recv = copied_recv;
    return path.transmit(std::move(frame), hints);
  };
  const usec_t slow = measure(true);
  const usec_t fast = measure(false);
  EXPECT_GT(slow, 1000.0);  // copy-dominated
  EXPECT_LT(fast, 100.0);   // wire-rate only
}

}  // namespace
}  // namespace madmpi::sim
