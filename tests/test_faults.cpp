// Fault injection and multi-protocol failover: deterministic drops and
// retransmission, permanent link kill with route re-election (SCI down ->
// TCP), and clean MPI error statuses when no route remains.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace madmpi {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

sim::Frame make_frame(std::uint64_t seq, std::uint32_t attempt,
                      usec_t depart = 0.0) {
  sim::Frame frame;
  frame.src_node = 0;
  frame.dst_node = 1;
  frame.seq = seq;
  frame.kind = 1;
  frame.attempt = attempt;
  frame.depart_time = depart;
  return frame;
}

// ------------------------------------------------------------- plan units

TEST(FaultPlan, DropDecisionsArePureFunctionsOfIdentity) {
  sim::FaultPlan a(42);
  a.drop(0.5);
  sim::FaultPlan b(42);
  b.drop(0.5);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    EXPECT_EQ(a.lost(make_frame(seq, 0)), b.lost(make_frame(seq, 0)));
  }
  // A different seed must produce a different decision sequence.
  sim::FaultPlan c(43);
  c.drop(0.5);
  int disagreements = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    if (a.lost(make_frame(seq, 0)) != c.lost(make_frame(seq, 0))) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultPlan, RetransmissionsAreIndependentTrials) {
  sim::FaultPlan plan(7);
  plan.drop(0.5);
  // Find a seq whose first transmission is lost but some retry survives:
  // the attempt counter must change the hash.
  bool found = false;
  for (std::uint64_t seq = 0; seq < 100 && !found; ++seq) {
    if (!plan.lost(make_frame(seq, 0))) continue;
    for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
      if (!plan.lost(make_frame(seq, attempt))) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultPlan, ExtremeProbabilities) {
  sim::FaultPlan never(1);
  never.drop(0.0);
  sim::FaultPlan always(1);
  always.drop(1.0);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_FALSE(never.lost(make_frame(seq, 0)));
    EXPECT_TRUE(always.lost(make_frame(seq, 0)));
  }
}

TEST(FaultPlan, OutageWindowAndPermanentKill) {
  sim::FaultPlan plan(0);
  plan.outage(100.0, 200.0).kill_at(1000.0);
  EXPECT_FALSE(plan.lost(make_frame(0, 0, 50.0)));
  EXPECT_TRUE(plan.lost(make_frame(0, 0, 100.0)));
  EXPECT_TRUE(plan.lost(make_frame(0, 0, 199.9)));
  EXPECT_FALSE(plan.lost(make_frame(0, 0, 200.0)));  // window is half-open
  EXPECT_TRUE(plan.lost(make_frame(0, 0, 1000.0)));
  EXPECT_TRUE(plan.lost(make_frame(0, 0, 5000.0)));
  EXPECT_FALSE(plan.dead(0, 1, 999.0));
  EXPECT_TRUE(plan.dead(0, 1, 1000.0));
}

TEST(FaultPlan, RulesFilterByDirectedPair) {
  sim::FaultPlan plan(0);
  plan.kill_at(0.0, /*src=*/0, /*dst=*/1);
  EXPECT_TRUE(plan.dead(0, 1, 0.0));
  EXPECT_FALSE(plan.dead(1, 0, 0.0));  // reverse direction untouched
  EXPECT_FALSE(plan.dead(0, 2, 0.0));
}

TEST(RetryPolicy, ExponentialBackoff) {
  sim::RetryPolicy policy;  // 100 us, x2
  EXPECT_DOUBLE_EQ(policy.delay_for(0), 100.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(1), 200.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(3), 800.0);
}

// ----------------------------------------------------------- full sessions

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             sim::Protocol protocol,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, protocol);
  EXPECT_NE(nic, nullptr);
  // WirePaths reference NIC models live, so existing paths see the plan.
  nic->mutable_model().fault_plan = plan;
  return plan;
}

/// Fixed-pattern ping-pong; returns rank 0's final virtual time.
usec_t pingpong_us(Session& session, int rounds, std::size_t bytes) {
  usec_t final_us = 0.0;
  session.run([&](Comm comm) {
    std::vector<std::uint8_t> out(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      out[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    std::vector<std::uint8_t> in(bytes);
    const int peer = 1 - comm.rank();
    const int count = static_cast<int>(bytes);
    for (int round = 0; round < rounds; ++round) {
      if (comm.rank() == 0) {
        comm.send(out.data(), count, Datatype::uint8(), peer, round);
        comm.recv(in.data(), count, Datatype::uint8(), peer, round);
      } else {
        comm.recv(in.data(), count, Datatype::uint8(), peer, round);
        comm.send(out.data(), count, Datatype::uint8(), peer, round);
      }
      ASSERT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
          << "payload corrupted in round " << round;
    }
    if (comm.rank() == 0) final_us = comm.wtime_us();
  });
  return final_us;
}

std::unique_ptr<Session> tcp_pair() {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  return std::make_unique<Session>(std::move(options));
}

/// Two nodes sharing both an SCI and a TCP network (failover testbed).
std::unique_ptr<Session> sci_tcp_pair() {
  sim::ClusterSpec spec;
  spec.nodes.push_back({"a"});
  spec.nodes.push_back({"b"});
  sim::NetworkSpec sci;
  sci.protocol = sim::Protocol::kSisci;
  sci.members = {"a", "b"};
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  tcp.members = {"a", "b"};
  spec.networks = {sci, tcp};
  Session::Options options;
  options.cluster = std::move(spec);
  return std::make_unique<Session>(std::move(options));
}

std::uint64_t total_drops(Session& session) {
  std::uint64_t drops = 0;
  for (mad::Channel* channel : session.madeleine().channels()) {
    drops += channel->traffic().frames_dropped;
  }
  return drops;
}

std::uint64_t total_retransmits(Session& session) {
  std::uint64_t retries = 0;
  for (mad::Channel* channel : session.madeleine().channels()) {
    retries += channel->traffic().retransmits;
  }
  return retries;
}

TEST(Faults, DropsAreRetriedTransparently) {
  auto session = tcp_pair();
  install_plan(*session, 0, sim::Protocol::kTcp, 7)->drop(0.3);
  pingpong_us(*session, 20, 256);
  EXPECT_GT(total_drops(*session), 0u);
  EXPECT_GT(total_retransmits(*session), 0u);
}

TEST(Faults, SameSeedGivesIdenticalVirtualTimings) {
  auto run_once = [] {
    auto session = tcp_pair();
    install_plan(*session, 0, sim::Protocol::kTcp, 1234)->drop(0.25);
    const usec_t time = pingpong_us(*session, 25, 512);
    return std::make_pair(time, total_drops(*session));
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(first.second, 0u);      // the plan actually dropped frames
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first, second.first);  // bit-identical virtual time
}

TEST(Faults, ZeroDropRateLeavesTimingsUntouched) {
  auto baseline = tcp_pair();
  const usec_t clean = pingpong_us(*baseline, 10, 1024);

  auto session = tcp_pair();
  install_plan(*session, 0, sim::Protocol::kTcp, 99)->drop(0.0);
  const usec_t with_plan = pingpong_us(*session, 10, 1024);

  EXPECT_EQ(clean, with_plan);
  EXPECT_EQ(total_drops(*session), 0u);
}

TEST(Faults, RetransmissionDelaysShowUpInVirtualTime) {
  auto clean = tcp_pair();
  const usec_t clean_us = pingpong_us(*clean, 20, 256);

  auto lossy = tcp_pair();
  install_plan(*lossy, 0, sim::Protocol::kTcp, 7)->drop(0.3);
  const usec_t lossy_us = pingpong_us(*lossy, 20, 256);

  // Every retransmission waits at least one RTO of virtual time.
  EXPECT_GT(lossy_us, clean_us + 100.0);
}

TEST(Faults, SciKillMidRunFailsOverToTcp) {
  auto session = sci_tcp_pair();
  // Kill the SCI link (both directions: each node's NIC gets the plan)
  // mid-run; the first send departing after the kill re-elects TCP.
  install_plan(*session, 0, sim::Protocol::kSisci, 5)->kill_at(500.0);
  install_plan(*session, 1, sim::Protocol::kSisci, 5)->kill_at(500.0);

  sim::Tracer::global().clear();
  sim::Tracer::global().enable();
  pingpong_us(*session, 40, 256);
  sim::Tracer::global().disable();

  ASSERT_NE(session->ch_mad(), nullptr);
  EXPECT_GE(session->ch_mad()->failovers(), 1u);

  bool saw_failover = false;
  for (const auto& event : sim::Tracer::global().snapshot()) {
    if (event.category == sim::TraceCategory::kFailover) {
      saw_failover = true;
      EXPECT_STREQ(event.label, "SISCI");
    }
  }
  EXPECT_TRUE(saw_failover);

  // TCP carried traffic after the kill.
  std::uint64_t tcp_messages = 0;
  for (mad::Channel* channel : session->madeleine().channels()) {
    if (channel->protocol() == sim::Protocol::kTcp) {
      tcp_messages += channel->traffic().messages_sent;
    }
  }
  EXPECT_GT(tcp_messages, 0u);
}

TEST(Faults, FailoverIsDeterministicAcrossRepeats) {
  auto run_once = [] {
    auto session = sci_tcp_pair();
    install_plan(*session, 0, sim::Protocol::kSisci, 5)->kill_at(500.0);
    install_plan(*session, 1, sim::Protocol::kSisci, 5)->kill_at(500.0);
    return pingpong_us(*session, 40, 256);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Faults, RendezvousSurvivesSciKill) {
  auto session = sci_tcp_pair();
  install_plan(*session, 0, sim::Protocol::kSisci, 5)->kill_at(0.0);
  install_plan(*session, 1, sim::Protocol::kSisci, 5)->kill_at(0.0);
  // 64 KB is over every switch point: the whole rendezvous handshake must
  // run over the surviving TCP channel.
  pingpong_us(*session, 2, 64 * 1024);
  EXPECT_GE(session->ch_mad()->rendezvous_sent(), 1u);
}

TEST(Faults, NoRouteSurfacesAsErrorStatusNotAbort) {
  auto session = tcp_pair();
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;  // rank 1 posts nothing
    int value = 5;
    const Status status = comm.send(&value, 1, Datatype::int32(), 1, 0);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), ErrorCode::kUnreachable);
  });
}

TEST(Faults, NoRouteRendezvousAlsoFailsCleanly) {
  auto session = tcp_pair();
  install_plan(*session, 0, sim::Protocol::kTcp, 0)->kill_at(0.0);
  session->run([](Comm comm) {
    if (comm.rank() != 0) return;
    std::vector<std::uint8_t> big(128 * 1024, 0xab);
    const Status status = comm.send(big.data(),
                                    static_cast<int>(big.size()),
                                    Datatype::uint8(), 1, 0);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), ErrorCode::kUnreachable);
  });
}

}  // namespace
}  // namespace madmpi
