// Tests for the per-rank matching engine (posted/unexpected queues).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "mpi/matching.hpp"

namespace madmpi::mpi {
namespace {

struct MatchFixture : ::testing::Test {
  sim::Node node{0, "n0", 2};
  RankContext context{0, node};

  static Envelope envelope(int ctx, rank_t src, int tag, std::uint64_t bytes) {
    Envelope env;
    env.context = ctx;
    env.src = src;
    env.tag = tag;
    env.bytes = bytes;
    return env;
  }

  std::shared_ptr<RequestState> post(int ctx, rank_t src, int tag,
                                     void* buffer, std::size_t capacity) {
    auto state = std::make_shared<RequestState>(node);
    PostedRecv posted;
    posted.context = ctx;
    posted.source = src;
    posted.tag = tag;
    posted.buffer = buffer;
    posted.type = Datatype::byte();
    posted.count = static_cast<int>(capacity);
    posted.capacity_bytes = capacity;
    posted.request = state;
    context.post_recv(std::move(posted));
    return state;
  }

  static byte_span bytes_of(const char* text) {
    return byte_span{reinterpret_cast<const std::byte*>(text),
                     std::strlen(text)};
  }
};

TEST_F(MatchFixture, PostedThenDelivered) {
  char buffer[16] = {};
  auto request = post(0, 1, 5, buffer, sizeof buffer);
  EXPECT_EQ(context.posted_count(), 1u);
  context.deliver_eager(envelope(0, 1, 5, 5), bytes_of("hello"));
  ASSERT_TRUE(request->completed());
  MpiStatus status;
  EXPECT_TRUE(request->test(&status));
  EXPECT_EQ(status.source, 1);
  EXPECT_EQ(status.tag, 5);
  EXPECT_EQ(status.bytes, 5u);
  EXPECT_STREQ(buffer, "hello");
  EXPECT_EQ(context.posted_count(), 0u);
}

TEST_F(MatchFixture, DeliveredThenPosted) {
  context.deliver_eager(envelope(0, 2, 9, 3), bytes_of("abc"));
  EXPECT_EQ(context.unexpected_count(), 1u);
  char buffer[8] = {};
  auto request = post(0, 2, 9, buffer, sizeof buffer);
  EXPECT_TRUE(request->completed());
  EXPECT_STREQ(buffer, "abc");
  EXPECT_EQ(context.unexpected_count(), 0u);
}

TEST_F(MatchFixture, WildcardSourceAndTag) {
  char buffer[8] = {};
  auto request = post(0, kAnySource, kAnyTag, buffer, sizeof buffer);
  context.deliver_eager(envelope(0, 3, 77, 2), bytes_of("zz"));
  MpiStatus status;
  ASSERT_TRUE(request->test(&status));
  EXPECT_EQ(status.source, 3);
  EXPECT_EQ(status.tag, 77);
}

TEST_F(MatchFixture, ContextSegregation) {
  char buffer[8] = {};
  auto request = post(7, kAnySource, kAnyTag, buffer, sizeof buffer);
  context.deliver_eager(envelope(8, 0, 0, 1), bytes_of("x"));
  EXPECT_FALSE(request->completed());
  EXPECT_EQ(context.unexpected_count(), 1u);
  context.deliver_eager(envelope(7, 0, 0, 1), bytes_of("y"));
  EXPECT_TRUE(request->completed());
}

TEST_F(MatchFixture, FifoWithinSourceAndTag) {
  context.deliver_eager(envelope(0, 1, 5, 1), bytes_of("a"));
  context.deliver_eager(envelope(0, 1, 5, 1), bytes_of("b"));
  char first = 0, second = 0;
  post(0, 1, 5, &first, 1);
  post(0, 1, 5, &second, 1);
  EXPECT_EQ(first, 'a');  // non-overtaking
  EXPECT_EQ(second, 'b');
}

TEST_F(MatchFixture, PostedQueueScansInPostOrder) {
  char first = 0, second = 0;
  auto r1 = post(0, kAnySource, kAnyTag, &first, 1);
  auto r2 = post(0, kAnySource, kAnyTag, &second, 1);
  context.deliver_eager(envelope(0, 0, 0, 1), bytes_of("x"));
  EXPECT_TRUE(r1->completed());
  EXPECT_FALSE(r2->completed());
}

TEST_F(MatchFixture, TruncationDeliversPrefixAndErrorStatus) {
  char tiny[2] = {};
  auto request = post(0, kAnySource, kAnyTag, tiny, sizeof tiny);
  context.deliver_eager(envelope(0, 0, 0, 10), bytes_of("0123456789"));
  MpiStatus status;
  ASSERT_TRUE(request->test(&status));
  EXPECT_EQ(status.error, ErrorCode::kTruncated);
  EXPECT_EQ(status.bytes, 2u);  // the prefix that fit
  EXPECT_EQ(tiny[0], '0');
  EXPECT_EQ(tiny[1], '1');
}

TEST_F(MatchFixture, ZeroByteMessages) {
  char buffer[1] = {42};
  auto request = post(0, 0, 0, buffer, 0);
  context.deliver_eager(envelope(0, 0, 0, 0), {});
  MpiStatus status;
  ASSERT_TRUE(request->test(&status));
  EXPECT_EQ(status.bytes, 0u);
  EXPECT_EQ(status.count(4), 0);
  EXPECT_EQ(buffer[0], 42);
}

TEST_F(MatchFixture, StatusCountArithmetic) {
  MpiStatus status;
  status.bytes = 12;
  EXPECT_EQ(status.count(4), 3);
  EXPECT_EQ(status.count(8), -1);  // MPI_UNDEFINED
  EXPECT_EQ(status.count(1), 12);
}

TEST_F(MatchFixture, RendezvousMatchRunsOnPost) {
  bool matched = false;
  context.deliver_rendezvous(envelope(0, 1, 3, 100),
                             [&](const Envelope& env, PostedRecv posted) {
                               matched = true;
                               EXPECT_EQ(env.src, 1);
                               EXPECT_EQ(posted.capacity_bytes, 128u);
                             });
  EXPECT_FALSE(matched);
  EXPECT_EQ(context.unexpected_count(), 1u);
  char buffer[128];
  post(0, 1, 3, buffer, sizeof buffer);
  EXPECT_TRUE(matched);
  EXPECT_EQ(context.unexpected_count(), 0u);
}

TEST_F(MatchFixture, RendezvousMatchRunsImmediatelyWhenPosted) {
  char buffer[64];
  auto request = post(0, kAnySource, kAnyTag, buffer, sizeof buffer);
  bool matched = false;
  context.deliver_rendezvous(envelope(0, 2, 2, 10),
                             [&](const Envelope&, PostedRecv) {
                               matched = true;
                             });
  EXPECT_TRUE(matched);
  EXPECT_FALSE(request->completed());  // completion comes with the data
}

TEST_F(MatchFixture, IprobeSeesOnlyUnexpected) {
  EXPECT_FALSE(context.iprobe(0, kAnySource, kAnyTag, nullptr));
  context.deliver_eager(envelope(0, 4, 11, 3), bytes_of("xyz"));
  MpiStatus status;
  ASSERT_TRUE(context.iprobe(0, 4, 11, &status));
  EXPECT_EQ(status.source, 4);
  EXPECT_EQ(status.bytes, 3u);
  // Probe does not consume.
  EXPECT_TRUE(context.iprobe(0, kAnySource, kAnyTag, nullptr));
  EXPECT_FALSE(context.iprobe(0, 5, kAnyTag, nullptr));
  EXPECT_FALSE(context.iprobe(1, kAnySource, kAnyTag, nullptr));
}

TEST_F(MatchFixture, BlockingProbeWakesOnArrival) {
  std::thread deliverer([&] {
    context.deliver_eager(envelope(0, 1, 8, 1), bytes_of("k"));
  });
  MpiStatus status;
  context.probe(0, kAnySource, 8, kInvalidRank, &status);
  EXPECT_EQ(status.tag, 8);
  deliverer.join();
}

TEST_F(MatchFixture, EagerCopiesChargeTheClock) {
  const usec_t before = node.clock().now();
  std::vector<std::byte> big(10000, std::byte{1});
  context.deliver_eager(envelope(0, 0, 0, big.size()),
                        byte_span{big.data(), big.size()});
  const usec_t after_store = node.clock().now();
  EXPECT_GT(after_store, before);  // copy into the unexpected store
  std::vector<char> buffer(big.size());
  post(0, 0, 0, buffer.data(), buffer.size());
  EXPECT_GT(node.clock().now(), after_store);  // copy out to the user
}

TEST_F(MatchFixture, RequestWaitAfterTestReturnsSameStatus) {
  char buffer[4];
  auto request = post(0, 0, 1, buffer, sizeof buffer);
  context.deliver_eager(envelope(0, 0, 1, 2), bytes_of("hi"));
  MpiStatus via_test;
  ASSERT_TRUE(request->test(&via_test));
  const MpiStatus via_wait = request->wait();
  EXPECT_EQ(via_wait.bytes, via_test.bytes);
  EXPECT_EQ(via_wait.tag, via_test.tag);
}

TEST_F(MatchFixture, TestBeforeCompletionReturnsFalse) {
  char buffer[4];
  auto request = post(0, 0, 1, buffer, sizeof buffer);
  EXPECT_FALSE(request->test(nullptr));
  EXPECT_FALSE(request->completed());
}

TEST_F(MatchFixture, ImprobeRemovesFromQueue) {
  context.deliver_eager(envelope(0, 1, 5, 3), bytes_of("one"));
  context.deliver_eager(envelope(0, 1, 5, 3), bytes_of("two"));
  EXPECT_EQ(context.unexpected_count(), 2u);

  MatchedMessage message;
  MpiStatus status;
  ASSERT_TRUE(context.improbe(0, 1, 5, &message, &status));
  EXPECT_TRUE(message.valid());
  EXPECT_EQ(status.source, 1);
  EXPECT_EQ(status.tag, 5);
  EXPECT_EQ(status.bytes, 3u);
  // The matched entry is gone: a plain recv now gets the SECOND message.
  EXPECT_EQ(context.unexpected_count(), 1u);
  char second[4] = {};
  post(0, 1, 5, second, sizeof second);
  EXPECT_STREQ(second, "two");

  // mrecv completes the first message into its own buffer.
  char first[4] = {};
  auto state = std::make_shared<RequestState>(node);
  PostedRecv posted;
  posted.context = 0;
  posted.source = 1;
  posted.tag = 5;
  posted.buffer = first;
  posted.type = Datatype::byte();
  posted.count = sizeof first;
  posted.capacity_bytes = sizeof first;
  posted.request = state;
  context.mrecv(std::move(message), std::move(posted));
  ASSERT_TRUE(state->completed());
  EXPECT_STREQ(first, "one");
  EXPECT_EQ(context.unexpected_count(), 0u);
}

TEST_F(MatchFixture, ImprobeMissLeavesHandleInvalid) {
  MatchedMessage message;
  MpiStatus status;
  EXPECT_FALSE(context.improbe(0, 1, 5, &message, &status));
  EXPECT_FALSE(message.valid());
  context.deliver_eager(envelope(0, 2, 6, 1), bytes_of("x"));
  // A specific pattern for a different (source, tag) still misses.
  EXPECT_FALSE(context.improbe(0, 1, 5, &message, &status));
  EXPECT_FALSE(context.improbe(0, 2, 7, &message, &status));
  EXPECT_EQ(context.unexpected_count(), 1u);
}

TEST_F(MatchFixture, ImprobeWildcardTakesLowestSeq) {
  context.deliver_eager(envelope(0, 4, 9, 1), bytes_of("a"));
  context.deliver_eager(envelope(0, 2, 3, 1), bytes_of("b"));
  MatchedMessage message;
  MpiStatus status;
  ASSERT_TRUE(context.improbe(0, kAnySource, kAnyTag, &message, &status));
  // Arrival order wins across buckets, exactly like a wildcard recv.
  EXPECT_EQ(status.source, 4);
  EXPECT_EQ(status.tag, 9);
}

TEST_F(MatchFixture, MprobeBlocksUntilArrival) {
  MatchedMessage message;
  MpiStatus status;
  std::thread sender([&] {
    context.deliver_eager(envelope(0, 1, 2, 2), bytes_of("hi"));
  });
  context.mprobe(0, 1, 2, /*source_global=*/1, &message, &status);
  sender.join();
  ASSERT_TRUE(message.valid());
  EXPECT_EQ(status.bytes, 2u);
  EXPECT_EQ(context.unexpected_count(), 0u);

  char buffer[4] = {};
  auto state = std::make_shared<RequestState>(node);
  PostedRecv posted;
  posted.context = 0;
  posted.source = 1;
  posted.tag = 2;
  posted.buffer = buffer;
  posted.type = Datatype::byte();
  posted.count = sizeof buffer;
  posted.capacity_bytes = sizeof buffer;
  posted.request = state;
  context.mrecv(std::move(message), std::move(posted));
  EXPECT_STREQ(buffer, "hi");
}

TEST_F(MatchFixture, MovedFromHandleReadsInvalid) {
  context.deliver_eager(envelope(0, 1, 5, 1), bytes_of("x"));
  MatchedMessage message;
  MpiStatus status;
  ASSERT_TRUE(context.improbe(0, 1, 5, &message, &status));
  MatchedMessage stolen = std::move(message);
  EXPECT_FALSE(message.valid());
  EXPECT_TRUE(stolen.valid());
  char buffer[2] = {};
  auto state = std::make_shared<RequestState>(node);
  PostedRecv posted;
  posted.context = 0;
  posted.source = 1;
  posted.tag = 5;
  posted.buffer = buffer;
  posted.type = Datatype::byte();
  posted.count = sizeof buffer;
  posted.capacity_bytes = sizeof buffer;
  posted.request = state;
  context.mrecv(std::move(stolen), std::move(posted));
  EXPECT_STREQ(buffer, "x");
}

TEST_F(MatchFixture, CountersTrackQueueDepths) {
  EXPECT_EQ(context.posted_count(), 0u);
  EXPECT_EQ(context.unexpected_count(), 0u);
  EXPECT_EQ(context.unexpected_bytes(), 0u);
  char a = 0, b = 0;
  post(0, 1, 1, &a, 1);
  post(0, kAnySource, kAnyTag, &b, 1);
  EXPECT_EQ(context.posted_count(), 2u);
  context.deliver_eager(envelope(0, 5, 99, 4), bytes_of("four"));
  EXPECT_EQ(context.posted_count(), 1u);  // wildcard consumed
  context.deliver_eager(envelope(0, 1, 1, 4), bytes_of("tail"));
  EXPECT_EQ(context.posted_count(), 0u);  // specific consumed
  context.deliver_eager(envelope(0, 7, 1, 4), bytes_of("rest"));
  EXPECT_EQ(context.unexpected_count(), 1u);
  // Charged bytes include the per-entry bookkeeping overhead.
  EXPECT_GE(context.unexpected_bytes(), 4u);
  char buffer[8] = {};
  post(0, 7, 1, buffer, sizeof buffer);
  EXPECT_EQ(context.unexpected_count(), 0u);
  EXPECT_EQ(context.unexpected_bytes(), 0u);
}

}  // namespace
}  // namespace madmpi::mpi
