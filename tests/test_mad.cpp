// Tests for the Madeleine II library: channels, packing semantics,
// ordering, isolation, relay primitives.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "mad/madeleine.hpp"

namespace madmpi::mad {
namespace {

/// Fixture: two nodes, one channel per requested protocol.
struct MadPair {
  explicit MadPair(sim::Protocol protocol = sim::Protocol::kTcp)
      : madeleine(fabric, sim::ClusterSpec::homogeneous(2, protocol)) {
    channel = &madeleine.open_channel(madeleine.cluster().networks[0], "c0");
  }
  sim::Fabric fabric;
  Madeleine madeleine;
  Channel* channel = nullptr;

  ChannelEndpoint& a() { return *channel->at(0); }
  ChannelEndpoint& b() { return *channel->at(1); }
};

TEST(Madeleine, PaperExampleSizedArray) {
  // The exact pattern of the paper's Figure 2: an EXPRESS integer size
  // followed by a CHEAPER array whose length the receiver learns from it.
  MadPair net;
  std::thread sender([&] {
    std::vector<char> array(1234, 'm');
    int size = static_cast<int>(array.size());
    Packing packing = net.a().begin_packing(1);
    packing.pack(&size, sizeof size, SendMode::kCheaper, RecvMode::kExpress);
    packing.pack(array.data(), array.size(), SendMode::kCheaper,
                 RecvMode::kCheaper);
    packing.end_packing();
  });

  auto incoming = net.b().begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  int size = -1;
  incoming->unpack(&size, sizeof size, SendMode::kCheaper,
                   RecvMode::kExpress);
  ASSERT_EQ(size, 1234);  // EXPRESS: usable immediately
  std::vector<char> array(static_cast<std::size_t>(size));
  incoming->unpack(array.data(), array.size(), SendMode::kCheaper,
                   RecvMode::kCheaper);
  incoming->end_unpacking();
  EXPECT_EQ(array[0], 'm');
  EXPECT_EQ(array[1233], 'm');
  sender.join();
}

TEST(Madeleine, SaferAllowsImmediateBufferReuse) {
  MadPair net;
  std::thread sender([&] {
    std::vector<int> buffer(64, 7);
    Packing packing = net.a().begin_packing(1);
    packing.pack(buffer.data(), buffer.size() * sizeof(int), SendMode::kSafer,
                 RecvMode::kCheaper);
    // kSafer contract: the buffer may be clobbered before end_packing.
    std::fill(buffer.begin(), buffer.end(), -1);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  std::vector<int> out(64, 0);
  incoming->unpack(out.data(), out.size() * sizeof(int), SendMode::kSafer,
                   RecvMode::kCheaper);
  incoming->end_unpacking();
  for (int v : out) EXPECT_EQ(v, 7);
  sender.join();
}

TEST(Madeleine, EmptyMessage) {
  MadPair net;
  std::thread sender([&] {
    Packing packing = net.a().begin_packing(1);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  EXPECT_EQ(incoming->peek_size(), std::nullopt);
  incoming->end_unpacking();
  sender.join();
}

TEST(Madeleine, ManyBlocksMixedModes) {
  MadPair net(sim::Protocol::kSisci);
  constexpr int kBlocks = 10;
  std::thread sender([&] {
    Packing packing = net.a().begin_packing(1);
    for (int i = 0; i < kBlocks; ++i) {
      std::vector<std::uint8_t> block(static_cast<std::size_t>(1) << i,
                                      static_cast<std::uint8_t>(i));
      const bool express = (i % 3 == 0);
      packing.pack(block.data(), block.size(),
                   express ? SendMode::kSafer : SendMode::kCheaper,
                   express ? RecvMode::kExpress : RecvMode::kCheaper);
      // Safer blocks were staged, cheaper ones must outlive end_packing —
      // so keep them alive via a static-ish trick: reuse the same storage
      // only for safer blocks.
      if (!express) {
        // Leak into a keeper so the span stays valid until end_packing.
        static thread_local std::vector<std::vector<std::uint8_t>> keeper;
        keeper.push_back(std::move(block));
      }
    }
    packing.end_packing();
  });

  auto incoming = net.b().begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  for (int i = 0; i < kBlocks; ++i) {
    const std::size_t size = static_cast<std::size_t>(1) << i;
    ASSERT_EQ(incoming->peek_size(), size);
    std::vector<std::uint8_t> block(size, 0xff);
    const bool express = (i % 3 == 0);
    incoming->unpack(block.data(), block.size(),
                     express ? SendMode::kSafer : SendMode::kCheaper,
                     express ? RecvMode::kExpress : RecvMode::kCheaper);
    for (auto byte : block) EXPECT_EQ(byte, static_cast<std::uint8_t>(i));
  }
  incoming->end_unpacking();
  sender.join();
}

TEST(Madeleine, InOrderPerConnection) {
  MadPair net;
  constexpr int kMessages = 50;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      Packing packing = net.a().begin_packing(1);
      packing.pack(&i, sizeof i, SendMode::kSafer, RecvMode::kExpress);
      packing.end_packing();
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    auto incoming = net.b().begin_unpacking();
    ASSERT_TRUE(incoming.has_value());
    int seq = -1;
    incoming->unpack(&seq, sizeof seq, SendMode::kSafer, RecvMode::kExpress);
    incoming->end_unpacking();
    EXPECT_EQ(seq, i);
  }
  sender.join();
}

TEST(Madeleine, ChannelsIsolateTraffic) {
  // Two channels on the same physical network: a message on one must never
  // surface on the other (paper §3.1: a channel is a closed world).
  sim::Fabric fabric;
  Madeleine madeleine(fabric,
                      sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp));
  Channel& c0 =
      madeleine.open_channel(madeleine.cluster().networks[0], "first");
  Channel& c1 =
      madeleine.open_channel(madeleine.cluster().networks[0], "second");

  std::thread sender([&] {
    int tag = 42;
    Packing packing = c1.at(0)->begin_packing(1);
    packing.pack(&tag, sizeof tag, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });

  EXPECT_FALSE(c0.at(1)->try_begin_unpacking().has_value());
  auto incoming = c1.at(1)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  int tag = 0;
  incoming->unpack(&tag, sizeof tag, SendMode::kSafer, RecvMode::kExpress);
  incoming->end_unpacking();
  EXPECT_EQ(tag, 42);
  EXPECT_FALSE(c0.at(1)->try_begin_unpacking().has_value());
  sender.join();
}

TEST(Madeleine, DrainBlockPreservesExpressFlag) {
  MadPair net;
  std::thread sender([&] {
    int header = 17;
    std::vector<char> body(600, 'b');
    Packing packing = net.a().begin_packing(1);
    packing.pack(&header, sizeof header, SendMode::kSafer,
                 RecvMode::kExpress);
    packing.pack(body.data(), body.size(), SendMode::kSafer,
                 RecvMode::kCheaper);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  auto first = incoming->drain_block();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->express);
  EXPECT_EQ(first->bytes.size(), sizeof(int));
  auto second = incoming->drain_block();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->express);
  EXPECT_EQ(second->bytes.size(), 600u);
  EXPECT_EQ(incoming->drain_block(), std::nullopt);
  incoming->end_unpacking();
  sender.join();
}

TEST(Madeleine, UnpackSizeMismatchAborts) {
  MadPair net;
  std::thread sender([&] {
    int value = 1;
    Packing packing = net.a().begin_packing(1);
    packing.pack(&value, sizeof value, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  double wrong = 0.0;
  EXPECT_DEATH(incoming->unpack(&wrong, sizeof wrong, SendMode::kSafer,
                                RecvMode::kExpress),
               "does not match");
  // The death test forked; consume normally in the parent.
  int value = 0;
  incoming->unpack(&value, sizeof value, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  EXPECT_EQ(value, 1);
  sender.join();
}

TEST(Madeleine, ModeMismatchAborts) {
  MadPair net;
  std::thread sender([&] {
    int value = 1;
    Packing packing = net.a().begin_packing(1);
    packing.pack(&value, sizeof value, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  int value = 0;
  EXPECT_DEATH(incoming->unpack(&value, sizeof value, SendMode::kSafer,
                                RecvMode::kCheaper),
               "receive mode");
  incoming->unpack(&value, sizeof value, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  sender.join();
}

TEST(Madeleine, EndUnpackingWithLeftoverAborts) {
  MadPair net;
  std::thread sender([&] {
    int value = 1;
    Packing packing = net.a().begin_packing(1);
    packing.pack(&value, sizeof value, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });
  auto incoming = net.b().begin_unpacking();
  EXPECT_DEATH(incoming->end_unpacking(), "blocks left");
  int value = 0;
  incoming->unpack(&value, sizeof value, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  sender.join();
}

TEST(Madeleine, CloseWakesBlockedReceivers) {
  MadPair net;
  std::thread closer([&] { net.channel->close(); });
  EXPECT_FALSE(net.b().begin_unpacking().has_value());
  closer.join();
}

TEST(Madeleine, DefaultChannelsOnePerNetwork) {
  sim::Fabric fabric;
  Madeleine madeleine(fabric, sim::ClusterSpec::cluster_of_clusters(2, 2));
  auto channels = madeleine.open_default_channels();
  ASSERT_EQ(channels.size(), 3u);
  EXPECT_EQ(channels[0]->protocol(), sim::Protocol::kTcp);
  EXPECT_EQ(channels[1]->protocol(), sim::Protocol::kSisci);
  EXPECT_EQ(channels[2]->protocol(), sim::Protocol::kBip);
  EXPECT_EQ(madeleine.channels_of(0).size(), 2u);  // tcp + sci
  EXPECT_NE(madeleine.channel_by_name("tcp-0"), nullptr);
  EXPECT_EQ(madeleine.channel_by_name("nope"), nullptr);
}

TEST(Madeleine, RandomizedBlockPatternsRoundTrip) {
  // Property: any sequence of block sizes/modes survives the round trip on
  // every protocol.
  for (auto protocol : {sim::Protocol::kTcp, sim::Protocol::kSisci,
                        sim::Protocol::kBip}) {
    MadPair net(protocol);
    Rng rng(static_cast<std::uint64_t>(protocol) * 1000 + 5);
    for (int round = 0; round < 20; ++round) {
      const int blocks = static_cast<int>(rng.next_range(1, 6));
      std::vector<std::vector<std::uint8_t>> sent(
          static_cast<std::size_t>(blocks));
      std::vector<bool> express(static_cast<std::size_t>(blocks));
      for (int i = 0; i < blocks; ++i) {
        sent[i].resize(rng.next_range(1, 5000));
        for (auto& byte : sent[i]) {
          byte = static_cast<std::uint8_t>(rng.next_u64());
        }
        express[i] = rng.next_bool();
      }
      std::thread sender([&] {
        Packing packing = net.a().begin_packing(1);
        for (int i = 0; i < blocks; ++i) {
          packing.pack(sent[i].data(), sent[i].size(), SendMode::kLater,
                       express[i] ? RecvMode::kExpress : RecvMode::kCheaper);
        }
        packing.end_packing();
      });
      auto incoming = net.b().begin_unpacking();
      ASSERT_TRUE(incoming.has_value());
      for (int i = 0; i < blocks; ++i) {
        std::vector<std::uint8_t> got(sent[i].size());
        incoming->unpack(got.data(), got.size(), SendMode::kLater,
                         express[i] ? RecvMode::kExpress : RecvMode::kCheaper);
        ASSERT_EQ(got, sent[i]) << "round " << round << " block " << i;
      }
      incoming->end_unpacking();
      sender.join();
    }
  }
}

}  // namespace
}  // namespace madmpi::mad
