// Tests for cluster topology specification and parsing.
#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace madmpi::sim {
namespace {

TEST(Topology, HomogeneousBuilder) {
  const auto spec = ClusterSpec::homogeneous(3, Protocol::kSisci, 2);
  EXPECT_TRUE(spec.validate().is_ok());
  EXPECT_EQ(spec.nodes.size(), 3u);
  EXPECT_EQ(spec.total_ranks(), 6);
  ASSERT_EQ(spec.networks.size(), 1u);
  EXPECT_EQ(spec.networks[0].protocol, Protocol::kSisci);
  EXPECT_EQ(spec.networks[0].members.size(), 3u);
}

TEST(Topology, ClusterOfClustersBuilder) {
  const auto spec = ClusterSpec::cluster_of_clusters(2, 3);
  EXPECT_TRUE(spec.validate().is_ok());
  EXPECT_EQ(spec.nodes.size(), 5u);
  ASSERT_EQ(spec.networks.size(), 3u);  // tcp + sci + myrinet
  EXPECT_EQ(spec.networks[0].protocol, Protocol::kTcp);
  EXPECT_EQ(spec.networks[0].members.size(), 5u);
  EXPECT_EQ(spec.networks[1].members.size(), 2u);  // sci
  EXPECT_EQ(spec.networks[2].members.size(), 3u);  // myrinet
}

TEST(Topology, ClusterOfClustersSkipsSingletonNetworks) {
  const auto spec = ClusterSpec::cluster_of_clusters(1, 3);
  // A single SCI node forms no SCI network.
  ASSERT_EQ(spec.networks.size(), 2u);
  EXPECT_EQ(spec.networks[1].protocol, Protocol::kBip);
}

TEST(Topology, RankLocationNodeMajor) {
  auto spec = ClusterSpec::homogeneous(2, Protocol::kTcp, 2);
  spec.nodes[1].ranks = 3;
  EXPECT_EQ(spec.rank_location(0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(spec.rank_location(1), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(spec.rank_location(2), (std::pair<int, int>{1, 0}));
  EXPECT_EQ(spec.rank_location(4), (std::pair<int, int>{1, 2}));
  EXPECT_DEATH(spec.rank_location(5), "beyond cluster size");
}

TEST(Topology, CommonProtocols) {
  const auto spec = ClusterSpec::cluster_of_clusters(2, 2);
  const auto sci_pair = spec.common_protocols(0, 1);
  EXPECT_EQ(sci_pair.size(), 2u);  // tcp + sci
  const auto cross = spec.common_protocols(0, 2);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0], Protocol::kTcp);
}

TEST(TopologyParse, FullConfig) {
  const std::string text = R"(
# the paper's testbed
node n0 cpus=2 ranks=2
node n1 cpus=2
node n2
network tcp n0 n1 n2
network sci n0 n1
network myrinet adapter=1 n1 n2
)";
  ClusterSpec spec;
  ASSERT_TRUE(ClusterSpec::parse(text, &spec).is_ok());
  EXPECT_EQ(spec.nodes.size(), 3u);
  EXPECT_EQ(spec.nodes[0].ranks, 2);
  EXPECT_EQ(spec.nodes[2].cpus, 2);  // default
  ASSERT_EQ(spec.networks.size(), 3u);
  EXPECT_EQ(spec.networks[2].adapter, 1);
  EXPECT_EQ(spec.networks[2].protocol, Protocol::kBip);
  EXPECT_EQ(spec.total_ranks(), 4);
}

TEST(TopologyParse, CommentsAndBlankLines) {
  ClusterSpec spec;
  ASSERT_TRUE(ClusterSpec::parse(
                  "\n# nothing\nnode a\nnode b # inline\nnetwork tcp a b\n",
                  &spec)
                  .is_ok());
  EXPECT_EQ(spec.nodes.size(), 2u);
}

TEST(TopologyParse, RejectsUnknownKeyword) {
  ClusterSpec spec;
  const auto status = ClusterSpec::parse("machine x\n", &spec);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("unknown keyword"), std::string::npos);
}

TEST(TopologyParse, RejectsUnknownProtocol) {
  ClusterSpec spec;
  EXPECT_FALSE(
      ClusterSpec::parse("node a\nnode b\nnetwork infiniband a b\n", &spec)
          .is_ok());
}

TEST(TopologyParse, RejectsUnknownMember) {
  ClusterSpec spec;
  const auto status =
      ClusterSpec::parse("node a\nnode b\nnetwork tcp a ghost\n", &spec);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("unknown node"), std::string::npos);
}

TEST(TopologyParse, RejectsSingletonNetwork) {
  ClusterSpec spec;
  EXPECT_FALSE(
      ClusterSpec::parse("node a\nnode b\nnetwork tcp a\n", &spec).is_ok());
}

TEST(TopologyParse, RejectsDuplicateNodeNames) {
  ClusterSpec spec;
  EXPECT_FALSE(
      ClusterSpec::parse("node a\nnode a\nnetwork tcp a a\n", &spec).is_ok());
}

TEST(TopologyParse, RejectsBadInteger) {
  ClusterSpec spec;
  EXPECT_FALSE(ClusterSpec::parse("node a cpus=banana\n", &spec).is_ok());
  EXPECT_FALSE(ClusterSpec::parse("node a frobs=1\n", &spec).is_ok());
}

TEST(TopologyParse, RejectsZeroRanks) {
  ClusterSpec spec;
  EXPECT_FALSE(ClusterSpec::parse(
                   "node a ranks=0\nnode b\nnetwork tcp a b\n", &spec)
                   .is_ok());
}

TEST(Topology, ProtocolKeywordRoundTrip) {
  for (auto protocol : {Protocol::kTcp, Protocol::kSisci, Protocol::kBip,
                        Protocol::kShmem}) {
    const auto parsed = protocol_from_keyword(protocol_keyword(protocol));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, protocol);
  }
  EXPECT_EQ(protocol_from_keyword("sisci"), Protocol::kSisci);
  EXPECT_EQ(protocol_from_keyword("bip"), Protocol::kBip);
  EXPECT_EQ(protocol_from_keyword("ethernet"), Protocol::kTcp);
  EXPECT_EQ(protocol_from_keyword("token-ring"), std::nullopt);
}

TEST(Topology, ValidateEmptyCluster) {
  ClusterSpec spec;
  EXPECT_FALSE(spec.validate().is_ok());
}

}  // namespace
}  // namespace madmpi::sim
