// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/byte_buffer.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"

namespace madmpi {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status(ErrorCode::kTruncated, "buffer too small");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kTruncated);
  EXPECT_EQ(status.to_string(), "truncated: buffer too small");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(ByteBuffer, RoundTripScalars) {
  ByteWriter writer;
  writer.put<std::uint32_t>(0xdeadbeef);
  writer.put<double>(3.25);
  writer.put<std::int8_t>(-5);
  ByteReader reader(writer.span());
  EXPECT_EQ(reader.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(reader.get<double>(), 3.25);
  EXPECT_EQ(reader.get<std::int8_t>(), -5);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteBuffer, AppendRawAndRead) {
  ByteWriter writer;
  const char text[] = "madeleine";
  writer.append(text, sizeof text);
  EXPECT_EQ(writer.size(), sizeof text);
  ByteReader reader(writer.span());
  char out[sizeof text];
  reader.read(out, sizeof text);
  EXPECT_STREQ(out, "madeleine");
}

TEST(ByteBuffer, UnderflowAborts) {
  ByteWriter writer;
  writer.put<std::uint16_t>(7);
  ByteReader reader(writer.span());
  EXPECT_DEATH(reader.get<std::uint64_t>(), "underflow");
}

TEST(ByteBuffer, TakeMovesStorage) {
  ByteWriter writer;
  writer.put<int>(1);
  auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), sizeof(int));
  EXPECT_EQ(writer.size(), 0u);
}

TEST(BoundedRing, FifoOrder) {
  BoundedRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*ring.try_pop(), i);
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(BoundedRing, BlockingHandoffAcrossThreads) {
  BoundedRing<int> ring(1);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(ring.push(i));
    ring.close();
  });
  int expected = 0;
  while (auto item = ring.pop()) {
    EXPECT_EQ(*item, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(BoundedRing, CloseUnblocksAndDrains) {
  BoundedRing<int> ring(8);
  ring.push(1);
  ring.push(2);
  ring.close();
  EXPECT_FALSE(ring.push(3));  // closed
  EXPECT_EQ(*ring.pop(), 1);
  EXPECT_EQ(*ring.pop(), 2);
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 100.0);
  EXPECT_NEAR(samples.median(), 50.5, 1e-9);
  EXPECT_NEAR(samples.percentile(0.99), 99.01, 0.01);
  EXPECT_NEAR(samples.mean(), 50.5, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet samples;
  samples.add(42.0);
  EXPECT_EQ(samples.median(), 42.0);
  EXPECT_EQ(samples.percentile(0.0), 42.0);
  EXPECT_EQ(samples.percentile(1.0), 42.0);
}

TEST(Series, TableAndCsvRendering) {
  Series series;
  series.x_label = "bytes";
  series.y_labels = {"a", "b"};
  series.add(1, {10.5, 20.25});
  series.add(2, {11.0, 21.0});
  const std::string table = series.to_table();
  EXPECT_NE(table.find("# bytes\ta\tb"), std::string::npos);
  EXPECT_NE(table.find("1\t10.500\t20.250"), std::string::npos);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("bytes,a,b"), std::string::npos);
  EXPECT_NE(csv.find("2,11.000,21.000"), std::string::npos);
}

TEST(Series, MismatchedColumnsAbort) {
  Series series;
  series.y_labels = {"only_one"};
  EXPECT_DEATH(series.add(1, {1.0, 2.0}), "check failed");
}

TEST(Sizes, PowerOfTwoLadder) {
  const auto sizes = power_of_two_sizes(1024);
  ASSERT_EQ(sizes.size(), 11u);
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 1024u);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolIsBalancedEnough) {
  Rng rng(99);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool() ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

}  // namespace
}  // namespace madmpi
