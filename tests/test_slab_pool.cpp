// The zero-copy datapath's memory subsystem: slab pool size classes and
// caching, chunk refcount handoff (the retransmit-safety mechanism),
// scatter-gather chunk lists, the control-region writer — and the
// end-to-end property the whole PR exists for: a steady-state eager
// ping-pong performs zero datapath allocations and exactly one staging
// copy per message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/datapath_stats.hpp"
#include "common/slab_pool.hpp"
#include "core/pingpong.hpp"
#include "core/session.hpp"
#include "sim/fault.hpp"

namespace madmpi {
namespace {

SlabPool::Options small_pool_options() {
  SlabPool::Options options;
  options.max_cached_per_class = 4;
  options.max_slab_bytes = 4096;
  options.refill_batch = 1;  // no spares: allocation counts stay exact
  return options;
}

// ------------------------------------------------------------- SlabPool

TEST(SlabPool, SizeClassRoundsUpAndReuses) {
  SlabPool pool(small_pool_options());
  Slab* slab = pool.acquire(100);
  ASSERT_NE(slab, nullptr);
  EXPECT_GE(slab->capacity(), 100u);  // class 128
  EXPECT_EQ(slab->capacity(), 128u);
  EXPECT_FALSE(slab->fallback());
  slab->release();

  // Same class comes back from the free list, not the heap.
  Slab* again = pool.acquire(65);
  EXPECT_EQ(again, slab);
  again->release();

  const auto stats = pool.stats();
  EXPECT_EQ(stats.fresh_allocs, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.cached_slabs, 1u);
}

TEST(SlabPool, RefillBatchCachesSpares) {
  SlabPool::Options options = small_pool_options();
  options.refill_batch = 3;
  options.max_cached_per_class = 8;
  SlabPool pool(options);
  Slab* slab = pool.acquire(64);
  const auto stats = pool.stats();
  // One handed out, two spares parked for future concurrency spikes.
  EXPECT_EQ(stats.fresh_allocs, 3u);
  EXPECT_EQ(stats.cached_slabs, 2u);
  slab->release();
  // A burst of three concurrent slabs never touches the heap again.
  Slab* a = pool.acquire(64);
  Slab* b = pool.acquire(64);
  Slab* c = pool.acquire(64);
  EXPECT_EQ(pool.stats().fresh_allocs, 3u);
  a->release();
  b->release();
  c->release();
}

TEST(SlabPool, OversizeRequestFallsBackUncached) {
  SlabPool pool(small_pool_options());  // classes top out at 4 KB
  Slab* big = pool.acquire(64 * 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(big->fallback());
  EXPECT_GE(big->capacity(), 64u * 1024);
  big->release();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.cached_slabs, 0u);  // fallbacks are never cached
}

TEST(SlabPool, DisabledPoolAlwaysFallsBack) {
  SlabPool::Options options = small_pool_options();
  options.disabled = true;
  SlabPool pool(options);
  ChunkRef chunk = pool.allocate(64);
  ASSERT_TRUE(static_cast<bool>(chunk));
  EXPECT_TRUE(chunk.slab()->fallback());
  chunk.reset();
  EXPECT_EQ(pool.stats().fallbacks, 1u);
  EXPECT_EQ(pool.stats().fresh_allocs, 0u);
}

TEST(SlabPool, HighWaterTracksPeakOutstandingBytes) {
  SlabPool pool(small_pool_options());
  ChunkRef a = pool.allocate(64);
  ChunkRef b = pool.allocate(64);
  ChunkRef c = pool.allocate(64);
  EXPECT_EQ(pool.stats().outstanding_bytes, 3u * 64);
  EXPECT_EQ(pool.stats().high_water_bytes, 3u * 64);
  a.reset();
  b.reset();
  // The peak sticks after the drain; outstanding drops.
  EXPECT_EQ(pool.stats().outstanding_bytes, 64u);
  EXPECT_EQ(pool.stats().high_water_bytes, 3u * 64);
  c.reset();
}

TEST(SlabPool, TrimDropsCachedSlabs) {
  SlabPool pool(small_pool_options());
  pool.allocate(64).reset();
  EXPECT_EQ(pool.stats().cached_slabs, 1u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_slabs, 0u);
}

TEST(SlabPool, StageCopiesAndCounts) {
  SlabPool pool(small_pool_options());
  const auto before = DatapathStats::global().snapshot();
  std::vector<std::byte> src(100);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  ChunkRef chunk = pool.stage(src.data(), src.size());
  EXPECT_EQ(chunk.size(), src.size());
  EXPECT_EQ(std::memcmp(chunk.data(), src.data(), src.size()), 0);
  const auto d = DatapathStats::global().snapshot() - before;
  EXPECT_EQ(d.bytes_copied, src.size());
  EXPECT_EQ(d.slab_allocs, 1u);
}

// ------------------------------------------------------------- ChunkRef

TEST(ChunkRef, RefcountHandoffAcrossCopies) {
  SlabPool pool(small_pool_options());
  ChunkRef first = pool.allocate(64);
  Slab* slab = first.slab();
  EXPECT_EQ(slab->refs(), 1u);

  // The retransmit pattern: every copy of a frame's payload bumps the
  // refcount; the slab stays alive until the last in-flight copy dies.
  ChunkRef retransmit_a = first;
  ChunkRef retransmit_b = first;
  EXPECT_EQ(slab->refs(), 3u);
  first.reset();  // sender moves on before delivery
  EXPECT_EQ(slab->refs(), 2u);
  std::memset(retransmit_a.mutable_data(), 0x5a, retransmit_a.size());
  retransmit_a.reset();
  // The surviving copy still reads the bytes.
  EXPECT_EQ(std::to_integer<int>(retransmit_b.data()[0]), 0x5a);
  retransmit_b.reset();
  EXPECT_EQ(pool.stats().cached_slabs, 1u);  // recycled at refcount zero
}

TEST(ChunkRef, SubchunkSharesTheSlab) {
  SlabPool pool(small_pool_options());
  ChunkRef whole = pool.allocate(128);
  ChunkRef tail = whole.subchunk(100, 28);
  EXPECT_EQ(tail.slab(), whole.slab());
  EXPECT_EQ(tail.data(), whole.data() + 100);
  EXPECT_EQ(whole.slab()->refs(), 2u);
  whole.reset();
  EXPECT_EQ(tail.slab()->refs(), 1u);  // the view alone keeps it alive
}

// ------------------------------------------------------------ ChunkList

TEST(ChunkList, HeaderBodyPairCoalescesToOneSpan) {
  SlabPool pool(small_pool_options());
  ChunkRef whole = pool.allocate(100);
  for (std::size_t i = 0; i < 100; ++i) {
    whole.mutable_data()[i] = static_cast<std::byte>(i);
  }
  // The eager wire shape: EXPRESS prefix and CHEAPER remainder as two
  // views of the same slab.
  ChunkList list;
  list.push_back(whole.subchunk(0, 30));
  list.push_back(whole.subchunk(30, 70));
  EXPECT_EQ(list.segment_count(), 2u);
  EXPECT_TRUE(list.is_contiguous());
  byte_span joined = list.contiguous();
  EXPECT_EQ(joined.size(), 100u);
  EXPECT_EQ(joined.data(), whole.data());

  // slice() may cross the coalesced seam.
  ChunkRef mid = list.slice(20, 40);
  EXPECT_EQ(std::to_integer<int>(mid.data()[0]), 20);
  EXPECT_EQ(std::to_integer<int>(mid.data()[39]), 59);
}

TEST(ChunkList, DisjointSlabsAreScatterGather) {
  SlabPool pool(small_pool_options());
  ChunkList list;
  list.push_back(pool.allocate(64));
  list.push_back(pool.allocate(64));
  EXPECT_FALSE(list.is_contiguous());
  EXPECT_EQ(list.size(), 128u);
  // Slices inside one segment are fine; crossing the break aborts (not
  // tested here — it is a programming-error CHECK).
  ChunkRef inside = list.slice(64, 64);
  EXPECT_EQ(inside.data(), list.segment(1).data());
}

TEST(ChunkList, MoveZeroesTheSource) {
  SlabPool pool(small_pool_options());
  ChunkList list;
  list.push_back(pool.allocate(64));
  ChunkList moved = std::move(list);
  EXPECT_EQ(moved.size(), 64u);
  EXPECT_TRUE(list.empty());             // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(list.segment_count(), 0u);   // NOLINT(bugprone-use-after-move)
}

TEST(ChunkList, VectorCompatAssignAndResize) {
  ChunkList list;
  const char text[] = "compat";
  list.assign(text, sizeof text);
  EXPECT_EQ(list.size(), sizeof text);
  EXPECT_EQ(std::memcmp(list.data(), text, sizeof text), 0);
  list.resize(16);
  EXPECT_EQ(list.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(std::to_integer<int>(list.contiguous()[i]), 0);
  }
}

// ----------------------------------------------------------- ChunkWriter

TEST(ChunkWriter, BuildsControlRegionInOneSlab) {
  SlabPool pool(small_pool_options());
  ChunkWriter writer(pool, 256);
  writer.put<std::uint32_t>(0xdeadbeef);
  const char body[] = "payload";
  writer.append(body, sizeof body);
  EXPECT_EQ(writer.position(), 4 + sizeof body);

  // The express/cheaper split: two chunks, one slab.
  ChunkRef head = writer.chunk(0, 4);
  ChunkRef tail = writer.chunk(4, sizeof body);
  EXPECT_EQ(head.slab(), tail.slab());
  EXPECT_EQ(tail.data(), head.data() + 4);
  std::uint32_t value = 0;
  std::memcpy(&value, head.data(), 4);
  EXPECT_EQ(value, 0xdeadbeefu);
}

TEST(ChunkWriter, RegrowsByCopyWhenReserveIsTooSmall) {
  SlabPool pool(small_pool_options());
  ChunkWriter writer(pool, 64);
  std::vector<std::byte> data(200, std::byte{0x7f});
  writer.append(data.data(), 100);
  writer.append(data.data(), 100);  // forces a regrow past 64/128
  EXPECT_EQ(writer.position(), 200u);
  ChunkRef all = writer.take_all();
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(std::to_integer<int>(all.data()[i]), 0x7f);
  }
}

// -------------------------------------------- end-to-end datapath budget

core::Session::Options two_node_tcp() {
  core::Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  return options;
}

TEST(ZeroCopyDatapath, SteadyStateEagerPingPongAllocatesNothing) {
  core::Session session(two_node_tcp());
  constexpr std::size_t kBytes = 256;
  constexpr int kReps = 40;
  core::mpi_pingpong(session, kBytes, kReps);  // settle pools and queues
  auto& stats = DatapathStats::global();
  const auto before = stats.snapshot();
  core::mpi_pingpong(session, kBytes, kReps);
  const auto d = stats.snapshot() - before;
  const std::uint64_t msgs = 2 * (kReps + 1);

  // THE acceptance property: zero fresh datapath buffers in steady state —
  // every control region, wire frame and unexpected-store entry rides a
  // recycled pooled slab.
  EXPECT_EQ(d.staging_allocs, 0u);
  EXPECT_EQ(d.slab_allocs, 0u);
  EXPECT_EQ(d.slab_fallbacks, 0u);
  // And exactly one staging copy per message: the sender packing the user
  // payload into the control slab. The receive side is views end to end.
  EXPECT_EQ(d.bytes_copied, msgs * kBytes);
}

TEST(ZeroCopyDatapath, SeparateBlockEagerAlsoAllocationFree) {
  // 1 KB rides above the TCP 64 B aggregation threshold: header inline,
  // body as its own data frame — the scatter-gather shape.
  core::Session session(two_node_tcp());
  constexpr std::size_t kBytes = 1024;
  constexpr int kReps = 40;
  core::mpi_pingpong(session, kBytes, kReps);
  auto& stats = DatapathStats::global();
  const auto before = stats.snapshot();
  core::mpi_pingpong(session, kBytes, kReps);
  const auto d = stats.snapshot() - before;
  EXPECT_EQ(d.staging_allocs, 0u);
  EXPECT_EQ(d.slab_allocs, 0u);
  EXPECT_EQ(d.bytes_copied, 2u * (kReps + 1) * kBytes);
}

TEST(ZeroCopyDatapath, RetransmitsDeliverIntactPayloads) {
  // Frame drops force the transport to re-send from its queued Frame copy;
  // with chunk payloads that copy is a refcount bump, and the payload must
  // still arrive intact after the sender's Packing has been destroyed.
  core::Session session(two_node_tcp());
  auto plan0 = std::make_shared<sim::FaultPlan>(11);
  auto plan1 = std::make_shared<sim::FaultPlan>(12);
  plan0->drop(0.25);
  plan1->drop(0.25);
  session.fabric().find_nic(0, sim::Protocol::kTcp)->mutable_model()
      .fault_plan = plan0;
  session.fabric().find_nic(1, sim::Protocol::kTcp)->mutable_model()
      .fault_plan = plan1;

  session.run([](mpi::Comm comm) {
    const int peer = 1 - comm.rank();
    for (int round = 0; round < 20; ++round) {
      // Alternate inline (<=64 B) and separate-frame (>64 B) bodies.
      const std::size_t bytes = round % 2 == 0 ? 48 : 512;
      std::vector<std::uint8_t> out(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        out[i] = static_cast<std::uint8_t>((round * 37 + i) & 0xff);
      }
      std::vector<std::uint8_t> in(bytes, 0);
      if (comm.rank() == 0) {
        comm.send(out.data(), static_cast<int>(bytes),
                  mpi::Datatype::uint8(), peer, round);
        comm.recv(in.data(), static_cast<int>(bytes), mpi::Datatype::uint8(),
                  peer, round);
      } else {
        comm.recv(in.data(), static_cast<int>(bytes), mpi::Datatype::uint8(),
                  peer, round);
        comm.send(out.data(), static_cast<int>(bytes),
                  mpi::Datatype::uint8(), peer, round);
      }
      ASSERT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
          << "round " << round << " (" << bytes << " B)";
    }
  });
}

TEST(ZeroCopyDatapath, UnexpectedStoreParksTheWireChunk) {
  // Sends land before any receive posts: the unexpected store must hold
  // the wire chunk by reference, and a later receive still gets the right
  // bytes — after the sender's message object is long gone.
  core::Session session(two_node_tcp());
  session.run([](mpi::Comm comm) {
    constexpr int kTrain = 6;
    if (comm.rank() == 0) {
      for (int seq = 0; seq < kTrain; ++seq) {
        std::vector<std::uint8_t> payload(
            static_cast<std::size_t>(32 + 64 * seq));
        for (std::size_t i = 0; i < payload.size(); ++i) {
          payload[i] = static_cast<std::uint8_t>((seq * 131 + i) & 0xff);
        }
        comm.send(payload.data(), static_cast<int>(payload.size()),
                  mpi::Datatype::uint8(), 1, 5);
      }
      int done = 0;
      comm.recv(&done, 1, mpi::Datatype::int32(), 1, 6);
    } else {
      // Give the whole train time to park in the unexpected store.
      comm.compute_us(5000.0);
      for (int seq = 0; seq < kTrain; ++seq) {
        std::vector<std::uint8_t> in(static_cast<std::size_t>(32 + 64 * seq),
                                     0);
        const auto status =
            comm.recv(in.data(), static_cast<int>(in.size()),
                      mpi::Datatype::uint8(), 0, 5);
        ASSERT_EQ(status.error, ErrorCode::kOk);
        ASSERT_EQ(status.bytes, in.size());
        for (std::size_t i = 0; i < in.size(); ++i) {
          ASSERT_EQ(in[i], static_cast<std::uint8_t>((seq * 131 + i) & 0xff))
              << "message " << seq << " byte " << i;
        }
      }
      const int done = 1;
      comm.send(&done, 1, mpi::Datatype::int32(), 0, 6);
    }
  });
}

}  // namespace
}  // namespace madmpi
