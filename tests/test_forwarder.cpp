// Gateway forwarding (the paper's Section 6 future work, implemented here):
// Madeleine-level relay of messages across heterogeneous networks.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "mad/forwarder.hpp"
#include "mad/madeleine.hpp"

namespace madmpi::mad {
namespace {

/// Topology: n0 --SCI-- n1(gateway) --Myrinet-- n2. n0 and n2 share no
/// network; traffic crosses via forwarding channels on n1.
struct GatewayWorld {
  GatewayWorld() : madeleine(fabric, make_spec()) {
    sci = &madeleine.open_channel(madeleine.cluster().networks[0], "fwd-sci");
    myri =
        &madeleine.open_channel(madeleine.cluster().networks[1], "fwd-myri");
    forwarder = std::make_unique<Forwarder>(fabric.node(1));
    forwarder->add_ingress(sci->at(1));
    forwarder->add_ingress(myri->at(1));
    forwarder->add_route(2, myri->at(1), 2);
    forwarder->add_route(0, sci->at(1), 0);
    forwarder->start();
  }

  ~GatewayWorld() {
    madeleine.close_all();
    forwarder->stop();
  }

  static sim::ClusterSpec make_spec() {
    sim::ClusterSpec spec;
    for (const char* name : {"n0", "n1", "n2"}) {
      sim::NodeSpec node;
      node.name = name;
      spec.nodes.push_back(node);
    }
    spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
    spec.networks.push_back({sim::Protocol::kBip, 0, {"n1", "n2"}});
    return spec;
  }

  sim::Fabric fabric;
  Madeleine madeleine;
  Channel* sci = nullptr;
  Channel* myri = nullptr;
  std::unique_ptr<Forwarder> forwarder;
};

TEST(Forwarder, SingleHopRelayPreservesPayload) {
  GatewayWorld world;

  std::thread sender([&] {
    std::vector<char> body(5000, 'f');
    int size = static_cast<int>(body.size());
    Packing packing = begin_forward_packing(*world.sci->at(0), 1, 2);
    packing.pack(&size, sizeof size, SendMode::kSafer, RecvMode::kExpress);
    packing.pack(body.data(), body.size(), SendMode::kSafer,
                 RecvMode::kCheaper);
    packing.end_packing();
  });

  auto incoming = world.myri->at(2)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  const ForwardHeader header = read_forward_header(*incoming);
  EXPECT_EQ(header.origin, 0);
  EXPECT_EQ(header.final_dst, 2);
  EXPECT_EQ(header.hops, 1);
  int size = 0;
  incoming->unpack(&size, sizeof size, SendMode::kSafer, RecvMode::kExpress);
  ASSERT_EQ(size, 5000);
  std::vector<char> body(static_cast<std::size_t>(size));
  incoming->unpack(body.data(), body.size(), SendMode::kSafer,
                   RecvMode::kCheaper);
  incoming->end_unpacking();
  EXPECT_EQ(body[0], 'f');
  EXPECT_EQ(body[4999], 'f');
  EXPECT_EQ(world.forwarder->forwarded(), 1u);
  sender.join();
}

TEST(Forwarder, ReverseDirectionWorksToo) {
  GatewayWorld world;
  std::thread sender([&] {
    double value = 2.75;
    Packing packing = begin_forward_packing(*world.myri->at(2), 1, 0);
    packing.pack(&value, sizeof value, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });
  auto incoming = world.sci->at(0)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  const ForwardHeader header = read_forward_header(*incoming);
  EXPECT_EQ(header.origin, 2);
  double value = 0.0;
  incoming->unpack(&value, sizeof value, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  EXPECT_EQ(value, 2.75);
  sender.join();
}

TEST(Forwarder, ManyMessagesStayOrdered) {
  GatewayWorld world;
  constexpr int kMessages = 30;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      Packing packing = begin_forward_packing(*world.sci->at(0), 1, 2);
      packing.pack(&i, sizeof i, SendMode::kSafer, RecvMode::kExpress);
      packing.end_packing();
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    auto incoming = world.myri->at(2)->begin_unpacking();
    ASSERT_TRUE(incoming.has_value());
    read_forward_header(*incoming);
    int seq = -1;
    incoming->unpack(&seq, sizeof seq, SendMode::kSafer, RecvMode::kExpress);
    incoming->end_unpacking();
    ASSERT_EQ(seq, i);
  }
  EXPECT_EQ(world.forwarder->forwarded(), kMessages);
  sender.join();
}

TEST(Forwarder, VirtualTimeCoversBothHops) {
  GatewayWorld world;
  std::thread sender([&] {
    int token = 1;
    Packing packing = begin_forward_packing(*world.sci->at(0), 1, 2);
    packing.pack(&token, sizeof token, SendMode::kSafer, RecvMode::kExpress);
    packing.end_packing();
  });
  auto incoming = world.myri->at(2)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  read_forward_header(*incoming);
  int token = 0;
  incoming->unpack(&token, sizeof token, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  // SCI hop (~4 us) + gateway handling + BIP hop (~9 us): the receiver's
  // clock must reflect both wire traversals.
  EXPECT_GT(world.fabric.node(2).clock().now(), 12.0);
  sender.join();
}

TEST(Forwarder, TwoHopChain) {
  // n0 --SCI-- n1 --TCP-- n2 --Myrinet-- n3, forwarded twice.
  sim::ClusterSpec spec;
  for (const char* name : {"n0", "n1", "n2", "n3"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
  spec.networks.push_back({sim::Protocol::kTcp, 0, {"n1", "n2"}});
  spec.networks.push_back({sim::Protocol::kBip, 0, {"n2", "n3"}});

  sim::Fabric fabric;
  Madeleine madeleine(fabric, spec);
  Channel& sci = madeleine.open_channel(spec.networks[0], "hop0");
  Channel& tcp = madeleine.open_channel(spec.networks[1], "hop1");
  Channel& myri = madeleine.open_channel(spec.networks[2], "hop2");

  Forwarder gw1(fabric.node(1));
  gw1.add_ingress(sci.at(1));
  gw1.add_route(3, tcp.at(1), 2);  // not the final destination: next hop
  gw1.start();

  Forwarder gw2(fabric.node(2));
  gw2.add_ingress(tcp.at(2));
  gw2.add_route(3, myri.at(2), 3);
  gw2.start();

  std::thread sender([&] {
    std::uint64_t payload = 0xabcdef;
    Packing packing = begin_forward_packing(*sci.at(0), 1, 3);
    packing.pack(&payload, sizeof payload, SendMode::kSafer,
                 RecvMode::kExpress);
    packing.end_packing();
  });

  auto incoming = myri.at(3)->begin_unpacking();
  ASSERT_TRUE(incoming.has_value());
  const ForwardHeader header = read_forward_header(*incoming);
  EXPECT_EQ(header.hops, 2);
  EXPECT_EQ(header.origin, 0);
  std::uint64_t payload = 0;
  incoming->unpack(&payload, sizeof payload, SendMode::kSafer,
                   RecvMode::kExpress);
  incoming->end_unpacking();
  EXPECT_EQ(payload, 0xabcdefu);
  sender.join();

  madeleine.close_all();
  gw1.stop();
  gw2.stop();
}

}  // namespace
}  // namespace madmpi::mad
