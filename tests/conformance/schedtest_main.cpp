// madmpi_schedtest: the schedule-exploration sweep driver.
//
//   madmpi_schedtest --list
//   madmpi_schedtest --scenario=faults --seeds=32 --json=failures.json
//   madmpi_schedtest --scenario=all
//   madmpi_schedtest --scenario=faults --replay=17
//
// Sweeps N seeds per scenario through the ScheduleController, shrinks every
// failure to the minimal choice-point mask that reproduces it, and writes a
// JSON artifact of failing seeds (what the CI nightly uploads). --replay
// reruns one recorded seed and prints the violations, for debugging a red
// sweep locally. Exit status: 0 when every swept seed passed, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sim/sched.hpp"

namespace {

using namespace madmpi;
using namespace madmpi::conformance;

void print_usage() {
  std::cout
      << "usage: madmpi_schedtest [options]\n"
         "  --list              list scenarios and exit\n"
         "  --scenario=NAME     scenario to sweep (or 'all'; default: all\n"
         "                      except selftest, which fails by design)\n"
         "  --seeds=N           seeds per scenario (default: "
         "MADMPI_SCHED_SWEEP or 32)\n"
         "  --seed-base=B       first seed of the sweep (default: 1)\n"
         "  --mask=M            perturbation mask (default: all "
      << sim::kSchedAllChoices
      << ")\n"
         "  --json=PATH         write the failing-seeds artifact to PATH\n"
         "  --replay=SEED       run one seed of --scenario, print "
         "violations, shrink\n"
         "  --no-shrink         skip mask shrinking on failures\n";
}

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<const Scenario*> select_scenarios(const std::string& name) {
  std::vector<const Scenario*> selected;
  if (name == "all") {
    for (const Scenario& scenario : scenarios()) {
      // selftest exists to prove the kit catches violations; a default
      // sweep must stay green, so it only runs when named explicitly.
      if (scenario.name != "selftest") selected.push_back(&scenario);
    }
  } else if (const Scenario* scenario = find_scenario(name)) {
    selected.push_back(scenario);
  }
  return selected;
}

int replay(const Scenario& scenario, std::uint64_t seed, std::uint32_t mask,
           bool shrink) {
  std::cout << "replaying " << scenario.name << " seed=" << seed
            << " mask=" << mask << "\n";
  ScenarioResult result = run_scenario(scenario, seed, mask);
  if (result.passed()) {
    std::cout << "PASSED: no violations at this seed\n";
    return 0;
  }
  for (const Violation& violation : result.violations) {
    std::cout << "VIOLATION [" << violation.oracle << "] "
              << violation.detail << "\n";
  }
  if (shrink) {
    const std::uint32_t minimal = shrink_mask(scenario, seed, mask);
    std::cout << "shrunk mask: " << minimal << " (";
    bool first = true;
    for (unsigned bit = 0;
         bit < static_cast<unsigned>(sim::SchedChoice::kCount); ++bit) {
      if ((minimal & (1u << bit)) == 0) continue;
      if (!first) std::cout << ", ";
      first = false;
      std::cout << sim::sched_choice_name(
          static_cast<sim::SchedChoice>(bit));
    }
    std::cout << ")\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "all";
  int seeds = sweep_seed_count();
  std::uint64_t seed_base = 1;
  std::uint32_t mask = sim::kSchedAllChoices;
  std::string json_path;
  bool shrink = true;
  bool list = false;
  std::uint64_t replay_seed = 0;
  bool do_replay = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    } else if (parse_flag(argv[i], "--scenario", &value)) {
      scenario_name = value;
    } else if (parse_flag(argv[i], "--seeds", &value)) {
      seeds = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--seed-base", &value)) {
      seed_base = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--mask", &value)) {
      mask = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 0));
    } else if (parse_flag(argv[i], "--json", &value)) {
      json_path = value;
    } else if (parse_flag(argv[i], "--replay", &value)) {
      do_replay = true;
      replay_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      print_usage();
      return 2;
    }
  }

  if (list) {
    for (const Scenario& scenario : scenarios()) {
      std::cout << scenario.name << "\t" << scenario.description << "\n";
    }
    return 0;
  }
  if (seeds <= 0) {
    std::cerr << "--seeds must be positive\n";
    return 2;
  }

  const std::vector<const Scenario*> selected =
      select_scenarios(scenario_name);
  if (selected.empty()) {
    std::cerr << "unknown scenario '" << scenario_name
              << "' (--list shows the registry)\n";
    return 2;
  }

  if (do_replay) {
    if (selected.size() != 1) {
      std::cerr << "--replay needs a single --scenario=NAME\n";
      return 2;
    }
    return replay(*selected.front(), replay_seed, mask, shrink);
  }

  std::vector<SweepReport> reports;
  bool all_passed = true;
  for (const Scenario* scenario : selected) {
    std::cout << "sweeping " << scenario->name << ": " << seeds
              << " seeds from " << seed_base << ", mask " << mask << " ... "
              << std::flush;
    SweepReport report = run_sweep(*scenario, seeds, seed_base, mask, shrink);
    std::cout << (report.passed()
                      ? "ok"
                      : std::to_string(report.failures.size()) + " FAILING")
              << "\n";
    for (const SweepFailure& failure : report.failures) {
      all_passed = false;
      std::cout << "  seed " << failure.seed << " (shrunk mask "
                << failure.shrunk_mask << "): replay with --scenario="
                << scenario->name << " --replay=" << failure.seed << "\n";
      for (const Violation& violation : failure.violations) {
        std::cout << "    [" << violation.oracle << "] " << violation.detail
                  << "\n";
      }
    }
    reports.push_back(std::move(report));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << to_json(reports);
    std::cout << "wrote " << json_path << "\n";
  }
  return all_passed ? 0 : 1;
}
