// Conformance scenarios: workloads instrumented with MPI-semantics oracles,
// designed to stay *correct under every legal schedule* — the sweep's job
// is to find an interleaving where they are not.
#include <array>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/session.hpp"
#include "harness.hpp"
#include "mpi/win.hpp"
#include "sim/fault.hpp"
#include "sim/sched.hpp"

namespace madmpi::conformance {
namespace {

using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::shared_ptr<sim::FaultPlan> install_plan(Session& session,
                                             node_id_t node,
                                             sim::Protocol protocol,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<sim::FaultPlan>(seed);
  sim::Nic* nic = session.fabric().find_nic(node, protocol);
  if (nic == nullptr) return plan;
  nic->mutable_model().fault_plan = plan;
  return plan;
}

std::uint8_t pattern_byte(int src, std::uint64_t seq, std::size_t i) {
  return static_cast<std::uint8_t>(
      (static_cast<std::size_t>(src) * 131 + seq * 31 + i * 7 + 5) & 0xff);
}

// ---------------------------------------------------------- nonovertaking

/// Every pair exchanges a numbered message train on ONE tag with sizes
/// alternating across the eager/rendezvous switch point. MPI: two messages
/// from the same source on the same (comm, tag) must match posted receives
/// in send order — even though here they travel as different packet kinds
/// over different code paths.
void run_nonovertaking(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  options.switch_point_override = 1024;  // 64 B eager, 4 KB rendezvous
  Session session(std::move(options));

  constexpr int kTrain = 8;
  constexpr int kTag = 7;
  const auto size_of = [](int seq) {
    return static_cast<std::size_t>(seq % 2 == 0 ? 64 : 4096);
  };

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    const int n = comm.size();
    // Post every receive up front, in send order per source.
    std::vector<mpi::Request> recvs;
    std::vector<std::vector<std::uint8_t>> inbox;
    std::vector<std::pair<int, int>> origin;  // (src, seq) per request
    for (int src = 0; src < n; ++src) {
      if (src == comm.rank()) continue;
      for (int seq = 0; seq < kTrain; ++seq) {
        inbox.emplace_back(size_of(seq));
        auto& buffer = inbox.back();
        recvs.push_back(comm.irecv(buffer.data(),
                                   static_cast<int>(buffer.size()),
                                   Datatype::uint8(), src, kTag));
        origin.emplace_back(src, seq);
      }
    }
    for (int dst = 0; dst < n; ++dst) {
      if (dst == comm.rank()) continue;
      for (int seq = 0; seq < kTrain; ++seq) {
        std::vector<std::uint8_t> payload(size_of(seq));
        for (std::size_t i = 0; i < payload.size(); ++i) {
          payload[i] = pattern_byte(comm.rank(),
                                    static_cast<std::uint64_t>(seq), i);
        }
        comm.send(payload.data(), static_cast<int>(payload.size()),
                  Datatype::uint8(), dst, kTag);
      }
    }
    for (std::size_t r = 0; r < recvs.size(); ++r) {
      const auto status = recvs[r].wait();
      const auto [src, seq] = origin[r];
      const auto& buffer = inbox[r];
      bool intact = status.error == ErrorCode::kOk &&
                    status.bytes == buffer.size();
      for (std::size_t i = 0; intact && i < buffer.size(); ++i) {
        intact = buffer[i] ==
                 pattern_byte(src, static_cast<std::uint64_t>(seq), i);
      }
      if (!intact) {
        std::ostringstream what;
        what << "rank " << comm.rank() << " recv #" << seq << " from "
             << src << ": expected the seq-" << seq
             << " payload in posting order, got a mismatch (bytes="
             << status.bytes << ", error=" << static_cast<int>(status.error)
             << ")";
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("non-overtaking", what.str());
      }
    }
  });
}

// ------------------------------------------------------------------ probe

/// Matched-probe consistency: what MPI_Probe reports (source, tag, size)
/// must be exactly what the subsequent receive for that (source, tag)
/// delivers — the probe pinned a specific message, not a description of
/// "something pending".
void run_probe(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));

  constexpr int kMessages = 12;
  const auto size_of = [](int seq) {
    return static_cast<std::size_t>((seq * 37) % 977 + 1);
  };

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    if (comm.rank() == 0) {
      for (int seq = 0; seq < kMessages; ++seq) {
        std::vector<std::uint8_t> payload(size_of(seq));
        for (std::size_t i = 0; i < payload.size(); ++i) {
          payload[i] = pattern_byte(0, static_cast<std::uint64_t>(seq), i);
        }
        comm.send(payload.data(), static_cast<int>(payload.size()),
                  Datatype::uint8(), 1, seq % 3);
      }
    } else {
      for (int got = 0; got < kMessages; ++got) {
        const auto probed = comm.probe(mpi::kAnySource, mpi::kAnyTag);
        std::vector<std::uint8_t> buffer(probed.bytes);
        const auto status =
            comm.recv(buffer.data(), static_cast<int>(buffer.size()),
                      Datatype::uint8(), probed.source, probed.tag);
        std::ostringstream what;
        what << "probe said (src=" << probed.source << ", tag=" << probed.tag
             << ", bytes=" << probed.bytes << "), recv delivered (src="
             << status.source << ", tag=" << status.tag << ", bytes="
             << status.bytes << ", error=" << static_cast<int>(status.error)
             << ")";
        const bool consistent = status.error == ErrorCode::kOk &&
                                status.source == probed.source &&
                                status.tag == probed.tag &&
                                status.bytes == probed.bytes;
        if (!consistent) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          oracle.fail("probe-consistency", what.str());
        }
      }
    }
  });
}

// ------------------------------------------------------------ flowcontrol

/// Credit conservation: after traffic quiesces, every byte of every
/// per-peer credit window is either back in the sender's account or still
/// owed by the receiver — under frame drops, retransmissions, and a
/// perturbed credit-batching threshold.
void run_flowcontrol(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  options.credit_window_bytes = 1024;
  Session session(std::move(options));
  install_plan(session, 0, sim::Protocol::kTcp, 21)->drop(0.15);
  install_plan(session, 1, sim::Protocol::kTcp, 22)->drop(0.15);

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    std::vector<std::uint8_t> out(200, 0x5a);
    std::vector<std::uint8_t> in(200);
    const int peer = 1 - comm.rank();
    for (int round = 0; round < 15; ++round) {
      if (comm.rank() == 0) {
        comm.send(out.data(), static_cast<int>(out.size()),
                  Datatype::uint8(), peer, round);
        comm.recv(in.data(), static_cast<int>(in.size()), Datatype::uint8(),
                  peer, round);
      } else {
        comm.recv(in.data(), static_cast<int>(in.size()), Datatype::uint8(),
                  peer, round);
        comm.send(out.data(), static_cast<int>(out.size()),
                  Datatype::uint8(), peer, round);
      }
      if (std::memcmp(in.data(), out.data(), in.size()) != 0) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("no-message-loss",
                    "payload corrupted in round " + std::to_string(round));
      }
    }
  });

  core::ChMadDevice* device = session.ch_mad();
  if (device == nullptr) {
    oracle.fail("credit-conservation", "no ch_mad device in the session");
    return;
  }
  const std::size_t window = device->credit_window();
  session.finalize();  // join in-flight credit threads before the audit
  for (node_id_t a = 0; a <= 1; ++a) {
    const node_id_t b = 1 - a;
    const std::size_t available = device->credits_available(a, b);
    const std::size_t owed = device->credits_pending_return(b, a);
    if (available + owed != window) {
      std::ostringstream what;
      what << "direction " << static_cast<int>(a) << "->"
           << static_cast<int>(b) << ": available " << available
           << " + owed " << owed << " != window " << window;
      oracle.fail("credit-conservation", what.str());
    }
  }
}

// ----------------------------------------------------------------- faults

/// Survivable fault plan: the SCI link dies mid-run (the kill instant
/// itself is a perturbed choice point), but a TCP network always remains.
/// Oracle: no message loss — every send reports success and every payload
/// arrives intact, whichever protocol phase the kill interrupts.
void run_faults(Oracle& oracle) {
  sim::ClusterSpec spec;
  spec.nodes.push_back({"a"});
  spec.nodes.push_back({"b"});
  sim::NetworkSpec sci;
  sci.protocol = sim::Protocol::kSisci;
  sci.members = {"a", "b"};
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  tcp.members = {"a", "b"};
  spec.networks = {sci, tcp};
  Session::Options options;
  options.cluster = std::move(spec);
  Session session(std::move(options));
  install_plan(session, 0, sim::Protocol::kSisci, 5)->kill_at(500.0);
  install_plan(session, 1, sim::Protocol::kSisci, 5)->kill_at(500.0);

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    const int peer = 1 - comm.rank();
    for (int round = 0; round < 30; ++round) {
      // Mix of eager rounds and one rendezvous round so the slide of the
      // kill instant can land inside either protocol's exchange.
      const std::size_t bytes =
          round == 10 ? std::size_t{64} * 1024 : std::size_t{256};
      std::vector<std::uint8_t> out(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        out[i] = pattern_byte(peer, static_cast<std::uint64_t>(round), i);
      }
      std::vector<std::uint8_t> in(bytes);
      Status send_status = Status::ok();
      mpi::MpiStatus recv_status;
      if (comm.rank() == 0) {
        send_status = comm.send(out.data(), static_cast<int>(bytes),
                                Datatype::uint8(), peer, round);
        recv_status = comm.recv(in.data(), static_cast<int>(bytes),
                                Datatype::uint8(), peer, round);
      } else {
        recv_status = comm.recv(in.data(), static_cast<int>(bytes),
                                Datatype::uint8(), peer, round);
        send_status = comm.send(out.data(), static_cast<int>(bytes),
                                Datatype::uint8(), peer, round);
      }
      std::vector<std::uint8_t> expected(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        expected[i] =
            pattern_byte(comm.rank(), static_cast<std::uint64_t>(round), i);
      }
      const bool ok = send_status.is_ok() &&
                      recv_status.error == ErrorCode::kOk &&
                      std::memcmp(in.data(), expected.data(), bytes) == 0;
      if (!ok) {
        std::ostringstream what;
        what << "rank " << comm.rank() << " round " << round << " ("
             << bytes << " B): send=" << static_cast<int>(send_status.code())
             << " recv=" << static_cast<int>(recv_status.error)
             << " — the surviving TCP route must deliver everything";
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("no-message-loss", what.str());
      }
    }
  });
}

// ------------------------------------------------------------- forwarding

/// Gateway forwarding: the endpoints share no network, every message is
/// relayed. Ordering and integrity must survive the extra hop (and the
/// relay node's own perturbed pollers).
void run_forwarding(Oracle& oracle) {
  sim::ClusterSpec spec;
  for (const char* name : {"n0", "n1", "n2"}) {
    sim::NodeSpec node;
    node.name = name;
    spec.nodes.push_back(node);
  }
  spec.networks.push_back({sim::Protocol::kSisci, 0, {"n0", "n1"}});
  spec.networks.push_back({sim::Protocol::kTcp, 0, {"n1", "n2"}});
  Session::Options options;
  options.cluster = std::move(spec);
  options.enable_forwarding = true;
  Session session(std::move(options));

  constexpr int kTrain = 10;
  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    if (comm.rank() == 1) return;  // the gateway only relays
    const int peer = comm.rank() == 0 ? 2 : 0;
    std::vector<mpi::Request> recvs;
    std::vector<std::vector<std::uint8_t>> inbox;
    for (int seq = 0; seq < kTrain; ++seq) {
      inbox.emplace_back(static_cast<std::size_t>(128 + seq));
      auto& buffer = inbox.back();
      recvs.push_back(comm.irecv(buffer.data(),
                                 static_cast<int>(buffer.size()),
                                 Datatype::uint8(), peer, 3));
    }
    for (int seq = 0; seq < kTrain; ++seq) {
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(128 + seq));
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = pattern_byte(comm.rank(),
                                  static_cast<std::uint64_t>(seq), i);
      }
      comm.send(payload.data(), static_cast<int>(payload.size()),
                Datatype::uint8(), peer, 3);
    }
    for (int seq = 0; seq < kTrain; ++seq) {
      const auto status = recvs[static_cast<std::size_t>(seq)].wait();
      const auto& buffer = inbox[static_cast<std::size_t>(seq)];
      bool intact = status.error == ErrorCode::kOk &&
                    status.bytes == buffer.size();
      for (std::size_t i = 0; intact && i < buffer.size(); ++i) {
        intact = buffer[i] ==
                 pattern_byte(peer, static_cast<std::uint64_t>(seq), i);
      }
      if (!intact) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("non-overtaking",
                    "relayed message " + std::to_string(seq) +
                        " arrived out of order or corrupted");
      }
    }
  });
}

// --------------------------------------------------------------- watchdog

/// Watchdog-fires-iff-unreachable: the route from rank 1 to rank 0 is
/// killed, so rank 0's receive from rank 1 MUST time out; the rank 0 <->
/// rank 2 traffic is healthy and MUST NOT be cancelled. Both directions of
/// the iff, in one run.
void run_watchdog(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(3, sim::Protocol::kTcp);
  options.watchdog_horizon_us = 2000.0;
  Session session(std::move(options));
  // Directed kill on node 1's NIC: 1 -> 0 dies at t=0 (the schedule's
  // fault offset may slide it, which is why rank 1 pushes its clock well
  // past any possible slide below).
  install_plan(session, 1, sim::Protocol::kTcp, 0)
      ->kill_at(0.0, /*src=*/1, /*dst=*/0);

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    if (comm.rank() == 1) {
      // Nothing to send: just advance this node's clock beyond the largest
      // possible fault-offset slide so the failure detector's oracle (which
      // reads this node's virtual time) sees the kill as fired.
      comm.compute_us(5000.0);
      return;
    }
    if (comm.rank() == 0) {
      int value = -1;
      const auto status = comm.recv(&value, 1, Datatype::int32(), 1, 0);
      if (status.error != ErrorCode::kTimedOut) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("watchdog-iff-unreachable",
                    "recv from the severed peer returned error " +
                        std::to_string(static_cast<int>(status.error)) +
                        " instead of timing out");
      }
    }
    // Healthy ranks 0 and 2 exchange traffic that must never be cancelled.
    if (comm.rank() == 0 || comm.rank() == 2) {
      const int peer = comm.rank() == 0 ? 2 : 0;
      std::vector<std::uint8_t> out(128, 0x11);
      std::vector<std::uint8_t> in(128);
      for (int round = 0; round < 6; ++round) {
        Status send_status = Status::ok();
        mpi::MpiStatus recv_status;
        if (comm.rank() == 0) {
          send_status = comm.send(out.data(), 128, Datatype::uint8(), peer,
                                  100 + round);
          recv_status = comm.recv(in.data(), 128, Datatype::uint8(), peer,
                                  100 + round);
        } else {
          recv_status = comm.recv(in.data(), 128, Datatype::uint8(), peer,
                                  100 + round);
          send_status = comm.send(out.data(), 128, Datatype::uint8(), peer,
                                  100 + round);
        }
        if (!send_status.is_ok() || recv_status.error != ErrorCode::kOk) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          oracle.fail("watchdog-iff-unreachable",
                      "healthy 0<->2 traffic failed in round " +
                          std::to_string(round) +
                          " — the watchdog cancelled a reachable operation");
        }
      }
    }
  });
  session.finalize();
  if (session.watchdog_cancels() < 1) {
    oracle.fail("watchdog-iff-unreachable",
                "the watchdog never fired although rank 1 was unreachable");
  }
}

// ---------------------------------------------------------------- zerocopy

/// Zero-copy datapath integrity: eager payloads travel as refcounted chunk
/// views of pooled slabs, so the dangerous schedules are the ones where a
/// chunk outlives its producer — a dropped frame retransmitted after the
/// sender's Packing died, or a message parked in the unexpected store long
/// after the wire buffer's other references were released. Mixed sizes
/// straddle the 64 B TCP aggregation threshold so both wire shapes (body
/// inline in the control frame, body as its own data frame) are exercised.
/// Oracle: every payload arrives intact and in order regardless.
void run_zerocopy(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  install_plan(session, 0, sim::Protocol::kTcp, 31)->drop(0.2);
  install_plan(session, 1, sim::Protocol::kTcp, 32)->drop(0.2);

  constexpr int kTrain = 10;
  constexpr int kTag = 4;
  const auto size_of = [](int seq) {
    // 16, 48 ride inline with the header; 256, 768 go as separate frames.
    static constexpr std::size_t kSizes[] = {16, 256, 48, 768};
    return kSizes[seq % 4];
  };

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    const int peer = 1 - comm.rank();
    if (comm.rank() == 0) {
      // Fire the whole train before the peer posts anything: every message
      // must survive in the unexpected store as a parked chunk reference.
      for (int seq = 0; seq < kTrain; ++seq) {
        std::vector<std::uint8_t> payload(size_of(seq));
        for (std::size_t i = 0; i < payload.size(); ++i) {
          payload[i] = pattern_byte(0, static_cast<std::uint64_t>(seq), i);
        }
        comm.send(payload.data(), static_cast<int>(payload.size()),
                  Datatype::uint8(), peer, kTag);
      }
    } else {
      comm.compute_us(3000.0);  // let the train land unexpected
    }
    // Then both directions drain: rank 1 receives the parked train and
    // echoes each payload back on a fresh tag.
    for (int seq = 0; seq < kTrain; ++seq) {
      std::vector<std::uint8_t> buffer(size_of(seq));
      if (comm.rank() == 1) {
        const auto status =
            comm.recv(buffer.data(), static_cast<int>(buffer.size()),
                      Datatype::uint8(), peer, kTag);
        bool intact = status.error == ErrorCode::kOk &&
                      status.bytes == buffer.size();
        for (std::size_t i = 0; intact && i < buffer.size(); ++i) {
          intact = buffer[i] ==
                   pattern_byte(0, static_cast<std::uint64_t>(seq), i);
        }
        if (!intact) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          oracle.fail("chunk-integrity",
                      "parked message " + std::to_string(seq) +
                          " corrupted in the unexpected store");
        }
        comm.send(buffer.data(), static_cast<int>(buffer.size()),
                  Datatype::uint8(), peer, kTag + 1);
      } else {
        const auto status =
            comm.recv(buffer.data(), static_cast<int>(buffer.size()),
                      Datatype::uint8(), peer, kTag + 1);
        bool intact = status.error == ErrorCode::kOk &&
                      status.bytes == buffer.size();
        for (std::size_t i = 0; intact && i < buffer.size(); ++i) {
          intact = buffer[i] ==
                   pattern_byte(0, static_cast<std::uint64_t>(seq), i);
        }
        if (!intact) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          oracle.fail("chunk-integrity",
                      "echo of message " + std::to_string(seq) +
                          " corrupted across retransmissions");
        }
      }
    }
  });
}

// --------------------------------------------------------------------- rma

/// One-sided epoch semantics under frame drops: an access issued outside
/// any epoch must be refused (never transmitted); every put/accumulate
/// issued inside a fence epoch must be visible at the target once the
/// fence returns; data moved under an exclusive lock must be visible after
/// unlock. The per-origin completion ledger has to uphold these through
/// retransmissions and delivery-order perturbation.
void run_rma(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session session(std::move(options));
  install_plan(session, 0, sim::Protocol::kTcp, 41)->drop(0.2);
  install_plan(session, 1, sim::Protocol::kTcp, 42)->drop(0.2);

  constexpr std::size_t kPattern = 64;  // bytes per put payload

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    mpi::Win win = mpi::Win::allocate(comm, 256);

    if (comm.rank() == 0) {
      // No epoch is open yet: the access must be refused locally.
      std::uint8_t probe = 1;
      const Status outside = win.put(&probe, 1, mpi::RmaType::kByte, 1, 0);
      if (outside.is_ok()) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("rma-epoch", "put outside any epoch was accepted");
      }
    }

    win.fence();  // opens the access epoch
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> payload(kPattern);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = pattern_byte(0, 1, i);
      }
      win.put(payload.data(), static_cast<int>(payload.size()),
              mpi::RmaType::kUint8, 1, 0);
      std::int32_t addend = 41;
      win.accumulate(&addend, 1, mpi::RmaType::kInt32, mpi::RmaOp::kSum, 1,
                     128);
      addend = 1;
      win.accumulate(&addend, 1, mpi::RmaType::kInt32, mpi::RmaOp::kSum, 1,
                     128);
    }
    win.fence();  // closes it: everything above is now visible at rank 1
    if (comm.rank() == 1) {
      const std::uint8_t* exposed =
          reinterpret_cast<const std::uint8_t*>(win.base());
      bool intact = true;
      for (std::size_t i = 0; intact && i < kPattern; ++i) {
        intact = exposed[i] == pattern_byte(0, 1, i);
      }
      std::int32_t sum = 0;
      std::memcpy(&sum, win.base() + 128, sizeof sum);
      if (!intact || sum != 42) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("rma-fence-visibility",
                    intact ? "accumulate ledger lost an op (sum " +
                                 std::to_string(sum) + " != 42)"
                           : "put issued before the fence not visible "
                             "after it");
      }
    }

    // Passive target: rank 0 moves a second pattern under an exclusive
    // lock; after unlock() returns the data is visible, and the barrier
    // sequences rank 1's read behind it.
    if (comm.rank() == 0) {
      win.lock(mpi::RmaLockType::kExclusive, 1);
      std::vector<std::uint8_t> payload(kPattern);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = pattern_byte(0, 2, i);
      }
      win.put(payload.data(), static_cast<int>(payload.size()),
              mpi::RmaType::kUint8, 1, kPattern);
      win.unlock(1);
    }
    comm.barrier();
    if (comm.rank() == 1) {
      const std::uint8_t* exposed =
          reinterpret_cast<const std::uint8_t*>(win.base());
      for (std::size_t i = 0; i < kPattern; ++i) {
        if (exposed[kPattern + i] != pattern_byte(0, 2, i)) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          oracle.fail("rma-unlock-visibility",
                      "put issued under the lock not visible after unlock");
          break;
        }
      }
    }
    win.free();
  });
}

// ---------------------------------------------------------- ft_collectives

/// Fault-tolerant collectives under a seed-selected fault flavor: lossy
/// link, directed link kill with a live relay route, or a fully dead rank.
/// Oracle: every live rank returns the SAME error class per collective
/// (uniform agreement), data is correct whenever a collective reports
/// success, survivable faults (drops, a single dead edge) do not fail the
/// custom-tree collectives at all, and even a partitioned rank returns
/// instead of hanging.
void run_ft_collectives(Oracle& oracle) {
  auto* sched = sim::ScheduleController::current();
  const std::uint64_t seed = sched != nullptr ? sched->seed() : 0;
  const int flavor = static_cast<int>(seed % 3);

  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(4, sim::Protocol::kTcp);
  Session session(std::move(options));

  constexpr node_id_t kVictim = 3;
  if (flavor == 0) {
    install_plan(session, 0, sim::Protocol::kTcp, seed + 1)->drop(0.25);
  } else if (flavor == 1) {
    install_plan(session, 0, sim::Protocol::kTcp, 0)
        ->kill_at(0.0, /*src=*/0, /*dst=*/2);
  } else {
    // Kill the victim both ways: outbound rules live on its own NIC,
    // inbound ones on every other node's NIC.
    for (node_id_t node = 0; node < 4; ++node) {
      auto plan = install_plan(session, node, sim::Protocol::kTcp, 0);
      if (node == kVictim) {
        plan->kill_at(0.0);
      } else {
        plan->kill_at(0.0, node, kVictim);
      }
    }
  }

  constexpr int kOps = 3;  // bcast, allreduce, barrier
  std::mutex mutex;
  std::map<int, std::array<ErrorCode, kOps>> codes;
  std::map<int, bool> data_ok;
  session.run([&](Comm comm) {
    mpi::CollectiveConfig config;
    config.fault_tolerant = true;
    comm.set_collective_config(config);

    std::array<ErrorCode, kOps> my{};
    bool ok = true;

    std::vector<int> bcast_buf(256);
    if (comm.rank() == 0) {
      for (int i = 0; i < 256; ++i) bcast_buf[i] = i * 3 + 1;
    }
    my[0] = comm.bcast(bcast_buf.data(), 256, Datatype::int32(), 0).code();
    if (my[0] == ErrorCode::kOk) {
      for (int i = 0; i < 256; ++i) ok = ok && bcast_buf[i] == i * 3 + 1;
    }

    std::vector<int> send(32, comm.rank() + 1);
    std::vector<int> sum(32, 0);
    my[1] = comm.allreduce(send.data(), sum.data(), 32, Datatype::int32(),
                           mpi::Op::sum())
                .code();
    if (my[1] == ErrorCode::kOk) {
      for (int i = 0; i < 32; ++i) ok = ok && sum[i] == 1 + 2 + 3 + 4;
    }

    my[2] = comm.barrier().code();

    std::lock_guard<std::mutex> lock(mutex);
    codes[comm.rank()] = my;
    data_ok[comm.rank()] = ok;
  });

  // session.run() returning at all is the no-hang half of the oracle: a
  // stuck collective would park a rank thread (and the harness) forever.
  const bool rank_dead = flavor == 2;
  for (int op = 0; op < kOps; ++op) {
    const ErrorCode expected = codes[0][op];
    for (int rank = 1; rank < 4; ++rank) {
      // The partitioned rank self-reports kProcFailed; it is the failed
      // process from the group's point of view, not a live participant.
      if (rank_dead && rank == kVictim) continue;
      if (codes[rank][op] != expected) {
        std::ostringstream what;
        what << "non-uniform outcome for op " << op << ": rank 0 got "
             << static_cast<int>(expected) << " but rank " << rank
             << " got " << static_cast<int>(codes[rank][op]) << " (seed "
             << seed << ", flavor " << flavor << ")";
        oracle.fail("ft-uniform-agreement", what.str());
      }
    }
  }
  for (int rank = 0; rank < 4; ++rank) {
    if (!data_ok[rank]) {
      oracle.fail("ft-data", "a collective reported success but delivered "
                             "wrong data on rank " +
                                 std::to_string(rank));
    }
  }
  // Survivability: drops are fully transparent; a single dead edge must
  // not fail the custom-tree collectives (bcast re-routes, allreduce's
  // reduce phase never crosses the dead direction).
  const int survivable_ops = flavor == 0 ? kOps : (flavor == 1 ? 2 : 0);
  for (int rank = 0; rank < 4; ++rank) {
    for (int op = 0; op < survivable_ops; ++op) {
      if (codes[rank][op] != ErrorCode::kOk) {
        std::ostringstream what;
        what << "survivable fault failed op " << op << " on rank " << rank
             << " with code " << static_cast<int>(codes[rank][op])
             << " (seed " << seed << ", flavor " << flavor << ")";
        oracle.fail("ft-survivability", what.str());
      }
    }
  }
}

// ---------------------------------------------------------------- selftest

// --------------------------------------------------------------- scaleout

/// 256 ranks under the sharded fiber engine: every rank streams a numbered
/// message train to its ring neighbour with sizes straddling the
/// eager/rendezvous switch, so the train crosses smp delivery inside nodes
/// and ch_mad at the 8 node boundaries. Oracles: per-stream non-overtaking
/// (the fiber scheduler must preserve MPI ordering however the seed
/// interleaves shard scan origins) and credit conservation over every
/// directed node pair at quiesce.
void run_scaleout(Oracle& oracle) {
  // The engine knob is read per Session::run(): pin the sharded engine for
  // this scenario only, restoring whatever the sweep runner had set.
  struct EngineEnv {
    EngineEnv() {
      if (const char* old = std::getenv("MADMPI_ENGINE")) {
        had = true;
        saved = old;
      }
      ::setenv("MADMPI_ENGINE", "sharded", 1);
    }
    ~EngineEnv() {
      if (had) {
        ::setenv("MADMPI_ENGINE", saved.c_str(), 1);
      } else {
        ::unsetenv("MADMPI_ENGINE");
      }
    }
    std::string saved;
    bool had = false;
  } engine_env;

  Session::Options options;
  options.cluster =
      sim::ClusterSpec::homogeneous(8, sim::Protocol::kTcp, 32);
  options.switch_point_override = 512;  // 64 B eager, 2 KB rendezvous
  Session session(std::move(options));

  constexpr int kTrain = 4;
  constexpr int kTag = 3;
  const auto size_of = [](int seq) {
    return static_cast<std::size_t>(seq % 2 == 0 ? 64 : 2048);
  };

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    const int n = comm.size();
    const int me = comm.rank();
    const int right = (me + 1) % n;
    const int left = (me + n - 1) % n;
    // Post the whole inbound train up front with seq-dependent sizes: if
    // the stream ever overtakes, a 2 KB message lands on a 64 B receive
    // (or the pattern check fails) — either way the oracle trips.
    std::vector<std::vector<std::uint8_t>> inbox(kTrain);
    std::vector<mpi::Request> recvs;
    for (int seq = 0; seq < kTrain; ++seq) {
      inbox[static_cast<std::size_t>(seq)].resize(size_of(seq));
      auto& buffer = inbox[static_cast<std::size_t>(seq)];
      recvs.push_back(comm.irecv(buffer.data(),
                                 static_cast<int>(buffer.size()),
                                 Datatype::uint8(), left, kTag));
    }
    for (int seq = 0; seq < kTrain; ++seq) {
      std::vector<std::uint8_t> payload(size_of(seq));
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = pattern_byte(me, static_cast<std::uint64_t>(seq), i);
      }
      comm.send(payload.data(), static_cast<int>(payload.size()),
                Datatype::uint8(), right, kTag);
    }
    for (int seq = 0; seq < kTrain; ++seq) {
      const auto status = recvs[static_cast<std::size_t>(seq)].wait();
      const auto& buffer = inbox[static_cast<std::size_t>(seq)];
      bool intact = status.error == ErrorCode::kOk &&
                    status.bytes == static_cast<std::uint64_t>(buffer.size());
      for (std::size_t i = 0; intact && i < buffer.size(); ++i) {
        intact = buffer[i] ==
                 pattern_byte(left, static_cast<std::uint64_t>(seq), i);
      }
      if (!intact) {
        std::ostringstream what;
        what << "rank " << me << " seq " << seq << " from " << left
             << ": expected " << buffer.size() << " patterned bytes, got "
             << status.bytes << " (error "
             << static_cast<int>(status.error) << ")";
        std::lock_guard<std::mutex> lock(oracle_mutex);
        oracle.fail("non-overtaking", what.str());
      }
    }
  });

  core::ChMadDevice* device = session.ch_mad();
  if (device == nullptr) {
    oracle.fail("credit-conservation", "no ch_mad device in the session");
    return;
  }
  const std::size_t window = device->credit_window();
  session.finalize();  // join in-flight credit threads before the audit
  for (node_id_t a = 0; a < 8; ++a) {
    for (node_id_t b = 0; b < 8; ++b) {
      if (a == b) continue;
      const std::size_t available = device->credits_available(a, b);
      const std::size_t owed = device->credits_pending_return(b, a);
      if (available + owed != window) {
        std::ostringstream what;
        what << "direction " << static_cast<int>(a) << "->"
             << static_cast<int>(b) << ": available " << available
             << " + owed " << owed << " != window " << window;
        oracle.fail("credit-conservation", what.str());
      }
    }
  }
}

/// Deliberately broken "application": it treats the delivery-order bias of
/// one fixed message identity as an invariant, which half of all seeds
/// violate. Exists to prove the kit END TO END: the sweep must catch it,
/// the recorded seed must replay it, and the shrinker must isolate the
/// delivery-order choice point as the only one that matters.
// ------------------------------------------------------- collectives_hier

/// The hierarchical collective engine under schedule perturbation, on a
/// mixed-endian cluster-of-clusters, with a p2p message train concurrently
/// in flight on the user context. Oracles: (1) bcast/allreduce/ibcast
/// results are bit-for-bit correct on every rank (integer payloads, so
/// tree shape cannot excuse a difference; byte-swap peers must see
/// converted values); (2) the p2p train obeys non-overtaking per
/// (source, tag) even while collective traffic shares the wires —
/// collective traffic lives on the shadow context and must never steal a
/// user match.
void run_collectives_hier(Oracle& oracle) {
  Session::Options options;
  // Two SCI clusters of two dual-rank nodes, TCP interconnect, with one
  // big-endian node in each cluster (heterogeneity management on).
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (int c = 0; c < 2; ++c) {
    sim::NetworkSpec sci;
    sci.protocol = sim::Protocol::kSisci;
    sci.adapter = static_cast<adapter_id_t>(c);
    for (int n = 0; n < 2; ++n) {
      sim::NodeSpec node;
      node.name = "c" + std::to_string(c) + "n" + std::to_string(n);
      node.ranks = 2;
      node.big_endian = (n == 1);
      options.cluster.nodes.push_back(node);
      sci.members.push_back(node.name);
      tcp.members.push_back(node.name);
    }
    options.cluster.networks.push_back(std::move(sci));
  }
  options.cluster.networks.push_back(std::move(tcp));
  options.switch_point_override = 1024;  // train spans eager + rendezvous
  Session session(std::move(options));

  constexpr int kRounds = 3;
  constexpr int kTrain = 6;
  constexpr int kTag = 11;
  constexpr int kCount = 600;
  const auto size_of = [](int seq) {
    return static_cast<std::size_t>(seq % 2 == 0 ? 64 : 4096);
  };

  std::mutex oracle_mutex;
  session.run([&](Comm comm) {
    mpi::CollectiveConfig config;
    config.bcast = mpi::BcastAlgorithm::kHierarchical;
    config.allreduce = mpi::AllreduceAlgorithm::kHierarchical;
    config.barrier = mpi::BarrierAlgorithm::kHierarchical;
    comm.set_collective_config(config);
    const int n = comm.size();
    const int me = comm.rank();
    const int src = (me + n - 1) % n;
    const int dst = (me + 1) % n;

    for (int round = 0; round < kRounds; ++round) {
      const auto root = static_cast<rank_t>((round * 3) % n);

      // Post the whole train's receives up front, in send order.
      std::vector<std::vector<std::uint8_t>> inbox;
      std::vector<mpi::Request> recvs;
      for (int seq = 0; seq < kTrain; ++seq) {
        inbox.emplace_back(size_of(seq));
        auto& buffer = inbox.back();
        recvs.push_back(comm.irecv(buffer.data(),
                                   static_cast<int>(buffer.size()),
                                   Datatype::uint8(), src, kTag));
      }
      std::vector<std::vector<std::uint8_t>> outbox;
      std::vector<mpi::Request> sends;
      for (int seq = 0; seq < kTrain; ++seq) {
        outbox.emplace_back(size_of(seq));
        auto& buffer = outbox.back();
        for (std::size_t i = 0; i < buffer.size(); ++i) {
          buffer[i] = pattern_byte(me, static_cast<std::uint64_t>(seq), i);
        }
        sends.push_back(comm.isend(buffer.data(),
                                   static_cast<int>(buffer.size()),
                                   Datatype::uint8(), dst, kTag));
      }

      // A nonblocking collective rides along with the train...
      std::vector<std::int32_t> istream(257, -1);
      if (me == root) {
        for (int i = 0; i < 257; ++i) istream[i] = round * 1000 + i;
      }
      mpi::Request ibcast_req =
          comm.ibcast(istream.data(), 257, Datatype::int32(), root);

      // ...while blocking hierarchical collectives run on top.
      std::vector<std::int32_t> wave(kCount, -1);
      if (me == root) {
        for (int i = 0; i < kCount; ++i) wave[i] = round * 100000 + i * 3;
      }
      comm.bcast(wave.data(), kCount, Datatype::int32(), root);

      std::vector<std::int64_t> mine(kCount), total(kCount, -1);
      for (int i = 0; i < kCount; ++i) mine[i] = me + i;
      comm.allreduce(mine.data(), total.data(), kCount, Datatype::int64(),
                     mpi::Op::sum());

      const ErrorCode icode = ibcast_req.wait().error;

      for (auto& request : sends) request.wait();
      for (auto& request : recvs) request.wait();

      std::lock_guard<std::mutex> lock(oracle_mutex);
      for (int i = 0; i < kCount; ++i) {
        oracle.expect(wave[i] == round * 100000 + i * 3, "hier-bcast-exact",
                      "rank " + std::to_string(me) + " round " +
                          std::to_string(round) + " element " +
                          std::to_string(i) + " = " + std::to_string(wave[i]));
        const std::int64_t expected =
            static_cast<std::int64_t>(n) * (n - 1) / 2 +
            static_cast<std::int64_t>(n) * i;
        oracle.expect(total[i] == expected, "hier-allreduce-exact",
                      "rank " + std::to_string(me) + " round " +
                          std::to_string(round) + " element " +
                          std::to_string(i) + " = " +
                          std::to_string(total[i]));
        if (!(wave[i] == round * 100000 + i * 3) || total[i] != expected) {
          break;  // one detailed violation per round is enough
        }
      }
      oracle.expect(icode == ErrorCode::kOk, "ibcast-completes",
                    "rank " + std::to_string(me) + " round " +
                        std::to_string(round));
      for (int i = 0; i < 257; ++i) {
        if (istream[i] != round * 1000 + i) {
          oracle.fail("ibcast-exact",
                      "rank " + std::to_string(me) + " round " +
                          std::to_string(round) + " element " +
                          std::to_string(i) + " = " +
                          std::to_string(istream[i]));
          break;
        }
      }
      for (int seq = 0; seq < kTrain; ++seq) {
        const auto& buffer = inbox[static_cast<std::size_t>(seq)];
        bool intact = true;
        for (std::size_t i = 0; i < buffer.size() && intact; ++i) {
          intact = buffer[i] ==
                   pattern_byte(src, static_cast<std::uint64_t>(seq), i);
        }
        oracle.expect(
            intact, "nonovertaking-under-collectives",
            "rank " + std::to_string(me) + " round " + std::to_string(round) +
                " seq " + std::to_string(seq) +
                " corrupted or out of order beside collective traffic");
      }
    }
    comm.barrier();
  });
}

// --------------------------------------------------------------- matching

/// Hub-pattern matcher torture, deadlock-free by construction: every peer
/// streams two interleaved trains to rank 0 — a specific train on kTag
/// (consumed by specific-source receives) and a wild train on kWildTag
/// (consumed by ANY_SOURCE receives) — with sizes straddling the
/// eager/rendezvous switch, followed by a varying-tag tail drained with
/// full ANY_SOURCE/ANY_TAG wildcards. The tag split keeps the wildcard
/// bookkeeping exact under every legal interleaving: with wildcards and
/// specific receives competing for ONE message pool, which source a
/// wildcard happens to match is schedule-dependent, and any skew starves a
/// specific receive — a legal-deadlock landmine, not a matcher bug. Split
/// by tag, the posted queues still mix wildcard and specific entries (the
/// matcher must arbitrate by post seq on every arrival) but the counts
/// balance regardless of arrival order. Oracles: statuses agree with the
/// payload header, each source's seqs climb within each stream
/// (non-overtaking), payload bytes intact, and every train completes.
void run_matching(Oracle& oracle) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::cluster_of_clusters(2, 2);
  options.switch_point_override = 1024;  // 64 B eager, 4 KB rendezvous
  Session session(std::move(options));

  constexpr int kTrain = 8;      // specific-stream length per source
  constexpr int kWildTrain = 4;  // ANY_SOURCE-stream length per source
  constexpr int kTail = 3;       // ANY_SOURCE/ANY_TAG drain per source
  constexpr int kTag = 7;
  constexpr int kWildTag = 9;
  constexpr int kTailTagBase = 100;
  constexpr std::size_t kCapacity = 4096;
  const auto size_of = [](int seq) {
    return static_cast<std::size_t>(seq % 2 == 0 ? 64 : 4096);
  };
  // Streams use disjoint pattern-byte lanes so a cross-matched payload
  // shows up as corruption, not a coincidental pass.
  constexpr int kWildLane = 64;
  constexpr int kTailLane = 128;

  session.run([&](Comm comm) {
    const int n = comm.size();
    const auto send_msg = [&](int seq, int lane, int tag) {
      std::vector<std::uint8_t> payload(size_of(seq));
      payload[0] = static_cast<std::uint8_t>(comm.rank());
      payload[1] = static_cast<std::uint8_t>(seq);
      for (std::size_t i = 2; i < payload.size(); ++i) {
        payload[i] = pattern_byte(comm.rank(), lane + seq, i);
      }
      comm.send(payload.data(), static_cast<int>(payload.size()),
                Datatype::uint8(), 0, tag);
    };
    if (comm.rank() != 0) {
      // Interleave the two trains in one send order so the receiver's
      // per-source FIFO crosses the tag streams, then fire the tail.
      for (int seq = 0; seq < kTrain; ++seq) {
        send_msg(seq, 0, kTag);
        if (seq % 2 == 1) send_msg(seq / 2, kWildLane, kWildTag);
      }
      for (int seq = 0; seq < kTail; ++seq) {
        send_msg(seq, kTailLane, kTailTagBase + seq);
      }
      return;
    }

    const auto check_payload = [&](const std::vector<std::uint8_t>& buffer,
                                   const mpi::MpiStatus& status, int lane,
                                   std::vector<int>& next_seq,
                                   const std::string& stream, int post) {
      const int src = buffer[0];
      const int seq = buffer[1];
      std::ostringstream at;
      at << stream << " post " << post << " src " << src << " seq " << seq;
      oracle.expect(src >= 1 && src < n, "matching-status",
                    at.str() + ": payload names an impossible source");
      if (src < 1 || src >= n) return;
      oracle.expect(status.source == src, "matching-status",
                    at.str() + ": status.source disagrees with payload");
      oracle.expect(status.bytes == size_of(seq), "matching-status",
                    at.str() + ": status.bytes disagrees with send size");
      oracle.expect(seq == next_seq[src], "non-overtaking",
                    at.str() + ": expected seq " +
                        std::to_string(next_seq[src]) +
                        " from this source next");
      next_seq[src] = seq + 1;
      bool intact = true;
      for (std::size_t b = 2; b < size_of(seq); ++b) {
        if (buffer[b] != pattern_byte(src, lane + seq, b)) {
          intact = false;
          break;
        }
      }
      oracle.expect(intact, "payload-integrity",
                    at.str() + ": payload bytes corrupted");
    };

    // Phase 1: wildcard and specific receives interleaved in one post
    // sequence — after every odd round a burst of ANY_SOURCE posts lands
    // between the specific ones, so bucket queues and the wildcard list
    // are nonempty simultaneously and every delivery arbitrates by seq.
    const int total = (n - 1) * (kTrain + kWildTrain);
    std::vector<std::vector<std::uint8_t>> inbox;
    std::vector<mpi::Request> recvs;
    std::vector<bool> wildcard;
    for (int round = 0; round < kTrain; ++round) {
      for (int src = 1; src < n; ++src) {
        inbox.emplace_back(kCapacity);
        recvs.push_back(comm.irecv(inbox.back().data(),
                                   static_cast<int>(kCapacity),
                                   Datatype::uint8(), src, kTag));
        wildcard.push_back(false);
      }
      if (round % 2 == 1) {
        for (int burst = 1; burst < n; ++burst) {
          inbox.emplace_back(kCapacity);
          recvs.push_back(comm.irecv(inbox.back().data(),
                                     static_cast<int>(kCapacity),
                                     Datatype::uint8(), mpi::kAnySource,
                                     kWildTag));
          wildcard.push_back(true);
        }
      }
    }
    std::vector<int> next_seq(n, 0);
    std::vector<int> wild_seq(n, 0);
    for (int i = 0; i < total; ++i) {
      auto status = recvs[i].wait();
      if (wildcard[i]) {
        oracle.expect(status.tag == kWildTag, "matching-status",
                      "wildcard post " + std::to_string(i) +
                          ": status.tag disagrees with the wild train tag");
        check_payload(inbox[i], status, kWildLane, wild_seq, "wildcard", i);
      } else {
        oracle.expect(status.tag == kTag, "matching-status",
                      "specific post " + std::to_string(i) +
                          ": status.tag disagrees with the train tag");
        check_payload(inbox[i], status, 0, next_seq, "specific", i);
      }
    }

    // Phase 2: ANY_SOURCE/ANY_TAG drain of the varying-tag tail. Phase 1
    // consumed tags 7/9 exactly, so only tail messages remain; an
    // all-wildcard drain matches any arrival order — deadlock-free.
    std::vector<int> tail_seq(n, 0);
    for (int i = 0; i < (n - 1) * kTail; ++i) {
      std::vector<std::uint8_t> buffer(kCapacity);
      auto status = comm.recv(buffer.data(), static_cast<int>(kCapacity),
                              Datatype::uint8(), mpi::kAnySource,
                              mpi::kAnyTag);
      oracle.expect(status.tag == kTailTagBase + buffer[1],
                    "matching-status",
                    "tail post " + std::to_string(i) +
                        ": status.tag disagrees with the tail tag scheme");
      check_payload(buffer, status, kTailLane, tail_seq, "tail", i);
    }

    for (int src = 1; src < n; ++src) {
      const std::string who = "source " + std::to_string(src);
      oracle.expect(next_seq[src] == kTrain, "completeness",
                    who + " did not deliver its full specific train");
      oracle.expect(wild_seq[src] == kWildTrain, "completeness",
                    who + " did not deliver its full wild train");
      oracle.expect(tail_seq[src] == kTail, "completeness",
                    who + " did not deliver its full tail train");
    }
  });
}

void run_selftest(Oracle& oracle) {
  auto* sched = sim::ScheduleController::current();
  if (sched == nullptr) return;  // unperturbed runs are fine by definition
  const usec_t bias = sched->delivery_bias_us(/*dst=*/0, /*src=*/1,
                                              /*seq=*/0);
  if (bias > 2.5) {
    std::ostringstream what;
    what << "injected violation: delivery bias " << bias
         << " us for message (dst=0, src=1, seq=0) exceeded the planted "
            "2.5 us invariant (seed "
         << sched->seed() << ")";
    oracle.fail("selftest", what.str());
  }
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = {
      {"nonovertaking",
       "message trains across the eager/rendezvous switch stay in order",
       &run_nonovertaking},
      {"probe",
       "MPI_Probe reports exactly the message the next receive delivers",
       &run_probe},
      {"flowcontrol",
       "credit windows conserve every byte at quiesce, under drops",
       &run_flowcontrol},
      {"faults",
       "a survivable link kill loses no messages (failover to TCP)",
       &run_faults},
      {"forwarding",
       "gateway-relayed trains arrive ordered and intact", &run_forwarding},
      {"watchdog",
       "the watchdog cancels unreachable operations and only those",
       &run_watchdog},
      {"zerocopy",
       "pooled-chunk payloads stay intact across retransmits and the "
       "unexpected store",
       &run_zerocopy},
      {"rma",
       "one-sided epochs: fence/unlock visibility and epoch enforcement "
       "under drops",
       &run_rma},
      {"ft_collectives",
       "fault-tolerant collectives agree uniformly and survive link faults",
       &run_ft_collectives},
      {"scaleout",
       "256-rank trains under the sharded engine stay ordered and conserve "
       "credits",
       &run_scaleout},
      {"matching",
       "wildcard/specific receive interleavings preserve per-source order "
       "and status correctness",
       &run_matching},
      {"collectives_hier",
       "hierarchical collectives stay bit-exact on a mixed-endian "
       "meta-cluster with p2p trains in flight",
       &run_collectives_hier},
      {"selftest",
       "planted violation: proves the sweep catches, replays and shrinks",
       &run_selftest},
  };
  return all;
}

}  // namespace madmpi::conformance
