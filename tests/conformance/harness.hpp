// MPI conformance kit: scenarios, oracles, seed sweeps and mask shrinking.
//
// A *scenario* is a self-contained workload (its own Session, its own
// fault plan) instrumented with *oracles* — MPI-semantics invariants that
// must hold under every legal schedule: non-overtaking per (source, comm,
// tag), matched-probe consistency, credit conservation at quiesce,
// no-message-loss under survivable fault plans, watchdog-fires-iff-
// unreachable. The harness runs a scenario under a ScheduleController
// seeded from the sweep, so each seed explores one deterministic
// interleaving; a failing seed replays bit-identically.
//
// When a seed fails, the harness *shrinks* the perturbation mask: it
// re-runs the same seed with each choice-point bit cleared in turn,
// keeping a bit cleared whenever the failure survives without it. The
// minimal mask names the choice points that actually matter — "this
// breaks under delivery-order perturbation alone" is a diagnosis, a
// 5-bit mask dump is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace madmpi::conformance {

/// One oracle violation: which invariant broke and how.
struct Violation {
  std::string oracle;
  std::string detail;
};

struct ScenarioResult {
  std::vector<Violation> violations;
  bool passed() const { return violations.empty(); }
};

/// Collects violations during a scenario run; passed to the scenario body.
class Oracle {
 public:
  /// Record a violation of `oracle` (e.g. "non-overtaking").
  void fail(const std::string& oracle, const std::string& detail);

  /// expect(cond) sugar: records the violation when `cond` is false.
  void expect(bool cond, const std::string& oracle,
              const std::string& detail);

  ScenarioResult result() && { return std::move(result_); }

 private:
  ScenarioResult result_;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Runs the workload with a ScheduleController(seed, mask) installed
  /// (seed 0 = unperturbed) and reports violations through the oracle.
  void (*run)(Oracle& oracle);
};

/// The scenario registry (faults, flowcontrol, forwarding, watchdog,
/// probe, nonovertaking — plus selftest, which violates its oracle for
/// roughly half of all seeds by design, to prove the kit catches and
/// shrinks real violations).
const std::vector<Scenario>& scenarios();
const Scenario* find_scenario(const std::string& name);

/// Run one scenario under ScheduleController(seed, mask); installs before
/// and uninstalls after, so scenarios compose with plain gtest runs.
ScenarioResult run_scenario(const Scenario& scenario, std::uint64_t seed,
                            std::uint32_t mask);

/// A failing (seed, mask) pair, with the minimal mask that still fails.
struct SweepFailure {
  std::uint64_t seed = 0;
  std::uint32_t mask = 0;
  std::uint32_t shrunk_mask = 0;
  std::vector<Violation> violations;
};

struct SweepReport {
  std::string scenario;
  std::uint64_t seed_base = 0;
  int seeds = 0;
  std::vector<SweepFailure> failures;
  bool passed() const { return failures.empty(); }
};

/// Sweep `seeds` consecutive seeds starting at `seed_base` through the
/// scenario, shrinking every failure. Seed 0 is skipped (it means
/// "perturbation off"), so the sweep uses seed_base+1 .. seed_base+seeds
/// when seed_base is 0.
SweepReport run_sweep(const Scenario& scenario, int seeds,
                      std::uint64_t seed_base, std::uint32_t mask,
                      bool shrink = true);

/// Greedy per-bit shrink: returns the minimal mask (subset of
/// `failing_mask`) under which `seed` still fails the scenario.
std::uint32_t shrink_mask(const Scenario& scenario, std::uint64_t seed,
                          std::uint32_t failing_mask);

/// Render sweep reports as a JSON artifact (the CI nightly uploads this;
/// each failure records the scenario, seed, masks and violations needed
/// to replay it with `madmpi_schedtest --scenario=S --replay=SEED`).
std::string to_json(const std::vector<SweepReport>& reports);

/// How many seeds a sweep runs by default: MADMPI_SCHED_SWEEP, or 32.
int sweep_seed_count();

}  // namespace madmpi::conformance
