#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/sched.hpp"

namespace madmpi::conformance {

void Oracle::fail(const std::string& oracle, const std::string& detail) {
  result_.violations.push_back({oracle, detail});
}

void Oracle::expect(bool cond, const std::string& oracle,
                    const std::string& detail) {
  if (!cond) fail(oracle, detail);
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& scenario : scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

ScenarioResult run_scenario(const Scenario& scenario, std::uint64_t seed,
                            std::uint32_t mask) {
  sim::ScheduleController::install(seed, mask);
  Oracle oracle;
  scenario.run(oracle);
  sim::ScheduleController::uninstall();
  return std::move(oracle).result();
}

SweepReport run_sweep(const Scenario& scenario, int seeds,
                      std::uint64_t seed_base, std::uint32_t mask,
                      bool shrink) {
  SweepReport report;
  report.scenario = scenario.name;
  report.seed_base = seed_base;
  report.seeds = seeds;
  for (int i = 0; i < seeds; ++i) {
    std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    if (seed == 0) seed = seed_base + static_cast<std::uint64_t>(seeds);
    ScenarioResult result = run_scenario(scenario, seed, mask);
    if (result.passed()) continue;
    SweepFailure failure;
    failure.seed = seed;
    failure.mask = mask;
    failure.shrunk_mask =
        shrink ? shrink_mask(scenario, seed, mask) : mask;
    failure.violations = std::move(result.violations);
    report.failures.push_back(std::move(failure));
  }
  return report;
}

std::uint32_t shrink_mask(const Scenario& scenario, std::uint64_t seed,
                          std::uint32_t failing_mask) {
  // Greedy bisection over the choice-point bits: clear one bit at a time
  // and keep it cleared whenever the failure reproduces without it. One
  // pass suffices for a greedy minimum (each kept bit was re-validated
  // against the final state of all earlier bits).
  std::uint32_t mask = failing_mask;
  for (unsigned bit = 0;
       bit < static_cast<unsigned>(sim::SchedChoice::kCount); ++bit) {
    const std::uint32_t candidate = mask & ~(1u << bit);
    if (candidate == mask) continue;  // bit already clear
    if (!run_scenario(scenario, seed, candidate).passed()) {
      mask = candidate;
    }
  }
  return mask;
}

namespace {

void json_escape(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void json_mask(std::ostringstream& out, std::uint32_t mask) {
  out << "[";
  bool first = true;
  for (unsigned bit = 0;
       bit < static_cast<unsigned>(sim::SchedChoice::kCount); ++bit) {
    if ((mask & (1u << bit)) == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << '"'
        << sim::sched_choice_name(static_cast<sim::SchedChoice>(bit))
        << '"';
  }
  out << "]";
}

}  // namespace

std::string to_json(const std::vector<SweepReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"sweeps\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const SweepReport& report = reports[r];
    out << "    {\n      \"scenario\": \"";
    json_escape(out, report.scenario);
    out << "\",\n      \"seed_base\": " << report.seed_base
        << ",\n      \"seeds\": " << report.seeds
        << ",\n      \"passed\": " << (report.passed() ? "true" : "false")
        << ",\n      \"failures\": [";
    for (std::size_t f = 0; f < report.failures.size(); ++f) {
      const SweepFailure& failure = report.failures[f];
      out << (f == 0 ? "\n" : ",\n") << "        {\"seed\": " << failure.seed
          << ", \"mask\": " << failure.mask
          << ", \"shrunk_mask\": " << failure.shrunk_mask
          << ", \"shrunk_choices\": ";
      json_mask(out, failure.shrunk_mask);
      out << ", \"violations\": [";
      for (std::size_t v = 0; v < failure.violations.size(); ++v) {
        if (v != 0) out << ", ";
        out << "{\"oracle\": \"";
        json_escape(out, failure.violations[v].oracle);
        out << "\", \"detail\": \"";
        json_escape(out, failure.violations[v].detail);
        out << "\"}";
      }
      out << "]}";
    }
    out << (report.failures.empty() ? "]" : "\n      ]");
    out << "\n    }" << (r + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int sweep_seed_count() {
  const char* value = std::getenv("MADMPI_SCHED_SWEEP");
  if (value == nullptr || *value == '\0') return 32;
  const int seeds = std::atoi(value);
  return seeds > 0 ? seeds : 32;
}

}  // namespace madmpi::conformance
