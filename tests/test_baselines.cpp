// Baseline native devices: correctness of each comparator implementation
// and the relative-performance claims of the paper's figures.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/native_device.hpp"
#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi {
namespace {

using baselines::NativeDevice;
using core::Session;
using mpi::Comm;
using mpi::Datatype;

std::unique_ptr<Session> baseline_session(const std::string& profile,
                                          sim::Protocol protocol,
                                          int nodes = 2) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(nodes, protocol);
  options.internode_factory =
      [profile](Session& session) -> std::unique_ptr<core::ManagedDevice> {
    return std::make_unique<NativeDevice>(
        baselines::profile_by_name(profile), session.fabric(),
        session.cluster(), session.directory());
  };
  return std::make_unique<Session>(std::move(options));
}

struct BaselineCase {
  const char* profile;
  sim::Protocol protocol;
};

class BaselineCorrectness : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineCorrectness, EagerAndRendezvousRoundTrips) {
  const auto& param = GetParam();
  auto session = baseline_session(param.profile, param.protocol);
  session->run([](Comm comm) {
    const int peer = 1 - comm.rank();
    for (std::size_t bytes : {std::size_t{1}, std::size_t{500},
                              std::size_t{9000}, std::size_t{300000}}) {
      std::vector<std::uint8_t> out(bytes,
                                    static_cast<std::uint8_t>(comm.rank() + 1));
      std::vector<std::uint8_t> in(bytes, 0);
      auto req = comm.irecv(in.data(), static_cast<int>(bytes),
                            Datatype::uint8(), peer, 0);
      comm.send(out.data(), static_cast<int>(bytes), Datatype::uint8(), peer,
                0);
      req.wait();
      for (auto byte : in) {
        ASSERT_EQ(byte, static_cast<std::uint8_t>(peer + 1));
      }
    }
  });
}

TEST_P(BaselineCorrectness, CollectivesRunOverBaselineDevices) {
  const auto& param = GetParam();
  auto session = baseline_session(param.profile, param.protocol, 4);
  session->run([](Comm comm) {
    int mine = comm.rank() + 1;
    int sum = 0;
    comm.allreduce(&mine, &sum, 1, Datatype::int32(), mpi::Op::sum());
    EXPECT_EQ(sum, 10);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, BaselineCorrectness,
    ::testing::Values(BaselineCase{"ch_p4", sim::Protocol::kTcp},
                      BaselineCase{"ScaMPI", sim::Protocol::kSisci},
                      BaselineCase{"SCI-MPICH", sim::Protocol::kSisci},
                      BaselineCase{"MPI-GM", sim::Protocol::kBip},
                      BaselineCase{"MPICH-PM", sim::Protocol::kBip}),
    [](const auto& info) {
      std::string name = info.param.profile;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BaselineProfiles, LookupAndAliases) {
  EXPECT_EQ(baselines::profile_by_name("ch_p4").protocol,
            sim::Protocol::kTcp);
  EXPECT_EQ(baselines::profile_by_name("scampi").name, "ScaMPI");
  EXPECT_EQ(baselines::profile_by_name("ch_smi").name, "SCI-MPICH");
  EXPECT_EQ(baselines::profile_by_name("mpi_gm").name, "MPI-GM");
  EXPECT_EQ(baselines::profile_by_name("mpich_pm").name, "MPICH-PM");
  EXPECT_DEATH(baselines::profile_by_name("open-mpi"), "unknown baseline");
}

// ------------------------------------------------------------------ shapes
//
// The relative claims of Figures 6-8, encoded as regression tests so the
// calibration cannot drift away from the paper's conclusions.

TEST(FigureShapes, Fig6ChMadBeatsChP4AtSmallSizes) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session chmad_session(std::move(chmad));
  auto p4_session = baseline_session("ch_p4", sim::Protocol::kTcp);

  for (std::size_t bytes : {4u, 64u, 256u}) {
    const auto mad = core::mpi_pingpong(chmad_session, bytes);
    const auto p4 = core::mpi_pingpong(*p4_session, bytes);
    EXPECT_LT(mad.one_way_us, p4.one_way_us) << bytes << " bytes";
  }
}

TEST(FigureShapes, Fig6ChP4CeilingVsChMadRendezvous) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kTcp);
  Session chmad_session(std::move(chmad));
  auto p4_session = baseline_session("ch_p4", sim::Protocol::kTcp);

  const auto mad = core::mpi_pingpong(chmad_session, 1u << 20, 1);
  const auto p4 = core::mpi_pingpong(*p4_session, 1u << 20, 1);
  EXPECT_GT(mad.bandwidth_mb_s, 11.0);  // "even exceeds 11 MB/s"
  EXPECT_LT(p4.bandwidth_mb_s, 10.5);   // "ceiling of 10 MB/s"
}

TEST(FigureShapes, Fig7NativeSciPortsWinOnLatency) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session chmad_session(std::move(chmad));
  auto scampi = baseline_session("ScaMPI", sim::Protocol::kSisci);
  auto smi = baseline_session("SCI-MPICH", sim::Protocol::kSisci);

  const auto mad4 = core::mpi_pingpong(chmad_session, 4);
  const auto scampi4 = core::mpi_pingpong(*scampi, 4);
  const auto smi4 = core::mpi_pingpong(*smi, 4);
  // "Latencies comparisons are not favourable to the ch_mad device".
  EXPECT_LT(scampi4.one_way_us, smi4.one_way_us);
  EXPECT_LT(smi4.one_way_us, mad4.one_way_us);
}

TEST(FigureShapes, Fig7ChMadWinsBandwidthBeyond16K) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session chmad_session(std::move(chmad));
  auto scampi = baseline_session("ScaMPI", sim::Protocol::kSisci);
  auto smi = baseline_session("SCI-MPICH", sim::Protocol::kSisci);

  for (std::size_t bytes : {16u << 10, 64u << 10, 1u << 20}) {
    const auto mad = core::mpi_pingpong(chmad_session, bytes, 1);
    EXPECT_GT(mad.bandwidth_mb_s,
              core::mpi_pingpong(*scampi, bytes, 1).bandwidth_mb_s)
        << bytes;
    EXPECT_GT(mad.bandwidth_mb_s,
              core::mpi_pingpong(*smi, bytes, 1).bandwidth_mb_s)
        << bytes;
  }
  // "a sustained bandwidth of 80 MB/s and more" past the switch.
  EXPECT_GT(core::mpi_pingpong(chmad_session, 256u << 10, 1).bandwidth_mb_s,
            80.0);
}

TEST(FigureShapes, Fig8LatencyOrdering) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
  Session chmad_session(std::move(chmad));
  auto gm = baseline_session("MPI-GM", sim::Protocol::kBip);
  auto pm = baseline_session("MPICH-PM", sim::Protocol::kBip);

  // Below 512 B: PM < ch_mad < GM ("ch_mad performs better than MPI-GM and
  // presents a slight gap (5 us) with MPICH-PM").
  for (std::size_t bytes : {4u, 128u, 256u}) {
    const auto mad = core::mpi_pingpong(chmad_session, bytes);
    EXPECT_LT(core::mpi_pingpong(*pm, bytes).one_way_us, mad.one_way_us)
        << bytes;
    EXPECT_LT(mad.one_way_us, core::mpi_pingpong(*gm, bytes).one_way_us)
        << bytes;
  }
  const double gap = core::mpi_pingpong(chmad_session, 4).one_way_us -
                     core::mpi_pingpong(*pm, 4).one_way_us;
  EXPECT_NEAR(gap, 5.0, 2.5);
}

TEST(FigureShapes, Fig8BandwidthClaims) {
  auto chmad = core::Session::Options{};
  chmad.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kBip);
  Session chmad_session(std::move(chmad));
  auto gm = baseline_session("MPI-GM", sim::Protocol::kBip);
  auto pm = baseline_session("MPICH-PM", sim::Protocol::kBip);

  // "MPI-GM is definitely outperformed by both ch_mad and MPICH-PM".
  for (std::size_t bytes : {64u << 10, 1u << 20}) {
    const auto gm_bw = core::mpi_pingpong(*gm, bytes, 1).bandwidth_mb_s;
    EXPECT_GT(core::mpi_pingpong(chmad_session, bytes, 1).bandwidth_mb_s,
              gm_bw * 1.5)
        << bytes;
    EXPECT_GT(core::mpi_pingpong(*pm, bytes, 1).bandwidth_mb_s, gm_bw * 1.5)
        << bytes;
  }
  // "For messages smaller than 4 KB ... MPICH-PM takes the advantage".
  EXPECT_GT(core::mpi_pingpong(*pm, 2048, 1).bandwidth_mb_s,
            core::mpi_pingpong(chmad_session, 2048, 1).bandwidth_mb_s);
  // "... and larger than 256 KB".
  EXPECT_GT(core::mpi_pingpong(*pm, 1u << 20, 1).bandwidth_mb_s,
            core::mpi_pingpong(chmad_session, 1u << 20, 1).bandwidth_mb_s);
}

TEST(FigureShapes, Fig9MultiProtocolOverheadLimited) {
  Session::Options sci_only;
  sci_only.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  Session alone(std::move(sci_only));

  Session::Options dual;
  dual.cluster = sim::ClusterSpec::homogeneous(2, sim::Protocol::kSisci);
  sim::NetworkSpec tcp;
  tcp.protocol = sim::Protocol::kTcp;
  for (const auto& node : dual.cluster.nodes) tcp.members.push_back(node.name);
  dual.cluster.networks.push_back(std::move(tcp));
  Session both(std::move(dual));

  const auto lat_alone = core::mpi_pingpong(alone, 4);
  const auto lat_both = core::mpi_pingpong(both, 4);
  // A visible but bounded penalty (half a TCP select per message).
  EXPECT_GT(lat_both.one_way_us, lat_alone.one_way_us + 2.0);
  EXPECT_LT(lat_both.one_way_us, lat_alone.one_way_us + 15.0);

  // At 1 MB the gap must be nearly gone ("performance ... very close").
  const auto bw_alone = core::mpi_pingpong(alone, 1u << 20, 1);
  const auto bw_both = core::mpi_pingpong(both, 1u << 20, 1);
  EXPECT_GT(bw_both.bandwidth_mb_s, bw_alone.bandwidth_mb_s * 0.97);
}

}  // namespace
}  // namespace madmpi
