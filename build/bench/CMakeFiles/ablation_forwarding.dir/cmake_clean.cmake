file(REMOVE_RECURSE
  "CMakeFiles/ablation_forwarding.dir/ablation_forwarding.cpp.o"
  "CMakeFiles/ablation_forwarding.dir/ablation_forwarding.cpp.o.d"
  "ablation_forwarding"
  "ablation_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
