# Empty dependencies file for ablation_forwarding.
# This may be replaced when dependencies are built.
