file(REMOVE_RECURSE
  "CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o"
  "CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o.d"
  "ablation_collectives"
  "ablation_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
