# Empty dependencies file for ablation_collectives.
# This may be replaced when dependencies are built.
