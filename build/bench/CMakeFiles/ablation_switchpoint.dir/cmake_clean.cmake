file(REMOVE_RECURSE
  "CMakeFiles/ablation_switchpoint.dir/ablation_switchpoint.cpp.o"
  "CMakeFiles/ablation_switchpoint.dir/ablation_switchpoint.cpp.o.d"
  "ablation_switchpoint"
  "ablation_switchpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switchpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
