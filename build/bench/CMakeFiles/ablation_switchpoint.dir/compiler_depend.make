# Empty compiler generated dependencies file for ablation_switchpoint.
# This may be replaced when dependencies are built.
