file(REMOVE_RECURSE
  "CMakeFiles/fig7_sci.dir/fig7_sci.cpp.o"
  "CMakeFiles/fig7_sci.dir/fig7_sci.cpp.o.d"
  "fig7_sci"
  "fig7_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
