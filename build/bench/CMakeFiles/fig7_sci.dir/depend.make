# Empty dependencies file for fig7_sci.
# This may be replaced when dependencies are built.
