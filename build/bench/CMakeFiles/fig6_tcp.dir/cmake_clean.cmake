file(REMOVE_RECURSE
  "CMakeFiles/fig6_tcp.dir/fig6_tcp.cpp.o"
  "CMakeFiles/fig6_tcp.dir/fig6_tcp.cpp.o.d"
  "fig6_tcp"
  "fig6_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
