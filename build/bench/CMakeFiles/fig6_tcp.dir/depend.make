# Empty dependencies file for fig6_tcp.
# This may be replaced when dependencies are built.
