# Empty compiler generated dependencies file for table2_summary.
# This may be replaced when dependencies are built.
