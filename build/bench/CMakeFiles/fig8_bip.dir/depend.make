# Empty dependencies file for fig8_bip.
# This may be replaced when dependencies are built.
