file(REMOVE_RECURSE
  "CMakeFiles/fig8_bip.dir/fig8_bip.cpp.o"
  "CMakeFiles/fig8_bip.dir/fig8_bip.cpp.o.d"
  "fig8_bip"
  "fig8_bip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
