file(REMOVE_RECURSE
  "CMakeFiles/app_stencil.dir/app_stencil.cpp.o"
  "CMakeFiles/app_stencil.dir/app_stencil.cpp.o.d"
  "app_stencil"
  "app_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
