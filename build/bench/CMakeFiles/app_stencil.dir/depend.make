# Empty dependencies file for app_stencil.
# This may be replaced when dependencies are built.
