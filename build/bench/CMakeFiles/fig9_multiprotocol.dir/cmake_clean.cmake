file(REMOVE_RECURSE
  "CMakeFiles/fig9_multiprotocol.dir/fig9_multiprotocol.cpp.o"
  "CMakeFiles/fig9_multiprotocol.dir/fig9_multiprotocol.cpp.o.d"
  "fig9_multiprotocol"
  "fig9_multiprotocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multiprotocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
