# Empty compiler generated dependencies file for fig9_multiprotocol.
# This may be replaced when dependencies are built.
