# Empty dependencies file for table1_raw_protocols.
# This may be replaced when dependencies are built.
