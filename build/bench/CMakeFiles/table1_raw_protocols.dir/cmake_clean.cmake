file(REMOVE_RECURSE
  "CMakeFiles/table1_raw_protocols.dir/table1_raw_protocols.cpp.o"
  "CMakeFiles/table1_raw_protocols.dir/table1_raw_protocols.cpp.o.d"
  "table1_raw_protocols"
  "table1_raw_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_raw_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
