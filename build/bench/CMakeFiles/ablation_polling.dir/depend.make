# Empty dependencies file for ablation_polling.
# This may be replaced when dependencies are built.
