file(REMOVE_RECURSE
  "CMakeFiles/ablation_polling.dir/ablation_polling.cpp.o"
  "CMakeFiles/ablation_polling.dir/ablation_polling.cpp.o.d"
  "ablation_polling"
  "ablation_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
