file(REMOVE_RECURSE
  "CMakeFiles/micro_internals.dir/micro_internals.cpp.o"
  "CMakeFiles/micro_internals.dir/micro_internals.cpp.o.d"
  "micro_internals"
  "micro_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
