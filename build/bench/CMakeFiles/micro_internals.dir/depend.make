# Empty dependencies file for micro_internals.
# This may be replaced when dependencies are built.
