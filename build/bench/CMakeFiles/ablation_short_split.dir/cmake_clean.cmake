file(REMOVE_RECURSE
  "CMakeFiles/ablation_short_split.dir/ablation_short_split.cpp.o"
  "CMakeFiles/ablation_short_split.dir/ablation_short_split.cpp.o.d"
  "ablation_short_split"
  "ablation_short_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_short_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
