# Empty compiler generated dependencies file for ablation_short_split.
# This may be replaced when dependencies are built.
