# Empty dependencies file for trace_timeline.
# This may be replaced when dependencies are built.
