file(REMOVE_RECURSE
  "CMakeFiles/trace_timeline.dir/trace_timeline.cpp.o"
  "CMakeFiles/trace_timeline.dir/trace_timeline.cpp.o.d"
  "trace_timeline"
  "trace_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
