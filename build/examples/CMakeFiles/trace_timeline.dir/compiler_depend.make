# Empty compiler generated dependencies file for trace_timeline.
# This may be replaced when dependencies are built.
