# Empty dependencies file for heterogeneous_stencil.
# This may be replaced when dependencies are built.
