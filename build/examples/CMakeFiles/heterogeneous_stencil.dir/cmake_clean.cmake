file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_stencil.dir/heterogeneous_stencil.cpp.o"
  "CMakeFiles/heterogeneous_stencil.dir/heterogeneous_stencil.cpp.o.d"
  "heterogeneous_stencil"
  "heterogeneous_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
