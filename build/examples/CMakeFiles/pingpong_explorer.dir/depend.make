# Empty dependencies file for pingpong_explorer.
# This may be replaced when dependencies are built.
