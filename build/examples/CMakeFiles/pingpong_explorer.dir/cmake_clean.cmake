file(REMOVE_RECURSE
  "CMakeFiles/pingpong_explorer.dir/pingpong_explorer.cpp.o"
  "CMakeFiles/pingpong_explorer.dir/pingpong_explorer.cpp.o.d"
  "pingpong_explorer"
  "pingpong_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
