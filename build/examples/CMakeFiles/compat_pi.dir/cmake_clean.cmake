file(REMOVE_RECURSE
  "CMakeFiles/compat_pi.dir/compat_pi.cpp.o"
  "CMakeFiles/compat_pi.dir/compat_pi.cpp.o.d"
  "compat_pi"
  "compat_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compat_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
