# Empty dependencies file for compat_pi.
# This may be replaced when dependencies are built.
