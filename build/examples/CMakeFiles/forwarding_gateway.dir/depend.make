# Empty dependencies file for forwarding_gateway.
# This may be replaced when dependencies are built.
