file(REMOVE_RECURSE
  "CMakeFiles/forwarding_gateway.dir/forwarding_gateway.cpp.o"
  "CMakeFiles/forwarding_gateway.dir/forwarding_gateway.cpp.o.d"
  "forwarding_gateway"
  "forwarding_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
