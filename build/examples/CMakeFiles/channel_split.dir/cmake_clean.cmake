file(REMOVE_RECURSE
  "CMakeFiles/channel_split.dir/channel_split.cpp.o"
  "CMakeFiles/channel_split.dir/channel_split.cpp.o.d"
  "channel_split"
  "channel_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
