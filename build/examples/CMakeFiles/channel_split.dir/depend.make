# Empty dependencies file for channel_split.
# This may be replaced when dependencies are built.
