file(REMOVE_RECURSE
  "CMakeFiles/test_collective_algos.dir/test_collective_algos.cpp.o"
  "CMakeFiles/test_collective_algos.dir/test_collective_algos.cpp.o.d"
  "test_collective_algos"
  "test_collective_algos.pdb"
  "test_collective_algos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
