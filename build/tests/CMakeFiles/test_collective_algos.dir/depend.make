# Empty dependencies file for test_collective_algos.
# This may be replaced when dependencies are built.
