file(REMOVE_RECURSE
  "CMakeFiles/test_group.dir/test_group.cpp.o"
  "CMakeFiles/test_group.dir/test_group.cpp.o.d"
  "test_group"
  "test_group.pdb"
  "test_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
