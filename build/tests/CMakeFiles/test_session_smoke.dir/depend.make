# Empty dependencies file for test_session_smoke.
# This may be replaced when dependencies are built.
