file(REMOVE_RECURSE
  "CMakeFiles/test_session_smoke.dir/test_session_smoke.cpp.o"
  "CMakeFiles/test_session_smoke.dir/test_session_smoke.cpp.o.d"
  "test_session_smoke"
  "test_session_smoke.pdb"
  "test_session_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
