# Empty dependencies file for test_heterogeneity.
# This may be replaced when dependencies are built.
