file(REMOVE_RECURSE
  "CMakeFiles/test_heterogeneity.dir/test_heterogeneity.cpp.o"
  "CMakeFiles/test_heterogeneity.dir/test_heterogeneity.cpp.o.d"
  "test_heterogeneity"
  "test_heterogeneity.pdb"
  "test_heterogeneity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
