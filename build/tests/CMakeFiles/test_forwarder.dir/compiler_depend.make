# Empty compiler generated dependencies file for test_forwarder.
# This may be replaced when dependencies are built.
