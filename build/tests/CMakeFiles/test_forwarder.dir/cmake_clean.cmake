file(REMOVE_RECURSE
  "CMakeFiles/test_forwarder.dir/test_forwarder.cpp.o"
  "CMakeFiles/test_forwarder.dir/test_forwarder.cpp.o.d"
  "test_forwarder"
  "test_forwarder.pdb"
  "test_forwarder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
