file(REMOVE_RECURSE
  "CMakeFiles/test_cart.dir/test_cart.cpp.o"
  "CMakeFiles/test_cart.dir/test_cart.cpp.o.d"
  "test_cart"
  "test_cart.pdb"
  "test_cart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
