# Empty dependencies file for test_forwarding_mpi.
# This may be replaced when dependencies are built.
