file(REMOVE_RECURSE
  "CMakeFiles/test_forwarding_mpi.dir/test_forwarding_mpi.cpp.o"
  "CMakeFiles/test_forwarding_mpi.dir/test_forwarding_mpi.cpp.o.d"
  "test_forwarding_mpi"
  "test_forwarding_mpi.pdb"
  "test_forwarding_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forwarding_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
