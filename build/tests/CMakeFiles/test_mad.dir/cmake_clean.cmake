file(REMOVE_RECURSE
  "CMakeFiles/test_mad.dir/test_mad.cpp.o"
  "CMakeFiles/test_mad.dir/test_mad.cpp.o.d"
  "test_mad"
  "test_mad.pdb"
  "test_mad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
