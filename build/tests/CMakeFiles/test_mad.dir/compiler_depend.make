# Empty compiler generated dependencies file for test_mad.
# This may be replaced when dependencies are built.
