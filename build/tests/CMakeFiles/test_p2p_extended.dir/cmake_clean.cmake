file(REMOVE_RECURSE
  "CMakeFiles/test_p2p_extended.dir/test_p2p_extended.cpp.o"
  "CMakeFiles/test_p2p_extended.dir/test_p2p_extended.cpp.o.d"
  "test_p2p_extended"
  "test_p2p_extended.pdb"
  "test_p2p_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2p_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
