# Empty compiler generated dependencies file for test_p2p_extended.
# This may be replaced when dependencies are built.
