file(REMOVE_RECURSE
  "CMakeFiles/test_config_integration.dir/test_config_integration.cpp.o"
  "CMakeFiles/test_config_integration.dir/test_config_integration.cpp.o.d"
  "test_config_integration"
  "test_config_integration.pdb"
  "test_config_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
