# Empty compiler generated dependencies file for test_config_integration.
# This may be replaced when dependencies are built.
