# Empty compiler generated dependencies file for test_op.
# This may be replaced when dependencies are built.
