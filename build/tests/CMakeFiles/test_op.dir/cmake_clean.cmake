file(REMOVE_RECURSE
  "CMakeFiles/test_op.dir/test_op.cpp.o"
  "CMakeFiles/test_op.dir/test_op.cpp.o.d"
  "test_op"
  "test_op.pdb"
  "test_op[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
