file(REMOVE_RECURSE
  "CMakeFiles/test_datatype.dir/test_datatype.cpp.o"
  "CMakeFiles/test_datatype.dir/test_datatype.cpp.o.d"
  "test_datatype"
  "test_datatype.pdb"
  "test_datatype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
