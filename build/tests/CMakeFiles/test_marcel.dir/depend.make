# Empty dependencies file for test_marcel.
# This may be replaced when dependencies are built.
