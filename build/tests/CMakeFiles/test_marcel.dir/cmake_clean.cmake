file(REMOVE_RECURSE
  "CMakeFiles/test_marcel.dir/test_marcel.cpp.o"
  "CMakeFiles/test_marcel.dir/test_marcel.cpp.o.d"
  "test_marcel"
  "test_marcel.pdb"
  "test_marcel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
