# Empty dependencies file for test_collectives_property.
# This may be replaced when dependencies are built.
