file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_property.dir/test_collectives_property.cpp.o"
  "CMakeFiles/test_collectives_property.dir/test_collectives_property.cpp.o.d"
  "test_collectives_property"
  "test_collectives_property.pdb"
  "test_collectives_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
