
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/test_faults.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/test_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/madmpi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/madmpi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/madmpi_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mad/CMakeFiles/madmpi_mad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/madmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/madmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/madmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
