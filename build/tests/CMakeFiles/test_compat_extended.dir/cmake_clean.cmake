file(REMOVE_RECURSE
  "CMakeFiles/test_compat_extended.dir/test_compat_extended.cpp.o"
  "CMakeFiles/test_compat_extended.dir/test_compat_extended.cpp.o.d"
  "test_compat_extended"
  "test_compat_extended.pdb"
  "test_compat_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compat_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
