# Empty dependencies file for test_compat_extended.
# This may be replaced when dependencies are built.
