file(REMOVE_RECURSE
  "CMakeFiles/madmpi_common.dir/log.cpp.o"
  "CMakeFiles/madmpi_common.dir/log.cpp.o.d"
  "CMakeFiles/madmpi_common.dir/stats.cpp.o"
  "CMakeFiles/madmpi_common.dir/stats.cpp.o.d"
  "CMakeFiles/madmpi_common.dir/status.cpp.o"
  "CMakeFiles/madmpi_common.dir/status.cpp.o.d"
  "libmadmpi_common.a"
  "libmadmpi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
