# Empty dependencies file for madmpi_common.
# This may be replaced when dependencies are built.
