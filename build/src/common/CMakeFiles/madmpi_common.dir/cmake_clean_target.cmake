file(REMOVE_RECURSE
  "libmadmpi_common.a"
)
