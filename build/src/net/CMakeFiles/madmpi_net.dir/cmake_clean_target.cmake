file(REMOVE_RECURSE
  "libmadmpi_net.a"
)
