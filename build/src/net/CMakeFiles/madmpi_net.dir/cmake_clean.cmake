file(REMOVE_RECURSE
  "CMakeFiles/madmpi_net.dir/driver_registry.cpp.o"
  "CMakeFiles/madmpi_net.dir/driver_registry.cpp.o.d"
  "CMakeFiles/madmpi_net.dir/transport.cpp.o"
  "CMakeFiles/madmpi_net.dir/transport.cpp.o.d"
  "libmadmpi_net.a"
  "libmadmpi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
