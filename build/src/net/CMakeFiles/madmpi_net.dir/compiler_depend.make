# Empty compiler generated dependencies file for madmpi_net.
# This may be replaced when dependencies are built.
