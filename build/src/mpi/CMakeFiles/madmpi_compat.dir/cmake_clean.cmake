file(REMOVE_RECURSE
  "CMakeFiles/madmpi_compat.dir/compat.cpp.o"
  "CMakeFiles/madmpi_compat.dir/compat.cpp.o.d"
  "libmadmpi_compat.a"
  "libmadmpi_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
