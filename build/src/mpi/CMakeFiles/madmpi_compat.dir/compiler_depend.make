# Empty compiler generated dependencies file for madmpi_compat.
# This may be replaced when dependencies are built.
