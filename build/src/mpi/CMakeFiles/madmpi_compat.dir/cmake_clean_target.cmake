file(REMOVE_RECURSE
  "libmadmpi_compat.a"
)
