# Empty compiler generated dependencies file for madmpi_mpi.
# This may be replaced when dependencies are built.
