
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/cart.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/cart.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/cart.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/group.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/group.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/group.cpp.o.d"
  "/root/repo/src/mpi/matching.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/matching.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/matching.cpp.o.d"
  "/root/repo/src/mpi/op.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/op.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/op.cpp.o.d"
  "/root/repo/src/mpi/request.cpp" "src/mpi/CMakeFiles/madmpi_mpi.dir/request.cpp.o" "gcc" "src/mpi/CMakeFiles/madmpi_mpi.dir/request.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/madmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/madmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
