file(REMOVE_RECURSE
  "CMakeFiles/madmpi_mpi.dir/cart.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/cart.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/collectives.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/comm.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/datatype.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/group.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/group.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/matching.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/matching.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/op.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/op.cpp.o.d"
  "CMakeFiles/madmpi_mpi.dir/request.cpp.o"
  "CMakeFiles/madmpi_mpi.dir/request.cpp.o.d"
  "libmadmpi_mpi.a"
  "libmadmpi_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
