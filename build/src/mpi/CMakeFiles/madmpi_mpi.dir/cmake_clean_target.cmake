file(REMOVE_RECURSE
  "libmadmpi_mpi.a"
)
