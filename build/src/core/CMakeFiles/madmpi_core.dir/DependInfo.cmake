
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ch_mad.cpp" "src/core/CMakeFiles/madmpi_core.dir/ch_mad.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/ch_mad.cpp.o.d"
  "/root/repo/src/core/pingpong.cpp" "src/core/CMakeFiles/madmpi_core.dir/pingpong.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/pingpong.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/madmpi_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/session.cpp.o.d"
  "/root/repo/src/core/smp_plug.cpp" "src/core/CMakeFiles/madmpi_core.dir/smp_plug.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/smp_plug.cpp.o.d"
  "/root/repo/src/core/switchpoint.cpp" "src/core/CMakeFiles/madmpi_core.dir/switchpoint.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/switchpoint.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/madmpi_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/madmpi_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/madmpi_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mad/CMakeFiles/madmpi_mad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/madmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/madmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/madmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
