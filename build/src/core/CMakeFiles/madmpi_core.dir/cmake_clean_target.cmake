file(REMOVE_RECURSE
  "libmadmpi_core.a"
)
