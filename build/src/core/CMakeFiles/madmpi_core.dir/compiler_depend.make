# Empty compiler generated dependencies file for madmpi_core.
# This may be replaced when dependencies are built.
