file(REMOVE_RECURSE
  "CMakeFiles/madmpi_core.dir/ch_mad.cpp.o"
  "CMakeFiles/madmpi_core.dir/ch_mad.cpp.o.d"
  "CMakeFiles/madmpi_core.dir/pingpong.cpp.o"
  "CMakeFiles/madmpi_core.dir/pingpong.cpp.o.d"
  "CMakeFiles/madmpi_core.dir/session.cpp.o"
  "CMakeFiles/madmpi_core.dir/session.cpp.o.d"
  "CMakeFiles/madmpi_core.dir/smp_plug.cpp.o"
  "CMakeFiles/madmpi_core.dir/smp_plug.cpp.o.d"
  "CMakeFiles/madmpi_core.dir/switchpoint.cpp.o"
  "CMakeFiles/madmpi_core.dir/switchpoint.cpp.o.d"
  "CMakeFiles/madmpi_core.dir/tuner.cpp.o"
  "CMakeFiles/madmpi_core.dir/tuner.cpp.o.d"
  "libmadmpi_core.a"
  "libmadmpi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
