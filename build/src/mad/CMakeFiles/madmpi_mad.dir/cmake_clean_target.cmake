file(REMOVE_RECURSE
  "libmadmpi_mad.a"
)
