file(REMOVE_RECURSE
  "CMakeFiles/madmpi_mad.dir/channel.cpp.o"
  "CMakeFiles/madmpi_mad.dir/channel.cpp.o.d"
  "CMakeFiles/madmpi_mad.dir/forwarder.cpp.o"
  "CMakeFiles/madmpi_mad.dir/forwarder.cpp.o.d"
  "CMakeFiles/madmpi_mad.dir/madeleine.cpp.o"
  "CMakeFiles/madmpi_mad.dir/madeleine.cpp.o.d"
  "libmadmpi_mad.a"
  "libmadmpi_mad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_mad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
