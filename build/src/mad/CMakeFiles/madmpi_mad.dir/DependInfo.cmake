
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mad/channel.cpp" "src/mad/CMakeFiles/madmpi_mad.dir/channel.cpp.o" "gcc" "src/mad/CMakeFiles/madmpi_mad.dir/channel.cpp.o.d"
  "/root/repo/src/mad/forwarder.cpp" "src/mad/CMakeFiles/madmpi_mad.dir/forwarder.cpp.o" "gcc" "src/mad/CMakeFiles/madmpi_mad.dir/forwarder.cpp.o.d"
  "/root/repo/src/mad/madeleine.cpp" "src/mad/CMakeFiles/madmpi_mad.dir/madeleine.cpp.o" "gcc" "src/mad/CMakeFiles/madmpi_mad.dir/madeleine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/madmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/madmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/madmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
