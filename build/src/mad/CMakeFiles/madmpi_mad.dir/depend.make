# Empty dependencies file for madmpi_mad.
# This may be replaced when dependencies are built.
