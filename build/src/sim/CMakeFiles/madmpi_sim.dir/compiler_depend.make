# Empty compiler generated dependencies file for madmpi_sim.
# This may be replaced when dependencies are built.
