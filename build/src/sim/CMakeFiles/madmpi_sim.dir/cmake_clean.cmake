file(REMOVE_RECURSE
  "CMakeFiles/madmpi_sim.dir/cost_model.cpp.o"
  "CMakeFiles/madmpi_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/madmpi_sim.dir/fabric.cpp.o"
  "CMakeFiles/madmpi_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/madmpi_sim.dir/fault.cpp.o"
  "CMakeFiles/madmpi_sim.dir/fault.cpp.o.d"
  "CMakeFiles/madmpi_sim.dir/topology.cpp.o"
  "CMakeFiles/madmpi_sim.dir/topology.cpp.o.d"
  "CMakeFiles/madmpi_sim.dir/trace.cpp.o"
  "CMakeFiles/madmpi_sim.dir/trace.cpp.o.d"
  "libmadmpi_sim.a"
  "libmadmpi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
