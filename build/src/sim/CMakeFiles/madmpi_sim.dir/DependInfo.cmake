
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/madmpi_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/madmpi_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/madmpi_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/madmpi_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/madmpi_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/madmpi_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/madmpi_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/madmpi_sim.dir/topology.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/madmpi_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/madmpi_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/madmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
