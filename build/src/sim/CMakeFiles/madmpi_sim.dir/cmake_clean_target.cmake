file(REMOVE_RECURSE
  "libmadmpi_sim.a"
)
