file(REMOVE_RECURSE
  "CMakeFiles/madmpi_baselines.dir/native_device.cpp.o"
  "CMakeFiles/madmpi_baselines.dir/native_device.cpp.o.d"
  "CMakeFiles/madmpi_baselines.dir/profiles.cpp.o"
  "CMakeFiles/madmpi_baselines.dir/profiles.cpp.o.d"
  "libmadmpi_baselines.a"
  "libmadmpi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
