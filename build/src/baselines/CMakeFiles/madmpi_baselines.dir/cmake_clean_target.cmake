file(REMOVE_RECURSE
  "libmadmpi_baselines.a"
)
