# Empty dependencies file for madmpi_baselines.
# This may be replaced when dependencies are built.
