// Native single-protocol MPI devices: the comparators of the paper's
// evaluation (ch_p4, ScaMPI, SCI-MPICH's ch_smi, MPI-GM, MPICH-PM).
//
// These implementations were closed-source or are long unavailable, so we
// rebuild their *architecture*: a device wired directly onto one network
// driver — no Madeleine packing layers, no Marcel polling server, no
// multi-protocol routing — with per-implementation software constants
// calibrated to the published curves. The structural contrast with ch_mad
// (which pays the generic layers but wins on zero-copy rendezvous and
// multi-protocol reach) is therefore real code, not a synthetic curve.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/directory.hpp"
#include "core/managed_device.hpp"
#include "marcel/semaphore.hpp"
#include "net/driver.hpp"
#include "sim/topology.hpp"

namespace madmpi::baselines {

/// Everything that distinguishes one native implementation from another.
struct NativeProfile {
  std::string name;
  sim::Protocol protocol = sim::Protocol::kTcp;

  /// NIC model; defaults to the protocol's calibrated model but may be
  /// tweaked (MPICH-PM ran RWCP's PM firmware, not BIP).
  sim::LinkCostModel nic_model;

  /// Fixed software cost per message on each side (above the driver).
  usec_t sw_send_us = 0.0;
  usec_t sw_recv_us = 0.0;

  /// Non-pipelined extra copies of the implementation's buffering scheme,
  /// charged per payload byte on each side (this is what caps ch_p4 at
  /// ~10 MB/s and ScaMPI at ~65 MB/s).
  double extra_copy_send_per_byte = 0.0;
  double extra_copy_recv_per_byte = 0.0;

  /// Eager/rendezvous switch point; ~infinite when the implementation has
  /// no effective large-message protocol (ch_p4's flat ceiling).
  std::size_t eager_threshold = static_cast<std::size_t>(-1);

  /// Extra fixed cost of one rendezvous handshake.
  usec_t rndv_handshake_us = 0.0;

  /// Whether rendezvous data lands zero-copy in the posted buffer.
  bool rndv_zero_copy = true;

  /// Per-byte cost of the long-message path when rndv_zero_copy is false
  /// (e.g. MPI-GM's staging through GM's registered buffers).
  double extra_copy_rndv_per_byte = 0.0;
};

/// The five published comparators.
NativeProfile ch_p4_profile();      // MPICH ch_p4 over TCP (Fig. 6)
NativeProfile scampi_profile();     // Scali ScaMPI over SCI (Fig. 7)
NativeProfile sci_mpich_profile();  // RWTH SCI-MPICH ch_smi (Fig. 7)
NativeProfile mpi_gm_profile();     // Myricom MPICH-GM (Fig. 8)
NativeProfile mpich_pm_profile();   // RWCP MPICH-PM/SCore (Fig. 8)

NativeProfile profile_by_name(const std::string& name);

class NativeDevice final : public core::ManagedDevice {
 public:
  /// Builds the device's private transport over the first network of
  /// `cluster` matching the profile's protocol, using a dedicated adapter
  /// so its NIC model can differ from the default one.
  NativeDevice(NativeProfile profile, sim::Fabric& fabric,
               const sim::ClusterSpec& cluster,
               core::RankDirectory& directory);
  ~NativeDevice() override;

  const char* name() const override { return profile_.name.c_str(); }
  std::size_t rendezvous_threshold() const override {
    return profile_.eager_threshold;
  }
  bool reaches(rank_t src, rank_t dst) const override;
  Status send(rank_t src, rank_t dst, const mpi::Envelope& env,
              byte_span packed, mpi::TransferMode mode) override;

  void start() override;
  void shutdown() override;

  const NativeProfile& profile() const { return profile_; }

  /// NICs created for baseline transports use this adapter id so they do
  /// not collide with the default channels' NICs.
  static constexpr adapter_id_t kAdapter = 100;

 private:
  struct WireHeader;
  struct PendingSend {
    byte_span data;
    std::unique_ptr<marcel::Semaphore> done;
  };
  struct Rhandle {
    mpi::PostedRecv posted;
  };
  struct NodeState {
    sim::Node* node = nullptr;
    std::thread poller;
    std::mutex mutex;
    std::uint64_t next_handle = 1;
    std::map<std::uint64_t, PendingSend*> pending_sends;
    std::map<std::uint64_t, Rhandle> rhandles;
  };

  void poll_loop(NodeState& state, net::Endpoint& endpoint, int peers);
  void transmit(net::Endpoint& endpoint, node_id_t dst,
                const WireHeader& header, byte_span payload,
                bool zero_copy);
  NodeState& state_of(node_id_t node);

  NativeProfile profile_;
  core::RankDirectory& directory_;
  std::unique_ptr<net::Driver> driver_;
  std::unique_ptr<net::ChannelTransport> transport_;
  std::map<node_id_t, std::unique_ptr<NodeState>> states_;
  bool started_ = false;
};

}  // namespace madmpi::baselines
