#include "baselines/native_device.hpp"

#include <cstring>

#include "common/byte_buffer.hpp"
#include "common/log.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::baselines {

namespace {

enum class WireKind : std::uint8_t {
  kEager = 1,
  kRndvRequest,
  kRndvAck,
  kRndvData,
  kTerm,
};

}  // namespace

/// Fixed-layout wire header prepended to every frame's control payload.
struct NativeDevice::WireHeader {
  WireKind kind = WireKind::kEager;
  rank_t src_global = kInvalidRank;
  rank_t dst_global = kInvalidRank;
  mpi::Envelope envelope;
  std::uint64_t handle = 0;        // rndv: sender pending-send id
  std::uint64_t sync_address = 0;  // rndv: receiver rhandle id
};

NativeDevice::NativeDevice(NativeProfile profile, sim::Fabric& fabric,
                           const sim::ClusterSpec& cluster,
                           core::RankDirectory& directory)
    : profile_(std::move(profile)), directory_(directory) {
  driver_ = net::make_driver(profile_.protocol);

  const sim::NetworkSpec* network = nullptr;
  for (const auto& candidate : cluster.networks) {
    if (candidate.protocol == profile_.protocol) {
      network = &candidate;
      break;
    }
  }
  MADMPI_CHECK_MSG(network != nullptr,
                   "cluster declares no network for the baseline protocol");

  // Install the (possibly tweaked) NIC model on a dedicated adapter, then
  // open the transport over it.
  sim::NetworkSpec own = *network;
  own.adapter = kAdapter;
  for (const auto& member : own.members) {
    const auto node_id = static_cast<node_id_t>(*cluster.node_index(member));
    if (fabric.find_nic(node_id, profile_.protocol, kAdapter) == nullptr) {
      fabric.add_nic(node_id, profile_.nic_model, kAdapter);
    }
  }
  transport_ = driver_->open_channel(fabric, own, cluster,
                                     profile_.name + "-transport");
  for (node_id_t member : transport_->members()) {
    auto state = std::make_unique<NodeState>();
    state->node = &transport_->endpoint(member)->node();
    states_[member] = std::move(state);
  }
}

NativeDevice::~NativeDevice() {
  if (started_) shutdown();
}

NativeDevice::NodeState& NativeDevice::state_of(node_id_t node) {
  auto it = states_.find(node);
  MADMPI_CHECK_MSG(it != states_.end(), "node outside the baseline network");
  return *it->second;
}

bool NativeDevice::reaches(rank_t src, rank_t dst) const {
  sim::Node& a = directory_.node_of(src);
  sim::Node& b = directory_.node_of(dst);
  if (a.id() == b.id()) return false;
  const auto& members = transport_->members();
  return std::find(members.begin(), members.end(), a.id()) != members.end() &&
         std::find(members.begin(), members.end(), b.id()) != members.end();
}

void NativeDevice::transmit(net::Endpoint& endpoint, node_id_t dst,
                            const WireHeader& header, byte_span payload,
                            bool zero_copy) {
  ByteWriter control(sizeof header);
  control.put(header);
  std::vector<net::DataBlock> blocks;
  if (!payload.empty()) {
    net::DataBlock block;
    block.data = payload;
    block.zero_copy = zero_copy;
    blocks.push_back(block);
  }
  endpoint.send_message(dst, control.span(), blocks);
}

Status NativeDevice::send(rank_t src, rank_t dst, const mpi::Envelope& env,
                          byte_span packed, mpi::TransferMode mode) {
  sim::Node& src_node = directory_.node_of(src);
  sim::Node& dst_node = directory_.node_of(dst);
  net::Endpoint* endpoint = transport_->endpoint(src_node.id());
  MADMPI_CHECK(endpoint != nullptr);

  WireHeader header;
  header.src_global = src;
  header.dst_global = dst;
  header.envelope = env;

  // Implementation-specific software cost: fixed part plus any
  // non-pipelined staging copies.
  src_node.clock().advance(profile_.sw_send_us +
                           static_cast<double>(packed.size()) *
                               profile_.extra_copy_send_per_byte);

  if (mode == mpi::TransferMode::kEager) {
    header.kind = WireKind::kEager;
    transmit(*endpoint, dst_node.id(), header, packed, /*zero_copy=*/false);
    return Status::ok();
  }

  NodeState& state = state_of(src_node.id());
  PendingSend pending;
  pending.data = packed;
  pending.done = std::make_unique<marcel::Semaphore>(src_node, 0);
  std::uint64_t handle = 0;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    handle = state.next_handle++;
    state.pending_sends[handle] = &pending;
  }
  header.kind = WireKind::kRndvRequest;
  header.handle = handle;
  transmit(*endpoint, dst_node.id(), header, {}, false);
  pending.done->wait();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.pending_sends.erase(handle);
  }
  return Status::ok();
}

void NativeDevice::start() {
  MADMPI_CHECK(!started_);
  started_ = true;
  for (auto& [node_id, state] : states_) {
    net::Endpoint* endpoint = transport_->endpoint(node_id);
    const int peers = static_cast<int>(transport_->members().size()) - 1;
    NodeState* state_ptr = state.get();
    state->poller = std::thread(
        [this, state_ptr, endpoint, peers] {
          poll_loop(*state_ptr, *endpoint, peers);
        });
  }
}

void NativeDevice::shutdown() {
  if (!started_) return;
  WireHeader term;
  term.kind = WireKind::kTerm;
  for (auto& [node_id, state] : states_) {
    net::Endpoint* endpoint = transport_->endpoint(node_id);
    for (node_id_t peer : transport_->members()) {
      if (peer == node_id) continue;
      transmit(*endpoint, peer, term, {}, false);
    }
  }
  for (auto& [node_id, state] : states_) {
    if (state->poller.joinable()) state->poller.join();
  }
  for (node_id_t member : transport_->members()) {
    transport_->endpoint(member)->close();
  }
  started_ = false;
}

void NativeDevice::poll_loop(NodeState& state, net::Endpoint& endpoint,
                             int peers) {
  int terms_seen = 0;
  while (terms_seen < peers) {
    auto incoming = endpoint.next_message_blocking();
    if (!incoming) return;  // closed underneath us

    WireHeader header;
    ByteReader reader(incoming->control_payload());
    header = reader.get<WireHeader>();
    sim::Node& node = endpoint.node();
    node.clock().advance(profile_.sw_recv_us);

    switch (header.kind) {
      case WireKind::kEager: {
        std::vector<std::byte> bounce(header.envelope.bytes);
        if (!bounce.empty()) {
          sim::Frame frame = incoming->take_data_block();
          MADMPI_CHECK(frame.payload.size() == bounce.size());
          std::memcpy(bounce.data(), frame.payload.data(), bounce.size());
          node.clock().advance(static_cast<double>(bounce.size()) *
                               profile_.extra_copy_recv_per_byte);
        }
        directory_.context_of(header.dst_global)
            .deliver_eager(header.envelope,
                           byte_span{bounce.data(), bounce.size()});
        break;
      }

      case WireKind::kRndvRequest: {
        NodeState* state_ptr = &state;
        net::Endpoint* ep = &endpoint;
        const node_id_t peer = incoming->source();
        directory_.context_of(header.dst_global)
            .deliver_rendezvous(
                header.envelope,
                [this, state_ptr, ep, peer, header](const mpi::Envelope&,
                                                    mpi::PostedRecv posted) {
                  std::uint64_t sync_address = 0;
                  {
                    std::lock_guard<std::mutex> lock(state_ptr->mutex);
                    sync_address = state_ptr->next_handle++;
                    state_ptr->rhandles[sync_address] =
                        Rhandle{std::move(posted)};
                  }
                  WireHeader ack = header;
                  ack.kind = WireKind::kRndvAck;
                  ack.sync_address = sync_address;
                  sim::Node* ack_node = state_ptr->node;
                  const usec_t birth = ack_node->clock().advance(
                      profile_.rndv_handshake_us * 0.5);
                  std::thread([this, ack_node, birth, ep, peer, ack] {
                    ack_node->clock().bind_lane(birth);
                    transmit(*ep, peer, ack, {}, false);
                  }).detach();
                });
        break;
      }

      case WireKind::kRndvAck: {
        PendingSend* pending = nullptr;
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          auto it = state.pending_sends.find(header.handle);
          MADMPI_CHECK(it != state.pending_sends.end());
          pending = it->second;
        }
        const usec_t birth =
            node.clock().advance(profile_.rndv_handshake_us * 0.5);
        sim::Node* data_node = &node;
        const node_id_t peer = incoming->source();
        net::Endpoint* ep = &endpoint;
        WireHeader data = header;
        data.kind = WireKind::kRndvData;
        std::thread([this, data_node, birth, ep, peer, data, pending] {
          data_node->clock().bind_lane(birth);
          transmit(*ep, peer, data, pending->data, profile_.rndv_zero_copy);
          pending->done->signal();
        }).detach();
        break;
      }

      case WireKind::kRndvData: {
        Rhandle rhandle;
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          auto it = state.rhandles.find(header.sync_address);
          MADMPI_CHECK(it != state.rhandles.end());
          rhandle = std::move(it->second);
          state.rhandles.erase(it);
        }
        const mpi::PostedRecv& posted = rhandle.posted;
        const std::uint64_t bytes = header.envelope.bytes;
        // Truncation policy mirrors finish_recv: deliver the prefix that
        // fits, flag MPI_ERR_TRUNCATE on the status.
        const bool truncated = bytes > posted.capacity_bytes;
        const std::uint64_t delivered =
            truncated ? posted.capacity_bytes : bytes;
        if (bytes != 0) {
          sim::Frame frame = incoming->take_data_block();
          MADMPI_CHECK(frame.payload.size() == bytes);
          const std::size_t elem = posted.type.size();
          const int elements =
              static_cast<int>(delivered / (elem ? elem : 1));
          if (header.envelope.sender_big_endian) {
            posted.type.swap_packed_bytes(frame.payload.data(), delivered);
          }
          posted.type.unpack(frame.payload.data(), elements, posted.buffer);
          if (posted.type.is_contiguous() && elem != 0 &&
              delivered % elem != 0) {
            const std::size_t tail = delivered % elem;
            auto* base = static_cast<std::byte*>(posted.buffer);
            std::memcpy(base + static_cast<std::size_t>(elements) * elem,
                        frame.payload.data() + delivered - tail, tail);
          }
          if (!profile_.rndv_zero_copy) {
            node.clock().advance(static_cast<double>(bytes) *
                                 profile_.extra_copy_rndv_per_byte);
          }
        }
        mpi::MpiStatus status;
        status.source = header.envelope.src;
        status.tag = header.envelope.tag;
        status.bytes = delivered;
        if (truncated) status.error = ErrorCode::kTruncated;
        posted.request->complete(status);
        break;
      }

      case WireKind::kTerm:
        ++terms_seen;
        break;
    }
  }
}

}  // namespace madmpi::baselines
