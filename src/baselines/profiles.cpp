// Calibrated profiles of the paper's comparator MPI implementations.
//
// Constants are fitted to the published curves (Figures 6-8): the fixed
// software costs set the small-message latencies, the extra per-byte copy
// costs set the bandwidth plateaus, and the thresholds/handshakes set the
// crossovers. EXPERIMENTS.md records target-vs-measured for each.
#include "baselines/native_device.hpp"

#include "common/status.hpp"

namespace madmpi::baselines {

NativeProfile ch_p4_profile() {
  NativeProfile p;
  p.name = "ch_p4";
  p.protocol = sim::Protocol::kTcp;
  p.nic_model = sim::tcp_fast_ethernet_model();
  // The venerable p4 layer: heavier bookkeeping than ch_mad at small sizes
  // (Fig. 6a: ch_mad wins below 256 B)...
  p.sw_send_us = 18.0;
  p.sw_recv_us = 14.0;
  // ...and a double-buffered receive path that caps bandwidth at ~10 MB/s
  // (Fig. 6b: flat ceiling, no rendezvous recovery).
  p.extra_copy_send_per_byte = 0.0032;
  p.extra_copy_recv_per_byte = 0.0032;
  p.eager_threshold = static_cast<std::size_t>(-1);  // no long-msg protocol
  return p;
}

NativeProfile scampi_profile() {
  NativeProfile p;
  p.name = "ScaMPI";
  p.protocol = sim::Protocol::kSisci;
  p.nic_model = sim::sisci_sci_model();
  // Commercial, hand-tuned directly on the SCI hardware: almost no
  // software above the adapter (Fig. 7a: ~8 us latency).
  p.sw_send_us = 0.3;
  p.sw_recv_us = 0.2;
  // Eager messages land by PIO directly in the mapped segment (no extra
  // copy); the long-message path stages once, capping it near 65 MB/s —
  // which is why ch_mad's zero-copy rendezvous passes it beyond 16 KB
  // (Fig. 7b).
  p.extra_copy_recv_per_byte = 0.0;
  p.eager_threshold = 64 * 1024;
  p.rndv_handshake_us = 10.0;
  p.rndv_zero_copy = false;
  p.extra_copy_rndv_per_byte = 0.0032;
  return p;
}

NativeProfile sci_mpich_profile() {
  NativeProfile p;
  p.name = "SCI-MPICH";
  p.protocol = sim::Protocol::kSisci;
  p.nic_model = sim::sisci_sci_model();
  // ch_smi: research code, a little more overhead than ScaMPI (Fig. 7a)
  // and a heavier copy discipline (Fig. 7b plateau ~55 MB/s).
  p.sw_send_us = 2.5;
  p.sw_recv_us = 2.0;
  p.extra_copy_send_per_byte = 0.0027;
  p.extra_copy_recv_per_byte = 0.0032;
  p.eager_threshold = 32 * 1024;
  p.rndv_handshake_us = 15.0;
  p.rndv_zero_copy = false;
  p.extra_copy_rndv_per_byte = 0.0059;
  return p;
}

NativeProfile mpi_gm_profile() {
  NativeProfile p;
  p.name = "MPI-GM";
  p.protocol = sim::Protocol::kBip;
  // GM 1.2.3 firmware: no BIP-style 1 KB short/long break (this is what
  // lets MPI-GM beat ch_mad between 512 B and 1 KB in Fig. 8a — ch_mad
  // inherits BIP's long-path penalty at exactly 1 KB).
  p.nic_model = sim::bip_myrinet_model();
  p.nic_model.short_message_limit = 4096;
  p.sw_send_us = 3.8;
  p.sw_recv_us = 3.8;
  // Efficient small-message path but a staged long-message protocol
  // through registered buffers: Fig. 8b's ~60 MB/s plateau, "definitely
  // outperformed" by both ch_mad and MPICH-PM.
  p.extra_copy_recv_per_byte = 0.004;
  p.eager_threshold = 8 * 1024;
  p.rndv_handshake_us = 20.0;
  p.rndv_zero_copy = false;
  p.extra_copy_rndv_per_byte = 0.009;
  return p;
}

NativeProfile mpich_pm_profile() {
  NativeProfile p;
  p.name = "MPICH-PM";
  p.protocol = sim::Protocol::kBip;
  // RWCP's PM firmware on the same Myrinet hardware (measured on the RWC
  // PC Cluster II): lower initiation costs and a slightly better-sustained
  // long-message pipeline than BIP.
  p.nic_model = sim::bip_myrinet_model();
  p.nic_model.send_overhead_us = 1.8;
  p.nic_model.recv_overhead_us = 2.0;
  p.nic_model.wire_latency_us = 2.2;
  p.nic_model.per_segment_us = 1.0;
  p.nic_model.bandwidth_bytes_per_us = 150.0;
  p.nic_model.short_message_limit = 4096;
  p.nic_model.long_path_extra_us = 0.0;
  p.sw_send_us = 2.5;
  p.sw_recv_us = 2.0;
  p.extra_copy_send_per_byte = 0.0002;
  p.extra_copy_recv_per_byte = 0.0002;
  // True zero-copy rendezvous (the paper cites it as *the* zero-copy MPI)
  // with a deliberate, relatively costly handshake — best below 4 KB and
  // above 256 KB, level with ch_mad in between (Fig. 8).
  p.eager_threshold = 8 * 1024;
  p.rndv_handshake_us = 45.0;
  p.rndv_zero_copy = true;
  return p;
}

NativeProfile profile_by_name(const std::string& name) {
  if (name == "ch_p4") return ch_p4_profile();
  if (name == "ScaMPI" || name == "scampi") return scampi_profile();
  if (name == "SCI-MPICH" || name == "ch_smi") return sci_mpich_profile();
  if (name == "MPI-GM" || name == "mpi_gm") return mpi_gm_profile();
  if (name == "MPICH-PM" || name == "mpich_pm") return mpich_pm_profile();
  fatal("unknown baseline profile: " + name);
}

}  // namespace madmpi::baselines
