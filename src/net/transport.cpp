#include <algorithm>
#include <thread>

#include "common/datapath_stats.hpp"
#include "common/log.hpp"
#include "net/driver.hpp"
#include "sim/sched.hpp"
#include "sim/trace.hpp"

namespace madmpi::net {

sim::Frame IncomingMessage::take_data_block() {
  auto frame = endpoint_->wait_frame_from(control_.src_node);
  MADMPI_CHECK_MSG(frame.has_value(),
                   "channel closed while a data block was expected");
  MADMPI_CHECK_MSG(frame->kind == kDataFrame || frame->kind == kAbortFrame,
                   "control frame where a data block was expected");
  return std::move(*frame);
}

Endpoint::Endpoint(sim::Node& node, const sim::LinkCostModel& model,
                   sim::Port& port, SlabPool* pool)
    : node_(node),
      model_(model),
      port_(port),
      pool_(pool != nullptr ? pool : &SlabPool::global()) {}

void Endpoint::add_peer(node_id_t peer, sim::WirePath path) {
  std::lock_guard<std::mutex> lock(mutex_);
  paths_.insert_or_assign(peer, path);
}

bool Endpoint::has_peer(node_id_t peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return paths_.count(peer) != 0;
}

Status Endpoint::send_message(node_id_t dst, byte_span control,
                              std::span<const DataBlock> blocks,
                              DeliveryMode mode) {
  // Legacy borrowed-span entry point (baselines, tests): wire frames must
  // own their bytes past this call's return, so stage everything into
  // pooled chunks once and take the zero-copy path from there.
  ChunkList control_chunks;
  if (!control.empty()) control_chunks.push_back(pool_->stage(control));
  std::vector<OutBlock> staged;
  staged.reserve(blocks.size());
  for (const DataBlock& block : blocks) {
    staged.push_back({pool_->stage(block.data), block.zero_copy});
  }
  return send_message(dst, std::move(control_chunks), staged, mode);
}

Status Endpoint::send_message(node_id_t dst, ChunkList control,
                              std::span<const OutBlock> blocks,
                              DeliveryMode mode) {
  sim::WirePath* path = nullptr;
  std::uint32_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = paths_.find(dst);
    MADMPI_CHECK_MSG(it != paths_.end(), "no path to destination node");
    path = &it->second;
    seq = send_seq_[dst]++;
  }
  ++messages_sent_;
  std::uint64_t total = control.size();
  for (const auto& block : blocks) total += block.chunk.size();
  bytes_sent_ += total;

  // Consult the *path's* model, not the endpoint copy: wire paths reference
  // the source NIC's model live, so late-attached fault plans take effect.
  // kRmaDirect is regular traffic for fault purposes — only teardown
  // control is exempt from injection.
  const sim::FaultPlan* plan = mode == DeliveryMode::kTeardown
                                   ? nullptr
                                   : path->model().fault_plan.get();

  // Sender-side fixed software cost; the departure time is taken before any
  // staging copies so those pipeline with the wire (handled in WirePath).
  node_.clock().advance(model_.send_overhead_us);

  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kSend,
             total, sim::protocol_name(model_.protocol));

  // Transmit one frame, retrying lost ones with exponential backoff charged
  // to the virtual clock. Retries stop early once the link is permanently
  // dead (the timeout that *detected* death has already been charged).
  auto deliver = [&](sim::Frame frame,
                     const sim::TransmitHints& hints) -> Status {
    if (plan == nullptr) {
      path->transmit(std::move(frame), hints);
      return Status::ok();
    }
    const sim::RetryPolicy& retry = plan->retry;
    for (int attempt = 0;; ++attempt) {
      if (plan->dead(node_.id(), dst, frame.depart_time)) break;
      frame.attempt = static_cast<std::uint32_t>(attempt);
      if (path->try_transmit(frame, hints).has_value()) {
        return Status::ok();
      }
      ++frames_dropped_;
      degrade_peer(dst, sim::LinkHealth::kDegraded);
      sim::trace(frame.depart_time, node_.id(), sim::TraceCategory::kDrop,
                 frame.payload.size(), sim::protocol_name(model_.protocol));
      if (attempt + 1 >= retry.max_attempts) break;
      node_.clock().advance(retry.delay_for(attempt));
      frame.depart_time = node_.clock().now();
      ++retransmits_;
      sim::trace(frame.depart_time, node_.id(), sim::TraceCategory::kRetry,
                 frame.payload.size(), sim::protocol_name(model_.protocol));
    }
    degrade_peer(dst, sim::LinkHealth::kDead);
    return Status(ErrorCode::kNotConnected,
                  std::string("delivery to node ") + std::to_string(dst) +
                      " failed on " + model_.name());
  };

  sim::Frame ctrl;
  ctrl.src_node = node_.id();
  ctrl.dst_node = dst;
  ctrl.seq = seq;
  ctrl.kind = kControlFrame;
  ctrl.block_index = 0;
  ctrl.last_of_message = blocks.empty();
  ctrl.depart_time = node_.clock().now();
  // Zero-copy hand-off: the frame takes the chunk references; nothing is
  // duplicated here, and a fault-injected retransmission of this frame
  // re-sends the same slab bytes via a refcount bump.
  ctrl.payload = std::move(control);

  sim::TransmitHints ctrl_hints;
  ctrl_hints.copied_send = true;  // control buffer is staged by definition
  ctrl_hints.copied_recv = true;  // and read out of a driver buffer
  Status status = deliver(std::move(ctrl), ctrl_hints);
  if (!status.is_ok()) return status;  // nothing delivered: clean failure

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    sim::Frame data;
    data.src_node = node_.id();
    data.dst_node = dst;
    data.seq = seq;
    data.kind = kDataFrame;
    data.block_index = static_cast<std::uint16_t>(i + 1);
    data.last_of_message = (i + 1 == blocks.size());
    data.depart_time = node_.clock().now();  // back-to-back; link serializes
    data.payload.push_back(blocks[i].chunk);

    sim::TransmitHints hints;
    hints.copied_send = !blocks[i].zero_copy;
    hints.copied_recv = !blocks[i].zero_copy;
    status = deliver(std::move(data), hints);
    if (!status.is_ok()) {
      // The control frame is already on the receiver's side: deliver an
      // abort marker in place of the missing data so the receiver can
      // discard the partial message instead of blocking forever. The
      // marker travels out-of-band (faults would lose it too).
      sim::Frame abort;
      abort.src_node = node_.id();
      abort.dst_node = dst;
      abort.seq = seq;
      abort.kind = kAbortFrame;
      abort.block_index = static_cast<std::uint16_t>(i + 1);
      abort.last_of_message = true;
      abort.depart_time = node_.clock().now();
      path->deliver_direct(std::move(abort));
      return status;
    }
  }
  return Status::ok();
}

sim::LinkHealth Endpoint::peer_health(node_id_t peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = health_.find(peer);
  return it == health_.end() ? sim::LinkHealth::kHealthy : it->second;
}

void Endpoint::degrade_peer(node_id_t peer, sim::LinkHealth health) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = health_.try_emplace(peer, health);
  // Health only worsens: healthy -> degraded -> dead. Monotonicity is what
  // guarantees the failover loop in ch_mad terminates.
  if (!inserted && static_cast<int>(health) > static_cast<int>(it->second)) {
    it->second = health;
  }
}

void Endpoint::pump() {
  while (auto frame = port_.try_take()) {
    per_source_[frame->src_node].push_back(std::move(*frame));
  }
}

bool Endpoint::message_available() {
  std::lock_guard<std::mutex> lock(mutex_);
  pump();
  for (const auto& [src, queue] : per_source_) {
    if (!queue.empty() && queue.front().kind == kControlFrame) return true;
  }
  return false;
}

std::optional<IncomingMessage> Endpoint::poll_message() {
  // The poller's lane before this call marks when its CPU became free
  // (handling work only — waiting for arrivals does not occupy it).
  const usec_t cpu_free = node_.clock().now();

  std::lock_guard<std::mutex> lock(mutex_);
  pump();
  // Handle queued messages in *virtual arrival order*, not real enqueue
  // order: a bulk frame whose arrival lies far in the virtual future must
  // not delay the handling of a control frame that (virtually) arrived
  // long before it.
  // Schedule exploration: bias each candidate's effective arrival time so
  // near-simultaneous arrivals from different sources can be drained in
  // either order. The bias is pure in (seed, dst, src, frame seq) — it
  // perturbs only the *choice*, never the frame's real arrival timestamp.
  auto* sched = sim::ScheduleController::current();
  std::deque<sim::Frame>* best = nullptr;
  usec_t best_key = 0.0;
  for (auto& [src, queue] : per_source_) {
    if (queue.empty() || queue.front().kind != kControlFrame) continue;
    usec_t key = queue.front().arrival_time;
    if (sched != nullptr) {
      key += sched->delivery_bias_us(node_.id(), src, queue.front().seq);
    }
    if (best == nullptr || key < best_key) {
      best = &queue;
      best_key = key;
    }
  }
  if (best == nullptr) return std::nullopt;

  sim::Frame control = std::move(best->front());
  best->pop_front();
  ++messages_received_;
  bytes_received_ += control.payload.size();
  // Handling starts once the frame has arrived AND the CPU is free; a
  // plain monotone sync would wrongly charge time spent merely waiting.
  node_.clock().bind_lane(std::max(control.arrival_time, cpu_free));
  node_.clock().advance(model_.recv_overhead_us);
  sim::trace(control.arrival_time, node_.id(), sim::TraceCategory::kArrive,
             control.payload.size(), sim::protocol_name(model_.protocol));
  return IncomingMessage(this, std::move(control));
}

std::optional<IncomingMessage> Endpoint::next_message_blocking() {
  for (;;) {
    if (auto message = poll_message()) return message;
    // No startable message buffered: block on the port for the next frame,
    // stash it, and retry. The yield narrows the window in which a
    // virtually-earlier frame from another peer is still in flight in real
    // time, keeping arrival-order handling (and thus timing) stable.
    auto frame = port_.take_blocking();
    if (!frame.has_value()) return std::nullopt;  // shut down
    {
      std::lock_guard<std::mutex> lock(mutex_);
      per_source_[frame->src_node].push_back(std::move(*frame));
    }
    std::this_thread::yield();
  }
}

std::optional<sim::Frame> Endpoint::wait_frame_from(node_id_t src) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pump();
      auto& queue = per_source_[src];
      if (!queue.empty()) {
        sim::Frame frame = std::move(queue.front());
        queue.pop_front();
        bytes_received_ += frame.payload.size();
        node_.clock().sync_to(frame.arrival_time);
        return frame;
      }
    }
    auto frame = port_.take_blocking();
    if (!frame.has_value()) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    per_source_[frame->src_node].push_back(std::move(*frame));
  }
}

Endpoint* ChannelTransport::endpoint(node_id_t node) {
  for (auto& ep : endpoints_) {
    if (ep->node_id() == node) return ep.get();
  }
  return nullptr;
}

Endpoint& ChannelTransport::add_endpoint(sim::Node& node,
                                         const sim::LinkCostModel& model,
                                         sim::Port& port) {
  endpoints_.push_back(std::make_unique<Endpoint>(node, model, port, &pool_));
  members_.push_back(node.id());
  return *endpoints_.back();
}

std::unique_ptr<ChannelTransport> Driver::open_channel(
    sim::Fabric& fabric, const sim::NetworkSpec& network,
    const sim::ClusterSpec& cluster, const std::string& channel_name) {
  MADMPI_CHECK_MSG(network.protocol == protocol(),
                   "driver/network protocol mismatch");
  auto transport =
      std::make_unique<ChannelTransport>(protocol(), channel_name);

  struct MemberInfo {
    sim::Nic* nic;
    sim::Port* port;
    Endpoint* endpoint;
  };
  std::vector<MemberInfo> members;

  for (const auto& member : network.members) {
    auto index = cluster.node_index(member);
    MADMPI_CHECK_MSG(index.has_value(), "network member missing from cluster");
    const auto node_id = static_cast<node_id_t>(*index);
    sim::Nic* nic = fabric.find_nic(node_id, protocol(), network.adapter);
    if (nic == nullptr) {
      nic = &fabric.add_nic(node_id, model_, network.adapter);
    }
    sim::Port& port = fabric.make_port(node_id);
    Endpoint& endpoint =
        transport->add_endpoint(fabric.node(node_id), nic->model(), port);
    members.push_back({nic, &port, &endpoint});

    // Wire the new member to the already-created ones (full mesh).
    MemberInfo& self = members.back();
    for (auto& other : members) {
      if (other.endpoint == self.endpoint) continue;
      self.endpoint->add_peer(
          other.nic->node(),
          fabric.make_path(*self.nic, *other.nic, *other.port));
      other.endpoint->add_peer(
          self.nic->node(),
          fabric.make_path(*other.nic, *self.nic, *self.port));
    }
  }
  return transport;
}

}  // namespace madmpi::net
