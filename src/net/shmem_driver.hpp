// Intra-node shared-memory transport (substrate of smp_plug).
#pragma once

#include "net/driver.hpp"

namespace madmpi::net {

/// Processes on the same node exchange data through a shared segment: one
/// copy in, one copy out, no wire. Used by smp_plug and by tests that need
/// a trivial network.
class ShmemDriver final : public Driver {
 public:
  ShmemDriver() : Driver(sim::shmem_model()) {}

  sim::Protocol protocol() const override { return sim::Protocol::kShmem; }

  BlockPlan plan_block(std::size_t size) const override {
    BlockPlan plan;
    plan.aggregate = size <= 512;
    plan.zero_copy = false;
    return plan;
  }

  usec_t poll_cost() const override { return model().poll_us; }

  // Generous aggregation (512 B) means control frames grow with the
  // payload; reserve a full page-sized slab.
  std::size_t slab_reserve() const override { return 4096; }
};

}  // namespace madmpi::net
