// SISCI over SCI (Dolphin D310 boards).
#pragma once

#include "net/driver.hpp"

namespace madmpi::net {

/// SCI exposes remote memory windows: small blocks travel as PIO writes
/// aggregated with the control information; large blocks are DMA'd straight
/// into a posted buffer (zero-copy). Polling a mapped completion word is
/// nearly free, which is why the paper polls SCI much more often than TCP.
class SisciDriver final : public Driver {
 public:
  SisciDriver() : Driver(sim::sisci_sci_model()) {}

  sim::Protocol protocol() const override { return sim::Protocol::kSisci; }

  BlockPlan plan_block(std::size_t size) const override {
    BlockPlan plan;
    plan.aggregate = size <= kPioLimit;
    plan.zero_copy = !plan.aggregate;  // DMA path for separate blocks
    return plan;
  }

  usec_t poll_cost() const override { return model().poll_us; }

  // An exported SCI segment *is* remote memory: one-sided puts are plain
  // PIO store streams into the mapped window.
  bool supports_rma_direct() const override { return true; }

  // PIO aggregation caps the control frame at kPioLimit + headers; big
  // blocks DMA separately, so small slabs suffice for message building.
  std::size_t slab_reserve() const override { return 2048; }

  /// Above this size, DMA setup beats PIO store streams.
  static constexpr std::size_t kPioLimit = 64;
};

}  // namespace madmpi::net
