// Network drivers: the protocol-specific bottom of the Madeleine stack
// (what Madeleine II calls "transfer modules"). A driver knows how to move
// a message — one aggregated control buffer plus optional separate data
// blocks — between two endpoints of the same network, and how to plan the
// transfer of a user block (aggregate-and-copy vs separate frame vs
// zero-copy) for its protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/slab_pool.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/fabric.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"

namespace madmpi::net {

/// Frame kinds used on the wire by all drivers.
enum FrameKind : std::uint16_t {
  kControlFrame = 1,  // aggregated EXPRESS data + small CHEAPER blocks
  kDataFrame = 2,     // one separate CHEAPER block
  kAbortFrame = 3,    // sender gave up mid-message (fault injection)
};

/// Delivery class of an outgoing message.
enum class DeliveryMode {
  /// Regular traffic: subject to fault injection, retransmission, and
  /// failure reporting.
  kNormal,
  /// Out-of-band teardown control (channel termination packets): bypasses
  /// fault injection so shutdown always completes, even over dead links.
  kTeardown,
  /// One-sided data the NIC lands directly in registered window memory
  /// (SISCI remote-mapped PIO, BIP DMA). Transfer mechanics match kNormal
  /// (fault injection included); the mode marks frames whose payload needs
  /// no receive-side bounce, for drivers that honour it.
  kRmaDirect,
};

/// How a driver wants to move one user block.
struct BlockPlan {
  /// Copy the block into the message's control buffer (good for small
  /// blocks: no extra frame).
  bool aggregate = false;
  /// When sent separately, the NIC can deliver into a posted user buffer
  /// without a bounce copy.
  bool zero_copy = false;
};

/// One separate (non-aggregated) block of an outgoing message (legacy
/// borrowed-span form; the zero-copy path uses OutBlock).
struct DataBlock {
  byte_span data;
  bool zero_copy = false;
};

/// One separate block already staged in a pooled chunk: the frame takes
/// the reference, no further copies happen on the send side.
struct OutBlock {
  ChunkRef chunk;
  bool zero_copy = false;
};

class Endpoint;

/// An incoming message being consumed: the control frame plus a stream of
/// separate data frames from the same source, delivered in order.
class IncomingMessage {
 public:
  IncomingMessage(Endpoint* endpoint, sim::Frame control)
      : endpoint_(endpoint), control_(std::move(control)) {}

  node_id_t source() const { return control_.src_node; }
  byte_span control_payload() const { return control_.payload.contiguous(); }
  /// Refcounted view of a control-payload range: lets receivers keep the
  /// wire bytes alive (e.g. in the unexpected store) without copying.
  ChunkRef control_chunk(std::size_t offset, std::size_t length) const {
    return control_.payload.slice(offset, length);
  }
  usec_t control_arrival() const { return control_.arrival_time; }

  /// Blocking: next separate data frame of this message. Protocol error if
  /// the message had no further frames. May return a kAbortFrame when the
  /// sender gave up mid-message (fault injection); callers must check
  /// `frame.kind` before consuming the payload.
  sim::Frame take_data_block();

  bool control_was_last() const { return control_.last_of_message; }

 private:
  Endpoint* endpoint_;
  sim::Frame control_;
};

/// A channel endpoint on one node: the send side towards every peer and the
/// receive queue for the whole channel. Created by ChannelTransport.
class Endpoint {
 public:
  Endpoint(sim::Node& node, const sim::LinkCostModel& model, sim::Port& port,
           SlabPool* pool = nullptr);

  node_id_t node_id() const { return node_.id(); }
  sim::Node& node() { return node_; }
  const sim::LinkCostModel& model() const { return model_; }
  /// The channel's slab pool (global pool when standalone).
  SlabPool& pool() { return *pool_; }

  /// Register the outgoing path to a peer (done by ChannelTransport).
  void add_peer(node_id_t peer, sim::WirePath path);

  bool has_peer(node_id_t peer) const;

  /// Send one message: charges the sender clock with the protocol's send
  /// overhead, transmits the control frame then each separate block on the
  /// same serialized link. `blocks[i].zero_copy` follows the BlockPlan.
  ///
  /// Under an attached FaultPlan, lost frames are retransmitted with
  /// exponential backoff (virtual-clock charged). Returns non-ok when the
  /// peer link is dead or retries are exhausted; if the control frame was
  /// already delivered, the receiver gets a kAbortFrame so it can discard
  /// the partial message instead of blocking forever.
  Status send_message(node_id_t dst, byte_span control,
                      std::span<const DataBlock> blocks,
                      DeliveryMode mode = DeliveryMode::kNormal);

  /// Zero-copy variant: the control chunk list and each staged block move
  /// into the wire frames by reference (no payload copies; retransmission
  /// re-sends the same chunks via refcount bumps). The byte_span overload
  /// above stages into pooled chunks and delegates here.
  Status send_message(node_id_t dst, ChunkList control,
                      std::span<const OutBlock> blocks,
                      DeliveryMode mode = DeliveryMode::kNormal);

  /// Delivery health towards a peer, as observed by this endpoint.
  sim::LinkHealth peer_health(node_id_t peer) const;

  /// Non-blocking: hand over the next fully-startable incoming message
  /// (its control frame has arrived). Synchronizes the node clock with the
  /// frame arrival and charges the receive overhead.
  std::optional<IncomingMessage> poll_message();

  /// Blocking variant; empty when the channel is shut down.
  std::optional<IncomingMessage> next_message_blocking();

  /// True if a control frame is already waiting (cheap check for pollers).
  bool message_available();

  /// Used by IncomingMessage: wait for the next frame from `src`.
  std::optional<sim::Frame> wait_frame_from(node_id_t src);

  /// Traffic counters (introspection, tests, the session stats report).
  /// Atomics: pollers and senders update them concurrently.
  std::uint64_t messages_sent() const { return messages_sent_.load(); }
  std::uint64_t messages_received() const {
    return messages_received_.load();
  }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t bytes_received() const { return bytes_received_.load(); }
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  std::uint64_t retransmits() const { return retransmits_.load(); }

  struct TrafficStats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t retransmits = 0;

    TrafficStats& operator+=(const TrafficStats& other) {
      messages_sent += other.messages_sent;
      messages_received += other.messages_received;
      bytes_sent += other.bytes_sent;
      bytes_received += other.bytes_received;
      frames_dropped += other.frames_dropped;
      retransmits += other.retransmits;
      return *this;
    }
  };
  TrafficStats stats() const {
    return {messages_sent(),  messages_received(), bytes_sent(),
            bytes_received(), frames_dropped(),    retransmits()};
  }

  /// Shut down the receive side: blocked waits wake and observe EOF.
  void close() { port_.close(); }

 private:
  void pump();  // drain the port into per-source queues (mutex held)
  void degrade_peer(node_id_t peer, sim::LinkHealth health);

  sim::Node& node_;
  const sim::LinkCostModel model_;
  sim::Port& port_;
  SlabPool* pool_;

  mutable std::mutex mutex_;
  std::map<node_id_t, sim::WirePath> paths_;
  std::map<node_id_t, std::deque<sim::Frame>> per_source_;
  std::map<node_id_t, std::uint32_t> send_seq_;
  std::map<node_id_t, sim::LinkHealth> health_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> retransmits_{0};
};

/// The transport of one Madeleine channel: one endpoint per member node,
/// full-mesh wire paths among them.
class ChannelTransport {
 public:
  ChannelTransport(sim::Protocol protocol, std::string name)
      : protocol_(protocol), name_(std::move(name)) {}

  sim::Protocol protocol() const { return protocol_; }
  const std::string& name() const { return name_; }

  /// Per-channel slab pool: every endpoint of the channel stages and
  /// receives through it, so a steady-state ping-pong recycles the same
  /// few slabs.
  SlabPool& pool() { return pool_; }

  /// Endpoint hosted on `node`; null when the node is not a member.
  Endpoint* endpoint(node_id_t node);

  const std::vector<node_id_t>& members() const { return members_; }

  /// Builder API used by drivers.
  Endpoint& add_endpoint(sim::Node& node, const sim::LinkCostModel& model,
                         sim::Port& port);

 private:
  sim::Protocol protocol_;
  std::string name_;
  SlabPool pool_;
  std::vector<node_id_t> members_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// Abstract protocol driver.
class Driver {
 public:
  virtual ~Driver() = default;

  virtual sim::Protocol protocol() const = 0;

  /// Transfer policy for one user block of `size` bytes.
  virtual BlockPlan plan_block(std::size_t size) const = 0;

  /// Cost of one unsuccessful poll (exposed for the poll server).
  virtual usec_t poll_cost() const = 0;

  /// True when the NIC can land one-sided data directly in a registered
  /// remote-memory window (DeliveryMode::kRmaDirect): SISCI's mapped
  /// segments and BIP's DMA qualify; kernel sockets do not.
  virtual bool supports_rma_direct() const { return false; }

  /// Slab bytes a message builder should reserve up front so a typical
  /// control frame (header + aggregated blocks) never regrows: protocols
  /// with small aggregation limits get away with smaller slabs.
  virtual std::size_t slab_reserve() const { return 4096; }

  /// Instantiate the transport of a channel over `network`: creates NICs'
  /// ports and the full mesh of wire paths.
  std::unique_ptr<ChannelTransport> open_channel(
      sim::Fabric& fabric, const sim::NetworkSpec& network,
      const sim::ClusterSpec& cluster, const std::string& channel_name);

 protected:
  explicit Driver(sim::LinkCostModel model) : model_(model) {}
  const sim::LinkCostModel& model() const { return model_; }

 private:
  sim::LinkCostModel model_;
};

/// Concrete drivers (policies calibrated per protocol).
std::unique_ptr<Driver> make_driver(sim::Protocol protocol);

}  // namespace madmpi::net
