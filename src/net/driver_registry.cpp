#include "net/bip_driver.hpp"
#include "net/driver.hpp"
#include "net/shmem_driver.hpp"
#include "net/sisci_driver.hpp"
#include "net/tcp_driver.hpp"

namespace madmpi::net {

std::unique_ptr<Driver> make_driver(sim::Protocol protocol) {
  switch (protocol) {
    case sim::Protocol::kTcp: return std::make_unique<TcpDriver>();
    case sim::Protocol::kSisci: return std::make_unique<SisciDriver>();
    case sim::Protocol::kBip: return std::make_unique<BipDriver>();
    case sim::Protocol::kShmem: return std::make_unique<ShmemDriver>();
  }
  fatal("unknown protocol in make_driver");
}

}  // namespace madmpi::net
