// TCP over Fast-Ethernet (the ch_p4-era commodity transport).
#pragma once

#include "net/driver.hpp"

namespace madmpi::net {

/// Kernel-socket semantics: every payload crosses the kernel boundary with a
/// copy, there is no zero-copy receive, and polling means an expensive
/// select() call. Small blocks are aggregated into the control frame to
/// save write() rounds.
class TcpDriver final : public Driver {
 public:
  TcpDriver() : Driver(sim::tcp_fast_ethernet_model()) {}

  sim::Protocol protocol() const override { return sim::Protocol::kTcp; }

  BlockPlan plan_block(std::size_t size) const override {
    BlockPlan plan;
    // Aggregating costs a memcpy but saves a write()/read() round. Above
    // the limit a separate write lets the payload pipeline with the
    // receiver's handling instead of stretching the control frame.
    plan.aggregate = size <= kAggregateLimit;
    plan.zero_copy = false;  // sockets always bounce through the kernel
    return plan;
  }

  usec_t poll_cost() const override { return model().poll_us; }

  // Control frames stay tiny (64 B aggregation limit), but eager bodies up
  // to the rendezvous threshold stage through the same pool classes.
  std::size_t slab_reserve() const override { return 4096; }

  static constexpr std::size_t kAggregateLimit = 64;
};

}  // namespace madmpi::net
