// BIP over Myrinet (LANai 4.x firmware).
#pragma once

#include "net/driver.hpp"

namespace madmpi::net {

/// BIP's short messages ride a preallocated receive queue (bounce copy,
/// but a single descriptor); long messages require a posted receive and are
/// delivered zero-copy. The fixed extra cost of the long path is what
/// produces the 1 KB notch visible in the paper's Figure 8b.
class BipDriver final : public Driver {
 public:
  BipDriver() : Driver(sim::bip_myrinet_model()) {}

  sim::Protocol protocol() const override { return sim::Protocol::kBip; }

  BlockPlan plan_block(std::size_t size) const override {
    BlockPlan plan;
    plan.aggregate = size <= kInlineLimit;
    plan.zero_copy = !plan.aggregate;
    return plan;
  }

  usec_t poll_cost() const override { return model().poll_us; }

  // The LANai DMAs long payloads into registered buffers; one-sided data
  // rides the same engine straight into the window.
  bool supports_rma_direct() const override { return true; }

  // Short messages ride the preallocated receive queue; the control slab
  // only ever holds kInlineLimit bytes plus headers.
  std::size_t slab_reserve() const override { return 2048; }

  static constexpr std::size_t kInlineLimit = 64;
};

}  // namespace madmpi::net
