#include "core/pingpong.hpp"

#include <thread>
#include <vector>

#include "mpi/comm.hpp"

namespace madmpi::core {

PingPongResult mpi_pingpong(Session& session, std::size_t bytes, int reps) {
  MADMPI_CHECK(session.world_size() >= 2);
  MADMPI_CHECK(reps >= 1);

  usec_t elapsed = 0.0;
  session.run([&](mpi::Comm comm) {
    if (comm.rank() > 1) return;
    std::vector<std::byte> buffer(bytes, std::byte{0x5a});
    const auto count = static_cast<int>(bytes);
    const auto type = mpi::Datatype::byte();

    // One untimed warm-up round trip settles first-use effects.
    if (comm.rank() == 0) {
      comm.send(buffer.data(), count, type, 1, 0);
      comm.recv(buffer.data(), count, type, 1, 0);
    } else {
      comm.recv(buffer.data(), count, type, 0, 0);
      comm.send(buffer.data(), count, type, 0, 0);
    }

    const usec_t start = comm.wtime_us();
    for (int r = 0; r < reps; ++r) {
      if (comm.rank() == 0) {
        comm.send(buffer.data(), count, type, 1, 0);
        comm.recv(buffer.data(), count, type, 1, 0);
      } else {
        comm.recv(buffer.data(), count, type, 0, 0);
        comm.send(buffer.data(), count, type, 0, 0);
      }
    }
    if (comm.rank() == 0) elapsed = comm.wtime_us() - start;
  });

  PingPongResult result;
  result.one_way_us = elapsed / (2.0 * reps);
  result.bandwidth_mb_s = bandwidth_mb_s(bytes, result.one_way_us);
  return result;
}

PingPongResult raw_madeleine_pingpong(mad::Channel& channel, node_id_t a,
                                      node_id_t b, std::size_t bytes,
                                      int reps) {
  mad::ChannelEndpoint* side_a = channel.at(a);
  mad::ChannelEndpoint* side_b = channel.at(b);
  MADMPI_CHECK(side_a != nullptr && side_b != nullptr);

  std::vector<std::byte> buf_a(bytes, std::byte{0x11});
  std::vector<std::byte> buf_b(bytes);

  auto ping = [&](mad::ChannelEndpoint& self, node_id_t peer,
                  std::vector<std::byte>& buffer) {
    mad::Packing packing = self.begin_packing(peer);
    if (!buffer.empty()) {
      packing.pack(buffer.data(), buffer.size(), mad::SendMode::kCheaper,
                   mad::RecvMode::kCheaper);
    }
    packing.end_packing();
  };
  auto pong = [&](mad::ChannelEndpoint& self, std::vector<std::byte>& buffer) {
    auto incoming = self.begin_unpacking();
    MADMPI_CHECK(incoming.has_value());
    if (!buffer.empty()) {
      incoming->unpack(buffer.data(), buffer.size(), mad::SendMode::kCheaper,
                       mad::RecvMode::kCheaper);
    }
    incoming->end_unpacking();
  };

  usec_t elapsed = 0.0;
  std::thread peer([&] {
    for (int r = 0; r < reps + 1; ++r) {  // +1 warm-up
      pong(*side_b, buf_b);
      ping(*side_b, a, buf_b);
    }
  });

  // Warm-up round trip.
  ping(*side_a, b, buf_a);
  pong(*side_a, buf_a);

  const usec_t start = side_a->node().clock().now();
  for (int r = 0; r < reps; ++r) {
    ping(*side_a, b, buf_a);
    pong(*side_a, buf_a);
  }
  elapsed = side_a->node().clock().now() - start;
  peer.join();

  PingPongResult result;
  result.one_way_us = elapsed / (2.0 * reps);
  result.bandwidth_mb_s = bandwidth_mb_s(bytes, result.one_way_us);
  return result;
}

}  // namespace madmpi::core
