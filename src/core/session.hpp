// The MPICH/Madeleine session: builds the simulated cluster, Madeleine and
// its channels, the three concurrent devices (ch_self, smp_plug, ch_mad),
// hosts the rank threads, and implements the runtime services of the
// generic MPI layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "core/ch_mad.hpp"
#include "core/ch_self.hpp"
#include "core/directory.hpp"
#include "core/managed_device.hpp"
#include "core/smp_plug.hpp"
#include "core/watchdog.hpp"
#include "mad/madeleine.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"

namespace madmpi::core {

class Session final : public mpi::Runtime {
 public:
  struct Options {
    sim::ClusterSpec cluster;

    /// Ablation hook forwarded to ch_mad.
    std::optional<std::size_t> switch_point_override;

    /// Enable gateway forwarding: nodes without a common network reach
    /// each other through intermediate nodes over dedicated forwarding
    /// channels (the paper's §6 future-work mechanism).
    bool enable_forwarding = false;

    /// Replace the inter-node device (used by the baseline benchmarks).
    /// When empty, the default ch_mad over one channel per declared
    /// network is built.
    std::function<std::unique_ptr<ManagedDevice>(Session&)>
        internode_factory;

    // --- robustness knobs (each overridable by environment) -----------

    /// Per-peer eager credit window in bytes, forwarded to ch_mad.
    /// 0 derives the window from the elected switch point; SIZE_MAX
    /// disables credit flow control. Env: MADMPI_CREDIT_WINDOW.
    std::size_t credit_window_bytes = 0;

    /// What a dry sender does: demote to rendezvous (default) or block
    /// in virtual time until credits return.
    /// Env: MADMPI_CREDIT_POLICY=demote|block.
    ChMadDevice::CreditPolicy credit_policy = ChMadDevice::CreditPolicy::kDemote;

    /// Per-rank unexpected-store budget in bytes; eager messages that
    /// would overflow it are refused at the ADI and retried as
    /// rendezvous. 0 means unlimited. Env: MADMPI_UNEXPECTED_BUDGET.
    std::size_t unexpected_budget_bytes = 8 * 1024 * 1024;

    /// Progress-watchdog horizon in virtual microseconds: an operation
    /// whose peer is unreachable is cancelled (ErrorCode::kTimedOut) and
    /// stamped at its start time plus this horizon. 0 disables the
    /// watchdog. Env: MADMPI_WATCHDOG_HORIZON_US.
    usec_t watchdog_horizon_us = 10000.0;

    /// One-sided delivery: when true (default), RMA packets travel
    /// DeliveryMode::kRmaDirect on channels whose driver supports it
    /// (SISCI mapped PIO, BIP DMA); false forces the two-sided emulation
    /// path everywhere. Env: MADMPI_RMA_DIRECT=0|1.
    bool rma_direct = true;

    /// Upper bound for a single one-sided payload in bytes; ops beyond it
    /// fail with kResourceLimit. 0 means unlimited.
    /// Env: MADMPI_RMA_PUT_LIMIT.
    std::size_t rma_put_limit_bytes = 0;
  };

  explicit Session(Options options);
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- mpi::Runtime -----------------------------------------------------
  int world_size() const override { return directory_.size(); }
  sim::Node& node_of(rank_t global) override {
    return directory_.node_of(global);
  }
  mpi::RankContext& context_of(rank_t global) override {
    return directory_.context_of(global);
  }
  mpi::Device& device_for(rank_t src, rank_t dst) override;
  int derive_context_id(int parent_context, std::int64_t key) override;
  /// Failure detector for the FT collectives: directional route health
  /// between the hosting nodes (same-node peers share memory and never
  /// fail independently here).
  bool peer_unreachable(rank_t from_global, rank_t to_global) override;
  /// Link digest for the hierarchical collective engine: same-node peers
  /// get the shared-memory class; inter-node pairs are classed by the
  /// router's elected protocol, with the NIC-offload capability and cost
  /// parameters copied from that protocol's cost model.
  mpi::CollLink coll_link(rank_t a_global, rank_t b_global) override;

  // --- execution ----------------------------------------------------------
  /// Run `rank_main` once per rank, each on its own thread bound to its
  /// node. Returns when every rank returned. May be called repeatedly.
  void run(const std::function<void(mpi::Comm)>& rank_main);

  /// World communicator handle for one rank (for driving ranks manually).
  mpi::Comm comm_world(rank_t rank) {
    return mpi::Comm::world(this, rank, /*world_context=*/0);
  }

  /// Stop polling threads and close channels. Implicit in the destructor.
  void finalize();

  // --- introspection --------------------------------------------------------
  sim::Fabric& fabric() { return fabric_; }
  mad::Madeleine& madeleine() { return *madeleine_; }
  RankDirectory& directory() { return directory_; }
  const sim::ClusterSpec& cluster() const { return madeleine_->cluster(); }

  /// The ch_mad device, or nullptr when a custom inter-node device is
  /// installed.
  ChMadDevice* ch_mad();
  ManagedDevice& internode_device() { return *internode_; }

  /// Reset every node clock to zero (benchmark warm-up isolation).
  void reset_clocks();

  /// True when every channel between the two nodes is dead in the
  /// from->to direction — by observed link health or by the fault-plan
  /// oracle at the from-node's current virtual time. With forwarding
  /// enabled a live two-hop relay keeps the route alive. The progress
  /// watchdog's failure detector.
  bool route_dead(node_id_t from, node_id_t to);

  /// Operations the watchdog has cancelled so far (receives, rendezvous
  /// handshakes, probes are not counted — they re-check the detector
  /// themselves).
  std::uint64_t watchdog_cancels() const {
    return watchdog_cancels_.load(std::memory_order_relaxed);
  }

  /// Digest of every node clock's live lanes (VirtualClock::lanes()). The
  /// watchdog skips its sweep on ticks where this moved — some thread
  /// advanced virtual time, so nothing is stalled. Exposed for tests and
  /// external harnesses.
  std::uint64_t progress_fingerprint();

  /// The watchdog thread, or nullptr when no watchdog is configured
  /// (introspection: tests assert on sweeps_skipped()).
  ProgressWatchdog* watchdog() { return watchdog_.get(); }

  /// Open an extra channel on the `index`-th declared network, private to
  /// the caller (no ch_mad poller attached). Raw-Madeleine benchmarks use
  /// this: channel isolation keeps their traffic away from the device.
  mad::Channel& open_raw_channel(std::size_t network_index = 0,
                                 const std::string& name = "raw");

  /// Print a per-channel traffic report (messages/bytes, plus ch_mad's
  /// eager/rendezvous/forwarded counters) to `out`.
  void print_stats(std::FILE* out = stdout);

  /// Consecutive stalled watchdog sweeps (global progress fingerprint
  /// unchanged) before deadline-carrying FT receives are cancelled. The
  /// deadline is a safety valve for fault schedules the reachability
  /// oracle cannot prove dead (e.g. a peer that skipped its send during
  /// an outage window that later healed); gating it on a long observed
  /// stall keeps transient wall-clock hiccups from cancelling healthy
  /// operations.
  static constexpr int kFtStallSweeps = 48;

 private:
  enum class RouteState { kAlive, kDead, kNoChannel };

  /// Check a single node pair for a live direct channel (route_dead's
  /// one-hop primitive).
  RouteState direct_route_state(node_id_t from, node_id_t to);

  sim::Fabric fabric_;
  std::unique_ptr<mad::Madeleine> madeleine_;
  RankDirectory directory_;

  std::unique_ptr<ChSelfDevice> ch_self_;
  std::unique_ptr<SmpPlugDevice> smp_plug_;
  std::unique_ptr<ManagedDevice> internode_;
  std::unique_ptr<ProgressWatchdog> watchdog_;
  std::atomic<std::uint64_t> watchdog_cancels_{0};
  usec_t watchdog_horizon_us_ = 0.0;
  bool forwarding_enabled_ = false;

  std::mutex context_mutex_;
  std::map<std::pair<int, std::int64_t>, int> derived_contexts_;
  int next_context_ = 2;  // 0/1 belong to the world communicator

  // MADMPI_COLL_TUNE runs the collective auto-tuner ahead of the first
  // run()'s rank_main, once per session.
  bool coll_tuned_ = false;

  bool finalized_ = false;
};

}  // namespace madmpi::core
