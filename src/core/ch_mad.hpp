// The ch_mad device: inter-node communication over Madeleine (paper §4).
//
// One device handles every network simultaneously: each message picks the
// best common channel to its destination (ChannelRouter), is built as one
// Madeleine message — an EXPRESS header packet plus, for data-bearing
// types, a CHEAPER body packet — and is received by one persistent polling
// thread per channel (Marcel poll server). Two transfer modes, selected by
// the single elected switch point:
//
//   eager       MAD_SHORT_PKT; intermediary copy on the receiving side.
//   rendezvous  MAD_REQUEST_PKT -> MAD_SENDOK_PKT (carrying the receiver's
//               sync_address) -> MAD_RNDV_PKT delivered zero-copy into the
//               posted buffer; the receiver's control thread waits on the
//               rhandle semaphore (here: the request's completion).
//
// Polling threads never send (deadlock avoidance, §4.2.3): rendezvous
// replies and data pushes run on temporary threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/directory.hpp"
#include "core/managed_device.hpp"
#include "core/packet.hpp"
#include "core/routing.hpp"
#include "mad/forwarder.hpp"
#include "mad/madeleine.hpp"
#include "marcel/poll_server.hpp"
#include "marcel/semaphore.hpp"
#include "mpi/adi.hpp"

namespace madmpi::core {

class ChMadDevice final : public ManagedDevice {
 public:
  /// What a sender does when its credit window towards a peer runs dry.
  enum class CreditPolicy {
    kDemote,  // force the transfer to rendezvous (buffers nothing remotely)
    kBlock,   // blocking sends wait (virtual time) for credits to return
  };

  struct Config {
    /// Ablation hook: force the eager/rendezvous switch point instead of
    /// the paper's election rule.
    std::optional<std::size_t> switch_point_override;

    /// Gateway forwarding (the paper's §6 future work): dedicated
    /// channels, one per network, carrying ForwardHeader-wrapped ch_mad
    /// messages across nodes that share no direct network. Empty disables
    /// forwarding.
    std::vector<mad::Channel*> forward_channels;

    /// Per-peer eager credit window in bytes. 0 derives the window from
    /// the elected switch point (default_credit_window); SIZE_MAX
    /// disables flow control entirely.
    std::size_t credit_window_bytes = 0;
    CreditPolicy credit_policy = CreditPolicy::kDemote;

    /// One-sided delivery mode: when true (default), RMA packets travel
    /// DeliveryMode::kRmaDirect on channels whose driver supports it
    /// (SISCI mapped PIO, BIP DMA); false forces the two-sided emulation
    /// path everywhere (ablation knob, MADMPI_RMA_DIRECT).
    bool rma_direct = true;

    /// Upper bound in bytes for a single put/get/accumulate payload; 0
    /// means unlimited (MADMPI_RMA_PUT_LIMIT).
    std::size_t rma_put_limit = 0;
  };

  // Two overloads rather than `Config config = {}`: the Config default
  // member initializers are not parsed until the enclosing class is
  // complete, so a braced default argument cannot see them here.
  ChMadDevice(RankDirectory& directory, std::vector<mad::Channel*> channels);
  ChMadDevice(RankDirectory& directory, std::vector<mad::Channel*> channels,
              Config config);
  ~ChMadDevice() override;

  // --- mpi::Device ----------------------------------------------------
  const char* name() const override { return "ch_mad"; }
  std::size_t rendezvous_threshold() const override { return switch_point_; }
  bool reaches(rank_t src, rank_t dst) const override;
  Status send(rank_t src, rank_t dst, const mpi::Envelope& env,
              byte_span packed, mpi::TransferMode mode) override;
  bool admit_eager(rank_t src, rank_t dst, std::uint64_t bytes,
                   bool may_block) override;

  /// MPI_Cancel on a send: detach a rendezvous send still waiting for its
  /// OK_TO_SEND (phase kAwaitAck) and complete it with kCancelled. A send
  /// whose data push already started (kPushing) is past the point of no
  /// return and completes normally. A late OK_TO_SEND for the cancelled
  /// handle is dropped by the existing stale-handle path.
  bool try_cancel_send(rank_t src, rank_t dst,
                       const mpi::Envelope& env) override;

  /// Nonblocking rendezvous: the REQUEST is injected on the calling
  /// thread (keeping per-source frame order intact for the matching
  /// layer), and the data push completes `state` from the polling
  /// machinery instead of unparking a waiting sender.
  bool isend_rendezvous(rank_t src, rank_t dst, const mpi::Envelope& env,
                        byte_span packed, std::vector<std::byte> owned,
                        std::shared_ptr<mpi::RequestState> state) override;

  /// One-sided verbs (MPI-3 RMA over the slab pool). Data-bearing ops are
  /// fire-and-forget: the packet is injected (kRmaDirect where the driver
  /// supports it) and epoch completion travels through the kSync/kUnlock
  /// cumulative ledger. Ops expecting a reply register `completion` in the
  /// origin node's pending table, completed by the polling thread.
  bool supports_rma() const override { return true; }
  Status rma(rank_t src, rank_t dst, const mpi::RmaDesc& desc,
             byte_span payload, void* get_dest,
             std::shared_ptr<mpi::RequestState> completion) override;

  // --- lifecycle --------------------------------------------------------
  /// Spawn the polling threads (one per channel per member node).
  void start() override;

  /// Distributed termination: every node broadcasts MAD_TERM_PKT on every
  /// channel; pollers exit once all peers' terminations arrived. Must be
  /// called after all application traffic has quiesced.
  void shutdown() override;

  // --- introspection ------------------------------------------------------
  const ChannelRouter& router() const { return router_; }
  std::size_t switch_point() const { return switch_point_; }
  bool forwarding_enabled() const { return forward_router_.has_value(); }
  const ForwardRouter* forward_router() const {
    return forward_router_ ? &*forward_router_ : nullptr;
  }

  /// Per-device message counters (tests / ablations).
  std::uint64_t eager_sent() const { return eager_sent_.load(); }
  std::uint64_t rendezvous_sent() const { return rendezvous_sent_.load(); }
  std::uint64_t forwarded() const { return forwarded_.load(); }
  std::uint64_t failovers() const { return failovers_.load(); }
  std::uint64_t eager_demoted() const { return eager_demoted_.load(); }
  std::uint64_t credit_stalls() const { return credit_stalls_.load(); }
  std::uint64_t credit_packets() const { return credit_packets_.load(); }
  std::uint64_t rma_ops_sent() const { return rma_ops_sent_.load(); }

  // --- flow control -----------------------------------------------------
  std::size_t credit_window() const { return credit_window_; }

  /// Credits `src_node` currently holds towards `dst_node` (tests).
  std::size_t credits_available(node_id_t src_node, node_id_t dst_node);

  /// Credits `node` has consumed on behalf of `peer` but not yet returned
  /// (tests: available + pending_return == window at quiesce).
  std::size_t credits_pending_return(node_id_t node, node_id_t peer);

  /// Rendezvous sends currently parked on `node` (tests: await the
  /// registration of an in-flight isend before cancelling it).
  std::size_t pending_send_count(node_id_t node);

  // --- progress watchdog ------------------------------------------------
  /// Route liveness predicate: true when `from` can no longer deliver to
  /// `to` by any means (direct channels and forwarding alike).
  using RouteDead = std::function<bool(node_id_t from, node_id_t to)>;

  /// Cancel rendezvous transactions whose peer can no longer answer:
  /// pending sends still waiting for OK_TO_SEND from an unreachable
  /// receiver, and rhandles whose data sender is unreachable. Completed
  /// with kTimedOut, stamped a deterministic `horizon` after the
  /// transaction started. Returns how many operations were canceled.
  std::size_t watchdog_sweep(const RouteDead& route_dead, usec_t horizon);

 private:
  struct PendingSend {
    byte_span data;
    PacketHeader header;
    std::unique_ptr<marcel::Semaphore> done;
    /// Outcome of the rendezvous data push, set by the data thread before
    /// it signals `done` (the sender returns it from send()).
    Status result;
    /// kAwaitAck until OK_TO_SEND arrives; kPushing once a data thread
    /// owns the entry. The watchdog only cancels kAwaitAck entries — a
    /// kPushing one is referenced by a live data thread.
    enum class Phase { kAwaitAck, kPushing } phase = Phase::kAwaitAck;
    node_id_t peer_node = kInvalidNode;
    usec_t started_at = 0.0;
    /// Asynchronous (isend_rendezvous) entries: no parked sender thread
    /// exists, so `done` is null and the finishing path completes
    /// `completion` instead, erases `handle` from pending_sends itself,
    /// and frees the heap-allocated entry. `owned`, when non-empty, is
    /// the staging buffer backing `data`.
    std::shared_ptr<mpi::RequestState> completion;
    std::vector<std::byte> owned;
    std::uint64_t handle = 0;
  };

  struct Rhandle {
    mpi::PostedRecv posted;
    node_id_t origin_node = kInvalidNode;  // where kRndvData comes from
    usec_t created_at = 0.0;
  };

  /// An origin-side one-sided operation awaiting its reply (get, lock,
  /// sync, unlock). Keyed by the handle echoed in the reply's
  /// sender_handle field.
  struct RmaPending {
    std::shared_ptr<mpi::RequestState> completion;
    void* get_dest = nullptr;       // kGetReply lands here
    std::uint64_t bytes = 0;        // expected reply payload (gets)
  };

  /// Sender-side credit account towards one peer (guarded by the owning
  /// NodeState's mutex).
  struct CreditAccount {
    bool initialized = false;
    std::size_t available = 0;
    /// Virtual-time stamp of the latest refill — a sender that *waited*
    /// for credits synchronizes its lane here (the causal edge from the
    /// receiver's drain to the unblocked send).
    usec_t last_refill = 0.0;
  };

  /// Per member node: the polling server plus the rendezvous tables.
  struct NodeState {
    sim::Node* node = nullptr;
    std::unique_ptr<marcel::PollServer> poll_server;

    std::mutex mutex;
    std::uint64_t next_send_handle = 1;
    std::map<std::uint64_t, PendingSend*> pending_sends;
    std::uint64_t next_rhandle = 1;
    std::map<std::uint64_t, Rhandle> rhandles;
    std::uint64_t next_rma_handle = 1;
    std::map<std::uint64_t, RmaPending> rma_pending;

    /// Flow control (guarded by `mutex`): credits this node holds towards
    /// each peer, and consumed-but-unreturned credits owed *to* each peer.
    std::map<node_id_t, CreditAccount> credits;
    std::map<node_id_t, std::size_t> pending_returns;
    /// Credit batches flushed per peer — the sequence number the
    /// ScheduleController's batching perturbation is keyed on.
    std::map<node_id_t, std::uint64_t> credit_epochs;
    std::condition_variable credit_cv;
  };

  NodeState& state_of(node_id_t node);
  void handle_message(NodeState& state, mad::Unpacking& incoming,
                      int* terms_seen);

  /// Transmit one ch_mad packet from node to node: directly over the best
  /// common *live* channel, or wrapped in a ForwardHeader over a
  /// forwarding channel towards the next-hop gateway. When delivery over
  /// the elected channel fails (link died), the route is re-elected and
  /// the packet retried on the next-best protocol — the multi-protocol
  /// failover the paper's architecture makes possible. Returns non-ok
  /// (kUnreachable) only when no route remains.
  /// `rma_data` marks one-sided traffic: the elected channel charges its
  /// rma_put_us initiation cost and, when the driver supports it (and the
  /// rma_direct knob is on), the packet travels DeliveryMode::kRmaDirect.
  Status send_packet(node_id_t src_node, node_id_t dst_node,
                     const PacketHeader& header, byte_span body,
                     bool rma_data = false);

  /// Relay a forwarded message one hop further (runs on a forwarding
  /// channel's polling thread on the gateway node).
  void relay(node_id_t me, mad::ForwardHeader fwd,
             mad::Unpacking& incoming);

  void spawn_reply_thread(NodeState& state, node_id_t dst_node,
                          PacketHeader header);
  /// Same no-sends-from-pollers rule for one-sided replies; `body` (a
  /// get-reply's window bytes) rides along by refcount, not by copy.
  void spawn_rma_reply_thread(NodeState& state, node_id_t dst_node,
                              PacketHeader header, ChunkRef body);
  void spawn_data_thread(NodeState& state, node_id_t dst_node,
                         PendingSend& pending, std::uint64_t sync_address);
  /// Single completion discipline for a finished rendezvous send:
  /// parked (blocking) entries are unblocked through their semaphore;
  /// asynchronous entries complete their RequestState and are freed.
  /// `still_registered` says the entry is still in pending_sends (the
  /// data-push path) — asynchronous completion erases it first; the
  /// cancel/watchdog paths pass false, having erased it already.
  void finish_pending_send(NodeState& state, PendingSend* pending,
                           bool still_registered);
  void spawn_credit_thread(NodeState& state, node_id_t dst_node,
                           std::size_t credit_bytes);

  /// Credit bookkeeping. `account_of` lazily opens an account at the full
  /// window; `credit_consumed` runs when the destination rank drains an
  /// eager payload and decides whether the accumulated debt is worth a
  /// packet; `apply_credit` handles an inbound refill; `refund_credit`
  /// undoes an admission whose eager send failed.
  CreditAccount& account_of(NodeState& state, node_id_t peer);
  void credit_consumed(node_id_t me, node_id_t origin, std::size_t charge);
  void apply_credit(NodeState& state, const PacketHeader& header);
  void refund_credit(node_id_t src_node, node_id_t dst_node,
                     std::size_t charge);

  /// Take (and zero) the credits owed to `peer`, for piggybacking on an
  /// outbound packet. The caller must return them on send failure.
  std::size_t take_pending_returns(NodeState& state, node_id_t peer);

  /// Device-level cost of dispatching one received packet (beyond Marcel's
  /// wake + interference, charged by the poll server).
  static constexpr usec_t kDispatchUs = 1.0;

  RankDirectory& directory_;
  ChannelRouter router_;
  ChannelRouter forward_channels_router_;
  std::optional<ForwardRouter> forward_router_;
  std::size_t switch_point_;
  std::size_t credit_window_ = 0;  // 0 = flow control disabled
  CreditPolicy credit_policy_ = CreditPolicy::kDemote;
  bool rma_direct_ = true;
  std::size_t rma_put_limit_ = 0;  // 0 = unlimited
  std::map<node_id_t, std::unique_ptr<NodeState>> states_;
  bool started_ = false;

  /// Detached credit-return threads in flight. shutdown() waits for them
  /// before broadcasting termination so a late MAD_CREDIT_PKT never races
  /// channel close.
  std::mutex credit_threads_mutex_;
  std::condition_variable credit_threads_cv_;
  int credit_threads_ = 0;

  std::atomic<std::uint64_t> eager_sent_{0};
  std::atomic<std::uint64_t> rendezvous_sent_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> eager_demoted_{0};
  std::atomic<std::uint64_t> credit_stalls_{0};
  std::atomic<std::uint64_t> credit_packets_{0};
  std::atomic<std::uint64_t> rma_ops_sent_{0};
};

}  // namespace madmpi::core
