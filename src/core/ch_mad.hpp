// The ch_mad device: inter-node communication over Madeleine (paper §4).
//
// One device handles every network simultaneously: each message picks the
// best common channel to its destination (ChannelRouter), is built as one
// Madeleine message — an EXPRESS header packet plus, for data-bearing
// types, a CHEAPER body packet — and is received by one persistent polling
// thread per channel (Marcel poll server). Two transfer modes, selected by
// the single elected switch point:
//
//   eager       MAD_SHORT_PKT; intermediary copy on the receiving side.
//   rendezvous  MAD_REQUEST_PKT -> MAD_SENDOK_PKT (carrying the receiver's
//               sync_address) -> MAD_RNDV_PKT delivered zero-copy into the
//               posted buffer; the receiver's control thread waits on the
//               rhandle semaphore (here: the request's completion).
//
// Polling threads never send (deadlock avoidance, §4.2.3): rendezvous
// replies and data pushes run on temporary threads.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/directory.hpp"
#include "core/managed_device.hpp"
#include "core/packet.hpp"
#include "core/routing.hpp"
#include "mad/forwarder.hpp"
#include "mad/madeleine.hpp"
#include "marcel/poll_server.hpp"
#include "marcel/semaphore.hpp"
#include "mpi/adi.hpp"

namespace madmpi::core {

class ChMadDevice final : public ManagedDevice {
 public:
  struct Config {
    /// Ablation hook: force the eager/rendezvous switch point instead of
    /// the paper's election rule.
    std::optional<std::size_t> switch_point_override;

    /// Gateway forwarding (the paper's §6 future work): dedicated
    /// channels, one per network, carrying ForwardHeader-wrapped ch_mad
    /// messages across nodes that share no direct network. Empty disables
    /// forwarding.
    std::vector<mad::Channel*> forward_channels;
  };

  ChMadDevice(RankDirectory& directory, std::vector<mad::Channel*> channels,
              Config config = {});
  ~ChMadDevice() override;

  // --- mpi::Device ----------------------------------------------------
  const char* name() const override { return "ch_mad"; }
  std::size_t rendezvous_threshold() const override { return switch_point_; }
  bool reaches(rank_t src, rank_t dst) const override;
  Status send(rank_t src, rank_t dst, const mpi::Envelope& env,
              byte_span packed, mpi::TransferMode mode) override;

  // --- lifecycle --------------------------------------------------------
  /// Spawn the polling threads (one per channel per member node).
  void start() override;

  /// Distributed termination: every node broadcasts MAD_TERM_PKT on every
  /// channel; pollers exit once all peers' terminations arrived. Must be
  /// called after all application traffic has quiesced.
  void shutdown() override;

  // --- introspection ------------------------------------------------------
  const ChannelRouter& router() const { return router_; }
  std::size_t switch_point() const { return switch_point_; }
  bool forwarding_enabled() const { return forward_router_.has_value(); }
  const ForwardRouter* forward_router() const {
    return forward_router_ ? &*forward_router_ : nullptr;
  }

  /// Per-device message counters (tests / ablations).
  std::uint64_t eager_sent() const { return eager_sent_.load(); }
  std::uint64_t rendezvous_sent() const { return rendezvous_sent_.load(); }
  std::uint64_t forwarded() const { return forwarded_.load(); }
  std::uint64_t failovers() const { return failovers_.load(); }

 private:
  struct PendingSend {
    byte_span data;
    PacketHeader header;
    std::unique_ptr<marcel::Semaphore> done;
    /// Outcome of the rendezvous data push, set by the data thread before
    /// it signals `done` (the sender returns it from send()).
    Status result;
  };

  struct Rhandle {
    mpi::PostedRecv posted;
  };

  /// Per member node: the polling server plus the rendezvous tables.
  struct NodeState {
    sim::Node* node = nullptr;
    std::unique_ptr<marcel::PollServer> poll_server;

    std::mutex mutex;
    std::uint64_t next_send_handle = 1;
    std::map<std::uint64_t, PendingSend*> pending_sends;
    std::uint64_t next_rhandle = 1;
    std::map<std::uint64_t, Rhandle> rhandles;
  };

  NodeState& state_of(node_id_t node);
  void handle_message(NodeState& state, mad::Unpacking& incoming,
                      int* terms_seen);

  /// Transmit one ch_mad packet from node to node: directly over the best
  /// common *live* channel, or wrapped in a ForwardHeader over a
  /// forwarding channel towards the next-hop gateway. When delivery over
  /// the elected channel fails (link died), the route is re-elected and
  /// the packet retried on the next-best protocol — the multi-protocol
  /// failover the paper's architecture makes possible. Returns non-ok
  /// (kUnreachable) only when no route remains.
  Status send_packet(node_id_t src_node, node_id_t dst_node,
                     const PacketHeader& header, byte_span body);

  /// Relay a forwarded message one hop further (runs on a forwarding
  /// channel's polling thread on the gateway node).
  void relay(node_id_t me, mad::ForwardHeader fwd,
             mad::Unpacking& incoming);

  void spawn_reply_thread(NodeState& state, node_id_t dst_node,
                          PacketHeader header);
  void spawn_data_thread(NodeState& state, node_id_t dst_node,
                         PendingSend& pending, std::uint64_t sync_address);

  /// Device-level cost of dispatching one received packet (beyond Marcel's
  /// wake + interference, charged by the poll server).
  static constexpr usec_t kDispatchUs = 1.0;

  RankDirectory& directory_;
  ChannelRouter router_;
  ChannelRouter forward_channels_router_;
  std::optional<ForwardRouter> forward_router_;
  std::size_t switch_point_;
  std::map<node_id_t, std::unique_ptr<NodeState>> states_;
  bool started_ = false;

  std::atomic<std::uint64_t> eager_sent_{0};
  std::atomic<std::uint64_t> rendezvous_sent_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
};

}  // namespace madmpi::core
