#include "core/watchdog.hpp"

namespace madmpi::core {

ProgressWatchdog::ProgressWatchdog(Sweep sweep,
                                   std::chrono::milliseconds interval)
    : sweep_(std::move(sweep)), interval_(interval) {
  thread_ = std::thread([this] { run(); });
}

ProgressWatchdog::~ProgressWatchdog() { stop(); }

void ProgressWatchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ProgressWatchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, interval_);
    if (stopping_) break;
    lock.unlock();
    sweep_();
    lock.lock();
  }
}

}  // namespace madmpi::core
