#include "core/watchdog.hpp"

namespace madmpi::core {

ProgressWatchdog::ProgressWatchdog(Sweep sweep,
                                   std::chrono::milliseconds interval,
                                   Fingerprint fingerprint)
    : sweep_(std::move(sweep)),
      interval_(interval),
      fingerprint_(std::move(fingerprint)) {
  thread_ = std::thread([this] { run(); });
}

ProgressWatchdog::~ProgressWatchdog() { stop(); }

void ProgressWatchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ProgressWatchdog::run() {
  std::uint64_t last_print = fingerprint_ ? fingerprint_() : 0;
  int ticks_since_sweep = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, interval_);
    if (stopping_) break;
    lock.unlock();
    bool skip = false;
    if (fingerprint_ && ticks_since_sweep + 1 < kForcedSweepPeriod) {
      const std::uint64_t print = fingerprint_();
      if (print != last_print) {
        last_print = print;
        skip = true;
      }
    }
    if (skip) {
      ++ticks_since_sweep;
      sweeps_skipped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ticks_since_sweep = 0;
      sweep_();
      if (fingerprint_) last_print = fingerprint_();
    }
    lock.lock();
  }
}

}  // namespace madmpi::core
