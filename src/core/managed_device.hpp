// A device with a polling/thread lifecycle (ch_mad and the baseline native
// devices implement this; ch_self and smp_plug need no threads).
#pragma once

#include "mpi/adi.hpp"

namespace madmpi::core {

class ManagedDevice : public mpi::Device {
 public:
  virtual void start() {}
  virtual void shutdown() {}
};

}  // namespace madmpi::core
