#include "core/session.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "marcel/engine.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"

namespace madmpi::core {

namespace {

// Environment overrides for the robustness knobs (README documents them).
std::size_t env_bytes(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  if (std::strcmp(value, "off") == 0) return SIZE_MAX;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

usec_t env_us(const char* name, usec_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0);
}

ChMadDevice::CreditPolicy env_credit_policy(ChMadDevice::CreditPolicy fallback) {
  const char* value = std::getenv("MADMPI_CREDIT_POLICY");
  if (value == nullptr || *value == '\0') return fallback;
  if (std::strcmp(value, "block") == 0) return ChMadDevice::CreditPolicy::kBlock;
  if (std::strcmp(value, "demote") == 0) {
    return ChMadDevice::CreditPolicy::kDemote;
  }
  MADMPI_LOG_WARN("session", "unknown MADMPI_CREDIT_POLICY '%s', keeping default",
                  value);
  return fallback;
}

}  // namespace

Session::Session(Options options) {
  MADMPI_CHECK_MSG(options.cluster.validate().is_ok(),
                   "invalid cluster specification");
  madeleine_ =
      std::make_unique<mad::Madeleine>(fabric_, std::move(options.cluster));

  // Lay ranks out node-major, matching ClusterSpec::rank_location.
  for (std::size_t n = 0; n < cluster().nodes.size(); ++n) {
    sim::Node& node = fabric_.node(static_cast<node_id_t>(n));
    for (int local = 0; local < cluster().nodes[n].ranks; ++local) {
      directory_.add_rank(node, local);
    }
  }

  ch_self_ = std::make_unique<ChSelfDevice>(directory_);
  smp_plug_ = std::make_unique<SmpPlugDevice>(directory_);

  forwarding_enabled_ = options.enable_forwarding;
  if (options.internode_factory) {
    internode_ = options.internode_factory(*this);
  } else if (!cluster().networks.empty()) {
    ChMadDevice::Config config;
    config.switch_point_override = options.switch_point_override;
    config.credit_window_bytes =
        env_bytes("MADMPI_CREDIT_WINDOW", options.credit_window_bytes);
    config.credit_policy = env_credit_policy(options.credit_policy);
    config.rma_direct = env_flag("MADMPI_RMA_DIRECT", options.rma_direct);
    {
      const std::size_t limit =
          env_bytes("MADMPI_RMA_PUT_LIMIT", options.rma_put_limit_bytes);
      config.rma_put_limit = limit == SIZE_MAX ? 0 : limit;  // "off" = none
    }
    if (options.enable_forwarding) {
      // A second channel per network, dedicated to forwarded traffic:
      // channel isolation keeps relays from ever matching direct messages.
      int counter = 0;
      for (const auto& network : cluster().networks) {
        std::string name = std::string("fwd-") +
                           sim::protocol_keyword(network.protocol) + "-" +
                           std::to_string(counter++);
        config.forward_channels.push_back(
            &madeleine_->open_channel(network, std::move(name)));
      }
    }
    internode_ = std::make_unique<ChMadDevice>(
        directory_, madeleine_->open_default_channels(), config);
  }
  if (internode_) internode_->start();

  const std::size_t budget =
      env_bytes("MADMPI_UNEXPECTED_BUDGET", options.unexpected_budget_bytes);
  for (rank_t rank = 0; rank < world_size(); ++rank) {
    directory_.context_of(rank).set_unexpected_budget(
        budget == SIZE_MAX ? 0 : budget);
  }

  // Progress watchdog: needs the ch_mad router as its failure oracle, so
  // sessions with a custom inter-node device (the baselines) run without
  // one, exactly as before this layer existed.
  watchdog_horizon_us_ =
      env_us("MADMPI_WATCHDOG_HORIZON_US", options.watchdog_horizon_us);
  if (watchdog_horizon_us_ > 0.0 && ch_mad() != nullptr) {
    for (rank_t rank = 0; rank < world_size(); ++rank) {
      const node_id_t home = directory_.node_of(rank).id();
      directory_.context_of(rank).set_watchdog(
          watchdog_horizon_us_, [this, home](rank_t peer) {
            const node_id_t origin = directory_.node_of(peer).id();
            // The direction the missing data must flow: peer -> me.
            return origin != home && route_dead(origin, home);
          });
    }
    auto sweep = [this, last_fingerprint = std::uint64_t(0),
                  stalled_sweeps = 0]() mutable {
      std::uint64_t cancels = 0;
      if (ChMadDevice* device = ch_mad()) {
        cancels += device->watchdog_sweep(
            [this](node_id_t from, node_id_t to) {
              return route_dead(from, to);
            },
            watchdog_horizon_us_);
      }
      for (rank_t rank = 0; rank < world_size(); ++rank) {
        mpi::RankContext& context = directory_.context_of(rank);
        const std::size_t canceled =
            context.cancel_unreachable(ErrorCode::kTimedOut);
        if (canceled > 0) {
          cancels += canceled;
          context.notify_waiters();
        }
      }
      // FT deadline safety valve: only after a long run of sweeps with no
      // virtual-time progress anywhere do deadline-carrying receives give
      // up (see kFtStallSweeps).
      const std::uint64_t fingerprint = progress_fingerprint();
      if (fingerprint == last_fingerprint) {
        ++stalled_sweeps;
      } else {
        last_fingerprint = fingerprint;
        stalled_sweeps = 0;
      }
      if (stalled_sweeps >= kFtStallSweeps) {
        // Cancel only the globally oldest cohort of deadline receives:
        // the operation that is actually stuck. Ranks blocked in *newer*
        // operations are usually waiting on the stuck rank's contribution
        // — cancelling their receives too would fail collectives that
        // become perfectly completable once the laggard catches up. The
        // slack batches receives posted within one operation's lane skew
        // while staying below the gap between successive collectives.
        constexpr usec_t kStallCohortSlackUs = 200.0;
        usec_t oldest = 0.0;
        for (rank_t rank = 0; rank < world_size(); ++rank) {
          const usec_t candidate =
              directory_.context_of(rank).min_ft_deadline();
          if (candidate <= 0.0) continue;
          if (oldest == 0.0 || candidate < oldest) oldest = candidate;
        }
        if (oldest > 0.0) {
          for (rank_t rank = 0; rank < world_size(); ++rank) {
            mpi::RankContext& context = directory_.context_of(rank);
            const std::size_t expired = context.cancel_expired(
                ErrorCode::kTimedOut, oldest + kStallCohortSlackUs);
            if (expired > 0) {
              cancels += expired;
              context.notify_waiters();
            }
          }
        }
        stalled_sweeps = 0;
      }
      if (cancels > 0) {
        watchdog_cancels_.fetch_add(cancels, std::memory_order_relaxed);
      }
    };
    watchdog_ = std::make_unique<ProgressWatchdog>(
        std::move(sweep), std::chrono::milliseconds(2),
        [this] { return progress_fingerprint(); });
  }
}

std::uint64_t Session::progress_fingerprint() {
  // Digest of every live lane of every node clock (the VirtualClock
  // introspection hook). Any rank or polling thread advancing virtual
  // time changes the digest, which the watchdog reads as proof of
  // progress. FNV-1a over (lane id, time bits) is plenty: we only need
  // "changed at all", not collision resistance.
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (std::size_t n = 0; n < cluster().nodes.size(); ++n) {
    for (const auto& lane :
         fabric_.node(static_cast<node_id_t>(n)).clock().lanes()) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(lane.time));
      std::memcpy(&bits, &lane.time, sizeof(bits));
      mix(lane.id);
      mix(bits);
    }
  }
  return hash;
}

Session::~Session() { finalize(); }

void Session::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Stop the watchdog before the device: its sweeps walk device state.
  if (watchdog_) {
    watchdog_->stop();
    watchdog_.reset();
  }
  if (internode_) internode_->shutdown();
  madeleine_->close_all();
}

Session::RouteState Session::direct_route_state(node_id_t from, node_id_t to) {
  bool saw_channel = false;
  const usec_t t = fabric_.node(from).clock().high_water();
  for (mad::Channel* channel : madeleine_->channels()) {
    if (!channel->has_member(from) || !channel->has_member(to)) continue;
    saw_channel = true;
    if (!channel->link_alive(from, to)) continue;
    const sim::Nic* nic = fabric_.find_nic(from, channel->protocol());
    const sim::FaultPlan* plan =
        nic != nullptr ? nic->model().fault_plan.get() : nullptr;
    // The oracle: a permanent kill is dead the moment the plan says so,
    // even before any send attempt observed it (a pure receiver never
    // sends, so link health alone would never notice).
    if (plan != nullptr && plan->dead(from, to, t)) continue;
    return RouteState::kAlive;
  }
  return saw_channel ? RouteState::kDead : RouteState::kNoChannel;
}

bool Session::route_dead(node_id_t from, node_id_t to) {
  if (from == to) return false;
  if (direct_route_state(from, to) == RouteState::kAlive) return false;
  if (forwarding_enabled_) {
    // Forwarding relays across any number of gateways, so the detector
    // must too: breadth-first search over live direct links. Declaring a
    // reachable peer dead cancels healthy operations, which is worse
    // than the watchdog missing a beat.
    const std::size_t node_count = cluster().nodes.size();
    std::vector<bool> visited(node_count, false);
    std::vector<node_id_t> frontier{from};
    visited[static_cast<std::size_t>(from)] = true;
    while (!frontier.empty()) {
      const node_id_t here = frontier.back();
      frontier.pop_back();
      for (std::size_t n = 0; n < node_count; ++n) {
        const node_id_t next = static_cast<node_id_t>(n);
        if (visited[n] ||
            direct_route_state(here, next) != RouteState::kAlive) {
          continue;
        }
        if (next == to) return false;
        visited[n] = true;
        frontier.push_back(next);
      }
    }
  }
  return true;
}

bool Session::peer_unreachable(rank_t from_global, rank_t to_global) {
  const node_id_t from = directory_.node_of(from_global).id();
  const node_id_t to = directory_.node_of(to_global).id();
  return from != to && route_dead(from, to);
}

mpi::CollLink Session::coll_link(rank_t a_global, rank_t b_global) {
  mpi::CollLink link;
  if (a_global == b_global) {
    link.quality = 0;
    return link;
  }
  const node_id_t a = directory_.node_of(a_global).id();
  const node_id_t b = directory_.node_of(b_global).id();
  if (a == b) {
    // Shared memory: a class no network reaches, so islands always beat
    // the interconnect in the digest's cluster detection.
    link.quality = 100;
    return link;
  }
  // Worst class (1) when a custom inter-node device is installed or the
  // pair only talks through gateway forwarding — both look like one flat
  // interconnect to the hierarchy.
  link.quality = 1;
  ChMadDevice* device = ch_mad();
  if (device == nullptr) return link;
  mad::Channel* channel = device->router().route(a, b);
  if (channel == nullptr) return link;
  link.quality = 2 + protocol_performance_rank(channel->protocol());
  // Offload parameters come from the live NIC model (fault plans and
  // per-session tweaks mutate it), falling back to the protocol defaults.
  const sim::Nic* nic = fabric_.find_nic(a, channel->protocol());
  const sim::LinkCostModel model =
      nic != nullptr ? nic->model() : sim::model_for(channel->protocol());
  link.offload = model.supports_coll_offload;
  link.offload_post_us = model.coll_post_us;
  link.offload_hop_us = model.coll_hop_us;
  link.offload_bytes_per_us = model.coll_bytes_per_us;
  link.offload_notify_us = model.coll_notify_us;
  return link;
}

mpi::Device& Session::device_for(rank_t src, rank_t dst) {
  if (src == dst) return *ch_self_;
  if (directory_.same_node(src, dst)) return *smp_plug_;
  MADMPI_CHECK_MSG(internode_ != nullptr,
                   "inter-node message but no inter-node device configured");
  MADMPI_CHECK_MSG(internode_->reaches(src, dst),
                   "destination unreachable: the nodes share no network "
                   "(enable forwarding or fix the topology)");
  return *internode_;
}

int Session::derive_context_id(int parent_context, std::int64_t key) {
  std::lock_guard<std::mutex> lock(context_mutex_);
  auto [it, inserted] =
      derived_contexts_.try_emplace({parent_context, key}, next_context_);
  if (inserted) next_context_ += 2;  // each comm owns (p2p, collective)
  return it->second;
}

void Session::run(const std::function<void(mpi::Comm)>& rank_main) {
  MADMPI_CHECK_MSG(!finalized_, "run() after finalize()");
  // MADMPI_COLL_TUNE: micro-probe the collective algorithms once per
  // session, ahead of the first run()'s rank_main, and install the
  // decision table kAuto resolution consults.
  const std::function<void(mpi::Comm)>* body = &rank_main;
  std::function<void(mpi::Comm)> tuned_body;
  if (env_flag("MADMPI_COLL_TUNE", false) && !coll_tuned_) {
    coll_tuned_ = true;
    tuned_body = [&rank_main](mpi::Comm comm) {
      mpi::tune_collectives(comm);
      rank_main(comm);
    };
    body = &tuned_body;
  }
  const std::function<void(mpi::Comm)>& main_fn = *body;
  if (marcel::engine_kind_from_env() == marcel::EngineKind::kSharded) {
    // Scale-out engine: rank fibers on a sharded worker pool. Capture each
    // rank's causal birth time serially before any fiber runs, so lane
    // creation order (and with it the seeded replay) is independent of
    // which shard starts first.
    const auto ranks = static_cast<std::size_t>(world_size());
    std::vector<usec_t> births(ranks);
    for (std::size_t rank = 0; rank < ranks; ++rank) {
      births[rank] =
          node_of(static_cast<rank_t>(rank)).clock().high_water();
    }
    marcel::run_fiber_pool(
        ranks, marcel::engine_shards_from_env(),
        marcel::engine_stack_bytes_from_env(),
        [this, &main_fn, &births](std::size_t rank) {
          const auto r = static_cast<rank_t>(rank);
          node_of(r).clock().bind_lane(births[rank]);
          main_fn(comm_world(r));
        });
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size()));
  for (rank_t rank = 0; rank < world_size(); ++rank) {
    threads.emplace_back(
        [this, rank, &main_fn] { main_fn(comm_world(rank)); });
  }
  for (auto& thread : threads) thread.join();
}

ChMadDevice* Session::ch_mad() {
  return dynamic_cast<ChMadDevice*>(internode_.get());
}

mad::Channel& Session::open_raw_channel(std::size_t network_index,
                                        const std::string& name) {
  MADMPI_CHECK(network_index < cluster().networks.size());
  return madeleine_->open_channel(cluster().networks[network_index], name);
}

void Session::print_stats(std::FILE* out) {
  std::fprintf(out, "%-16s %-8s %10s %14s %8s %8s\n", "channel", "proto",
               "messages", "bytes", "drops", "retries");
  for (mad::Channel* channel : madeleine_->channels()) {
    const auto stats = channel->traffic();
    std::fprintf(out,
                 "%-16s %-8s %10" PRIu64 " %14" PRIu64 " %8" PRIu64
                 " %8" PRIu64 "\n",
                 channel->name().c_str(),
                 sim::protocol_name(channel->protocol()),
                 stats.messages_sent, stats.bytes_sent, stats.frames_dropped,
                 stats.retransmits);
  }
  if (auto* device = ch_mad()) {
    std::fprintf(out,
                 "ch_mad: %" PRIu64 " eager, %" PRIu64 " rendezvous, %" PRIu64
                 " forwarded, %" PRIu64 " failovers (switch point %zu B)\n",
                 device->eager_sent(), device->rendezvous_sent(),
                 device->forwarded(), device->failovers(),
                 device->switch_point());
    if (device->credit_window() != 0) {
      std::fprintf(out,
                   "flow control: window %zu B/peer, %" PRIu64
                   " demoted, %" PRIu64 " credit stalls, %" PRIu64
                   " credit packets\n",
                   device->credit_window(), device->eager_demoted(),
                   device->credit_stalls(), device->credit_packets());
    }
  }
  for (rank_t rank = 0; rank < world_size(); ++rank) {
    mpi::RankContext& context = directory_.context_of(rank);
    if (context.unexpected_bytes_high_water() == 0 &&
        context.eager_refused() == 0) {
      continue;
    }
    std::fprintf(out,
                 "rank %d unexpected store: high water %zu B (budget %zu B), "
                 "%" PRIu64 " eager refusals\n",
                 rank, context.unexpected_bytes_high_water(),
                 context.unexpected_budget(), context.eager_refused());
  }
  if (watchdog_cancels() > 0) {
    std::fprintf(out, "watchdog: %" PRIu64 " operations cancelled\n",
                 watchdog_cancels());
  }
}

void Session::reset_clocks() {
  for (std::size_t n = 0; n < cluster().nodes.size(); ++n) {
    fabric_.node(static_cast<node_id_t>(n)).clock().reset();
  }
}

}  // namespace madmpi::core
