#include "core/session.hpp"

#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace madmpi::core {

Session::Session(Options options) {
  MADMPI_CHECK_MSG(options.cluster.validate().is_ok(),
                   "invalid cluster specification");
  madeleine_ =
      std::make_unique<mad::Madeleine>(fabric_, std::move(options.cluster));

  // Lay ranks out node-major, matching ClusterSpec::rank_location.
  for (std::size_t n = 0; n < cluster().nodes.size(); ++n) {
    sim::Node& node = fabric_.node(static_cast<node_id_t>(n));
    for (int local = 0; local < cluster().nodes[n].ranks; ++local) {
      directory_.add_rank(node, local);
    }
  }

  ch_self_ = std::make_unique<ChSelfDevice>(directory_);
  smp_plug_ = std::make_unique<SmpPlugDevice>(directory_);

  if (options.internode_factory) {
    internode_ = options.internode_factory(*this);
  } else if (!cluster().networks.empty()) {
    ChMadDevice::Config config;
    config.switch_point_override = options.switch_point_override;
    if (options.enable_forwarding) {
      // A second channel per network, dedicated to forwarded traffic:
      // channel isolation keeps relays from ever matching direct messages.
      int counter = 0;
      for (const auto& network : cluster().networks) {
        std::string name = std::string("fwd-") +
                           sim::protocol_keyword(network.protocol) + "-" +
                           std::to_string(counter++);
        config.forward_channels.push_back(
            &madeleine_->open_channel(network, std::move(name)));
      }
    }
    internode_ = std::make_unique<ChMadDevice>(
        directory_, madeleine_->open_default_channels(), config);
  }
  if (internode_) internode_->start();
}

Session::~Session() { finalize(); }

void Session::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (internode_) internode_->shutdown();
  madeleine_->close_all();
}

mpi::Device& Session::device_for(rank_t src, rank_t dst) {
  if (src == dst) return *ch_self_;
  if (directory_.same_node(src, dst)) return *smp_plug_;
  MADMPI_CHECK_MSG(internode_ != nullptr,
                   "inter-node message but no inter-node device configured");
  MADMPI_CHECK_MSG(internode_->reaches(src, dst),
                   "destination unreachable: the nodes share no network "
                   "(enable forwarding or fix the topology)");
  return *internode_;
}

int Session::derive_context_id(int parent_context, std::int64_t key) {
  std::lock_guard<std::mutex> lock(context_mutex_);
  auto [it, inserted] =
      derived_contexts_.try_emplace({parent_context, key}, next_context_);
  if (inserted) next_context_ += 2;  // each comm owns (p2p, collective)
  return it->second;
}

void Session::run(const std::function<void(mpi::Comm)>& rank_main) {
  MADMPI_CHECK_MSG(!finalized_, "run() after finalize()");
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size()));
  for (rank_t rank = 0; rank < world_size(); ++rank) {
    threads.emplace_back(
        [this, rank, &rank_main] { rank_main(comm_world(rank)); });
  }
  for (auto& thread : threads) thread.join();
}

ChMadDevice* Session::ch_mad() {
  return dynamic_cast<ChMadDevice*>(internode_.get());
}

mad::Channel& Session::open_raw_channel(std::size_t network_index,
                                        const std::string& name) {
  MADMPI_CHECK(network_index < cluster().networks.size());
  return madeleine_->open_channel(cluster().networks[network_index], name);
}

void Session::print_stats(std::FILE* out) {
  std::fprintf(out, "%-16s %-8s %10s %14s %8s %8s\n", "channel", "proto",
               "messages", "bytes", "drops", "retries");
  for (mad::Channel* channel : madeleine_->channels()) {
    const auto stats = channel->traffic();
    std::fprintf(out,
                 "%-16s %-8s %10" PRIu64 " %14" PRIu64 " %8" PRIu64
                 " %8" PRIu64 "\n",
                 channel->name().c_str(),
                 sim::protocol_name(channel->protocol()),
                 stats.messages_sent, stats.bytes_sent, stats.frames_dropped,
                 stats.retransmits);
  }
  if (auto* device = ch_mad()) {
    std::fprintf(out,
                 "ch_mad: %" PRIu64 " eager, %" PRIu64 " rendezvous, %" PRIu64
                 " forwarded, %" PRIu64 " failovers (switch point %zu B)\n",
                 device->eager_sent(), device->rendezvous_sent(),
                 device->forwarded(), device->failovers(),
                 device->switch_point());
  }
}

void Session::reset_clocks() {
  for (std::size_t n = 0; n < cluster().nodes.size(); ++n) {
    fabric_.node(static_cast<node_id_t>(n)).clock().reset();
  }
}

}  // namespace madmpi::core
