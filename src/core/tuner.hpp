// Automatic eager/rendezvous switch-point calibration.
//
// The paper fixes the per-network switch points experimentally (64 KB /
// 8 KB / 7 KB) and notes that "those values could be determined
// automatically in future works". This tuner does exactly that: it times
// ping-pongs with the device forced into each mode across a size ladder
// and returns the crossover, refined by bisection.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"

namespace madmpi::core {

struct TunerResult {
  sim::Protocol protocol;
  std::size_t switch_point_bytes = 0;
  /// (size, eager one-way us, rendezvous one-way us) samples taken.
  struct Sample {
    std::size_t bytes;
    double eager_us;
    double rendezvous_us;
  };
  std::vector<Sample> samples;
};

/// Measure the crossover for one protocol on a dedicated two-node cluster.
/// `resolution` bounds the bisection interval width in bytes.
TunerResult tune_switch_point(sim::Protocol protocol,
                              std::size_t resolution = 256);

}  // namespace madmpi::core
