// mpptest-style ping-pong measurement in virtual time (the paper's test
// program, §5.1). Used by every figure benchmark and by the switch-point
// auto-tuner.
#pragma once

#include <cstddef>

#include "core/session.hpp"

namespace madmpi::core {

struct PingPongResult {
  usec_t one_way_us = 0.0;     // transfer time (half round trip)
  double bandwidth_mb_s = 0.0; // paper convention: 1 MB = 2^20 bytes
};

/// MPI-level ping-pong between ranks 0 and 1 of the session's world:
/// `reps` round trips of `bytes`-byte messages, timed on rank 0's node
/// clock. Deterministic (virtual time), so few reps suffice.
PingPongResult mpi_pingpong(Session& session, std::size_t bytes,
                            int reps = 4);

/// Raw Madeleine ping-pong over one channel between two nodes, one pack
/// per message (exactly the paper's "raw Madeleine" baseline curves).
PingPongResult raw_madeleine_pingpong(mad::Channel& channel, node_id_t a,
                                      node_id_t b, std::size_t bytes,
                                      int reps = 4);

}  // namespace madmpi::core
