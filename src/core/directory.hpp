// The rank directory: where every global rank lives and its matching
// context. Shared read-only by all devices after session setup.
#pragma once

#include <memory>
#include <vector>

#include "mpi/matching.hpp"
#include "sim/node.hpp"

namespace madmpi::core {

class RankDirectory {
 public:
  struct Entry {
    sim::Node* node = nullptr;
    int local_index = 0;  // position of the rank on its node
    std::unique_ptr<mpi::RankContext> context;
  };

  void add_rank(sim::Node& node, int local_index) {
    const auto global = static_cast<rank_t>(entries_.size());
    Entry entry;
    entry.node = &node;
    entry.local_index = local_index;
    entry.context = std::make_unique<mpi::RankContext>(global, node);
    entries_.push_back(std::move(entry));
  }

  int size() const { return static_cast<int>(entries_.size()); }

  sim::Node& node_of(rank_t global) { return *at(global).node; }
  mpi::RankContext& context_of(rank_t global) { return *at(global).context; }
  int local_index_of(rank_t global) { return at(global).local_index; }

  bool same_node(rank_t a, rank_t b) {
    return at(a).node->id() == at(b).node->id();
  }

 private:
  Entry& at(rank_t global) {
    MADMPI_CHECK(global >= 0 &&
                 static_cast<std::size_t>(global) < entries_.size());
    return entries_[static_cast<std::size_t>(global)];
  }
  std::vector<Entry> entries_;
};

}  // namespace madmpi::core
