// The smp_plug device: intra-node, inter-process communication over shared
// memory (paper §4.1; originating in the SMP implementation of MPI-BIP).
#pragma once

#include <atomic>
#include <map>
#include <mutex>

#include "core/directory.hpp"
#include "marcel/semaphore.hpp"
#include "mpi/adi.hpp"

namespace madmpi::core {

/// Ranks on the same node exchange messages through a shared segment.
/// Eager: copy in + copy out (the second copy is charged by the matching
/// layer). Rendezvous (above the shared-segment size): the sender parks on
/// a semaphore until the receive is posted, then writes straight into the
/// destination buffer — a genuine single-copy handoff, no polling thread
/// needed because both parties share the node.
class SmpPlugDevice final : public mpi::Device {
 public:
  explicit SmpPlugDevice(RankDirectory& directory);

  const char* name() const override { return "smp_plug"; }

  std::size_t rendezvous_threshold() const override { return kSegmentBytes; }

  bool reaches(rank_t src, rank_t dst) const override;

  Status send(rank_t src, rank_t dst, const mpi::Envelope& env,
              byte_span packed, mpi::TransferMode mode) override;

  /// Nonblocking rendezvous: the announcement lands on the calling
  /// thread (keeping per-source delivery order), and the single-copy
  /// handoff runs from the match callback — charged to whichever side
  /// performs the match — completing both requests there.
  bool isend_rendezvous(rank_t src, rank_t dst, const mpi::Envelope& env,
                        byte_span packed, std::vector<std::byte> owned,
                        std::shared_ptr<mpi::RequestState> state) override;

  /// Shared-segment capacity: eager messages up to this size.
  static constexpr std::size_t kSegmentBytes = 32 * 1024;
  static constexpr usec_t kPostUs = 0.3;   // FIFO slot reservation
  static constexpr usec_t kWakeUs = 0.4;   // peer notification

 private:
  RankDirectory& directory_;
};

}  // namespace madmpi::core
