// Eager/rendezvous switch points (paper Section 4.2.2).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/cost_model.hpp"

namespace madmpi::core {

/// The experimentally determined per-network switch values of the paper:
/// TCP/Fast-Ethernet 64 KB, SISCI/SCI 8 KB, BIP/Myrinet 7 KB.
std::size_t network_switch_point(sim::Protocol protocol);

/// The single device-wide threshold the ADI allows (MPID_Device reserves
/// one integer). Election rule from the paper: if SCI is among the
/// supported networks its value (8 KB) wins, because SCI's switch point is
/// the most influential; otherwise the most performant network's value is
/// used (e.g. Myrinet's 7 KB beats TCP's 64 KB in a Myrinet+TCP cluster).
std::size_t elect_switch_point(const std::vector<sim::Protocol>& protocols);

/// Relative performance rank used by the election and by channel routing
/// (higher is better).
int protocol_performance_rank(sim::Protocol protocol);

/// True for protocols that only connect ranks of the same node (shared
/// memory). Intra-node protocols never take part in the device-wide
/// switch-point election: the threshold tunes *network* traffic, and smp
/// transfers are handled by smp_plug with its own crossover.
bool is_intra_node_protocol(sim::Protocol protocol);

/// Default per-peer eager credit window, derived from the elected switch
/// point: sixteen maximum-size eager messages may be in flight to one
/// peer before the sender runs dry. Every eager message is charged its
/// payload plus the per-message overhead the receiver's unexpected store
/// charges, so the window and the store budget speak the same unit.
std::size_t default_credit_window(std::size_t switch_point);

}  // namespace madmpi::core
