// ch_mad packet structure (paper Section 4.2.1, Figure 5).
//
// Every MPI message is one Madeleine message built from one or two packets:
// a header packed EXPRESS (it carries what is needed to unpack the body)
// and, for data-bearing types only, a body packed CHEAPER. The five packet
// types mirror the paper exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mpi/rma.hpp"
#include "mpi/types.hpp"

namespace madmpi::core {

enum class PacketType : std::uint8_t {
  kShort = 1,      // MAD_SHORT_PKT: eager data (header + body)
  kRndvRequest,    // MAD_REQUEST_PKT: rendezvous request (header only)
  kRndvOkToSend,   // MAD_SENDOK_PKT: rendezvous ack (header only)
  kRndvData,       // MAD_RNDV_PKT: rendezvous data (header + body)
  kTerm,           // MAD_TERM_PKT: program termination (empty buffer)
  kCredit,         // MAD_CREDIT_PKT: flow-control credit return
                   // (header only; used when no reverse traffic exists
                   // to piggyback credits on)

  // One-sided extension (no paper equivalent; ROADMAP "RMA over the slab
  // pool"). Data-bearing kinds carry a body; the rest are header-only.
  kRmaPut,         // header + body landing at rma.offset in the window
  kRmaGet,         // get request (header only)
  kRmaGetReply,    // header + body: the requested window bytes
  kRmaAccumulate,  // header + body combined into the window with rma.op
  kRmaLock,        // passive-target lock request (header only)
  kRmaLockGrant,   // lock granted (header only)
  kRmaUnlock,      // lock release + completion fence (header only)
  kRmaSync,        // active-target completion fence (header only)
  kRmaAck,         // kRmaSync / kRmaUnlock acknowledgement (header only)
};

/// The fixed header carried EXPRESS with every ch_mad message. Contains the
/// type field plus the union-ish buffer of Figure 5 (here laid out flat:
/// unused fields are zero for types that do not need them).
struct PacketHeader {
  PacketType type = PacketType::kShort;

  // Routing: nodes may host several ranks, so the destination rank
  // identifies the matching context on the receiving node.
  rank_t src_global = kInvalidRank;
  rank_t dst_global = kInvalidRank;

  // MPI envelope (kShort, kRndvRequest).
  mpi::Envelope envelope;

  // Rendezvous bookkeeping:
  //  - kRndvRequest carries the sender's pending-send handle;
  //  - kRndvOkToSend echoes it and adds the receiver's sync_address
  //    (the MPID_RNDV_T hook of the paper: here an index into the
  //    receiver's rhandle table rather than a raw pointer);
  //  - kRndvData carries the sync_address so the polling thread can find
  //    the rhandle responsible for the transaction.
  std::uint64_t sender_handle = 0;
  std::uint64_t sync_address = 0;

  // Flow control: credits (in bytes) this node returns to the receiver of
  // the packet. Piggybacks on any reverse-direction packet (kRndvOkToSend
  // in particular) and rides alone on kCredit when the receiving side has
  // nothing else to say. `credit_origin` names the node RETURNING the
  // credits (the eager receiver whose store drained); the packet's
  // destination refills its per-peer account keyed by that node. Carried
  // explicitly so forwarded packets credit the right account.
  std::uint64_t credit_bytes = 0;
  node_id_t credit_origin = kInvalidNode;

  // One-sided descriptor (kRma* types only; zero otherwise). For replies
  // (kRmaGetReply/kRmaLockGrant/kRmaAck) `sender_handle` echoes the
  // origin's pending-operation handle. MUST stay the last member: the wire
  // carries it only on kRma* packets (see kBaseHeaderBytes).
  mpi::RmaDesc rma;
};

constexpr bool is_rma(PacketType type) {
  return type >= PacketType::kRmaPut && type <= PacketType::kRmaAck;
}

/// Wire size of the header on two-sided packets. RMA packets append the
/// descriptor as a second EXPRESS block; everything else sends only the
/// base bytes, so the paper-era header does not grow by sizeof(RmaDesc).
inline constexpr std::size_t kBaseHeaderBytes = offsetof(PacketHeader, rma);

}  // namespace madmpi::core
