// The ch_self device: intra-process (rank-to-itself) communication
// (paper §4.1; the loop-back device every MPICH instantiation carries).
#pragma once

#include "core/directory.hpp"
#include "mpi/adi.hpp"

namespace madmpi::core {

/// Self sends never touch a network: the payload moves with one host copy
/// into the rank's own matching context. Always eager — a rendezvous with
/// oneself on a single thread would deadlock, and there is no copy to save.
class ChSelfDevice final : public mpi::Device {
 public:
  explicit ChSelfDevice(RankDirectory& directory) : directory_(directory) {}

  const char* name() const override { return "ch_self"; }

  std::size_t rendezvous_threshold() const override {
    return static_cast<std::size_t>(-1);  // never rendezvous
  }

  bool reaches(rank_t src, rank_t dst) const override { return src == dst; }

  Status send(rank_t src, rank_t dst, const mpi::Envelope& env,
              byte_span packed, mpi::TransferMode mode) override {
    MADMPI_CHECK_MSG(src == dst, "ch_self used for a non-self message");
    (void)mode;  // self transfers are always effectively eager
    sim::Node& node = directory_.node_of(src);
    node.clock().advance(kSelfOverheadUs);
    directory_.context_of(dst).deliver_eager(env, packed);
    return Status::ok();
  }

  /// A self "rendezvous" (MPI_Issend to oneself) delivers eagerly like
  /// every other self transfer and completes inline — parking a thread
  /// would only add cost, and ordering is trivially program order.
  bool isend_rendezvous(rank_t src, rank_t dst, const mpi::Envelope& env,
                        byte_span packed, std::vector<std::byte> owned,
                        std::shared_ptr<mpi::RequestState> state) override {
    (void)owned;  // payload already delivered below; staging dies here
    Status result = send(src, dst, env, packed, mpi::TransferMode::kEager);
    mpi::MpiStatus status;
    status.source = env.dst;
    status.tag = env.tag;
    status.bytes = env.bytes;
    status.error = result.code();
    state->complete(status);
    return true;
  }

  static constexpr usec_t kSelfOverheadUs = 0.4;

 private:
  RankDirectory& directory_;
};

}  // namespace madmpi::core
