#include "core/ch_mad.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>

#include "common/datapath_stats.hpp"
#include "common/log.hpp"
#include "core/switchpoint.hpp"
#include "marcel/engine.hpp"
#include "marcel/thread.hpp"
#include "sim/cost_model.hpp"
#include "sim/sched.hpp"
#include "sim/trace.hpp"

namespace madmpi::core {

ChMadDevice::ChMadDevice(RankDirectory& directory,
                         std::vector<mad::Channel*> channels)
    : ChMadDevice(directory, std::move(channels), Config{}) {}

ChMadDevice::ChMadDevice(RankDirectory& directory,
                         std::vector<mad::Channel*> channels, Config config)
    : directory_(directory),
      router_(std::move(channels)),
      forward_channels_router_(std::move(config.forward_channels)) {
  switch_point_ = config.switch_point_override.has_value()
                      ? *config.switch_point_override
                      : elect_switch_point(router_.protocols());
  if (config.credit_window_bytes == SIZE_MAX) {
    credit_window_ = 0;  // flow control disabled
  } else if (config.credit_window_bytes != 0) {
    credit_window_ = config.credit_window_bytes;
  } else {
    credit_window_ = default_credit_window(switch_point_);
  }
  credit_policy_ = config.credit_policy;
  rma_direct_ = config.rma_direct;
  rma_put_limit_ = config.rma_put_limit;
  if (!forward_channels_router_.channels().empty()) {
    forward_router_.emplace(router_);
  }

  // One NodeState per node appearing in any channel (direct or forward).
  auto add_members = [this](const std::vector<mad::Channel*>& channels) {
    for (mad::Channel* channel : channels) {
      for (node_id_t member : channel->members()) {
        auto& slot = states_[member];
        if (!slot) {
          slot = std::make_unique<NodeState>();
          slot->node = &channel->at(member)->node();
          slot->poll_server =
              std::make_unique<marcel::PollServer>(*slot->node);
        }
      }
    }
  };
  add_members(router_.channels());
  add_members(forward_channels_router_.channels());
}

ChMadDevice::~ChMadDevice() {
  if (started_) shutdown();
}

ChMadDevice::NodeState& ChMadDevice::state_of(node_id_t node) {
  auto it = states_.find(node);
  MADMPI_CHECK_MSG(it != states_.end(), "node not covered by ch_mad");
  return *it->second;
}

bool ChMadDevice::reaches(rank_t src, rank_t dst) const {
  if (src == dst) return false;
  sim::Node& src_node = directory_.node_of(src);
  sim::Node& dst_node = directory_.node_of(dst);
  if (src_node.id() == dst_node.id()) return false;
  if (router_.route(src_node.id(), dst_node.id()) != nullptr) return true;
  return forward_router_.has_value() &&
         forward_router_->connected(src_node.id(), dst_node.id());
}

void ChMadDevice::start() {
  MADMPI_CHECK_MSG(!started_, "ch_mad started twice");
  started_ = true;

  // Direct channels: pollers dispatch ch_mad packets straight away.
  // Forwarding channels: pollers first read the routing header and either
  // relay (gateway role) or dispatch locally (final hop).
  auto spawn_pollers = [this](mad::Channel* channel, bool forwarding) {
    for (node_id_t member : channel->members()) {
      mad::ChannelEndpoint* endpoint = channel->at(member);
      NodeState* state = states_.at(member).get();
      auto terms_seen = std::make_shared<int>(0);
      const int peers = static_cast<int>(channel->members().size()) - 1;
      state->poll_server->add_poller(
          channel->id(), channel->poll_cost(),
          [this, state, endpoint, channel, terms_seen, peers, forwarding,
           member] {
            auto incoming = endpoint->begin_unpacking();
            if (!incoming) return false;  // channel closed
            state->poll_server->charge_wakeup(channel->id());
            if (forwarding) {
              mad::ForwardHeader fwd;
              incoming->unpack(&fwd, sizeof fwd, mad::SendMode::kSafer,
                               mad::RecvMode::kExpress);
              if (fwd.final_dst != member) {
                relay(member, fwd, *incoming);
                return true;
              }
            }
            handle_message(*state, *incoming, terms_seen.get());
            return *terms_seen < peers;
          });
    }
  };
  for (mad::Channel* channel : router_.channels()) {
    spawn_pollers(channel, /*forwarding=*/false);
  }
  for (mad::Channel* channel : forward_channels_router_.channels()) {
    spawn_pollers(channel, /*forwarding=*/true);
  }
}

void ChMadDevice::shutdown() {
  MADMPI_CHECK_MSG(started_, "ch_mad shutdown before start");
  // Workload traffic is done: everything the pollers handle from here on
  // (late credit returns, TERM broadcasts) is teardown drain and must not
  // leak into the DatapathStats wakeup counter.
  for (auto& [node_id, state] : states_) {
    state->poll_server->begin_drain();
  }
  // Phase 0: let in-flight credit-return threads finish. Application
  // traffic has quiesced, so no new ones can appear; waiting here keeps a
  // straggling MAD_CREDIT_PKT from racing channel close below.
  {
    std::unique_lock<std::mutex> lock(credit_threads_mutex_);
    credit_threads_cv_.wait(lock, [this] { return credit_threads_ == 0; });
  }
  // Phase 1: every node announces termination to every direct peer, on
  // direct channels plainly and on forwarding channels wrapped in a
  // final-hop routing header.
  // Termination packets travel in teardown mode: out-of-band delivery that
  // bypasses fault injection, so pollers always drain their term quota and
  // join() cannot hang behind a dead link.
  PacketHeader term;
  term.type = PacketType::kTerm;
  for (mad::Channel* channel : router_.channels()) {
    for (node_id_t member : channel->members()) {
      mad::ChannelEndpoint* endpoint = channel->at(member);
      for (node_id_t peer : channel->members()) {
        if (peer == member) continue;
        mad::Packing packing =
            endpoint->begin_packing(peer, net::DeliveryMode::kTeardown);
        packing.pack(&term, kBaseHeaderBytes, mad::SendMode::kSafer,
                     mad::RecvMode::kExpress);
        packing.end_packing();
      }
    }
  }
  for (mad::Channel* channel : forward_channels_router_.channels()) {
    for (node_id_t member : channel->members()) {
      mad::ChannelEndpoint* endpoint = channel->at(member);
      for (node_id_t peer : channel->members()) {
        if (peer == member) continue;
        mad::ForwardHeader header;
        header.origin = member;
        header.final_dst = peer;
        mad::Packing packing =
            endpoint->begin_packing(peer, net::DeliveryMode::kTeardown);
        packing.pack(&header, sizeof header, mad::SendMode::kSafer,
                     mad::RecvMode::kExpress);
        packing.pack(&term, kBaseHeaderBytes, mad::SendMode::kSafer,
                     mad::RecvMode::kExpress);
        packing.end_packing();
      }
    }
  }
  // Phase 2: pollers drain and exit, then channels close.
  for (auto& [node_id, state] : states_) {
    state->poll_server->join();
  }
  for (mad::Channel* channel : router_.channels()) channel->close();
  for (mad::Channel* channel : forward_channels_router_.channels()) {
    channel->close();
  }
  started_ = false;
}

Status ChMadDevice::send_packet(node_id_t src_node, node_id_t dst_node,
                                const PacketHeader& header, byte_span body,
                                bool rma_data) {
  // Failover loop: elect the best *live* direct channel and try it. A
  // failed delivery marks the link dead inside the transport, so the next
  // route() election yields the next-best protocol (e.g. SCI down -> TCP).
  // The loop terminates because link health only ever worsens and the
  // channel set is finite.
  while (mad::Channel* direct = router_.route(src_node, dst_node)) {
    mad::ChannelEndpoint* endpoint = direct->at(src_node);
    net::DeliveryMode mode = net::DeliveryMode::kNormal;
    if (rma_data) {
      // One-sided initiation cost of the elected network (SISCI's mapped
      // PIO is near-free, TCP emulation pays a syscall-ish setup). A
      // failover retry re-issues the operation and pays again.
      endpoint->node().clock().advance(endpoint->model().rma_put_us);
      if (rma_direct_ && direct->driver().supports_rma_direct()) {
        mode = net::DeliveryMode::kRmaDirect;
      }
    }
    mad::Packing packing = endpoint->begin_packing(dst_node, mode);
    packing.pack(&header, kBaseHeaderBytes, mad::SendMode::kSafer,
                 mad::RecvMode::kExpress);
    if (is_rma(header.type)) {
      packing.pack(&header.rma, sizeof header.rma, mad::SendMode::kSafer,
                   mad::RecvMode::kExpress);
    }
    if (!body.empty()) {
      packing.pack(body.data(), body.size(), mad::SendMode::kLater,
                   mad::RecvMode::kCheaper);
    }
    Status status = packing.end_packing();
    if (status.is_ok()) return status;

    failovers_.fetch_add(1, std::memory_order_relaxed);
    sim::trace(state_of(src_node).node->clock().now(), src_node,
               sim::TraceCategory::kFailover, body.size(),
               sim::protocol_name(direct->protocol()));
    // Multi-hop routes may have crossed the dead link too.
    if (forward_router_.has_value()) forward_router_->rebuild();
  }

  // Every direct protocol is down (or the pair never shared a network):
  // gateway forwarding is the last resort.
  if (!forward_router_.has_value()) {
    return Status(ErrorCode::kUnreachable,
                  "no live channel to node " + std::to_string(dst_node) +
                      " and forwarding is disabled");
  }
  const node_id_t next = forward_router_->next_hop(src_node, dst_node);
  if (next == kInvalidNode) {
    return Status(ErrorCode::kUnreachable,
                  "no forwarding path to node " + std::to_string(dst_node));
  }
  mad::Channel* egress = forward_channels_router_.route(src_node, next);
  if (egress == nullptr) {
    return Status(ErrorCode::kUnreachable,
                  "no live forwarding channel towards node " +
                      std::to_string(next));
  }

  mad::ForwardHeader fwd;
  fwd.origin = src_node;
  fwd.final_dst = dst_node;
  mad::Packing packing = egress->at(src_node)->begin_packing(next);
  packing.pack(&fwd, sizeof fwd, mad::SendMode::kSafer,
               mad::RecvMode::kExpress);
  packing.pack(&header, kBaseHeaderBytes, mad::SendMode::kSafer,
               mad::RecvMode::kExpress);
  if (is_rma(header.type)) {
    packing.pack(&header.rma, sizeof header.rma, mad::SendMode::kSafer,
                 mad::RecvMode::kExpress);
  }
  if (!body.empty()) {
    packing.pack(body.data(), body.size(), mad::SendMode::kLater,
                 mad::RecvMode::kCheaper);
  }
  return packing.end_packing();
}

void ChMadDevice::relay(node_id_t me, mad::ForwardHeader fwd,
                        mad::Unpacking& incoming) {
  // Drain everything before touching the egress channel: a message whose
  // sender aborted mid-flight must be discarded here, not half-relayed.
  std::vector<mad::Unpacking::DrainedBlock> blocks;
  while (auto block = incoming.drain_block()) {
    blocks.push_back(std::move(*block));
  }
  incoming.end_unpacking();
  if (incoming.aborted()) return;  // origin retries end-to-end

  const node_id_t next = forward_router_->next_hop(me, fwd.final_dst);
  MADMPI_CHECK_MSG(next != kInvalidNode,
                   "gateway has no route to the final destination");
  mad::Channel* egress = forward_channels_router_.route(me, next);
  MADMPI_CHECK_MSG(egress != nullptr, "no forwarding channel to next hop");

  ++fwd.hops;
  mad::Packing out = egress->at(me)->begin_packing(next);
  out.pack(&fwd, sizeof fwd, mad::SendMode::kSafer, mad::RecvMode::kExpress);
  for (const auto& block : blocks) {
    // Zero-copy relay: the drained chunk reference is repacked as-is; a
    // separate egress block travels by refcount bump instead of a staging
    // copy (pack_chunk charges kSafer identically to pack).
    out.pack_chunk(block.chunk, mad::SendMode::kSafer,
                   block.express ? mad::RecvMode::kExpress
                                 : mad::RecvMode::kCheaper);
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  sim::trace(states_.at(me)->node->clock().now(), me,
             sim::TraceCategory::kRelay, 0, "gateway");
  out.end_packing();
}

Status ChMadDevice::send(rank_t src, rank_t dst, const mpi::Envelope& env,
                         byte_span packed, mpi::TransferMode mode) {
  sim::Node& src_node = directory_.node_of(src);
  sim::Node& dst_node = directory_.node_of(dst);

  PacketHeader header;
  header.src_global = src;
  header.dst_global = dst;
  header.envelope = env;

  if (mode == mpi::TransferMode::kEager) {
    // MAD_SHORT_PKT: the ADI short packet is split (paper §4.2.2) — its
    // header travels in the ch_mad message header, the user data directly
    // as the message body, avoiding the copy into a padded
    // MPID_PKT_MAX_DATA_SIZE buffer on the sending side.
    header.type = PacketType::kShort;
    eager_sent_.fetch_add(1, std::memory_order_relaxed);
    Status status = send_packet(src_node.id(), dst_node.id(), header, packed);
    if (!status.is_ok() && credit_window_ != 0) {
      // The message never left: hand the admission's credits back so a
      // dead peer does not also bleed the sender's window dry.
      refund_credit(src_node.id(), dst_node.id(),
                    packed.size() +
                        mpi::RankContext::kUnexpectedEntryOverhead);
    }
    return status;
  }

  // Rendezvous (paper §4.2.2): 1) request; 2) peer acknowledges with its
  // sync_address once a receive is posted; 3) data goes out zero-copy.
  rendezvous_sent_.fetch_add(1, std::memory_order_relaxed);
  NodeState& state = state_of(src_node.id());
  PendingSend pending;
  pending.data = packed;
  pending.header = header;
  pending.done = std::make_unique<marcel::Semaphore>(src_node, 0);
  pending.peer_node = dst_node.id();
  pending.started_at = src_node.clock().now();

  std::uint64_t handle = 0;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    handle = state.next_send_handle++;
    state.pending_sends[handle] = &pending;
  }
  header.type = PacketType::kRndvRequest;
  header.sender_handle = handle;
  Status status = send_packet(src_node.id(), dst_node.id(), header, {});
  if (!status.is_ok()) {
    // The request never left: unregister and report. (If the request
    // arrived but the *reply* path is severed, the sender waits — reverse
    // routes are the receiver's to re-elect; see DESIGN.md.)
    std::lock_guard<std::mutex> lock(state.mutex);
    state.pending_sends.erase(handle);
    return status;
  }

  // Park until the polling thread's data-push thread finished step 3 (or
  // the watchdog gave up on the peer and completed the send with an
  // error — it removes the handle from the table before signalling, so
  // the erase below is a harmless no-op then).
  pending.done->wait();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.pending_sends.erase(handle);
  }
  return pending.result;
}

bool ChMadDevice::isend_rendezvous(rank_t src, rank_t dst,
                                   const mpi::Envelope& env, byte_span packed,
                                   std::vector<std::byte> owned,
                                   std::shared_ptr<mpi::RequestState> state) {
  sim::Node& src_node = directory_.node_of(src);
  sim::Node& dst_node = directory_.node_of(dst);
  rendezvous_sent_.fetch_add(1, std::memory_order_relaxed);
  NodeState& node_state = state_of(src_node.id());

  // Heap entry: nobody parks on it, so its lifetime is owned by whichever
  // finishing path runs (data push, cancel, or the watchdog).
  auto* pending = new PendingSend;
  pending->data = packed;
  pending->header.src_global = src;
  pending->header.dst_global = dst;
  pending->header.envelope = env;
  pending->peer_node = dst_node.id();
  pending->started_at = src_node.clock().now();
  pending->completion = std::move(state);
  pending->owned = std::move(owned);

  {
    std::lock_guard<std::mutex> lock(node_state.mutex);
    pending->handle = node_state.next_send_handle++;
    node_state.pending_sends[pending->handle] = pending;
  }
  PacketHeader header = pending->header;
  header.type = PacketType::kRndvRequest;
  header.sender_handle = pending->handle;
  // The request goes out on the calling thread: injection order per
  // source stays the program order the matching layer's FIFO relies on.
  Status status = send_packet(src_node.id(), dst_node.id(), header, {});
  if (!status.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(node_state.mutex);
      node_state.pending_sends.erase(pending->handle);
    }
    pending->result = status;
    finish_pending_send(node_state, pending, /*still_registered=*/false);
  }
  return true;
}

void ChMadDevice::finish_pending_send(NodeState& state, PendingSend* pending,
                                      bool still_registered) {
  if (pending->completion == nullptr) {
    // Blocking entry: the parked sender owns it and may return (destroying
    // it) the instant the semaphore releases — never touch it afterwards.
    pending->done->signal();
    return;
  }
  if (still_registered) {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.pending_sends.erase(pending->handle);
  }
  mpi::MpiStatus status;
  status.source = pending->header.envelope.dst;  // send-side: peer and tag
  status.tag = pending->header.envelope.tag;
  status.bytes = pending->header.envelope.bytes;
  status.error = pending->result.code();
  pending->completion->complete(status);
  delete pending;
}

Status ChMadDevice::rma(rank_t src, rank_t dst, const mpi::RmaDesc& desc,
                        byte_span payload, void* get_dest,
                        std::shared_ptr<mpi::RequestState> completion) {
  sim::Node& src_node = directory_.node_of(src);
  sim::Node& dst_node = directory_.node_of(dst);
  if (rma_put_limit_ != 0 && desc.bytes > rma_put_limit_) {
    return Status(ErrorCode::kResourceLimit,
                  "one-sided payload of " + std::to_string(desc.bytes) +
                      " bytes exceeds MADMPI_RMA_PUT_LIMIT (" +
                      std::to_string(rma_put_limit_) + ")");
  }

  PacketHeader header;
  header.src_global = src;
  header.dst_global = dst;
  header.rma = desc;
  // The envelope rides along for tracing and byte-order: one-sided wire
  // data travels in the origin's order, converted on landing.
  header.envelope.src = src;
  header.envelope.dst = dst;
  header.envelope.bytes = desc.bytes;
  header.envelope.sender_big_endian = src_node.big_endian();
  switch (desc.kind) {
    case mpi::RmaKind::kPut: header.type = PacketType::kRmaPut; break;
    case mpi::RmaKind::kGet: header.type = PacketType::kRmaGet; break;
    case mpi::RmaKind::kAccumulate:
      header.type = PacketType::kRmaAccumulate;
      break;
    case mpi::RmaKind::kLock: header.type = PacketType::kRmaLock; break;
    case mpi::RmaKind::kUnlock: header.type = PacketType::kRmaUnlock; break;
    case mpi::RmaKind::kSync: header.type = PacketType::kRmaSync; break;
    default:
      return Status(ErrorCode::kInvalidArgument,
                    "not an origin-issued one-sided kind");
  }

  NodeState& state = state_of(src_node.id());
  std::uint64_t handle = 0;
  if (completion != nullptr) {
    std::lock_guard<std::mutex> lock(state.mutex);
    handle = state.next_rma_handle++;
    RmaPending pending;
    pending.completion = std::move(completion);
    pending.get_dest = get_dest;
    pending.bytes = desc.kind == mpi::RmaKind::kGet ? desc.bytes : 0;
    state.rma_pending[handle] = std::move(pending);
    header.sender_handle = handle;
  }

  rma_ops_sent_.fetch_add(1, std::memory_order_relaxed);
  Status status =
      send_packet(src_node.id(), dst_node.id(), header, payload,
                  /*rma_data=*/true);
  if (!status.is_ok() && handle != 0) {
    // The op never left; nobody will ever reply to the handle.
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rma_pending.erase(handle);
  }
  return status;
}

bool ChMadDevice::admit_eager(rank_t src, rank_t dst, std::uint64_t bytes,
                              bool may_block) {
  if (credit_window_ == 0) return true;
  const std::size_t charge = static_cast<std::size_t>(bytes) +
                             mpi::RankContext::kUnexpectedEntryOverhead;
  if (charge > credit_window_) return false;  // can never fit: rendezvous
  const node_id_t src_node = directory_.node_of(src).id();
  const node_id_t dst_node = directory_.node_of(dst).id();
  if (src_node == dst_node) return true;  // not this device's traffic
  NodeState& state = state_of(src_node);
  std::unique_lock<std::mutex> lock(state.mutex);
  CreditAccount& account = account_of(state, dst_node);
  bool waited = false;
  for (;;) {
    if (account.available >= charge) {
      account.available -= charge;
      if (waited) {
        // Causal edge: the send could not proceed before the receiver's
        // drain refilled the window.
        state.node->clock().sync_to(account.last_refill);
      }
      return true;
    }
    if (!may_block || credit_policy_ == CreditPolicy::kDemote) {
      eager_demoted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // kBlock: park until credits flow back. A peer that became
    // unreachable will never return them — demote and let the rendezvous
    // path surface the error.
    if (router_.route(src_node, dst_node) == nullptr &&
        (!forward_router_.has_value() ||
         !forward_router_->connected(src_node, dst_node))) {
      eager_demoted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!waited) credit_stalls_.fetch_add(1, std::memory_order_relaxed);
    waited = true;
    if (marcel::on_fiber()) {
      // Sharded engine: park the sender fiber until the window refills or
      // the route dies (re-checked under the account lock on resume). The
      // route probe runs outside the node mutex, matching the lock order
      // of the blocking path above.
      lock.unlock();
      marcel::park_until([this, &state, src_node, dst_node, charge] {
        {
          std::lock_guard<std::mutex> guard(state.mutex);
          if (account_of(state, dst_node).available >= charge) return true;
        }
        return router_.route(src_node, dst_node) == nullptr &&
               (!forward_router_.has_value() ||
                !forward_router_->connected(src_node, dst_node));
      });
      lock.lock();
    } else {
      state.credit_cv.wait_for(lock, std::chrono::milliseconds(2));
    }
  }
}

ChMadDevice::CreditAccount& ChMadDevice::account_of(NodeState& state,
                                                    node_id_t peer) {
  CreditAccount& account = state.credits[peer];
  if (!account.initialized) {
    account.initialized = true;
    account.available = credit_window_;
  }
  return account;
}

void ChMadDevice::credit_consumed(node_id_t me, node_id_t origin,
                                  std::size_t charge) {
  if (credit_window_ == 0 || me == origin) return;
  NodeState& state = state_of(me);
  std::size_t batch = 0;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    std::size_t& owed = state.pending_returns[origin];
    owed += charge;
    // Return credits in batches of half a window: often enough that a
    // sender never starves behind a draining receiver, rare enough that
    // credit traffic stays a sliver of data traffic. Smaller debts ride
    // for free on the next rendezvous ack towards the peer. Under schedule
    // exploration the threshold moves within [window/4, 3*window/4] per
    // batch epoch, shifting *when* the refill races the sender's stall
    // without ever losing a byte of credit.
    std::size_t threshold = credit_window_ / 2;
    if (auto* sched = sim::ScheduleController::current()) {
      threshold = sched->credit_batch_threshold(
          me, origin, state.credit_epochs[origin], credit_window_);
    }
    if (owed < threshold) return;
    ++state.credit_epochs[origin];
    batch = owed;
    owed = 0;
  }
  spawn_credit_thread(state, origin, batch);
}

void ChMadDevice::apply_credit(NodeState& state,
                               const PacketHeader& header) {
  if (credit_window_ == 0 || header.credit_bytes == 0 ||
      header.credit_origin == kInvalidNode) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    CreditAccount& account = account_of(state, header.credit_origin);
    account.available = std::min(
        account.available + static_cast<std::size_t>(header.credit_bytes),
        credit_window_);
    account.last_refill = state.node->clock().now();
    state.credit_cv.notify_all();
  }
  marcel::engine_notify();
}

void ChMadDevice::refund_credit(node_id_t src_node, node_id_t dst_node,
                                std::size_t charge) {
  if (credit_window_ == 0 || src_node == dst_node) return;
  NodeState& state = state_of(src_node);
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    CreditAccount& account = account_of(state, dst_node);
    account.available = std::min(account.available + charge, credit_window_);
    state.credit_cv.notify_all();
  }
  marcel::engine_notify();
}

std::size_t ChMadDevice::take_pending_returns(NodeState& state,
                                              node_id_t peer) {
  if (credit_window_ == 0) return 0;
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.pending_returns.find(peer);
  if (it == state.pending_returns.end() || it->second == 0) return 0;
  const std::size_t taken = it->second;
  it->second = 0;
  return taken;
}

std::size_t ChMadDevice::credits_available(node_id_t src_node,
                                           node_id_t dst_node) {
  NodeState& state = state_of(src_node);
  std::lock_guard<std::mutex> lock(state.mutex);
  return account_of(state, dst_node).available;
}

std::size_t ChMadDevice::credits_pending_return(node_id_t node,
                                                node_id_t peer) {
  NodeState& state = state_of(node);
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.pending_returns.find(peer);
  return it == state.pending_returns.end() ? 0 : it->second;
}

std::size_t ChMadDevice::pending_send_count(node_id_t node) {
  NodeState& state = state_of(node);
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.pending_sends.size();
}

bool ChMadDevice::try_cancel_send(rank_t src, rank_t dst,
                                  const mpi::Envelope& env) {
  NodeState& state = state_of(directory_.node_of(src).id());
  PendingSend* victim = nullptr;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto it = state.pending_sends.begin();
         it != state.pending_sends.end(); ++it) {
      PendingSend* pending = it->second;
      if (pending->phase != PendingSend::Phase::kAwaitAck) continue;
      const mpi::Envelope& have = pending->header.envelope;
      if (pending->header.src_global != src ||
          pending->header.dst_global != dst || have.context != env.context ||
          have.tag != env.tag || have.bytes != env.bytes) {
        continue;
      }
      victim = pending;
      state.pending_sends.erase(it);
      break;
    }
  }
  if (victim == nullptr) return false;  // data push started: too late
  victim->result = Status(ErrorCode::kCancelled,
                          "send cancelled before the receiver matched it");
  sim::trace(state.node->clock().now(), state.node->id(),
             sim::TraceCategory::kComplete, env.bytes, "cancel-send");
  finish_pending_send(state, victim, /*still_registered=*/false);
  return true;
}

std::size_t ChMadDevice::watchdog_sweep(const RouteDead& route_dead,
                                        usec_t horizon) {
  std::size_t canceled = 0;
  for (auto& [node_id, state_ptr] : states_) {
    NodeState& state = *state_ptr;
    const node_id_t me = node_id;

    // The route predicate takes channel/session locks, so consult it
    // without holding the node state mutex: snapshot the peers involved
    // in open rendezvous transactions, judge them unlocked, then re-take
    // the lock to detach the victims.
    std::vector<node_id_t> peers;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const auto& [handle, pending] : state.pending_sends) {
        if (pending->phase != PendingSend::Phase::kAwaitAck) continue;
        if (pending->peer_node == kInvalidNode) continue;
        if (std::find(peers.begin(), peers.end(), pending->peer_node) ==
            peers.end()) {
          peers.push_back(pending->peer_node);
        }
      }
      for (const auto& [sync, rhandle] : state.rhandles) {
        if (rhandle.origin_node == kInvalidNode) continue;
        if (std::find(peers.begin(), peers.end(), rhandle.origin_node) ==
            peers.end()) {
          peers.push_back(rhandle.origin_node);
        }
      }
    }
    std::vector<node_id_t> dead;
    for (node_id_t peer : peers) {
      // A rendezvous needs both directions: the request/ack leg and the
      // data leg. Either one severed for good means no completion.
      if (route_dead(peer, me) || route_dead(me, peer)) {
        dead.push_back(peer);
      }
    }
    if (dead.empty()) continue;

    std::vector<PendingSend*> dead_sends;
    std::vector<Rhandle> dead_rhandles;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (auto it = state.pending_sends.begin();
           it != state.pending_sends.end();) {
        PendingSend* pending = it->second;
        if (pending->phase == PendingSend::Phase::kAwaitAck &&
            std::find(dead.begin(), dead.end(), pending->peer_node) !=
                dead.end()) {
          dead_sends.push_back(pending);
          it = state.pending_sends.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = state.rhandles.begin(); it != state.rhandles.end();) {
        if (std::find(dead.begin(), dead.end(), it->second.origin_node) !=
            dead.end()) {
          dead_rhandles.push_back(std::move(it->second));
          it = state.rhandles.erase(it);
        } else {
          ++it;
        }
      }
    }

    for (PendingSend* pending : dead_sends) {
      // Deterministic stamp: the sender observes the error `horizon`
      // after it parked, not whenever this wall-clock thread fired.
      state.node->clock().bind_lane(pending->started_at + horizon);
      pending->result =
          Status(ErrorCode::kTimedOut,
                 "rendezvous abandoned: no route between node " +
                     std::to_string(me) + " and node " +
                     std::to_string(pending->peer_node));
      finish_pending_send(state, pending, /*still_registered=*/false);
      ++canceled;
    }
    for (Rhandle& rhandle : dead_rhandles) {
      state.node->clock().bind_lane(rhandle.created_at + horizon);
      mpi::MpiStatus status;
      status.source = rhandle.posted.source;
      status.tag = rhandle.posted.tag;
      status.bytes = 0;
      status.error = ErrorCode::kTimedOut;
      rhandle.posted.request->complete(status);
      ++canceled;
    }
  }
  return canceled;
}

void ChMadDevice::spawn_reply_thread(NodeState& state, node_id_t dst_node,
                                     PacketHeader header) {
  // Polling threads must not send (deadlock avoidance, §4.2.3): the
  // OK_TO_SEND goes out on a temporary thread. Detached: after its single
  // send it touches nothing.
  const node_id_t src_node = state.node->id();
  sim::Node* node = state.node;
  NodeState* state_ptr = &state;
  const usec_t birth = node->clock().advance(marcel::ThreadCosts::kCreate);
  std::thread([this, node, birth, src_node, dst_node, header,
               state_ptr]() mutable {
    node->clock().bind_lane(birth);
    // Piggyback any flow-control credits owed to the ack's destination:
    // the debt a receiver accumulates towards its eager senders rides on
    // rendezvous acks for free instead of costing its own packet.
    const std::size_t credits = take_pending_returns(*state_ptr, dst_node);
    if (credits != 0) {
      header.credit_bytes = credits;
      header.credit_origin = src_node;
    }
    // A failed OK_TO_SEND used to leave the sender parked on its
    // rendezvous forever; the progress watchdog now cancels the pending
    // send once the reply route is declared dead. The failover loop
    // inside send_packet makes this reachable only when the receiver has
    // *no* route back at all.
    Status status = send_packet(src_node, dst_node, header, {});
    if (!status.is_ok() && credits != 0) {
      std::lock_guard<std::mutex> lock(state_ptr->mutex);
      state_ptr->pending_returns[dst_node] += credits;
    }
  }).detach();
}

void ChMadDevice::spawn_rma_reply_thread(NodeState& state, node_id_t dst_node,
                                         PacketHeader header, ChunkRef body) {
  // One-sided replies (lock grants, fence acks, get replies) obey the
  // same pollers-never-send rule. The body chunk travels into the thread
  // by refcount; it dies with the lambda after the send.
  const node_id_t src_node = state.node->id();
  sim::Node* node = state.node;
  const usec_t birth = node->clock().advance(marcel::ThreadCosts::kCreate);
  std::thread([this, node, birth, src_node, dst_node, header,
               body = std::move(body)] {
    node->clock().bind_lane(birth);
    // Failure is survivable: the origin's watchdog/fence error path owns
    // recovery, the same as a lost rendezvous ack.
    Status status =
        send_packet(src_node, dst_node, header, body.span(), /*rma_data=*/true);
    if (!status.is_ok()) {
      MADMPI_LOG_WARN("ch_mad", "one-sided reply to node %d failed: %s",
                      static_cast<int>(dst_node), status.message().c_str());
    }
  }).detach();
}

void ChMadDevice::spawn_credit_thread(NodeState& state, node_id_t dst_node,
                                      std::size_t credit_bytes) {
  // Credit returns follow the same no-sends-from-pollers rule as
  // rendezvous acks. Tracked (not fire-and-forget): shutdown() waits for
  // stragglers before closing channels.
  const node_id_t src_node = state.node->id();
  sim::Node* node = state.node;
  const usec_t birth = node->clock().advance(marcel::ThreadCosts::kCreate);
  {
    std::lock_guard<std::mutex> lock(credit_threads_mutex_);
    ++credit_threads_;
  }
  std::thread([this, node, birth, src_node, dst_node, credit_bytes] {
    node->clock().bind_lane(birth);
    PacketHeader header;
    header.type = PacketType::kCredit;
    header.credit_bytes = credit_bytes;
    header.credit_origin = src_node;
    credit_packets_.fetch_add(1, std::memory_order_relaxed);
    Status status = send_packet(src_node, dst_node, header, {});
    if (!status.is_ok()) {
      // The peer is gone; put the debt back so credit conservation holds
      // for observers even though nobody will collect it.
      NodeState& origin_state = state_of(src_node);
      std::lock_guard<std::mutex> lock(origin_state.mutex);
      origin_state.pending_returns[dst_node] += credit_bytes;
    }
    {
      std::lock_guard<std::mutex> lock(credit_threads_mutex_);
      --credit_threads_;
      credit_threads_cv_.notify_all();
    }
  }).detach();
}

void ChMadDevice::spawn_data_thread(NodeState& state, node_id_t dst_node,
                                    PendingSend& pending,
                                    std::uint64_t sync_address) {
  const node_id_t src_node = state.node->id();
  sim::Node* node = state.node;
  const usec_t birth = node->clock().advance(marcel::ThreadCosts::kCreate);
  std::thread([this, node, birth, src_node, dst_node, &pending,
               sync_address] {
    node->clock().bind_lane(birth);
    PacketHeader header = pending.header;
    header.type = PacketType::kRndvData;
    header.sync_address = sync_address;
    pending.result = send_packet(src_node, dst_node, header, pending.data);
    // Unblocks a parked sender (which then destroys `pending`) or, for an
    // asynchronous entry, completes its request and frees it.
    finish_pending_send(state_of(src_node), &pending,
                        /*still_registered=*/true);
  }).detach();
}

void ChMadDevice::handle_message(NodeState& state, mad::Unpacking& incoming,
                                 int* terms_seen) {
  PacketHeader header;
  incoming.unpack(&header, kBaseHeaderBytes, mad::SendMode::kSafer,
                  mad::RecvMode::kExpress);
  if (is_rma(header.type)) {
    incoming.unpack(&header.rma, sizeof header.rma, mad::SendMode::kSafer,
                    mad::RecvMode::kExpress);
  }
  state.node->clock().advance(kDispatchUs);
  // Inbound credits refill this node's window towards their origin no
  // matter what packet carried them (piggybacked or standalone).
  apply_credit(state, header);
  if (sim::Tracer::global().enabled()) {
    const char* kind = "short";
    switch (header.type) {
      case PacketType::kShort: kind = "short"; break;
      case PacketType::kRndvRequest: kind = "rndv_req"; break;
      case PacketType::kRndvOkToSend: kind = "rndv_ok"; break;
      case PacketType::kRndvData: kind = "rndv_data"; break;
      case PacketType::kTerm: kind = "term"; break;
      case PacketType::kCredit: kind = "credit"; break;
      case PacketType::kRmaPut: kind = "rma_put"; break;
      case PacketType::kRmaGet: kind = "rma_get"; break;
      case PacketType::kRmaGetReply: kind = "rma_get_reply"; break;
      case PacketType::kRmaAccumulate: kind = "rma_acc"; break;
      case PacketType::kRmaLock: kind = "rma_lock"; break;
      case PacketType::kRmaLockGrant: kind = "rma_lock_grant"; break;
      case PacketType::kRmaUnlock: kind = "rma_unlock"; break;
      case PacketType::kRmaSync: kind = "rma_sync"; break;
      case PacketType::kRmaAck: kind = "rma_ack"; break;
    }
    sim::trace(state.node->clock().now(), state.node->id(),
               sim::TraceCategory::kDispatch, header.envelope.bytes, kind);
  }

  switch (header.type) {
    case PacketType::kShort: {
      // Allocation-free fast path: view the payload where the wire put it
      // (the control frame's slab, or the body's own data frame) and hand
      // the chunk reference down. An immediate match unpacks straight into
      // the user buffer; an unexpected message parks the reference — the
      // device bounce buffer is gone either way.
      mad::Unpacking::View view;
      if (header.envelope.bytes != 0) {
        view = incoming.unpack_view(header.envelope.bytes,
                                    mad::SendMode::kLater,
                                    mad::RecvMode::kCheaper);
      }
      incoming.end_unpacking();
      if (incoming.aborted()) {
        // The sender gave up mid-message and retries the whole packet on
        // another route: discarding here keeps delivery exactly-once.
        return;
      }
      // Flow control: the sender's credits come back once the payload is
      // *consumed* (copied into a user buffer), not on arrival — that is
      // what makes a slow receiver throttle its senders.
      const node_id_t me = state.node->id();
      const node_id_t origin_node =
          directory_.node_of(header.src_global).id();
      mpi::EagerConsumed release;
      if (credit_window_ != 0 && origin_node != me) {
        const std::size_t charge =
            static_cast<std::size_t>(header.envelope.bytes) +
            mpi::RankContext::kUnexpectedEntryOverhead;
        release = [this, me, origin_node, charge] {
          credit_consumed(me, origin_node, charge);
        };
      }
      directory_.context_of(header.dst_global)
          .deliver_eager(header.envelope, view.bytes, std::move(release),
                         std::move(view.backing));
      return;
    }

    case PacketType::kRndvRequest: {
      incoming.end_unpacking();
      NodeState* state_ptr = &state;
      // The acknowledgement routes to the requesting rank's node (which,
      // under forwarding, is not necessarily the neighbour the request
      // arrived from).
      const node_id_t origin_node =
          directory_.node_of(header.src_global).id();
      directory_.context_of(header.dst_global)
          .deliver_rendezvous(
              header.envelope,
              [this, state_ptr, origin_node, header](const mpi::Envelope&,
                                                     mpi::PostedRecv posted) {
                std::uint64_t sync_address = 0;
                {
                  std::lock_guard<std::mutex> lock(state_ptr->mutex);
                  sync_address = state_ptr->next_rhandle++;
                  Rhandle rhandle;
                  rhandle.posted = std::move(posted);
                  rhandle.origin_node = origin_node;
                  rhandle.created_at = state_ptr->node->clock().now();
                  state_ptr->rhandles[sync_address] = std::move(rhandle);
                }
                PacketHeader ack = header;
                ack.type = PacketType::kRndvOkToSend;
                ack.sync_address = sync_address;
                spawn_reply_thread(*state_ptr, origin_node, ack);
              });
      return;
    }

    case PacketType::kRndvOkToSend: {
      incoming.end_unpacking();
      PendingSend* pending = nullptr;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        auto it = state.pending_sends.find(header.sender_handle);
        if (it == state.pending_sends.end()) {
          // The watchdog canceled this rendezvous while the ack was in
          // flight; the sender has already returned with an error.
          MADMPI_LOG_WARN("ch_mad",
                          "dropping OK_TO_SEND for canceled send %llu",
                          static_cast<unsigned long long>(
                              header.sender_handle));
          return;
        }
        pending = it->second;
        pending->phase = PendingSend::Phase::kPushing;
      }
      const node_id_t receiver_node =
          directory_.node_of(header.dst_global).id();
      spawn_data_thread(state, receiver_node, *pending,
                        header.sync_address);
      return;
    }

    case PacketType::kRndvData: {
      Rhandle rhandle;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        auto it = state.rhandles.find(header.sync_address);
        if (it == state.rhandles.end()) {
          // The watchdog canceled the matched receive while the data was
          // in flight; drain the body and drop it.
          lock.unlock();
          MADMPI_LOG_WARN("ch_mad",
                          "dropping RNDV_DATA for canceled rhandle %llu",
                          static_cast<unsigned long long>(
                              header.sync_address));
          while (incoming.drain_block()) {
          }
          incoming.end_unpacking();
          return;
        }
        rhandle = std::move(it->second);
        state.rhandles.erase(it);
      }
      const mpi::PostedRecv& posted = rhandle.posted;
      const std::uint64_t bytes = header.envelope.bytes;
      // An oversized message is an application error (MPI_ERR_TRUNCATE),
      // not a protocol one: consume the full wire block, deliver the
      // prefix that fits, and report the error on the request's status.
      const bool truncated = bytes > posted.capacity_bytes;
      const std::uint64_t delivered =
          truncated ? posted.capacity_bytes : bytes;
      if (bytes != 0) {
        const bool direct = posted.type.is_contiguous() && !truncated;
        if (direct) {
          // Zero-copy: straight into the posted user buffer.
          incoming.unpack(posted.buffer, bytes, mad::SendMode::kLater,
                          mad::RecvMode::kCheaper);
        } else {
          // The rendezvous bounce buffer is retired: consume the wire
          // block as a view and place it from there. `direct` stays purely
          // a charging distinction — this branch still pays the modeled
          // intermediary copy the zero-copy branch avoids.
          mad::Unpacking::View view = incoming.unpack_view(
              bytes, mad::SendMode::kLater, mad::RecvMode::kCheaper);
          if (incoming.truncated()) {
            // Malformed stream claiming more data than arrived: recover
            // with MPI_ERR_TRUNCATE on the posted request instead of
            // aborting the rank.
            incoming.end_unpacking();
            mpi::MpiStatus status;
            status.source = header.envelope.src;
            status.tag = header.envelope.tag;
            status.bytes = 0;
            status.error = ErrorCode::kTruncated;
            posted.request->complete(status);
            return;
          }
          if (!incoming.aborted()) {
            byte_span wire = view.bytes;
            ChunkRef swapped;
            if (header.envelope.sender_big_endian) {
              // Byte-swapping must not touch the wire slab (a retransmit
              // or the unexpected store may still read it): stage the one
              // mutable copy through the pool.
              swapped = SlabPool::global().stage(wire);
              posted.type.swap_packed_bytes(swapped.mutable_data(),
                                            delivered);
              wire = swapped.span();
            }
            if (posted.type.is_contiguous()) {
              std::memcpy(posted.buffer, wire.data(), delivered);
            } else {
              const std::size_t elem = posted.type.size();
              const int elements =
                  static_cast<int>(delivered / (elem ? elem : 1));
              posted.type.unpack(wire.data(), elements, posted.buffer);
            }
            state.node->clock().advance(static_cast<double>(delivered) *
                                        sim::kHostCopyUsPerByte);
          }
        }
        if (incoming.aborted()) {
          // The sender's data push died mid-flight; it re-elects a route
          // and resends kRndvData with the same sync_address. Re-arm the
          // rhandle so the retry finds it.
          incoming.end_unpacking();
          std::lock_guard<std::mutex> lock(state.mutex);
          state.rhandles[header.sync_address] = std::move(rhandle);
          return;
        }
        if (direct && header.envelope.sender_big_endian) {
          // Heterogeneity: the wire carried the sender's byte order
          // (contiguous wire layout == buffer layout, so in-place).
          posted.type.swap_packed_bytes(
              static_cast<std::byte*>(posted.buffer), bytes);
        }
        if (header.envelope.sender_big_endian !=
            state.node->big_endian()) {
          // Conversion work is real only across unlike nodes.
          state.node->clock().advance(static_cast<double>(bytes) *
                                      sim::kHostCopyUsPerByte);
        }
      }
      incoming.end_unpacking();
      mpi::MpiStatus status;
      status.source = header.envelope.src;
      status.tag = header.envelope.tag;
      status.bytes = delivered;
      if (truncated) status.error = ErrorCode::kTruncated;
      // Releasing the rhandle's semaphore = completing the request: the
      // blocked main thread resumes (paper §4.2.2, last step).
      posted.request->complete(status);
      return;
    }

    case PacketType::kTerm: {
      incoming.end_unpacking();
      ++(*terms_seen);
      return;
    }

    case PacketType::kCredit: {
      // Header-only; the refill was applied above with apply_credit.
      incoming.end_unpacking();
      return;
    }

    case PacketType::kRmaPut:
    case PacketType::kRmaAccumulate: {
      // Data lands straight in window memory: view the wire bytes where
      // the driver put them (for kRmaDirect, "where the NIC wrote them")
      // and place them under the window lock. No unexpected-store staging,
      // no rendezvous bounce.
      mad::Unpacking::View view;
      if (header.rma.bytes != 0) {
        view = incoming.unpack_view(header.rma.bytes, mad::SendMode::kLater,
                                    mad::RecvMode::kCheaper);
      }
      const sim::LinkCostModel& model = incoming.model();
      incoming.end_unpacking();
      if (incoming.aborted()) {
        // The origin's failover loop re-issues the whole op on the
        // next-best route; dropping keeps application exactly-once.
        return;
      }
      mpi::WinTarget* win = directory_.context_of(header.dst_global)
                                .find_window(header.rma.win_id);
      if (win == nullptr) {
        MADMPI_LOG_WARN("ch_mad", "one-sided op for unknown window %llu",
                        static_cast<unsigned long long>(header.rma.win_id));
        return;
      }
      std::vector<std::function<void()>> ready;
      {
        std::lock_guard<std::mutex> lock(win->mutex);
        const std::uint64_t offset = header.rma.offset;
        const std::uint64_t bytes = header.rma.bytes;
        const bool in_range =
            bytes <= win->bytes && offset <= win->bytes - bytes;
        if (!in_range || view.bytes.size() != bytes) {
          // Origin-side bounds checks make this unreachable from the Win
          // API; a corrupt descriptor must not scribble past the window.
          MADMPI_LOG_WARN("ch_mad",
                          "dropping out-of-range one-sided op at %llu+%llu",
                          static_cast<unsigned long long>(offset),
                          static_cast<unsigned long long>(bytes));
        } else if (bytes != 0) {
          const std::size_t width = mpi::rma_type_width(header.rma.type);
          if (header.type == PacketType::kRmaPut) {
            std::memcpy(win->base + offset, view.bytes.data(), bytes);
            if (header.envelope.sender_big_endian && width > 1) {
              // Window memory holds host order; the wire slab (shared
              // with retransmits) stays untouched.
              mpi::rma_datatype(header.rma.type)
                  .swap_packed_bytes(win->base + offset, bytes);
            }
            ++win->puts_applied;
          } else {
            byte_span wire = view.bytes;
            ChunkRef swapped;
            if (header.envelope.sender_big_endian && width > 1) {
              swapped = SlabPool::global().stage(wire);
              mpi::rma_datatype(header.rma.type)
                  .swap_packed_bytes(swapped.mutable_data(), bytes);
              wire = swapped.span();
            }
            if (header.rma.op == mpi::RmaOp::kReplace) {
              std::memcpy(win->base + offset, wire.data(), bytes);
            } else {
              mpi::rma_op(header.rma.op)
                  .apply(wire.data(), win->base + offset,
                         static_cast<int>(bytes / width),
                         mpi::rma_datatype(header.rma.type));
            }
            ++win->accs_applied;
          }
          DatapathStats::global().count_copy(bytes);
          // Landing cost: zero where the network wrote into the mapped
          // window itself (SISCI PIO), a host copy where it was emulated.
          state.node->clock().advance(static_cast<double>(bytes) *
                                      model.rma_landing_us_per_byte);
          if (header.envelope.sender_big_endian !=
              state.node->big_endian()) {
            state.node->clock().advance(static_cast<double>(bytes) *
                                        sim::kHostCopyUsPerByte);
          }
        }
        // The ledger counts even a dropped op: the origin counted it in
        // `sent`, and a fence waiting for it must not hang.
        ready = win->note_applied(header.src_global);
      }
      for (auto& fire : ready) fire();
      return;
    }

    case PacketType::kRmaGet: {
      incoming.end_unpacking();
      const sim::LinkCostModel& model = incoming.model();
      PacketHeader reply = header;  // echoes sender_handle and rma
      reply.type = PacketType::kRmaGetReply;
      reply.src_global = header.dst_global;
      reply.dst_global = header.src_global;
      reply.envelope.sender_big_endian = state.node->big_endian();
      mpi::WinTarget* win = directory_.context_of(header.dst_global)
                                .find_window(header.rma.win_id);
      ChunkRef body;
      const std::uint64_t offset = header.rma.offset;
      const std::uint64_t bytes = header.rma.bytes;
      if (win != nullptr && bytes != 0 && bytes <= win->bytes &&
          offset <= win->bytes - bytes) {
        // Snapshot the window range into a pool chunk (the reply thread
        // must not read live window memory unlocked); a big-endian target
        // ships it in its own order, the origin converts.
        body = SlabPool::global().allocate(bytes);
        std::lock_guard<std::mutex> lock(win->mutex);
        std::memcpy(body.mutable_data(), win->base + offset, bytes);
        if (state.node->big_endian() &&
            mpi::rma_type_width(header.rma.type) > 1) {
          mpi::rma_datatype(header.rma.type)
              .swap_packed_bytes(body.mutable_data(), bytes);
        }
        DatapathStats::global().count_copy(bytes);
        state.node->clock().advance(static_cast<double>(bytes) *
                                    model.rma_landing_us_per_byte);
      } else {
        // Unknown window or out-of-range read: reply empty; the origin
        // surfaces kTruncated on the pending get.
        reply.rma.bytes = 0;
        reply.envelope.bytes = 0;
        MADMPI_LOG_WARN("ch_mad", "one-sided get rejected at %llu+%llu",
                        static_cast<unsigned long long>(offset),
                        static_cast<unsigned long long>(bytes));
      }
      const node_id_t origin_node =
          directory_.node_of(header.src_global).id();
      spawn_rma_reply_thread(state, origin_node, reply, std::move(body));
      return;
    }

    case PacketType::kRmaGetReply: {
      mad::Unpacking::View view;
      if (header.rma.bytes != 0) {
        view = incoming.unpack_view(header.rma.bytes, mad::SendMode::kLater,
                                    mad::RecvMode::kCheaper);
      }
      incoming.end_unpacking();
      if (incoming.aborted()) return;  // reply thread retries via failover
      RmaPending pending;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        auto it = state.rma_pending.find(header.sender_handle);
        if (it == state.rma_pending.end()) {
          MADMPI_LOG_WARN("ch_mad", "get reply for unknown handle %llu",
                          static_cast<unsigned long long>(
                              header.sender_handle));
          return;
        }
        pending = std::move(it->second);
        state.rma_pending.erase(it);
      }
      if (!view.bytes.empty() && pending.get_dest != nullptr) {
        std::memcpy(pending.get_dest, view.bytes.data(), view.bytes.size());
        if (header.envelope.sender_big_endian &&
            mpi::rma_type_width(header.rma.type) > 1) {
          mpi::rma_datatype(header.rma.type)
              .swap_packed_bytes(static_cast<std::byte*>(pending.get_dest),
                                 view.bytes.size());
        }
        if (header.envelope.sender_big_endian != state.node->big_endian()) {
          state.node->clock().advance(
              static_cast<double>(view.bytes.size()) *
              sim::kHostCopyUsPerByte);
        }
        DatapathStats::global().count_copy(view.bytes.size());
      }
      mpi::MpiStatus status;
      status.bytes = view.bytes.size();
      if (view.bytes.size() != pending.bytes) {
        status.error = ErrorCode::kTruncated;
      }
      pending.completion->complete(status);
      return;
    }

    case PacketType::kRmaLock: {
      incoming.end_unpacking();
      mpi::WinTarget* win = directory_.context_of(header.dst_global)
                                .find_window(header.rma.win_id);
      if (win == nullptr) {
        MADMPI_LOG_WARN("ch_mad", "lock request for unknown window %llu",
                        static_cast<unsigned long long>(header.rma.win_id));
        return;
      }
      PacketHeader grant = header;
      grant.type = PacketType::kRmaLockGrant;
      grant.src_global = header.dst_global;
      grant.dst_global = header.src_global;
      const node_id_t origin_node =
          directory_.node_of(header.src_global).id();
      NodeState* state_ptr = &state;
      auto fire = [this, state_ptr, origin_node, grant] {
        spawn_rma_reply_thread(*state_ptr, origin_node, grant, ChunkRef());
      };
      bool now = false;
      {
        std::lock_guard<std::mutex> lock(win->mutex);
        if (win->grantable(header.rma.lock)) {
          win->acquire(header.rma.lock);
          now = true;
        } else {
          win->waiters.push_back({header.rma.lock, fire});
        }
      }
      if (now) fire();
      return;
    }

    case PacketType::kRmaSync:
    case PacketType::kRmaUnlock: {
      incoming.end_unpacking();
      mpi::WinTarget* win = directory_.context_of(header.dst_global)
                                .find_window(header.rma.win_id);
      if (win == nullptr) {
        MADMPI_LOG_WARN("ch_mad", "fence for unknown window %llu",
                        static_cast<unsigned long long>(header.rma.win_id));
        return;
      }
      PacketHeader ack = header;
      ack.type = PacketType::kRmaAck;
      ack.src_global = header.dst_global;
      ack.dst_global = header.src_global;
      const node_id_t origin_node =
          directory_.node_of(header.src_global).id();
      NodeState* state_ptr = &state;
      auto fire = [this, state_ptr, origin_node, ack] {
        spawn_rma_reply_thread(*state_ptr, origin_node, ack, ChunkRef());
      };
      const bool is_unlock = header.type == PacketType::kRmaUnlock;
      std::vector<std::function<void()>> ready;
      bool now = false;
      {
        std::lock_guard<std::mutex> lock(win->mutex);
        if (win->applied[header.src_global] >= header.rma.op_count) {
          if (is_unlock) ready = win->release_and_grant(header.rma.lock);
          now = true;
        } else {
          // Ledger behind the origin's cumulative count: park the ack (and
          // the unlock's release); note_applied fires it when the last
          // in-flight op lands.
          win->pending_acks.push_back(
              {header.src_global, header.rma.op_count,
               is_unlock ? header.rma.lock : mpi::RmaLockType::kNone, fire});
        }
      }
      for (auto& grant : ready) grant();
      if (now) fire();
      return;
    }

    case PacketType::kRmaLockGrant:
    case PacketType::kRmaAck: {
      incoming.end_unpacking();
      RmaPending pending;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        auto it = state.rma_pending.find(header.sender_handle);
        if (it == state.rma_pending.end()) {
          MADMPI_LOG_WARN("ch_mad", "one-sided ack for unknown handle %llu",
                          static_cast<unsigned long long>(
                              header.sender_handle));
          return;
        }
        pending = std::move(it->second);
        state.rma_pending.erase(it);
      }
      pending.completion->complete(mpi::MpiStatus{});
      return;
    }
  }
  fatal("corrupt ch_mad packet type");
}

}  // namespace madmpi::core
