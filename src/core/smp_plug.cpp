#include "core/smp_plug.hpp"

#include <cstring>

#include "sim/cost_model.hpp"

namespace madmpi::core {

SmpPlugDevice::SmpPlugDevice(RankDirectory& directory)
    : directory_(directory) {}

bool SmpPlugDevice::reaches(rank_t src, rank_t dst) const {
  return src != dst && directory_.same_node(src, dst);
}

Status SmpPlugDevice::send(rank_t src, rank_t dst, const mpi::Envelope& env,
                           byte_span packed, mpi::TransferMode mode) {
  MADMPI_CHECK_MSG(reaches(src, dst), "smp_plug used across nodes");
  sim::Node& node = directory_.node_of(src);

  if (mode == mpi::TransferMode::kEager) {
    // Copy into the shared FIFO; the matching layer charges the copy out.
    node.clock().advance(kPostUs + kWakeUs +
                         static_cast<double>(packed.size()) *
                             sim::kHostCopyUsPerByte);
    directory_.context_of(dst).deliver_eager(env, packed);
    return Status::ok();
  }

  // Rendezvous: announce, park until the receive is posted, then deliver
  // straight into the user buffer (single copy).
  marcel::Semaphore matched(node, 0);
  mpi::PostedRecv target;
  node.clock().advance(kPostUs + kWakeUs);
  directory_.context_of(dst).deliver_rendezvous(
      env, [&matched, &target](const mpi::Envelope&, mpi::PostedRecv posted) {
        target = std::move(posted);
        matched.signal();
      });
  matched.wait();

  // Truncation delivers the prefix that fits and reports MPI_ERR_TRUNCATE
  // on the receive status (same policy as finish_recv).
  const bool truncated = env.bytes > target.capacity_bytes;
  const std::size_t delivered =
      truncated ? target.capacity_bytes : packed.size();
  node.clock().advance(static_cast<double>(delivered) *
                       sim::kHostCopyUsPerByte);
  const std::size_t elem_size = target.type.size();
  const int elements =
      elem_size == 0 ? 0 : static_cast<int>(delivered / elem_size);
  target.type.unpack(packed.data(), elements, target.buffer);
  if (target.type.is_contiguous()) {
    // Ragged tail of a truncated contiguous receive: deliver raw prefix.
    const std::size_t tail =
        elem_size == 0 ? 0 : delivered % elem_size;
    if (tail != 0) {
      auto* base = static_cast<std::byte*>(target.buffer);
      std::memcpy(base + static_cast<std::size_t>(elements) * elem_size,
                  packed.data() + delivered - tail, tail);
    }
  }

  mpi::MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = delivered;
  if (truncated) status.error = ErrorCode::kTruncated;
  target.request->complete(status);
  return Status::ok();
}

}  // namespace madmpi::core
