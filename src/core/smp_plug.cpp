#include "core/smp_plug.hpp"

#include <cstring>
#include <thread>

#include "marcel/thread.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::core {

SmpPlugDevice::SmpPlugDevice(RankDirectory& directory)
    : directory_(directory) {}

bool SmpPlugDevice::reaches(rank_t src, rank_t dst) const {
  return src != dst && directory_.same_node(src, dst);
}

Status SmpPlugDevice::send(rank_t src, rank_t dst, const mpi::Envelope& env,
                           byte_span packed, mpi::TransferMode mode) {
  MADMPI_CHECK_MSG(reaches(src, dst), "smp_plug used across nodes");
  sim::Node& node = directory_.node_of(src);

  if (mode == mpi::TransferMode::kEager) {
    // Copy into the shared FIFO; the matching layer charges the copy out.
    node.clock().advance(kPostUs + kWakeUs +
                         static_cast<double>(packed.size()) *
                             sim::kHostCopyUsPerByte);
    directory_.context_of(dst).deliver_eager(env, packed);
    return Status::ok();
  }

  // Rendezvous: announce, park until the receive is posted, then deliver
  // straight into the user buffer (single copy).
  marcel::Semaphore matched(node, 0);
  mpi::PostedRecv target;
  node.clock().advance(kPostUs + kWakeUs);
  directory_.context_of(dst).deliver_rendezvous(
      env, [&matched, &target](const mpi::Envelope&, mpi::PostedRecv posted) {
        target = std::move(posted);
        matched.signal();
      });
  matched.wait();

  // Truncation delivers the prefix that fits and reports MPI_ERR_TRUNCATE
  // on the receive status (same policy as finish_recv).
  const bool truncated = env.bytes > target.capacity_bytes;
  const std::size_t delivered =
      truncated ? target.capacity_bytes : packed.size();
  node.clock().advance(static_cast<double>(delivered) *
                       sim::kHostCopyUsPerByte);
  const std::size_t elem_size = target.type.size();
  const int elements =
      elem_size == 0 ? 0 : static_cast<int>(delivered / elem_size);
  target.type.unpack(packed.data(), elements, target.buffer);
  if (target.type.is_contiguous()) {
    // Ragged tail of a truncated contiguous receive: deliver raw prefix.
    const std::size_t tail =
        elem_size == 0 ? 0 : delivered % elem_size;
    if (tail != 0) {
      auto* base = static_cast<std::byte*>(target.buffer);
      std::memcpy(base + static_cast<std::size_t>(elements) * elem_size,
                  packed.data() + delivered - tail, tail);
    }
  }

  mpi::MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = delivered;
  if (truncated) status.error = ErrorCode::kTruncated;
  target.request->complete(status);
  return Status::ok();
}

bool SmpPlugDevice::isend_rendezvous(
    rank_t src, rank_t dst, const mpi::Envelope& env, byte_span packed,
    std::vector<std::byte> owned,
    std::shared_ptr<mpi::RequestState> state) {
  MADMPI_CHECK_MSG(reaches(src, dst), "smp_plug used across nodes");
  sim::Node& node = directory_.node_of(src);
  node.clock().advance(kPostUs + kWakeUs);
  // The staging buffer (when any) rides in the callback by refcount:
  // std::function requires a copyable target.
  auto keepalive =
      std::make_shared<std::vector<std::byte>>(std::move(owned));
  directory_.context_of(dst).deliver_rendezvous(
      env, [&node, env, packed, keepalive = std::move(keepalive),
            state = std::move(state)](const mpi::Envelope&,
                                      mpi::PostedRecv target) {
        // The copy runs on a temporary thread (the paper's one-Marcel-
        // thread-per-isend), NOT inline: the match often fires on the
        // sender's own lane (receive already posted when the
        // announcement lands), and a tree node fanning 64 KiB to four
        // children must not serialize four copies there.
        const usec_t birth =
            node.clock().advance(marcel::ThreadCosts::kCreate);
        std::thread([&node, birth, env, packed, keepalive,
                     state, target = std::move(target)]() mutable {
          node.clock().bind_lane(birth);
          // Same single-copy handoff as the blocking path.
          const bool truncated = env.bytes > target.capacity_bytes;
          const std::size_t delivered =
              truncated ? target.capacity_bytes : packed.size();
          node.clock().advance(static_cast<double>(delivered) *
                               sim::kHostCopyUsPerByte);
          const std::size_t elem_size = target.type.size();
          const int elements =
              elem_size == 0 ? 0 : static_cast<int>(delivered / elem_size);
          target.type.unpack(packed.data(), elements, target.buffer);
          if (target.type.is_contiguous()) {
            const std::size_t tail =
                elem_size == 0 ? 0 : delivered % elem_size;
            if (tail != 0) {
              auto* base = static_cast<std::byte*>(target.buffer);
              std::memcpy(base +
                              static_cast<std::size_t>(elements) * elem_size,
                          packed.data() + delivered - tail, tail);
            }
          }

          mpi::MpiStatus recv_status;
          recv_status.source = env.src;
          recv_status.tag = env.tag;
          recv_status.bytes = delivered;
          if (truncated) recv_status.error = ErrorCode::kTruncated;
          target.request->complete(recv_status);

          mpi::MpiStatus send_status;  // send-side: peer and tag, never
          send_status.source = env.dst;  // truncation (receiver-local)
          send_status.tag = env.tag;
          send_status.bytes = env.bytes;
          state->complete(send_status);
        }).detach();
      });
  return true;
}

}  // namespace madmpi::core
