#include "core/smp_plug.hpp"

#include <cstring>

#include "sim/cost_model.hpp"

namespace madmpi::core {

SmpPlugDevice::SmpPlugDevice(RankDirectory& directory)
    : directory_(directory) {}

bool SmpPlugDevice::reaches(rank_t src, rank_t dst) const {
  return src != dst && directory_.same_node(src, dst);
}

void SmpPlugDevice::send(rank_t src, rank_t dst, const mpi::Envelope& env,
                         byte_span packed, mpi::TransferMode mode) {
  MADMPI_CHECK_MSG(reaches(src, dst), "smp_plug used across nodes");
  sim::Node& node = directory_.node_of(src);

  if (mode == mpi::TransferMode::kEager) {
    // Copy into the shared FIFO; the matching layer charges the copy out.
    node.clock().advance(kPostUs + kWakeUs +
                         static_cast<double>(packed.size()) *
                             sim::kHostCopyUsPerByte);
    directory_.context_of(dst).deliver_eager(env, packed);
    return;
  }

  // Rendezvous: announce, park until the receive is posted, then deliver
  // straight into the user buffer (single copy).
  marcel::Semaphore matched(node, 0);
  mpi::PostedRecv target;
  node.clock().advance(kPostUs + kWakeUs);
  directory_.context_of(dst).deliver_rendezvous(
      env, [&matched, &target](const mpi::Envelope&, mpi::PostedRecv posted) {
        target = std::move(posted);
        matched.signal();
      });
  matched.wait();

  MADMPI_CHECK_MSG(env.bytes <= target.capacity_bytes,
                   "message truncation in smp_plug rendezvous");
  node.clock().advance(static_cast<double>(packed.size()) *
                       sim::kHostCopyUsPerByte);
  const std::size_t elem_size = target.type.size();
  const int elements =
      elem_size == 0 ? 0 : static_cast<int>(packed.size() / elem_size);
  target.type.unpack(packed.data(), elements, target.buffer);

  mpi::MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = env.bytes;
  target.request->complete(status);
}

}  // namespace madmpi::core
