// Progress watchdog (robustness layer tentpole, part 3).
//
// A session-owned thread that periodically sweeps for operations that can
// no longer make progress — posted receives and rendezvous handshakes whose
// only route to the peer is dead — and cancels them with
// ErrorCode::kTimedOut so the blocked rank gets an MPI error through its
// communicator's error handler instead of hanging forever.
//
// The poll interval is wall-clock time and deliberately does NOT leak into
// the simulation: every cancellation stamps virtual time as the operation's
// recorded start plus the configured horizon (VirtualClock::bind_lane), so
// a run that cancels is bit-identical no matter how fast the host polled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace madmpi::core {

class ProgressWatchdog {
 public:
  /// One full sweep over every rank context and device. Runs on the
  /// watchdog thread; must be safe to call concurrently with rank threads.
  using Sweep = std::function<void()>;

  explicit ProgressWatchdog(
      Sweep sweep,
      std::chrono::milliseconds interval = std::chrono::milliseconds(2));
  ~ProgressWatchdog();

  ProgressWatchdog(const ProgressWatchdog&) = delete;
  ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;

  /// Stop the thread and join it. Idempotent; implicit in the destructor.
  void stop();

 private:
  void run();

  Sweep sweep_;
  std::chrono::milliseconds interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace madmpi::core
