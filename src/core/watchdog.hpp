// Progress watchdog (robustness layer tentpole, part 3).
//
// A session-owned thread that periodically sweeps for operations that can
// no longer make progress — posted receives and rendezvous handshakes whose
// only route to the peer is dead — and cancels them with
// ErrorCode::kTimedOut so the blocked rank gets an MPI error through its
// communicator's error handler instead of hanging forever.
//
// The poll interval is wall-clock time and deliberately does NOT leak into
// the simulation: every cancellation stamps virtual time as the operation's
// recorded start plus the configured horizon (VirtualClock::bind_lane), so
// a run that cancels is bit-identical no matter how fast the host polled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace madmpi::core {

class ProgressWatchdog {
 public:
  /// One full sweep over every rank context and device. Runs on the
  /// watchdog thread; must be safe to call concurrently with rank threads.
  using Sweep = std::function<void()>;

  /// Cheap digest of global progress (the session hashes every node's
  /// VirtualClock lane snapshot). A tick whose fingerprint differs from
  /// the previous one proves some rank advanced virtual time since the
  /// last look, so the expensive sweep (which locks every device table)
  /// is skipped. Ticks with an unchanged fingerprint sweep as before, and
  /// every kForcedSweepPeriod-th tick sweeps unconditionally so a stall
  /// whose last act was to advance a clock is still caught.
  using Fingerprint = std::function<std::uint64_t()>;

  explicit ProgressWatchdog(
      Sweep sweep,
      std::chrono::milliseconds interval = std::chrono::milliseconds(2),
      Fingerprint fingerprint = nullptr);
  ~ProgressWatchdog();

  ProgressWatchdog(const ProgressWatchdog&) = delete;
  ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;

  /// Stop the thread and join it. Idempotent; implicit in the destructor.
  void stop();

  /// Ticks that skipped their sweep because the fingerprint moved (tests).
  std::uint64_t sweeps_skipped() const {
    return sweeps_skipped_.load(std::memory_order_relaxed);
  }

  /// Sweep at least once every this many ticks, fingerprint or not.
  static constexpr int kForcedSweepPeriod = 4;

 private:
  void run();

  Sweep sweep_;
  std::chrono::milliseconds interval_;
  Fingerprint fingerprint_;
  std::atomic<std::uint64_t> sweeps_skipped_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace madmpi::core
