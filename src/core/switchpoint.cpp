#include "core/switchpoint.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace madmpi::core {

std::size_t network_switch_point(sim::Protocol protocol) {
  switch (protocol) {
    case sim::Protocol::kTcp: return 64 * 1024;
    case sim::Protocol::kSisci: return 8 * 1024;
    case sim::Protocol::kBip: return 7 * 1024;
    case sim::Protocol::kShmem: return 32 * 1024;
  }
  return 64 * 1024;
}

int protocol_performance_rank(sim::Protocol protocol) {
  // Ordered by sustained bandwidth of the paper's testbed (Table 1):
  // BIP/Myrinet 122 MB/s > SISCI/SCI 82.6 MB/s > TCP 11.2 MB/s.
  switch (protocol) {
    case sim::Protocol::kShmem: return 4;
    case sim::Protocol::kBip: return 3;
    case sim::Protocol::kSisci: return 2;
    case sim::Protocol::kTcp: return 1;
  }
  return 0;
}

bool is_intra_node_protocol(sim::Protocol protocol) {
  return protocol == sim::Protocol::kShmem;
}

std::size_t default_credit_window(std::size_t switch_point) {
  // Sized like MVAPICH-style prepost depths: enough outstanding eager
  // traffic to cover the bandwidth-delay product of the simulated links
  // many times over, small enough that a stalled receiver caps its
  // senders' memory footprint at a few hundred KB each.
  return 16 * switch_point;
}

std::size_t elect_switch_point(
    const std::vector<sim::Protocol>& protocols) {
  MADMPI_CHECK_MSG(!protocols.empty(),
                   "switch point election over an empty protocol set");
  // Intra-node protocols would otherwise hijack the election (shmem ranks
  // above every real network but its 32 KB threshold is meaningless for
  // inter-node traffic). Elect over the real networks; fall back to the
  // full set only when there is no network at all (single-node cluster).
  std::vector<sim::Protocol> networks;
  for (sim::Protocol protocol : protocols) {
    if (!is_intra_node_protocol(protocol)) networks.push_back(protocol);
  }
  const std::vector<sim::Protocol>& candidates =
      networks.empty() ? protocols : networks;

  const bool has_sci =
      std::find(candidates.begin(), candidates.end(),
                sim::Protocol::kSisci) != candidates.end();
  if (has_sci) return network_switch_point(sim::Protocol::kSisci);

  const sim::Protocol best = *std::max_element(
      candidates.begin(), candidates.end(), [](auto a, auto b) {
        return protocol_performance_rank(a) < protocol_performance_rank(b);
      });
  return network_switch_point(best);
}

}  // namespace madmpi::core
