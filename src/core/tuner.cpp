#include "core/tuner.hpp"

#include <memory>

#include "core/pingpong.hpp"
#include "core/session.hpp"

namespace madmpi::core {

namespace {

/// Session with the device locked into one mode: threshold 0 forces every
/// message onto the rendezvous path; SIZE_MAX keeps everything eager.
std::unique_ptr<Session> forced_session(sim::Protocol protocol,
                                        std::size_t threshold) {
  Session::Options options;
  options.cluster = sim::ClusterSpec::homogeneous(2, protocol);
  options.switch_point_override = threshold;
  return std::make_unique<Session>(std::move(options));
}

}  // namespace

TunerResult tune_switch_point(sim::Protocol protocol,
                              std::size_t resolution) {
  TunerResult result;
  result.protocol = protocol;

  auto eager = forced_session(protocol, static_cast<std::size_t>(-1));
  auto rendezvous = forced_session(protocol, 0);

  auto measure = [&](std::size_t bytes) {
    const double t_eager = mpi_pingpong(*eager, bytes, 2).one_way_us;
    const double t_rndv = mpi_pingpong(*rendezvous, bytes, 2).one_way_us;
    result.samples.push_back({bytes, t_eager, t_rndv});
    return t_rndv < t_eager;  // true once rendezvous wins
  };

  // Coarse ladder: find the first power of two where rendezvous wins.
  std::size_t lo = 1;
  std::size_t hi = 0;
  for (std::size_t bytes = 1024; bytes <= (4u << 20); bytes *= 2) {
    if (measure(bytes)) {
      hi = bytes;
      break;
    }
    lo = bytes;
  }
  if (hi == 0) {
    // Rendezvous never won (a ch_p4-like transport): effectively infinite.
    result.switch_point_bytes = static_cast<std::size_t>(-1);
    return result;
  }

  // Bisect [lo, hi] down to the requested resolution.
  while (hi - lo > resolution) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (measure(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.switch_point_bytes = hi;
  return result;
}

}  // namespace madmpi::core
