// Channel routing: which Madeleine channel carries traffic between two
// nodes. This is the "transparent dynamic device selection" the classic
// multi-device MPICH lacks (paper §2.3) — here it is a per-pair choice of
// the most performant common network, made inside the single ch_mad device.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "core/switchpoint.hpp"
#include "mad/channel.hpp"

namespace madmpi::core {

class ChannelRouter {
 public:
  explicit ChannelRouter(std::vector<mad::Channel*> channels)
      : channels_(std::move(channels)) {}

  /// Best common channel between two nodes (highest protocol performance
  /// rank, ties broken towards the earlier-opened channel); nullptr when
  /// the nodes share no network. Channels whose a->b connection has been
  /// declared dead are skipped, so a re-election after a link failure
  /// transparently falls back to the next-best protocol (SCI down -> TCP).
  mad::Channel* route(node_id_t a, node_id_t b) const {
    mad::Channel* best = nullptr;
    for (mad::Channel* channel : channels_) {
      if (!channel->has_member(a) || !channel->has_member(b)) continue;
      if (a != b && !channel->link_alive(a, b)) continue;
      if (best == nullptr ||
          protocol_performance_rank(channel->protocol()) >
              protocol_performance_rank(best->protocol())) {
        best = channel;
      }
    }
    return best;
  }

  const std::vector<mad::Channel*>& channels() const { return channels_; }

  /// Distinct protocols across the routed channels (switch-point election
  /// input).
  std::vector<sim::Protocol> protocols() const {
    std::vector<sim::Protocol> out;
    for (mad::Channel* channel : channels_) {
      if (std::find(out.begin(), out.end(), channel->protocol()) ==
          out.end()) {
        out.push_back(channel->protocol());
      }
    }
    return out;
  }

 private:
  std::vector<mad::Channel*> channels_;
};

/// Multi-hop routing over the node graph induced by the channels: BFS
/// shortest paths (hop count, ties broken by protocol performance of the
/// first hop). Supports the gateway-forwarding extension: for a pair with
/// no common network, next_hop() names the neighbour to forward through.
class ForwardRouter {
 public:
  explicit ForwardRouter(const ChannelRouter& direct) : direct_(&direct) {
    build();
  }

  /// The next node on the best path src -> dst; kInvalidNode when
  /// disconnected; dst itself when directly reachable.
  node_id_t next_hop(node_id_t src, node_id_t dst) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = next_.find({src, dst});
    return it == next_.end() ? kInvalidNode : it->second;
  }

  /// Recompute the hop table. Called after a link death so multi-hop
  /// routes stop traversing dead connections (route() is health-aware, so
  /// a fresh BFS sees the reduced adjacency).
  void rebuild() {
    std::lock_guard<std::mutex> lock(mutex_);
    next_.clear();
    build();
  }

  bool connected(node_id_t src, node_id_t dst) const {
    return next_hop(src, dst) != kInvalidNode;
  }

  /// Number of hops src -> dst (1 = direct); 0 for src == dst, -1 when
  /// disconnected.
  int hops(node_id_t src, node_id_t dst) const {
    if (src == dst) return 0;
    int count = 0;
    node_id_t at = src;
    while (at != dst) {
      const node_id_t next = next_hop(at, dst);
      if (next == kInvalidNode) return -1;
      at = next;
      ++count;
      if (count > 1024) return -1;  // defensive: malformed table
    }
    return count;
  }

 private:
  // Fills next_; callers hold mutex_ (or are the constructor).
  void build() {
    // Collect the node set and adjacency from the channels.
    std::vector<node_id_t> nodes;
    for (mad::Channel* channel : direct_->channels()) {
      for (node_id_t member : channel->members()) {
        if (std::find(nodes.begin(), nodes.end(), member) == nodes.end()) {
          nodes.push_back(member);
        }
      }
    }
    // BFS from every source.
    for (node_id_t src : nodes) {
      std::map<node_id_t, node_id_t> parent;  // node -> predecessor
      std::deque<node_id_t> queue{src};
      parent[src] = src;
      while (!queue.empty()) {
        const node_id_t at = queue.front();
        queue.pop_front();
        for (node_id_t peer : nodes) {
          if (parent.count(peer) != 0) continue;
          if (direct_->route(at, peer) == nullptr) continue;
          parent[peer] = at;
          queue.push_back(peer);
        }
      }
      for (node_id_t dst : nodes) {
        if (dst == src || parent.count(dst) == 0) continue;
        // Walk back from dst to find the first hop out of src.
        node_id_t hop = dst;
        while (parent[hop] != src) hop = parent[hop];
        next_[{src, dst}] = hop;
      }
    }
  }

  const ChannelRouter* direct_;
  mutable std::mutex mutex_;
  std::map<std::pair<node_id_t, node_id_t>, node_id_t> next_;
};

}  // namespace madmpi::core
