// Marcel-like thread utilities.
//
// The paper relies on the Marcel user-level thread library for cheap thread
// creation (one temporary thread per MPI_Isend, per rendezvous reply), for
// blocking synchronization between polling threads and the MPI control
// thread, and for factorized network polling. Here threads are real
// std::threads; Marcel's *cost profile* (fast create/wake/yield) is charged
// to the hosting node's virtual clock.
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "common/types.hpp"
#include "sim/node.hpp"

namespace madmpi::marcel {

/// Virtual-time costs of Marcel operations (user-level threads are cheap:
/// the paper cites excellent creation/destruction/yield performance).
struct ThreadCosts {
  static constexpr usec_t kCreate = 2.0;     // spawn a temporary thread
  static constexpr usec_t kWake = 2.5;       // unblock + schedule a thread
  static constexpr usec_t kYield = 0.5;
  static constexpr usec_t kSemSignal = 0.5;  // semaphore V operation
};

/// A joinable thread bound to a simulated node. Creation charges the
/// Marcel thread-create cost to the node's clock.
class Thread {
 public:
  Thread() = default;

  template <typename Fn>
  Thread(sim::Node& node, std::string name, Fn&& fn) : name_(std::move(name)) {
    // The new thread's causal birth time is the creator's lane after the
    // Marcel creation cost; bind it before running the body so the
    // thread's virtual time starts where its creator left off.
    const usec_t birth = node.clock().advance(ThreadCosts::kCreate);
    thread_ = std::thread([&node, birth, fn = std::forward<Fn>(fn)]() mutable {
      node.clock().bind_lane(birth);
      fn();
    });
  }

  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  bool joinable() const { return thread_.joinable(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::thread thread_;
};

}  // namespace madmpi::marcel
