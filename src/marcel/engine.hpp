// The scale-out execution engine: run-to-completion fibers on shard workers.
//
// The paper's whole point in adopting Marcel is that MPI "threads" are
// user-level: thousands of logical flows multiplex onto a handful of
// kernel threads, and a blocked flow costs a parked continuation, not a
// kernel stack plus a scheduler entry. The default engine here still burns
// one OS thread per rank — faithful at 8 ranks, fatal at 1024. This module
// adds the Marcel-faithful alternative, gated behind MADMPI_ENGINE=sharded:
//
//  - Each rank body runs on a stackful *fiber* (x86-64 assembly context
//    switch, ucontext elsewhere), pinned to one of MADMPI_SHARDS worker
//    threads (per-shard run queues, no work stealing — a fiber's
//    schedule depends only on its own shard).
//  - Fibers run to completion or until they *park*: every blocking point
//    (semaphore P, posted-recv wait, credit dry, rendezvous ack, probe)
//    re-expresses itself as park_until(predicate). The shard worker scans
//    its fibers each round, re-evaluating predicates; the scan origin
//    rotates under the ScheduleController's kFiberWake choice point, so
//    wake order is seeded and replays deterministically.
//  - Each fiber owns a VirtualClock::LaneMap: its causal lanes follow it
//    across park/resume cycles, and each run slice opens a clock batch so
//    high-water publication is one CAS per touched clock per slice.
//  - Idle shards sleep on a process-wide notifier; completion paths call
//    engine_notify(), which is a relaxed load-and-skip when no sharded
//    engine is active (the threaded engine pays nothing).
//
// Parking protocol (the invariant every converted blocking point obeys):
// a fiber must hold NO locks when it parks, and its predicate must be
// safe to evaluate from the shard worker with no lanes installed — take
// the guarding mutex inside the predicate, never advance a virtual clock
// from it. Lost wakeups are impossible by construction: predicates are
// re-polled every scan round, and engine_notify() only shortens the sleep
// between rounds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace madmpi::marcel {

/// Which Session::run execution engine a run uses.
enum class EngineKind {
  kThreaded,  // one OS thread per rank (the historical default)
  kSharded,   // rank fibers on a sharded worker pool
};

/// Reads MADMPI_ENGINE ("threaded" | "sharded"; default threaded).
EngineKind engine_kind_from_env();

/// Reads MADMPI_SHARDS (default: min(4, hardware_concurrency), at least 1).
std::size_t engine_shards_from_env();

/// Reads MADMPI_FIBER_STACK_KB (default 1024 KiB per fiber).
std::size_t engine_stack_bytes_from_env();

/// True when the calling context is a fiber (so blocking points know to
/// park instead of blocking the worker thread).
bool on_fiber();

/// Park the current fiber until `ready()` returns true. Must be called
/// with no locks held; `ready` runs on the shard worker (possibly
/// concurrently with other threads mutating the watched state), so it must
/// take its own locks and must not touch virtual clocks' lanes. Returns
/// once `ready()` has been observed true; like a condition variable, the
/// caller re-checks its real predicate under its own lock afterwards.
/// Calling this off-fiber is a bug (asserts).
void park_until(std::function<bool()> ready);

/// Yield the rest of this slice: on a fiber, reschedules it behind its
/// shard siblings; on an OS thread, std::this_thread::yield(). The drop-in
/// replacement for yield-based completion polling loops.
void cooperative_yield();

/// Wake idle shard workers so freshly-satisfied predicates are re-polled
/// promptly. Near-free when no sharded engine is active; call it after any
/// state change a parked fiber might be waiting on (semaphore V, message
/// delivery, credit refill, lock grant, request completion).
void engine_notify();

/// Fiber-local storage keys. Any layer above marcel whose per-rank state
/// lives in a thread_local under the threaded engine needs one of these:
/// fibers from several ranks share one worker thread, so a plain
/// thread_local silently aliases across ranks. Keys are a closed registry
/// (marcel doesn't know the layers, but the slots must not collide):
inline constexpr std::size_t kFiberSlotCompat = 0;     // compat ThreadState
inline constexpr std::size_t kFiberSlotFtCapture = 1;  // ft error capture
inline constexpr std::size_t kFiberSlotBsend = 2;      // bsend buffer pool
inline constexpr std::size_t kFiberSlotCount = 4;

/// Fiber-local storage: on a fiber, returns the fiber's slot for `key` — a
/// single void* the caller may lazily fill — and records `dtor` to run
/// against a non-null slot when the fiber's body finishes. Off-fiber,
/// returns nullptr and the caller falls back to its thread_local.
void** fiber_local_slot(std::size_t key, void (*dtor)(void*));

/// Condition-variable-compatible wait that parks instead of blocking when
/// called on a fiber. `lock` must be held on entry and is held again on
/// return; `pred` is evaluated under `lock` exactly like cv.wait(lock,
/// pred).
template <typename Pred>
void engine_wait(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, Pred pred) {
  if (!on_fiber()) {
    cv.wait(lock, pred);
    return;
  }
  std::mutex* mutex = lock.mutex();
  while (!pred()) {
    lock.unlock();
    park_until([mutex, &pred] {
      std::lock_guard<std::mutex> guard(*mutex);
      return pred();
    });
    lock.lock();
  }
}

/// The sharded fiber pool: runs `count` bodies as fibers over `shards`
/// worker threads (body(i) for i in [0, count), fiber i pinned to shard
/// i % shards) and returns when every fiber has finished. Fibers are
/// created serially before any worker starts, so creation-order side
/// effects (lane birth stamps) are deterministic.
void run_fiber_pool(std::size_t count, std::size_t shards,
                    std::size_t stack_bytes,
                    const std::function<void(std::size_t)>& body);

}  // namespace madmpi::marcel
