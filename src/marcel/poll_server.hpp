// Factorized network polling (Marcel + Madeleine cooperation, paper §3.3).
//
// The poll server owns one persistent polling thread per registered source
// (ch_mad registers one per Madeleine channel, §4.2.3). Each active poller
// is declared on the node so concurrent pollers interfere: handling a
// message on channel X is delayed by the other channels' polling costs —
// exactly the effect the paper measures in Figure 9 (SCI alone vs SCI+TCP).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/datapath_stats.hpp"
#include "common/types.hpp"
#include "marcel/thread.hpp"
#include "sim/node.hpp"
#include "sim/sched.hpp"

namespace madmpi::marcel {

class PollServer {
 public:
  explicit PollServer(sim::Node& node) : node_(node) {}
  PollServer(const PollServer&) = delete;
  PollServer& operator=(const PollServer&) = delete;
  ~PollServer() { join(); }

  /// Spawn a persistent polling thread for one source. `iterate` must block
  /// until the next event, handle it, and return true; it returns false when
  /// the source has shut down (the thread then exits). `poll_cost_us` is the
  /// price of one poll of this protocol and feeds the interference model.
  void add_poller(channel_id_t channel, usec_t poll_cost_us,
                  std::function<bool()> iterate) {
    // Schedule exploration: perturb this channel's poll cost before it
    // enters the interference model, shifting every wakeup on the node.
    // Pure in (seed, node, channel) — identical across replays.
    if (auto* sched = sim::ScheduleController::current()) {
      poll_cost_us +=
          sched->poll_frequency_jitter_us(node_.id(), channel, poll_cost_us);
    }
    node_.register_poller(channel, poll_cost_us);
    threads_.push_back(std::make_unique<Thread>(
        node_, "poll-" + std::to_string(channel),
        [this, channel, iterate = std::move(iterate)] {
          while (iterate()) {
          }
          node_.unregister_poller(channel);
        }));
  }

  /// Charge the virtual cost of waking up to handle one message on
  /// `channel`: the Marcel wake plus the interference of the other pollers.
  /// Called by the poller's own iterate body after its blocking wait ends.
  usec_t charge_wakeup(channel_id_t channel) {
    // Teardown drain (TERM broadcasts, late credit returns) still charges
    // virtual time, but must not leak into the process-wide wakeup
    // counter: benches and tests snapshot it around measured windows, and
    // a session tearing down mid-poll would smear nondeterministic drain
    // wakeups into the next window's delta.
    if (!draining_.load(std::memory_order_acquire)) {
      DatapathStats::global().count_poll_wakeup();
    }
    usec_t extra = ThreadCosts::kWake + node_.poll_interference(channel);
    // Schedule exploration: jitter each wakeup so two pollers racing for
    // near-simultaneous arrivals can finish in either order. The sequence
    // number is the calling poller's own wakeup count — each channel has
    // exactly one poller thread, so a thread-local counter is that
    // poller's causal history, not shared racy state.
    if (auto* sched = sim::ScheduleController::current()) {
      thread_local std::uint64_t wakeups = 0;
      extra += sched->poll_wakeup_jitter_us(node_.id(), channel, wakeups++);
    }
    node_.clock().advance(extra);
    return extra;
  }

  sim::Node& node() { return node_; }
  std::size_t poller_count() const { return threads_.size(); }

  /// Mark the teardown drain: wakeups from here on are session shutdown
  /// traffic, not workload, and stay out of DatapathStats.
  void begin_drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Join every polling thread. The sources must have been closed first so
  /// the iterate callbacks observe shutdown and return false.
  void join() {
    for (auto& thread : threads_) thread->join();
    threads_.clear();
  }

 private:
  sim::Node& node_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::atomic<bool> draining_{false};
};

}  // namespace madmpi::marcel
