#include "marcel/engine.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/status.hpp"
#include "sim/sched.hpp"
#include "sim/virtual_clock.hpp"

// ---- platform & sanitizer feature detection -------------------------------

#if defined(__x86_64__) && defined(__ELF__)
#define MADMPI_FIBER_ASM 1
#else
#define MADMPI_FIBER_ASM 0
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define MADMPI_ENGINE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MADMPI_ENGINE_ASAN 1
#endif
#endif
#ifndef MADMPI_ENGINE_ASAN
#define MADMPI_ENGINE_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__)
#define MADMPI_ENGINE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MADMPI_ENGINE_TSAN 1
#endif
#endif
#ifndef MADMPI_ENGINE_TSAN
#define MADMPI_ENGINE_TSAN 0
#endif

#if MADMPI_ENGINE_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if MADMPI_ENGINE_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// ---- raw context switching ------------------------------------------------
//
// The x86-64 switcher saves exactly the System V callee-saved state (rbx,
// rbp, r12-r15, plus the MXCSR/x87 control words the ABI also classifies
// as callee-saved) onto the current stack, stores rsp through `save_sp`,
// and restores the mirror image from `load_sp`. A fresh fiber's stack is
// fabricated so that the first restore "returns" into madmpi_ctx_boot,
// which finds the Fiber pointer in rbx and calls the C++ entry.

extern "C" void madmpi_fiber_entry(void* fiber);

#if MADMPI_FIBER_ASM

extern "C" {
void madmpi_ctx_swap(void** save_sp, void* load_sp);
void madmpi_ctx_boot();
}

asm(R"(
.text
.align 16
.globl madmpi_ctx_swap
.type madmpi_ctx_swap, @function
madmpi_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
.size madmpi_ctx_swap, .-madmpi_ctx_swap

.align 16
.globl madmpi_ctx_boot
.type madmpi_ctx_boot, @function
madmpi_ctx_boot:
  movq %rbx, %rdi
  callq madmpi_fiber_entry
  ud2
.size madmpi_ctx_boot, .-madmpi_ctx_boot
)");

#endif  // MADMPI_FIBER_ASM

namespace madmpi::marcel {

namespace {

struct Shard;

struct Fiber {
  enum class State : std::uint8_t { kRunnable, kParked, kDone };

  std::unique_ptr<std::byte[]> stack;
  std::size_t stack_size = 0;
  State state = State::kRunnable;
  std::function<void()> body;
  // Set while parked; evaluated by the shard worker each scan round. Must
  // take its own locks and never touch virtual-clock lanes.
  std::function<bool()> ready;
  // The fiber's causal lanes, installed around every run slice.
  sim::VirtualClock::LaneMap lanes;
  // Fiber-local storage (see fiber_local_slot): a few caller-owned
  // pointers, keyed by the registry in engine.hpp and destroyed right
  // after the body returns.
  void* user_slots[kFiberSlotCount] = {};
  void (*user_dtors[kFiberSlotCount])(void*) = {};
#if MADMPI_FIBER_ASM
  void* sp = nullptr;
#else
  ucontext_t ctx{};
#endif
#if MADMPI_ENGINE_TSAN
  void* tsan_fiber = nullptr;
#endif
#if MADMPI_ENGINE_ASAN
  void* asan_fake = nullptr;
#endif
};

struct Shard {
  std::vector<Fiber*> fibers;
  std::size_t alive = 0;
};

// Per-worker-thread scheduler state. Fibers are pinned to one shard, so a
// fiber only ever observes the thread-locals of its own worker.
thread_local Fiber* t_current_fiber = nullptr;
#if MADMPI_FIBER_ASM
thread_local void* t_worker_sp = nullptr;
#else
thread_local ucontext_t t_worker_ctx;
#endif
#if MADMPI_ENGINE_TSAN
thread_local void* t_worker_tsan = nullptr;
#endif
#if MADMPI_ENGINE_ASAN
thread_local const void* t_worker_stack_bottom = nullptr;
thread_local std::size_t t_worker_stack_size = 0;
#endif

// The cross-engine wakeup channel: completion paths bump the epoch; idle
// shard workers sleep on the condition variable with a short timeout. The
// sleeper count lets engine_notify() skip the mutex when every worker is
// busy scanning anyway.
struct Notifier {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<int> sleepers{0};
};

Notifier& notifier() {
  static Notifier instance;
  return instance;
}

std::atomic<int> g_active_pools{0};

#if MADMPI_FIBER_ASM

void init_fiber_context(Fiber& fiber) {
  auto top = reinterpret_cast<std::uintptr_t>(fiber.stack.get()) +
             fiber.stack_size;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* slots = reinterpret_cast<std::uint64_t*>(top);
  slots[-1] = reinterpret_cast<std::uint64_t>(&madmpi_ctx_boot);
  slots[-2] = 0;                                          // rbp
  slots[-3] = reinterpret_cast<std::uint64_t>(&fiber);    // rbx
  slots[-4] = 0;                                          // r12
  slots[-5] = 0;                                          // r13
  slots[-6] = 0;                                          // r14
  slots[-7] = 0;                                          // r15
  // MXCSR + x87 control word slot: seed from the creating thread so the
  // fiber starts with the process's FP environment.
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  auto* fpu = reinterpret_cast<std::uint32_t*>(&slots[-8]);
  fpu[0] = mxcsr;
  std::memcpy(reinterpret_cast<std::byte*>(fpu) + 4, &fcw, sizeof fcw);
  fiber.sp = &slots[-8];
}

void raw_swap_to_fiber(Fiber& fiber) { madmpi_ctx_swap(&t_worker_sp, fiber.sp); }
void raw_swap_to_worker(Fiber& fiber) { madmpi_ctx_swap(&fiber.sp, t_worker_sp); }

#else

void init_fiber_context(Fiber& fiber) {
  MADMPI_CHECK(getcontext(&fiber.ctx) == 0);
  fiber.ctx.uc_stack.ss_sp = fiber.stack.get();
  fiber.ctx.uc_stack.ss_size = fiber.stack_size;
  fiber.ctx.uc_link = nullptr;
  // makecontext passes ints; smuggle the pointer through as two halves.
  const auto bits = reinterpret_cast<std::uintptr_t>(&fiber);
  makecontext(&fiber.ctx,
              reinterpret_cast<void (*)()>(
                  static_cast<void (*)(unsigned, unsigned)>(
                      [](unsigned lo, unsigned hi) {
                        const std::uintptr_t ptr =
                            (static_cast<std::uintptr_t>(hi) << 32) |
                            static_cast<std::uintptr_t>(lo);
                        madmpi_fiber_entry(reinterpret_cast<void*>(ptr));
                      })),
              2, static_cast<unsigned>(bits & 0xffffffffu),
              static_cast<unsigned>(bits >> 32));
}

void raw_swap_to_fiber(Fiber& fiber) {
  MADMPI_CHECK(swapcontext(&t_worker_ctx, &fiber.ctx) == 0);
}
void raw_swap_to_worker(Fiber& fiber) {
  MADMPI_CHECK(swapcontext(&fiber.ctx, &t_worker_ctx) == 0);
}

#endif  // MADMPI_FIBER_ASM

/// Fiber side: hand control back to the shard worker. `dying` marks the
/// final switch (the fiber's sanitizer stack is torn down, not saved).
void switch_to_worker(Fiber& fiber, bool dying) {
#if MADMPI_ENGINE_TSAN
  __tsan_switch_to_fiber(t_worker_tsan, 0);
#endif
#if MADMPI_ENGINE_ASAN
  __sanitizer_start_switch_fiber(dying ? nullptr : &fiber.asan_fake,
                                 t_worker_stack_bottom, t_worker_stack_size);
#else
  (void)dying;
#endif
  raw_swap_to_worker(fiber);
  // Resumed by the worker for another slice.
#if MADMPI_ENGINE_ASAN
  __sanitizer_finish_switch_fiber(fiber.asan_fake, &t_worker_stack_bottom,
                                  &t_worker_stack_size);
#endif
}

/// Worker side: run one slice of `fiber` — install its lanes, open a clock
/// batch, switch in, and unwind all of it when the fiber parks, yields or
/// finishes.
void resume_fiber(Fiber& fiber) {
  t_current_fiber = &fiber;
  sim::VirtualClock::LaneMap* previous =
      sim::VirtualClock::exchange_lane_map(&fiber.lanes);
  sim::VirtualClock::begin_batch();
#if MADMPI_ENGINE_TSAN
  __tsan_switch_to_fiber(fiber.tsan_fiber, 0);
#endif
#if MADMPI_ENGINE_ASAN
  void* worker_fake = nullptr;
  __sanitizer_start_switch_fiber(&worker_fake, fiber.stack.get(),
                                 fiber.stack_size);
#endif
  raw_swap_to_fiber(fiber);
#if MADMPI_ENGINE_ASAN
  __sanitizer_finish_switch_fiber(worker_fake, nullptr, nullptr);
#endif
  sim::VirtualClock::end_batch();
  sim::VirtualClock::exchange_lane_map(previous);
  t_current_fiber = nullptr;
}

void worker_main(Shard& shard, std::size_t shard_index) {
#if MADMPI_ENGINE_TSAN
  t_worker_tsan = __tsan_get_current_fiber();
#endif
  Notifier& wake = notifier();
  std::uint64_t round = 0;
  while (shard.alive > 0) {
    ++round;
    const std::uint64_t epoch_before =
        wake.epoch.load(std::memory_order_acquire);
    // Re-read the controller each round: sweeps install per-seed
    // controllers between runs, and the fiber-wake rotation must follow.
    auto* sched = sim::ScheduleController::current();
    bool progressed = false;
    const std::size_t count = shard.fibers.size();
    const std::size_t origin =
        sched != nullptr ? sched->fiber_wake_start(shard_index, round, count)
                         : 0;
    for (std::size_t i = 0; i < count; ++i) {
      Fiber* fiber = shard.fibers[(origin + i) % count];
      if (fiber->state == Fiber::State::kDone) continue;
      if (fiber->state == Fiber::State::kParked) {
        if (!fiber->ready()) continue;
        fiber->ready = nullptr;
        fiber->state = Fiber::State::kRunnable;
      }
      resume_fiber(*fiber);
      progressed = true;
      if (fiber->state == Fiber::State::kDone) {
        --shard.alive;
#if MADMPI_ENGINE_TSAN
        __tsan_destroy_fiber(fiber->tsan_fiber);
        fiber->tsan_fiber = nullptr;
#endif
      }
    }
    if (progressed || shard.alive == 0) continue;
    // Every fiber is parked with a false predicate: sleep until a
    // completion path bumps the epoch (or a short timeout re-polls, which
    // bounds any notify race without affecting correctness).
    wake.sleepers.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(wake.mutex);
      wake.cv.wait_for(lock, std::chrono::microseconds(200), [&] {
        return wake.epoch.load(std::memory_order_acquire) != epoch_before;
      });
    }
    wake.sleepers.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace

extern "C" void madmpi_fiber_entry(void* opaque) {
  Fiber* fiber = static_cast<Fiber*>(opaque);
#if MADMPI_ENGINE_ASAN
  __sanitizer_finish_switch_fiber(nullptr, &t_worker_stack_bottom,
                                  &t_worker_stack_size);
#endif
  fiber->body();
  for (std::size_t key = 0; key < kFiberSlotCount; ++key) {
    if (fiber->user_slots[key] != nullptr &&
        fiber->user_dtors[key] != nullptr) {
      fiber->user_dtors[key](fiber->user_slots[key]);
      fiber->user_slots[key] = nullptr;
    }
  }
  fiber->state = Fiber::State::kDone;
  switch_to_worker(*fiber, /*dying=*/true);
  // A finished fiber is never resumed.
  std::abort();
}

EngineKind engine_kind_from_env() {
  const char* value = std::getenv("MADMPI_ENGINE");
  if (value == nullptr || *value == '\0' ||
      std::strcmp(value, "threaded") == 0) {
    return EngineKind::kThreaded;
  }
  if (std::strcmp(value, "sharded") == 0) return EngineKind::kSharded;
  MADMPI_LOG_WARN("marcel", "unknown MADMPI_ENGINE '%s'; using threaded",
                  value);
  return EngineKind::kThreaded;
}

std::size_t engine_shards_from_env() {
  if (const char* value = std::getenv("MADMPI_SHARDS");
      value != nullptr && *value != '\0') {
    const unsigned long long parsed = std::strtoull(value, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max(1u, hw));
}

std::size_t engine_stack_bytes_from_env() {
  std::size_t kb = 1024;
  if (const char* value = std::getenv("MADMPI_FIBER_STACK_KB");
      value != nullptr && *value != '\0') {
    const unsigned long long parsed = std::strtoull(value, nullptr, 10);
    if (parsed >= 64) kb = static_cast<std::size_t>(parsed);
  }
  return kb * 1024;
}

bool on_fiber() { return t_current_fiber != nullptr; }

void** fiber_local_slot(std::size_t key, void (*dtor)(void*)) {
  MADMPI_CHECK(key < kFiberSlotCount);
  Fiber* fiber = t_current_fiber;
  if (fiber == nullptr) return nullptr;
  fiber->user_dtors[key] = dtor;
  return &fiber->user_slots[key];
}

void park_until(std::function<bool()> ready) {
  Fiber* fiber = t_current_fiber;
  MADMPI_CHECK_MSG(fiber != nullptr, "park_until() called off-fiber");
  if (ready()) return;
  fiber->ready = std::move(ready);
  fiber->state = Fiber::State::kParked;
  switch_to_worker(*fiber, /*dying=*/false);
}

void cooperative_yield() {
  Fiber* fiber = t_current_fiber;
  if (fiber == nullptr) {
    std::this_thread::yield();
    return;
  }
  switch_to_worker(*fiber, /*dying=*/false);
}

void engine_notify() {
  if (g_active_pools.load(std::memory_order_acquire) == 0) return;
  Notifier& wake = notifier();
  wake.epoch.fetch_add(1, std::memory_order_release);
  if (wake.sleepers.load(std::memory_order_acquire) > 0) {
    // Take (and drop) the mutex so the notify cannot slip between a
    // sleeper's predicate check and its wait.
    { std::lock_guard<std::mutex> guard(wake.mutex); }
    wake.cv.notify_all();
  }
}

void run_fiber_pool(std::size_t count, std::size_t shards,
                    std::size_t stack_bytes,
                    const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  MADMPI_CHECK_MSG(!on_fiber(), "nested fiber pools are not supported");
  shards = std::min(std::max<std::size_t>(1, shards), count);
  stack_bytes = std::max<std::size_t>(stack_bytes, 64 * 1024);

  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(count);
  std::vector<Shard> pool(shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto fiber = std::make_unique<Fiber>();
    fiber->stack_size = stack_bytes;
    // Default-init (not make_unique's value-init): zero-filling would touch
    // every page of every stack up front, committing count * stack_bytes of
    // real memory before any fiber runs. Left untouched, pages commit lazily
    // as stacks actually grow, which is what makes 1024 ranks affordable.
    fiber->stack.reset(new std::byte[stack_bytes]);
    fiber->body = [&body, i] { body(i); };
#if MADMPI_ENGINE_TSAN
    fiber->tsan_fiber = __tsan_create_fiber(0);
#endif
    init_fiber_context(*fiber);
    Shard& shard = pool[i % shards];
    shard.fibers.push_back(fiber.get());
    ++shard.alive;
    fibers.push_back(std::move(fiber));
  }

  g_active_pools.fetch_add(1, std::memory_order_acq_rel);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers.emplace_back([&pool, s] { worker_main(pool[s], s); });
  }
  for (auto& worker : workers) worker.join();
  g_active_pools.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace madmpi::marcel
