// Virtual-time-aware counting semaphore.
//
// The ch_mad rendezvous protocol blocks the MPI control thread on a
// semaphore stored in the rhandle; the polling thread releases it when the
// data lands (paper Section 4.2.2). In virtual time, the waiter must wake
// *no earlier than* the releaser's clock, so V() stamps the release time and
// P() synchronizes the waiter's clock to it plus the Marcel wake cost.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/types.hpp"
#include "marcel/engine.hpp"
#include "marcel/thread.hpp"
#include "sim/node.hpp"

namespace madmpi::marcel {

class Semaphore {
 public:
  explicit Semaphore(sim::Node& node, int initial = 0)
      : node_(node), count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// V: release one waiter. Charges the signal cost to the releaser and
  /// records its clock so the waiter cannot observe an earlier time.
  void signal() {
    const usec_t at = node_.clock().advance(ThreadCosts::kSemSignal);
    // Notify while holding the lock: a waiter may destroy this semaphore
    // the moment it observes the permit, so the notify must not touch the
    // object after the state change becomes visible. A parked fiber,
    // though, owns its own stack: it cannot observe the permit until its
    // shard worker re-polls, so the engine nudge is safe after the lock.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++count_;
      release_times_.push_back(at);
      available_.notify_one();
    }
    engine_notify();
  }

  /// P: wait for a release; wake at max(own clock, releaser clock) + wake
  /// cost. On a fiber this parks the continuation instead of blocking the
  /// shard worker.
  void wait() {
    usec_t released_at;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      engine_wait(lock, available_, [this] { return count_ > 0; });
      --count_;
      released_at = release_times_.front();
      release_times_.pop_front();
    }
    node_.clock().sync_to(released_at);
    node_.clock().advance(ThreadCosts::kWake);
  }

  /// Non-blocking P; returns false when no permit is available.
  bool try_wait() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ <= 0) return false;
    --count_;
    node_.clock().sync_to(release_times_.front());
    release_times_.pop_front();
    return true;
  }

  int value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  sim::Node& node_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  int count_;
  std::deque<usec_t> release_times_;
};

}  // namespace madmpi::marcel
