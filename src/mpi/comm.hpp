// Communicators and the user-facing MPI operation set.
//
// This is the "generic part" of the MPICH structure (paper Figure 1):
// point-to-point semantics, non-blocking requests, probe, communicator
// management and the collective operations, all expressed over the ADI.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/adi.hpp"
#include "mpi/coll_topo.hpp"
#include "mpi/coll_types.hpp"
#include "mpi/datatype.hpp"
#include "mpi/errhandler.hpp"
#include "mpi/group.hpp"
#include "mpi/op.hpp"
#include "mpi/request.hpp"
#include "mpi/runtime.hpp"
#include "mpi/types.hpp"

namespace madmpi::mpi {

/// Default for CollectiveConfig::fault_tolerant — the MADMPI_FT_COLLECTIVES
/// environment knob (off unless set to a truthy value, keeping the
/// fault-free fast path byte-identical to the pre-FT stack by default).
bool ft_collectives_default();
/// Default for CollectiveConfig::agree_timeout_us — the
/// MADMPI_FT_AGREE_TIMEOUT_US environment knob (virtual microseconds).
usec_t ft_agree_timeout_default();

struct CollectiveConfig {
  AllreduceAlgorithm allreduce = allreduce_algorithm_default();
  BcastAlgorithm bcast = bcast_algorithm_default();
  BarrierAlgorithm barrier = barrier_algorithm_default();

  /// Whether kAuto resolution may elect the modeled NIC offload (requires
  /// an offload-capable homogeneous leader fabric; MADMPI_COLL_OFFLOAD).
  bool offload = coll_offload_default();

  /// Fault-tolerant collectives: survivable trees (bcast re-routes dead
  /// subtrees through live peers) plus uniform error agreement — when a
  /// collective cannot complete, every live rank returns the same error
  /// class instead of a divergent mix of hangs, successes and failures.
  /// Must be set identically on every rank. In FT mode bcast/allreduce
  /// always use the survivable binomial tree (the algorithm selectors
  /// above apply to the fault-free mode only).
  bool fault_tolerant = ft_collectives_default();
  /// Safety-valve deadline for FT-internal receives, in virtual
  /// microseconds: the bound after which a receive the failure detector
  /// cannot prove dead is abandoned during a sustained global stall.
  usec_t agree_timeout_us = ft_agree_timeout_default();
};

class Comm {
 public:
  Comm() = default;  // invalid handle

  bool valid() const { return shared_ != nullptr; }
  int rank() const { return rank_; }
  int size() const;

  /// Global (world) rank of a communicator rank.
  rank_t global_rank_of(rank_t comm_rank) const;

  // --- Point-to-point ------------------------------------------------

  /// MPI_Send: blocking, returns when the buffer is reusable (eager) or
  /// when the transfer completed (rendezvous; mode is picked from the
  /// device's switch point, paper §4.2.2). A non-ok status means the device
  /// exhausted every route to the destination (MPI_ERR_OTHER territory);
  /// the message may have been partially delivered and was aborted on the
  /// receiving side.
  Status send(const void* buf, int count, const Datatype& type, rank_t dest,
              int tag);

  /// MPI_Ssend: completion implies a matching receive was posted (forces
  /// the rendezvous handshake regardless of size).
  Status ssend(const void* buf, int count, const Datatype& type, rank_t dest,
               int tag);

  /// MPI_Bsend: returns as soon as the message is copied into the attached
  /// buffer (buffer_attach); never blocks on the receiver. Aborts with an
  /// MPI_ERR_BUFFER-style message when the attached buffer cannot hold the
  /// message alongside the other pending buffered sends.
  void bsend(const void* buf, int count, const Datatype& type, rank_t dest,
             int tag);

  /// MPI_Buffer_attach / MPI_Buffer_detach for this rank's thread. Detach
  /// blocks until every pending buffered send has been delivered to the
  /// device.
  static void buffer_attach(std::size_t bytes);
  static void buffer_detach();

  /// Bytes needed in the attached buffer for one bsend of `bytes` payload
  /// (MPI_BSEND_OVERHEAD included).
  static std::size_t bsend_overhead() { return 64; }

  /// MPI_Recv.
  MpiStatus recv(void* buf, int count, const Datatype& type, rank_t source,
                 int tag);

  /// MPI_Isend: eager sizes complete inline; rendezvous sizes are handed
  /// to a temporary thread, exactly the paper's §4.2.3 scheme.
  Request isend(const void* buf, int count, const Datatype& type, rank_t dest,
                int tag);

  /// MPI_Issend.
  Request issend(const void* buf, int count, const Datatype& type,
                 rank_t dest, int tag);

  /// MPI_Irecv.
  Request irecv(void* buf, int count, const Datatype& type, rank_t source,
                int tag);

  /// MPI_Sendrecv.
  MpiStatus sendrecv(const void* send_buf, int send_count,
                     const Datatype& send_type, rank_t dest, int send_tag,
                     void* recv_buf, int recv_count,
                     const Datatype& recv_type, rank_t source, int recv_tag);

  /// MPI_Probe / MPI_Iprobe.
  MpiStatus probe(rank_t source, int tag);
  bool iprobe(rank_t source, int tag, MpiStatus* status = nullptr);

  /// MPI_Mprobe: block until a matching message arrives, remove it from
  /// the unexpected queue and hand back an owning handle. The message can
  /// then only be completed through mrecv()/imrecv() with that handle —
  /// no other receive (on any thread) can steal it.
  MpiStatus mprobe(rank_t source, int tag, MatchedMessage* message);

  /// MPI_Improbe: the nonblocking flavor. Returns true (with `message`
  /// valid) when a matching message was removed, false otherwise.
  bool improbe(rank_t source, int tag, MatchedMessage* message,
               MpiStatus* status = nullptr);

  /// MPI_Mrecv / MPI_Imrecv: complete a message previously matched by
  /// mprobe()/improbe(). The handle is consumed.
  MpiStatus mrecv(void* buf, int count, const Datatype& type,
                  MatchedMessage message);
  Request imrecv(void* buf, int count, const Datatype& type,
                 MatchedMessage message);

  // --- Error handling --------------------------------------------------

  /// MPI_Comm_set_errhandler / MPI_Comm_get_errhandler, per rank. The
  /// C++ default is errors_return() — these APIs already hand back Status
  /// values (and PR 1's tests rely on that); the C compat facade installs
  /// errors_are_fatal() per the MPI standard's default.
  void set_errhandler(Errhandler handler);
  Errhandler errhandler() const;

  /// Route a failed operation through this rank's error handler: fatal
  /// aborts, custom runs the callback; either way the status is returned
  /// so Status-based callers keep composing.
  Status raise_error(const Status& status);

  // --- Collectives ----------------------------------------------------

  /// Select collective algorithms for this rank's view of the
  /// communicator. Collective semantics require every rank to set the same
  /// configuration.
  void set_collective_config(const CollectiveConfig& config);
  CollectiveConfig collective_config() const;

  /// What algorithm the next call would actually run, after kAuto
  /// resolution against the topology digest, the tuner's decision table
  /// and the FT interop rule (FT mode always resolves to the flat
  /// survivable algorithms — the explicit fallback the FT guard test
  /// pins). Introspection for tests, benches and the tuner smoke.
  BcastAlgorithm resolve_bcast(std::size_t bytes) const;
  AllreduceAlgorithm resolve_allreduce(std::size_t bytes) const;
  BarrierAlgorithm resolve_barrier() const;

  /// The communicator's topology digest (islands / clusters / reps),
  /// built lazily and cached. Exposed for tests and the tuner.
  const CollTopo& coll_topo() const;

  // Collectives report failures through the communicator's error handler,
  // then return the Status (non-ok when a hop died mid-algorithm — the
  // MPI_ERRORS_RETURN propagation path through collectives; peers of a
  // failed collective may be left waiting and rely on the progress
  // watchdog to cancel them). Ignoring the return keeps legacy callers
  // source-compatible.
  Status barrier();
  Status bcast(void* buf, int count, const Datatype& type, rank_t root);
  Status reduce(const void* send_buf, void* recv_buf, int count,
                const Datatype& type, const Op& op, rank_t root);
  Status allreduce(const void* send_buf, void* recv_buf, int count,
                   const Datatype& type, const Op& op);
  Status gather(const void* send_buf, int send_count,
                const Datatype& send_type, void* recv_buf, int recv_count,
                const Datatype& recv_type, rank_t root);
  Status gatherv(const void* send_buf, int send_count,
                 const Datatype& send_type, void* recv_buf,
                 std::span<const int> recv_counts,
                 std::span<const int> displacements,
                 const Datatype& recv_type, rank_t root);
  Status scatter(const void* send_buf, int send_count,
                 const Datatype& send_type, void* recv_buf, int recv_count,
                 const Datatype& recv_type, rank_t root);
  Status scatterv(const void* send_buf, std::span<const int> send_counts,
                  std::span<const int> displacements,
                  const Datatype& send_type, void* recv_buf, int recv_count,
                  const Datatype& recv_type, rank_t root);
  Status allgather(const void* send_buf, int send_count,
                   const Datatype& send_type, void* recv_buf, int recv_count,
                   const Datatype& recv_type);
  Status allgatherv(const void* send_buf, int send_count,
                    const Datatype& send_type, void* recv_buf,
                    std::span<const int> recv_counts,
                    std::span<const int> displacements,
                    const Datatype& recv_type);
  Status alltoall(const void* send_buf, int send_count,
                  const Datatype& send_type, void* recv_buf, int recv_count,
                  const Datatype& recv_type);
  Status alltoallv(const void* send_buf, std::span<const int> send_counts,
                   std::span<const int> send_displs,
                   const Datatype& send_type, void* recv_buf,
                   std::span<const int> recv_counts,
                   std::span<const int> recv_displs,
                   const Datatype& recv_type);
  Status scan(const void* send_buf, void* recv_buf, int count,
              const Datatype& type, const Op& op);
  Status reduce_scatter_block(const void* send_buf, void* recv_buf,
                              int count, const Datatype& type, const Op& op);

  // --- Nonblocking collectives ----------------------------------------
  //
  // Each operation is a progress-engine-driven schedule (coll_sched.cpp):
  // the returned request completes when the per-rank state machine has
  // run all its rounds, advanced from whatever context completes the
  // underlying transfers (a ch_mad poller, an smp sender, a fiber resume)
  // — never from a hidden blocking call. MPI_Test on the request yields
  // the shard, so spin-loops make progress on the sharded engine. In FT
  // mode the operation degrades to the blocking survivable algorithm at
  // initiation time (completing the request inline), mirroring the
  // blocking collectives' explicit FT fallback.
  Request ibcast(void* buf, int count, const Datatype& type, rank_t root);
  Request iallreduce(const void* send_buf, void* recv_buf, int count,
                     const Datatype& type, const Op& op);
  Request ibarrier();

  // --- ULFM-style fault tolerance --------------------------------------

  /// MPIX_Comm_revoke: mark this communicator unusable on every rank.
  /// Peers blocked in operations on it are cancelled with kRevoked; any
  /// later operation raises kRevoked through the errhandler. shrink() and
  /// agree() remain usable on a revoked communicator (they are the
  /// recovery path).
  Status revoke();
  /// Whether this communicator has been revoked.
  bool revoked() const;

  /// MPIX_Comm_shrink: collectively agree on the set of failed ranks and
  /// return a new communicator over the survivors. In an asymmetric
  /// partition each side shrinks to its own partition (distinct derived
  /// contexts keep them from cross-talking); a rank the group agreed is
  /// failed gets an invalid Comm and a kProcFailed through its
  /// errhandler.
  Comm shrink();

  /// MPIX_Comm_agree: uniform agreement on the bitwise AND of `flag`
  /// across all live ranks. Returns kProcFailed (through the errhandler)
  /// on every live rank when any participant is known failed, with *flag
  /// still set to the AND over the live contributions.
  Status agree(int* flag);

  // --- Communicator management ----------------------------------------

  Comm dup();
  /// MPI_Comm_split; color == -1 (the MPI_UNDEFINED sentinel) returns an
  /// invalid Comm. Any other negative color is an argument error raised
  /// through the errhandler layer (MPI_ERR_ARG), also yielding an invalid
  /// Comm when the handler returns.
  Comm split(int color, int key);

  /// MPI_Comm_group: this communicator's membership in world ranks.
  Group group() const;

  /// MPI_Comm_create: collective over this communicator; callers inside
  /// `subset` (which must be identical everywhere and a subgroup of this
  /// communicator) receive the new communicator, others an invalid one.
  Comm create(const Group& subset);

  /// MPI_Wtime: the hosting node's virtual clock, in seconds.
  double wtime() const;
  /// Same clock in microseconds (native unit of the simulation).
  usec_t wtime_us() const;

  /// Charge local computation time to this rank's virtual clock —
  /// simulation-aware applications model their compute phases with this
  /// (host flops are free; only charged time shapes the schedule).
  void compute_us(usec_t us);

  int context() const;

  /// Build the world communicator handle for `rank` (used by the session).
  static Comm world(Runtime* runtime, rank_t rank, int world_context = 0);

 private:
  struct Shared;
  // One-sided windows live beside the communicator and need its runtime
  // plumbing (device dispatch, context registry, id derivation).
  friend class Win;
  // The nonblocking-collective schedules (coll_sched.cpp) drive the
  // private coll_isend/coll_irecv primitives from completion hooks.
  friend class IcollSchedule;
  // The session-setup auto-tuner (coll_tuner.cpp) installs its decision
  // table on the communicator's runtime.
  friend void tune_collectives(Comm world);
  Comm(std::shared_ptr<Shared> shared, rank_t rank)
      : shared_(std::move(shared)), rank_(rank) {}

  /// Internal p2p on the collective context (tags private to algorithms).
  void coll_send(const void* buf, std::size_t bytes, rank_t dest, int tag);
  /// Fan the same payload out to every listed child concurrently and wait
  /// for all (a blocking tree node would otherwise serialize one full
  /// rendezvous handshake per child). Falls back to serialized coll_send
  /// under FT capture, where the per-hop verdict logic lives.
  void coll_send_multi(const std::vector<rank_t>& children, const void* buf,
                       std::size_t bytes, int tag);
  void coll_recv(void* buf, std::size_t bytes, rank_t source, int tag);
  void coll_sendrecv(const void* send, std::size_t send_bytes, rank_t dest,
                     void* recv, std::size_t recv_bytes, rank_t source,
                     int tag);

  /// Nonblocking internal p2p on the collective context: the building
  /// blocks of the schedules (comm.cpp, beside the isend machinery they
  /// share). Never block the caller — eager completes inline, rendezvous
  /// detaches — so they are safe to issue from completion hooks.
  Request coll_isend(const void* buf, std::size_t bytes, rank_t dest,
                     int tag);
  Request coll_irecv(void* buf, std::size_t bytes, rank_t source, int tag);

  void allreduce_recursive_doubling(void* recv_buf, int count,
                                    const Datatype& type, const Op& op);
  void allreduce_ring(void* recv_buf, int count, const Datatype& type,
                      const Op& op);
  void bcast_binomial(std::byte* wire, std::size_t bytes, rank_t root);
  void bcast_linear(std::byte* wire, std::size_t bytes, rank_t root);

  // --- Hierarchical collective engine (coll_hier.cpp) ------------------

  /// Binomial tree ops over an explicit member list (members[0] is the
  /// source/sink); the three hierarchy levels all reduce to these. Only
  /// ranks present in `members` may call; everyone else skips the stage.
  void tree_bcast_members(const std::vector<rank_t>& members,
                          std::byte* wire, std::size_t bytes, int tag);
  /// Flat concurrent fan-out from members[0]; the interconnect level of
  /// hier_bcast (rep count = cluster count, wire serialization dominates).
  void linear_bcast_members(const std::vector<rank_t>& members,
                            std::byte* wire, std::size_t bytes, int tag);
  void tree_reduce_members(const std::vector<rank_t>& members,
                           std::byte* accum, std::size_t bytes, int count,
                           const Datatype& type, const Op* op, int tag);

  void hier_bcast(std::byte* wire, std::size_t bytes, rank_t root);
  void hier_reduce(std::byte* accum, std::size_t bytes, int count,
                   const Datatype& type, const Op& op, rank_t root);
  void hier_allreduce(void* recv_buf, int count, const Datatype& type,
                      const Op& op);
  void hier_barrier();
  void offload_barrier();
  void offload_bcast(std::byte* wire, std::size_t bytes, rank_t root);

  /// Whether reduce() should take the hierarchical path for `bytes`
  /// (reduce has no config enum of its own; it follows allreduce's
  /// resolution, which shares its communication shape).
  bool use_hier_reduce(std::size_t bytes) const;

  /// Shared gather body: root collects each rank's packed block into
  /// wire + offsets[src] (offsets has size()+1 entries, self block packed
  /// locally); non-roots pack and send. gather/gatherv/allgatherv all
  /// delegate here instead of repeating the pack/recv loop.
  void gather_packed_to_root(const void* send_buf, int send_count,
                             const Datatype& send_type, std::byte* wire,
                             const std::vector<std::size_t>& offsets,
                             rank_t root);

  Envelope make_envelope(rank_t dest, int tag, std::uint64_t bytes,
                         bool synchronous) const;

  /// Flow-control admission (tentpole of the robustness layer): picks the
  /// transfer mode, then asks the *receiver's* unexpected store and the
  /// device's credit window for an eager slot. Either refusal demotes the
  /// transfer to rendezvous, which buffers nothing until the receive
  /// posts. Self-sends skip admission (ch_self must stay eager: a
  /// single-threaded rendezvous with oneself would deadlock).
  TransferMode admit_or_demote(Device& device, rank_t dst_global,
                               const Envelope& env, bool synchronous,
                               bool may_block);

  /// Undo a successful admission whose eager send then failed (the device
  /// refunds its own credits; this returns the store reservation).
  void release_admission(rank_t dst_global, const Envelope& env,
                         TransferMode mode);

  Device& device_to(rank_t dest) const;
  sim::Node& my_node() const;
  RankContext& my_context() const;

  // --- Fault-tolerant collectives (ft_collectives.cpp) -----------------

  /// Agreed outcome of the flooding protocol: err_bits is OR-merged (any
  /// rank's failure verdict), and_bits AND-merged (MPIX_Comm_agree), dead
  /// OR-merged from the ranks' *input* failure views only — failures
  /// observed during the agreement itself exclude a peer locally but
  /// never enter the decided value, so a last-round detection cannot
  /// split the decision.
  struct FtOutcome {
    std::uint32_t err_bits = 0;
    std::uint32_t and_bits = 0xffffffffu;
    std::vector<std::uint8_t> dead;
  };

  /// Directional failure detector in communicator ranks.
  bool rank_unreachable(rank_t from_comm, rank_t to_comm) const;
  /// Non-ok (kRevoked) when this communicator has been revoked.
  Status ft_entry_check() const;
  /// Whether a public collective should take the FT path (FT configured,
  /// more than one rank, and not already inside a captured FT body).
  bool ft_should_wrap() const;
  /// Generic FT wrapper: run `body` in capture mode (p2p failures are
  /// recorded, not thrown), then agree uniformly on the outcome.
  Status ft_collective(const std::function<Status()>& body);
  Status ft_bcast(void* buf, int count, const Datatype& type, rank_t root);
  Status ft_allreduce(const void* send_buf, void* recv_buf, int count,
                      const Datatype& type, const Op& op);
  /// The survivable binomial multicast: wildcard witness receives,
  /// subtree adoption on dead edges, relay through a live adopted member.
  void ft_bcast_tree(std::byte* wire, std::size_t bytes, rank_t root);
  /// Best-effort send on the collective context: returns success instead
  /// of throwing/recording (FT re-route and agreement traffic).
  bool ft_try_send(const void* buf, std::size_t bytes, rank_t dest, int tag);
  /// N-round flooding agreement (FloodSet over the epoch-tagged
  /// collective context).
  FtOutcome ft_agree_internal(int epoch, std::uint32_t err_bits,
                              std::uint32_t and_bits,
                              const std::vector<std::uint8_t>& dead_in);

  /// Pack the send buffer if needed; returns a span over either the user
  /// buffer (contiguous) or `staging`.
  byte_span pack_for_send(const void* buf, int count, const Datatype& type,
                          std::vector<std::byte>& staging) const;

  std::shared_ptr<Shared> shared_;
  rank_t rank_ = kInvalidRank;
};

/// Session-setup auto-tuner (MADMPI_COLL_TUNE): collectively micro-probe
/// the candidate algorithms on `world`, elect winners per collective per
/// size class and install the decision table on the runtime. Must be
/// called by every world rank (it is a collective). coll_tuner.cpp.
void tune_collectives(Comm world);

}  // namespace madmpi::mpi
