// Minimal MPI error-handler layer (MPI-1 §7.2, narrowed to communicators).
//
// PR 1 made the device layers report failures as Status values; this maps
// them onto MPI semantics: every communicator (per rank) carries an error
// handler deciding what a non-ok operation does — abort the program
// (MPI_ERRORS_ARE_FATAL), hand the error back to the caller
// (MPI_ERRORS_RETURN), or run a user callback first. The progress
// watchdog's cancellations (ErrorCode::kTimedOut) travel through the same
// funnel, so a dead peer surfaces as an MPI error instead of a hang.
#pragma once

#include <functional>
#include <string>

#include "common/status.hpp"

namespace madmpi::mpi {

enum class ErrhandlerKind {
  kFatal,   // MPI_ERRORS_ARE_FATAL: abort with the error message
  kReturn,  // MPI_ERRORS_RETURN: the operation reports the error
  kCustom,  // user callback runs, then the error is returned
};

struct Errhandler {
  ErrhandlerKind kind = ErrhandlerKind::kReturn;
  /// Custom handler, invoked on the erring rank's thread before the
  /// operation returns (the comm handle and full MPI context live at the
  /// call site; the callback receives the portable part).
  std::function<void(ErrorCode, const std::string&)> fn;

  static Errhandler errors_are_fatal() {
    return Errhandler{ErrhandlerKind::kFatal, {}};
  }
  static Errhandler errors_return() {
    return Errhandler{ErrhandlerKind::kReturn, {}};
  }
  static Errhandler custom(
      std::function<void(ErrorCode, const std::string&)> fn) {
    return Errhandler{ErrhandlerKind::kCustom, std::move(fn)};
  }
};

}  // namespace madmpi::mpi
