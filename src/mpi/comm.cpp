#include "mpi/comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "marcel/engine.hpp"
#include "marcel/thread.hpp"
#include "sim/cost_model.hpp"

#include "mpi/comm_shared.hpp"

namespace madmpi::mpi {

Comm Comm::world(Runtime* runtime, rank_t rank, int world_context) {
  // All ranks must share one Shared instance per logical communicator; the
  // runtime is the natural owner. Use a per-runtime registry.
  static std::mutex registry_mutex;
  static std::map<std::pair<Runtime*, int>, std::weak_ptr<Shared>> registry;

  std::lock_guard<std::mutex> lock(registry_mutex);
  auto key = std::make_pair(runtime, world_context);
  std::shared_ptr<Shared> shared = registry[key].lock();
  if (!shared) {
    shared = std::make_shared<Shared>();
    shared->runtime = runtime;
    shared->context = world_context;
    shared->group.resize(static_cast<std::size_t>(runtime->world_size()));
    for (int i = 0; i < runtime->world_size(); ++i) shared->group[i] = i;
    shared->creation_seq.assign(shared->group.size(), 0);
    registry[key] = shared;
  }
  return Comm(std::move(shared), rank);
}

int Comm::size() const {
  return static_cast<int>(shared_->group.size());
}

rank_t Comm::global_rank_of(rank_t comm_rank) const {
  MADMPI_CHECK(comm_rank >= 0 && comm_rank < size());
  return shared_->group[static_cast<std::size_t>(comm_rank)];
}

int Comm::context() const { return shared_->context; }

sim::Node& Comm::my_node() const {
  return shared_->runtime->node_of(global_rank_of(rank_));
}

RankContext& Comm::my_context() const {
  return shared_->runtime->context_of(global_rank_of(rank_));
}

Device& Comm::device_to(rank_t dest) const {
  return shared_->runtime->device_for(global_rank_of(rank_),
                                      global_rank_of(dest));
}

Envelope Comm::make_envelope(rank_t dest, int tag, std::uint64_t bytes,
                             bool synchronous) const {
  Envelope env;
  env.context = shared_->context;
  env.src = rank_;
  env.dst = dest;
  env.tag = tag;
  env.bytes = bytes;
  env.synchronous = synchronous;
  env.sender_big_endian = my_node().big_endian();
  return env;
}

byte_span Comm::pack_for_send(const void* buf, int count,
                              const Datatype& type,
                              std::vector<std::byte>& staging) const {
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  const bool big_endian = my_node().big_endian();
  if (type.is_contiguous() && !big_endian) {
    return byte_span{static_cast<const std::byte*>(buf), bytes};
  }
  staging.resize(bytes);
  type.pack(buf, count, staging.data());
  if (!type.is_contiguous()) {
    // Gathering a strided datatype into the wire representation is a real
    // memory pass on the sending host.
    my_node().clock().advance(static_cast<double>(bytes) *
                              sim::kHostCopyUsPerByte);
  }
  if (big_endian) {
    // The wire carries the sender's byte order (the receiver makes it
    // right, per the envelope flag); writing big-endian data is free for
    // a big-endian host, so no cost is charged here.
    type.swap_packed(staging.data(), count);
  }
  return byte_span{staging.data(), staging.size()};
}

TransferMode Comm::admit_or_demote(Device& device, rank_t dst_global,
                                   const Envelope& env, bool synchronous,
                                   bool may_block) {
  TransferMode mode = device.select_mode(env.bytes, synchronous);
  if (mode != TransferMode::kEager) return mode;
  const rank_t src_global = global_rank_of(rank_);
  if (src_global == dst_global) return mode;  // ch_self: always eager
  // Two gates, receiver's store first: a message the store cannot hold
  // must not consume a credit it would immediately hand back.
  RankContext& peer = shared_->runtime->context_of(dst_global);
  if (!peer.admit_eager(env.bytes)) return TransferMode::kRendezvous;
  if (!device.admit_eager(src_global, dst_global, env.bytes, may_block)) {
    peer.release_eager_admission(env.bytes);
    return TransferMode::kRendezvous;
  }
  return mode;
}

void Comm::release_admission(rank_t dst_global, const Envelope& env,
                             TransferMode mode) {
  if (mode != TransferMode::kEager) return;
  if (global_rank_of(rank_) == dst_global) return;
  shared_->runtime->context_of(dst_global).release_eager_admission(
      env.bytes);
}

void Comm::set_errhandler(Errhandler handler) {
  std::lock_guard<std::mutex> lock(shared_->errhandler_mutex);
  if (shared_->errhandlers.empty()) {
    shared_->errhandlers.resize(shared_->group.size());
  }
  shared_->errhandlers[static_cast<std::size_t>(rank_)] =
      std::move(handler);
}

Errhandler Comm::errhandler() const {
  std::lock_guard<std::mutex> lock(shared_->errhandler_mutex);
  if (shared_->errhandlers.empty()) return Errhandler::errors_return();
  return shared_->errhandlers[static_cast<std::size_t>(rank_)];
}

Status Comm::raise_error(const Status& status) {
  if (status.is_ok()) return status;
  const Errhandler handler = errhandler();
  switch (handler.kind) {
    case ErrhandlerKind::kFatal:
      fatal("MPI error (MPI_ERRORS_ARE_FATAL) on rank " +
            std::to_string(rank_) + ": " + status.to_string());
    case ErrhandlerKind::kCustom:
      if (handler.fn) handler.fn(status.code(), status.message());
      break;
    case ErrhandlerKind::kReturn:
      break;
  }
  return status;
}

Status Comm::send(const void* buf, int count, const Datatype& type,
                  rank_t dest, int tag) {
  MADMPI_CHECK(dest >= 0 && dest < size());
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  std::vector<std::byte> staging;
  const byte_span packed = pack_for_send(buf, count, type, staging);
  const Envelope env = make_envelope(dest, tag, packed.size(), false);
  Device& device = device_to(dest);
  const rank_t dst_global = global_rank_of(dest);
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/true);
  Status status =
      device.send(global_rank_of(rank_), dst_global, env, packed, mode);
  if (!status.is_ok()) release_admission(dst_global, env, mode);
  return raise_error(status);
}

Status Comm::ssend(const void* buf, int count, const Datatype& type,
                   rank_t dest, int tag) {
  MADMPI_CHECK(dest >= 0 && dest < size());
  std::vector<std::byte> staging;
  const byte_span packed = pack_for_send(buf, count, type, staging);
  const Envelope env = make_envelope(dest, tag, packed.size(), true);
  Device& device = device_to(dest);
  return raise_error(device.send(global_rank_of(rank_), global_rank_of(dest),
                                 env, packed, TransferMode::kRendezvous));
}

namespace {

/// Per-rank-thread buffered-send pool (MPI_Buffer_attach semantics: one
/// buffer per process; our "process" is the rank thread).
struct BsendPool {
  std::size_t capacity = 0;
  std::mutex mutex;
  std::condition_variable drained;
  std::size_t in_flight = 0;  // bytes currently parked in the buffer
  int pending = 0;            // buffered sends not yet delivered
};

thread_local std::shared_ptr<BsendPool> t_bsend_pool;

void destroy_bsend_slot(void* p) {
  delete static_cast<std::shared_ptr<BsendPool>*>(p);
}

// Per-rank attachment: a thread_local under the threaded engine, the
// fiber's local slot under the sharded one — fibers from several ranks
// share each shard worker's OS thread, so a plain thread_local would let
// one rank's attach satisfy another rank's bsend (and trip the
// double-attach guard).
std::shared_ptr<BsendPool>& bsend_pool() {
  if (void** slot = marcel::fiber_local_slot(marcel::kFiberSlotBsend,
                                             &destroy_bsend_slot)) {
    if (*slot == nullptr) *slot = new std::shared_ptr<BsendPool>();
    return *static_cast<std::shared_ptr<BsendPool>*>(*slot);
  }
  return t_bsend_pool;
}

}  // namespace

void Comm::buffer_attach(std::size_t bytes) {
  std::shared_ptr<BsendPool>& attached = bsend_pool();
  MADMPI_CHECK_MSG(attached == nullptr || attached->capacity == 0,
                   "a bsend buffer is already attached");
  attached = std::make_shared<BsendPool>();
  attached->capacity = bytes;
}

void Comm::buffer_detach() {
  std::shared_ptr<BsendPool>& attached = bsend_pool();
  MADMPI_CHECK_MSG(attached != nullptr && attached->capacity != 0,
                   "no bsend buffer attached");
  std::unique_lock<std::mutex> lock(attached->mutex);
  marcel::engine_wait(lock, attached->drained,
                      [&] { return attached->pending == 0; });
  lock.unlock();
  attached.reset();
}

void Comm::bsend(const void* buf, int count, const Datatype& type,
                 rank_t dest, int tag) {
  MADMPI_CHECK(dest >= 0 && dest < size());
  std::shared_ptr<BsendPool> pool = bsend_pool();
  MADMPI_CHECK_MSG(pool != nullptr && pool->capacity != 0,
                   "MPI_Bsend without an attached buffer");

  std::vector<std::byte> staging;
  const byte_span view = pack_for_send(buf, count, type, staging);
  const std::size_t needed = view.size() + bsend_overhead();
  {
    std::lock_guard<std::mutex> lock(pool->mutex);
    MADMPI_CHECK_MSG(pool->in_flight + needed <= pool->capacity,
                     "attached bsend buffer too small (MPI_ERR_BUFFER)");
    pool->in_flight += needed;
    ++pool->pending;
  }

  // Park a copy in the "attached buffer" and deliver from a detached
  // thread; the caller returns immediately.
  auto parked =
      std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
  sim::Node& node = my_node();
  const usec_t birth =
      node.clock().advance(marcel::ThreadCosts::kCreate +
                           static_cast<double>(view.size()) *
                               sim::kHostCopyUsPerByte);
  const Envelope env = make_envelope(dest, tag, view.size(), false);
  Device& device = device_to(dest);
  const rank_t src_global = global_rank_of(rank_);
  const rank_t dst_global = global_rank_of(dest);
  // Admit on the caller's thread (bsend must never block: may_block
  // false, so a dry credit window demotes to rendezvous).
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/false);
  Comm self = *this;
  std::thread([&node, birth, &device, src_global, dst_global, env, parked,
               pool, needed, mode, self]() mutable {
    node.clock().bind_lane(birth);
    // A buffered send has no request to carry the error; log and drop, as
    // real implementations do for undeliverable bsends.
    const Status status =
        device.send(src_global, dst_global, env,
                    byte_span{parked->data(), parked->size()}, mode);
    if (!status.is_ok()) {
      self.release_admission(dst_global, env, mode);
      MADMPI_LOG_WARN("mpi", "bsend to rank %d failed: %s",
                      static_cast<int>(env.dst), status.message().c_str());
    }
    {
      std::lock_guard<std::mutex> lock(pool->mutex);
      pool->in_flight -= needed;
      --pool->pending;
      pool->drained.notify_all();
    }
    marcel::engine_notify();
  }).detach();
}

Request Comm::irecv(void* buf, int count, const Datatype& type,
                    rank_t source, int tag) {
  MADMPI_CHECK(source == kAnySource || (source >= 0 && source < size()));
  auto state = std::make_shared<RequestState>(my_node());
  PostedRecv posted;
  posted.context = shared_->context;
  posted.source = source;
  posted.tag = tag;
  posted.buffer = buf;
  posted.type = type;
  posted.count = count;
  posted.capacity_bytes = type.size() * static_cast<std::size_t>(count);
  posted.request = state;
  posted.source_global =
      source == kAnySource ? kInvalidRank : global_rank_of(source);
  posted.posted_at = my_node().clock().now();
  // MPI_Cancel hook: pull the receive back out of the posted queue. The
  // context outlives every request (it belongs to the session directory).
  state->set_cancel([context = &my_context(), raw = state.get()] {
    return context->cancel_posted(raw);
  });
  my_context().post_recv(std::move(posted));
  // Revocation closes a race here: revoke() registers the context first
  // and then sweeps posted receives, so a receive posted concurrently
  // either is caught by the sweep or observes the registry now.
  if (shared_->runtime->context_revoked(shared_->context)) {
    my_context().cancel_context(shared_->context, ErrorCode::kRevoked);
    my_context().notify_waiters();
  }
  return Request(std::move(state));
}

MpiStatus Comm::recv(void* buf, int count, const Datatype& type,
                     rank_t source, int tag) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    raise_error(entry);
    MpiStatus status;
    status.source = source;
    status.tag = tag;
    status.error = entry.code();
    return status;
  }
  MpiStatus status = irecv(buf, count, type, source, tag).wait();
  if (status.error != ErrorCode::kOk) {
    raise_error(Status(status.error,
                       "recv from rank " + std::to_string(source)));
  }
  return status;
}

namespace {

/// Temporary-thread send used by the non-blocking rendezvous path: the
/// paper dedicates one Marcel thread per MPI_Isend (§4.2.3). For user-facing
/// sends the payload is staged so the caller's buffer is free immediately
/// (matching how the ADI keeps a reference otherwise), charged as a host
/// copy. Callers that guarantee the buffer outlives the request — the
/// nonblocking-collective schedules pin theirs until every tracked
/// sub-operation completes — pass stage=false and lend the buffer to the
/// rendezvous thread directly, skipping the copy and its charge (a tree
/// node forwarding 64 KiB to four children would otherwise serialize four
/// staging copies on its lane before the last child's data departs).
void spawn_rendezvous_send(sim::Node& node, Device& device, rank_t src,
                           rank_t dst, Envelope env, byte_span packed,
                           std::shared_ptr<RequestState> state,
                           bool stage = true) {
  std::shared_ptr<std::vector<std::byte>> payload;
  byte_span wire = packed;
  usec_t spawn_cost = marcel::ThreadCosts::kCreate;
  if (stage) {
    payload = std::make_shared<std::vector<std::byte>>(packed.begin(),
                                                       packed.end());
    wire = byte_span{payload->data(), payload->size()};
    spawn_cost +=
        static_cast<double>(packed.size()) * sim::kHostCopyUsPerByte;
  }
  const usec_t birth = node.clock().advance(spawn_cost);
  std::thread([&node, birth, &device, src, dst, env, wire,
               payload = std::move(payload), state = std::move(state)] {
    node.clock().bind_lane(birth);
    const Status result =
        device.send(src, dst, env, wire, TransferMode::kRendezvous);
    MpiStatus status;
    status.source = env.dst;  // send-side status: peer and tag
    status.tag = env.tag;
    status.bytes = env.bytes;
    status.error = result.code();
    state->complete(status);
  }).detach();
}

}  // namespace

Request Comm::isend(const void* buf, int count, const Datatype& type,
                    rank_t dest, int tag) {
  MADMPI_CHECK(dest >= 0 && dest < size());
  std::vector<std::byte> staging;
  const byte_span packed = pack_for_send(buf, count, type, staging);
  const Envelope env = make_envelope(dest, tag, packed.size(), false);
  Device& device = device_to(dest);
  const rank_t dst_global = global_rank_of(dest);
  // Nonblocking: a dry credit window or full remote store demotes to the
  // rendezvous thread instead of stalling the caller (may_block false).
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/false);

  auto state = std::make_shared<RequestState>(my_node());
  if (mode == TransferMode::kEager) {
    // Locally complete as soon as the device accepted the bytes.
    const Status result =
        device.send(global_rank_of(rank_), dst_global, env, packed, mode);
    if (!result.is_ok()) release_admission(dst_global, env, mode);
    MpiStatus status;
    status.source = dest;
    status.tag = tag;
    status.bytes = env.bytes;
    status.error = result.code();
    state->complete(status);
  } else {
    // MPI_Cancel hook: ask the device to detach the rendezvous while it
    // still waits for the receiver's ack. The detached path then
    // completes the request with kCancelled.
    state->set_cancel(
        [&device, src = global_rank_of(rank_), dst_global, env] {
          return device.try_cancel_send(src, dst_global, env);
        });
    // Stage the payload so the caller's buffer is free on return (charged
    // as a host copy), then hand the rendezvous to the device's
    // asynchronous path: the REQUEST is injected on this thread, keeping
    // it ordered behind any eager frames this rank already sent (MPI
    // non-overtaking). A detached sender thread is the fallback only.
    std::vector<std::byte> owned(packed.begin(), packed.end());
    my_node().clock().advance(static_cast<double>(packed.size()) *
                              sim::kHostCopyUsPerByte);
    const byte_span wire{owned.data(), owned.size()};
    if (!device.isend_rendezvous(global_rank_of(rank_), dst_global, env,
                                 wire, std::move(owned), state)) {
      spawn_rendezvous_send(my_node(), device, global_rank_of(rank_),
                            dst_global, env, packed, state,
                            /*stage=*/true);
    }
  }
  return Request(std::move(state));
}

Request Comm::coll_isend(const void* buf, std::size_t bytes, rank_t dest,
                         int tag) {
  // Schedule hop on the collective context. Must never block the caller
  // (it can run from a completion hook): eager completes inline, anything
  // else detaches to the rendezvous thread (may_block false everywhere).
  // The schedule keeps its payload buffer alive until every tracked
  // sub-operation completes, so the rendezvous thread borrows it
  // (stage=false) instead of paying a staging copy per tree hop.
  Envelope env = make_envelope(dest, tag, bytes, false);
  env.context = shared_->context + 1;
  Device& device = device_to(dest);
  const rank_t dst_global = global_rank_of(dest);
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/false);
  auto state = std::make_shared<RequestState>(my_node());
  const byte_span packed{static_cast<const std::byte*>(buf), bytes};
  if (mode == TransferMode::kEager) {
    const Status result =
        device.send(global_rank_of(rank_), dst_global, env, packed, mode);
    if (!result.is_ok()) release_admission(dst_global, env, mode);
    MpiStatus status;
    status.source = dest;
    status.tag = tag;
    status.bytes = env.bytes;
    status.error = result.code();
    state->complete(status);
  } else if (!device.isend_rendezvous(global_rank_of(rank_), dst_global,
                                      env, packed, {}, state)) {
    // No staging either way: the schedule pins the buffer until every
    // tracked sub-operation completes, so the device (or the fallback
    // thread) borrows it directly.
    spawn_rendezvous_send(my_node(), device, global_rank_of(rank_),
                          dst_global, env, packed, state, /*stage=*/false);
  }
  return Request(std::move(state));
}

Request Comm::coll_irecv(void* buf, std::size_t bytes, rank_t source,
                         int tag) {
  auto state = std::make_shared<RequestState>(my_node());
  PostedRecv posted;
  posted.context = shared_->context + 1;
  posted.source = source;
  posted.tag = tag;
  posted.buffer = buf;
  posted.type = Datatype::byte();
  posted.count = static_cast<int>(bytes);
  posted.capacity_bytes = bytes;
  posted.request = state;
  posted.source_global = global_rank_of(source);
  posted.posted_at = my_node().clock().now();
  state->set_cancel([context = &my_context(), raw = state.get()] {
    return context->cancel_posted(raw);
  });
  my_context().post_recv(std::move(posted));
  return Request(std::move(state));
}

Request Comm::issend(const void* buf, int count, const Datatype& type,
                     rank_t dest, int tag) {
  MADMPI_CHECK(dest >= 0 && dest < size());
  std::vector<std::byte> staging;
  const byte_span packed = pack_for_send(buf, count, type, staging);
  const Envelope env = make_envelope(dest, tag, packed.size(), true);
  auto state = std::make_shared<RequestState>(my_node());
  Device& device = device_to(dest);
  state->set_cancel([&device, src = global_rank_of(rank_),
                     dst = global_rank_of(dest), env] {
    return device.try_cancel_send(src, dst, env);
  });
  // Same staged asynchronous rendezvous as isend: the handshake request
  // leaves on this thread, in program order with the rank's eager frames.
  std::vector<std::byte> owned(packed.begin(), packed.end());
  my_node().clock().advance(static_cast<double>(packed.size()) *
                            sim::kHostCopyUsPerByte);
  const byte_span wire{owned.data(), owned.size()};
  if (!device.isend_rendezvous(global_rank_of(rank_), global_rank_of(dest),
                               env, wire, std::move(owned), state)) {
    spawn_rendezvous_send(my_node(), device, global_rank_of(rank_),
                          global_rank_of(dest), env, packed, state,
                          /*stage=*/true);
  }
  return Request(std::move(state));
}

MpiStatus Comm::sendrecv(const void* send_buf, int send_count,
                         const Datatype& send_type, rank_t dest, int send_tag,
                         void* recv_buf, int recv_count,
                         const Datatype& recv_type, rank_t source,
                         int recv_tag) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    raise_error(entry);
    MpiStatus status;
    status.source = source;
    status.tag = recv_tag;
    status.error = entry.code();
    return status;
  }
  Request recv_request = irecv(recv_buf, recv_count, recv_type, source,
                               recv_tag);
  send(send_buf, send_count, send_type, dest, send_tag);
  MpiStatus status = recv_request.wait();
  if (status.error != ErrorCode::kOk) {
    raise_error(Status(status.error,
                       "sendrecv from rank " + std::to_string(source)));
  }
  return status;
}

MpiStatus Comm::probe(rank_t source, int tag) {
  MpiStatus status;
  const rank_t source_global =
      source == kAnySource ? kInvalidRank : global_rank_of(source);
  my_context().probe(shared_->context, source, tag, source_global, &status);
  if (status.error != ErrorCode::kOk) {
    raise_error(Status(status.error,
                       "probe of rank " + std::to_string(source)));
  }
  return status;
}

bool Comm::iprobe(rank_t source, int tag, MpiStatus* status) {
  const bool found =
      my_context().iprobe(shared_->context, source, tag, status);
  // Iprobe spin loops must make progress on the fiber engine: the probed
  // message can only arrive if the sender's fiber gets to run.
  if (!found) marcel::cooperative_yield();
  return found;
}

MpiStatus Comm::mprobe(rank_t source, int tag, MatchedMessage* message) {
  MpiStatus status;
  const rank_t source_global =
      source == kAnySource ? kInvalidRank : global_rank_of(source);
  my_context().mprobe(shared_->context, source, tag, source_global, message,
                      &status);
  if (status.error != ErrorCode::kOk) {
    raise_error(Status(status.error,
                       "mprobe of rank " + std::to_string(source)));
  }
  return status;
}

bool Comm::improbe(rank_t source, int tag, MatchedMessage* message,
                   MpiStatus* status) {
  const bool found =
      my_context().improbe(shared_->context, source, tag, message, status);
  if (!found) marcel::cooperative_yield();
  return found;
}

Request Comm::imrecv(void* buf, int count, const Datatype& type,
                     MatchedMessage message) {
  MADMPI_CHECK_MSG(message.valid(), "imrecv on an invalid MatchedMessage");
  auto state = std::make_shared<RequestState>(my_node());
  PostedRecv posted;
  posted.context = shared_->context;
  posted.source = message.envelope().src;
  posted.tag = message.envelope().tag;
  posted.buffer = buf;
  posted.type = type;
  posted.count = count;
  posted.capacity_bytes = type.size() * static_cast<std::size_t>(count);
  posted.request = state;
  posted.source_global = global_rank_of(message.envelope().src);
  posted.posted_at = my_node().clock().now();
  my_context().mrecv(std::move(message), std::move(posted));
  return Request(std::move(state));
}

MpiStatus Comm::mrecv(void* buf, int count, const Datatype& type,
                      MatchedMessage message) {
  MpiStatus status = imrecv(buf, count, type, std::move(message)).wait();
  if (status.error != ErrorCode::kOk) {
    raise_error(Status(status.error, "mrecv"));
  }
  return status;
}

double Comm::wtime() const { return my_node().clock().now() * 1e-6; }
usec_t Comm::wtime_us() const { return my_node().clock().now(); }
void Comm::compute_us(usec_t us) { my_node().clock().advance(us); }

Group Comm::group() const { return Group(shared_->group); }

Comm Comm::create(const Group& subset) {
  const int seq = shared_->next_seq(rank_);
  const rank_t my_world = global_rank_of(rank_);

  // Membership sanity: every subset member must belong to this comm.
  for (rank_t member : subset.members()) {
    bool found = false;
    for (rank_t g : shared_->group) {
      if (g == member) {
        found = true;
        break;
      }
    }
    MADMPI_CHECK_MSG(found, "Comm::create group is not a subgroup");
  }

  const int my_new_rank = subset.rank_of(my_world);
  if (my_new_rank < 0) return Comm();  // caller outside the new group

  auto shared = std::make_shared<Shared>();
  shared->runtime = shared_->runtime;
  // The group digest separates different create() calls that could share a
  // sequence number across disjoint subgroups.
  shared->context = shared_->runtime->derive_context_id(
      shared_->context,
      (static_cast<std::int64_t>(seq) << 32) | subset.digest());
  shared->group = subset.members();
  shared->creation_seq.assign(shared->group.size(), 0);
  // Derived communicators inherit the parent's error handler (MPI §8.3).
  shared->errhandlers.assign(shared->group.size(), errhandler());
  return Comm(std::move(shared), my_new_rank);
}

Comm Comm::dup() {
  const int seq = shared_->next_seq(rank_);
  auto shared = std::make_shared<Shared>();
  shared->runtime = shared_->runtime;
  shared->context = shared_->runtime->derive_context_id(
      shared_->context, static_cast<std::int64_t>(seq) << 32);
  shared->group = shared_->group;
  shared->creation_seq.assign(shared->group.size(), 0);
  shared->errhandlers.assign(shared->group.size(), errhandler());

  // All ranks must share one Shared: funnel through the world registry
  // trick is unnecessary — instead each rank builds an identical Shared.
  // Identical immutable contents are sufficient: matching only uses the
  // context id and group mapping, which are equal across the copies.
  return Comm(std::move(shared), rank_);
}

Comm Comm::split(int color, int key) {
  // Only the MPI_UNDEFINED sentinel (-1 internally) may be negative; any
  // other negative color is an argument error, raised *before* the
  // allgather so an erring rank never enters the collective exchange.
  if (color < -1) {
    raise_error(Status(ErrorCode::kInvalidArgument,
                       "Comm::split: negative color " +
                           std::to_string(color) +
                           " is not MPI_UNDEFINED"));
    return Comm();
  }

  const int seq = shared_->next_seq(rank_);

  // Exchange (color, key) with every member over the collective context —
  // a genuine allgather, as a distributed implementation must.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(size()));
  Entry mine{color, key, rank_};
  allgather(&mine, static_cast<int>(sizeof(Entry)), Datatype::byte(),
            entries.data(), static_cast<int>(sizeof(Entry)),
            Datatype::byte());

  if (color < 0) return Comm();  // MPI_UNDEFINED

  std::vector<Entry> members;
  for (const auto& entry : entries) {
    if (entry.color == color) members.push_back(entry);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.rank < b.rank;
                   });

  auto shared = std::make_shared<Shared>();
  shared->runtime = shared_->runtime;
  // Distinct colors yield distinct derived ids; the +1 keeps split's
  // variant space disjoint from dup's (variant 0).
  shared->context = shared_->runtime->derive_context_id(
      shared_->context, (static_cast<std::int64_t>(seq) << 32) |
                            (static_cast<std::uint32_t>(color) + 1));
  shared->errhandlers.assign(members.size(), errhandler());
  shared->group.reserve(members.size());
  rank_t my_new_rank = kInvalidRank;
  for (std::size_t i = 0; i < members.size(); ++i) {
    shared->group.push_back(global_rank_of(members[i].rank));
    if (members[i].rank == rank_) my_new_rank = static_cast<rank_t>(i);
  }
  shared->creation_seq.assign(shared->group.size(), 0);
  MADMPI_CHECK(my_new_rank != kInvalidRank);
  return Comm(std::move(shared), my_new_rank);
}

}  // namespace madmpi::mpi
