#include "mpi/op.hpp"

#include <algorithm>
#include <cstdint>

#include "common/status.hpp"

namespace madmpi::mpi {

namespace {

template <typename T, typename Fn>
void combine(const void* in, void* inout, int count, Fn&& fn) {
  const T* a = static_cast<const T*>(in);
  T* b = static_cast<T*>(inout);
  for (int i = 0; i < count; ++i) b[i] = fn(a[i], b[i]);
}

/// Dispatch an arithmetic operation over the primitive class. Bitwise and
/// logical ops are rejected for floating point (as in MPI).
template <typename Fn>
void for_class(TypeClass type_class, const void* in, void* inout, int count,
               bool allow_float, Fn&& fn) {
  switch (type_class) {
    case TypeClass::kInt8: combine<std::int8_t>(in, inout, count, fn); return;
    case TypeClass::kUInt8:
    case TypeClass::kByte: combine<std::uint8_t>(in, inout, count, fn); return;
    case TypeClass::kInt32: combine<std::int32_t>(in, inout, count, fn); return;
    case TypeClass::kUInt32: combine<std::uint32_t>(in, inout, count, fn); return;
    case TypeClass::kInt64: combine<std::int64_t>(in, inout, count, fn); return;
    case TypeClass::kUInt64: combine<std::uint64_t>(in, inout, count, fn); return;
    case TypeClass::kFloat:
      MADMPI_CHECK_MSG(allow_float, "operator undefined for float types");
      combine<float>(in, inout, count, fn);
      return;
    case TypeClass::kDouble:
      MADMPI_CHECK_MSG(allow_float, "operator undefined for float types");
      combine<double>(in, inout, count, fn);
      return;
    case TypeClass::kDerived:
      fatal("built-in reduction on a derived datatype");
  }
}

// Bit/logical functors must only be instantiated for integral types, so the
// dispatch for them goes through a separate integer-only path.
template <typename Fn>
void for_int_class(TypeClass type_class, const void* in, void* inout,
                   int count, Fn&& fn) {
  switch (type_class) {
    case TypeClass::kInt8: combine<std::int8_t>(in, inout, count, fn); return;
    case TypeClass::kUInt8:
    case TypeClass::kByte: combine<std::uint8_t>(in, inout, count, fn); return;
    case TypeClass::kInt32: combine<std::int32_t>(in, inout, count, fn); return;
    case TypeClass::kUInt32: combine<std::uint32_t>(in, inout, count, fn); return;
    case TypeClass::kInt64: combine<std::int64_t>(in, inout, count, fn); return;
    case TypeClass::kUInt64: combine<std::uint64_t>(in, inout, count, fn); return;
    default:
      fatal("bitwise/logical reduction on a non-integer datatype");
  }
}

int element_count(int count, const Datatype& type) {
  // A contiguous datatype of N primitives reduces as N*count primitives.
  const std::size_t primitive_size = [&] {
    switch (type.type_class()) {
      case TypeClass::kInt8:
      case TypeClass::kUInt8:
      case TypeClass::kByte: return std::size_t{1};
      case TypeClass::kInt32:
      case TypeClass::kUInt32:
      case TypeClass::kFloat: return std::size_t{4};
      case TypeClass::kInt64:
      case TypeClass::kUInt64:
      case TypeClass::kDouble: return std::size_t{8};
      case TypeClass::kDerived: return std::size_t{0};
    }
    return std::size_t{0};
  }();
  MADMPI_CHECK_MSG(primitive_size != 0,
                   "built-in reduction needs a primitive type class");
  MADMPI_CHECK_MSG(type.is_contiguous(),
                   "built-in reduction needs a contiguous datatype");
  MADMPI_CHECK(type.size() % primitive_size == 0);
  return count * static_cast<int>(type.size() / primitive_size);
}

}  // namespace

Op Op::sum() { return Op(Kind::kSum, "sum"); }
Op Op::prod() { return Op(Kind::kProd, "prod"); }
Op Op::min() { return Op(Kind::kMin, "min"); }
Op Op::max() { return Op(Kind::kMax, "max"); }
Op Op::land() { return Op(Kind::kLand, "land"); }
Op Op::lor() { return Op(Kind::kLor, "lor"); }
Op Op::band() { return Op(Kind::kBand, "band"); }
Op Op::bor() { return Op(Kind::kBor, "bor"); }
Op Op::bxor() { return Op(Kind::kBxor, "bxor"); }

Op Op::user(UserFunction fn) {
  Op op(Kind::kUser, "user");
  op.user_fn_ = std::move(fn);
  return op;
}

void Op::apply(const void* in, void* inout, int count,
               const Datatype& type) const {
  if (kind_ == Kind::kUser) {
    user_fn_(in, inout, count, type);
    return;
  }
  const int n = element_count(count, type);
  const TypeClass tc = type.type_class();
  switch (kind_) {
    case Kind::kSum:
      for_class(tc, in, inout, n, true, [](auto a, auto b) { return a + b; });
      break;
    case Kind::kProd:
      for_class(tc, in, inout, n, true, [](auto a, auto b) { return a * b; });
      break;
    case Kind::kMin:
      for_class(tc, in, inout, n, true,
                [](auto a, auto b) { return std::min(a, b); });
      break;
    case Kind::kMax:
      for_class(tc, in, inout, n, true,
                [](auto a, auto b) { return std::max(a, b); });
      break;
    case Kind::kLand:
      for_int_class(tc, in, inout, n, [](auto a, auto b) {
        return static_cast<decltype(a)>(a && b);
      });
      break;
    case Kind::kLor:
      for_int_class(tc, in, inout, n, [](auto a, auto b) {
        return static_cast<decltype(a)>(a || b);
      });
      break;
    case Kind::kBand:
      for_int_class(tc, in, inout, n,
                    [](auto a, auto b) { return static_cast<decltype(a)>(a & b); });
      break;
    case Kind::kBor:
      for_int_class(tc, in, inout, n,
                    [](auto a, auto b) { return static_cast<decltype(a)>(a | b); });
      break;
    case Kind::kBxor:
      for_int_class(tc, in, inout, n,
                    [](auto a, auto b) { return static_cast<decltype(a)>(a ^ b); });
      break;
    case Kind::kUser:
      break;  // handled above
  }
}

}  // namespace madmpi::mpi
