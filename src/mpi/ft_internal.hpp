// Internal: thread-local capture state of the fault-tolerant collectives.
// Included by collectives.cpp and ft_collectives.cpp only.
//
// While a rank runs a collective body in capture mode, the collective p2p
// helpers record the first failure and *continue* instead of unwinding —
// every planned send is attempted and every receive either matches, is
// cancelled by the watchdog (dead peer) or gives up at its deadline. No
// rank aborts the algorithm early, so no peer is left waiting on a hop
// that will never be posted; the recorded verdicts then feed the uniform
// agreement protocol.
#pragma once

#include "common/status.hpp"

namespace madmpi::mpi::ft {

/// True while the current rank thread runs a captured collective body.
bool capture_active();
/// Enter capture mode for the collective epoch `epoch`.
void begin_capture(int epoch);
/// Leave capture mode; returns the first recorded failure (kOk if clean).
ErrorCode end_capture();
/// Record a failure (first one wins; no-op outside capture mode).
void record(ErrorCode code);
/// Epoch of the active capture (undefined outside capture mode).
int capture_epoch();

/// Epoch-unique retagging of the classic collective tags while capturing:
/// stragglers of a failed collective (messages a rank skipped receiving)
/// can then never match the next collective's receives — they age out in
/// the unexpected store instead (a small bounded leak under faults).
/// Tags at or above the FT ranges pass through unchanged.
int remap_tag(int tag);

/// Tag of the survivable bcast's data messages for `epoch`.
int bcast_tag(int epoch);
/// Tag of agreement round `round` for `epoch`.
int agree_tag(int epoch, int round);

}  // namespace madmpi::mpi::ft
