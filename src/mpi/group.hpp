// Process groups (MPI_Group): ordered sets of world ranks with the
// standard set operations, used to derive communicators.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace madmpi::mpi {

class Group {
 public:
  /// The empty group (MPI_GROUP_EMPTY).
  Group() = default;

  /// Group containing `world_ranks` in that order (duplicates rejected).
  explicit Group(std::vector<rank_t> world_ranks);

  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }

  /// World rank of the i-th member.
  rank_t world_rank(int index) const;

  /// Rank of a world rank within this group, or -1 (MPI_UNDEFINED).
  int rank_of(rank_t world_rank) const;
  bool contains(rank_t world_rank) const { return rank_of(world_rank) >= 0; }

  const std::vector<rank_t>& members() const { return members_; }

  // --- set operations (member order follows the MPI rules) -------------

  /// Members of `a`, then members of `b` not in `a` (MPI_Group_union).
  static Group set_union(const Group& a, const Group& b);

  /// Members of `a` that are also in `b`, in `a`'s order
  /// (MPI_Group_intersection).
  static Group set_intersection(const Group& a, const Group& b);

  /// Members of `a` not in `b`, in `a`'s order (MPI_Group_difference).
  static Group set_difference(const Group& a, const Group& b);

  /// Subset by positions (MPI_Group_incl).
  Group incl(std::span<const int> ranks) const;

  /// Complement of positions (MPI_Group_excl).
  Group excl(std::span<const int> ranks) const;

  /// MPI_Group_translate_ranks: for each position in `a_ranks` (ranks in
  /// group `a`), the corresponding rank in `b` or -1.
  static std::vector<int> translate_ranks(const Group& a,
                                          std::span<const int> a_ranks,
                                          const Group& b);

  /// Identical members in identical order (MPI_IDENT).
  bool operator==(const Group& other) const {
    return members_ == other.members_;
  }

  /// Same members, any order (MPI_SIMILAR or MPI_IDENT).
  bool similar(const Group& other) const;

  /// Stable 32-bit digest of the member list (context-id derivation).
  std::uint32_t digest() const;

 private:
  std::vector<rank_t> members_;
};

}  // namespace madmpi::mpi
