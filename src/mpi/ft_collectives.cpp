// Fault-tolerant collectives: survivable multicast, uniform error
// agreement, and the ULFM-flavored revoke/shrink/agree recovery API.
//
// Three layers (DESIGN.md §9):
//
//  1. Survivable algorithms — the FT bcast runs an "adoption" binomial
//     tree: every non-root posts a wildcard receive (witnessed by the
//     root, deadline-bounded), and a sender whose edge to a child is dead
//     serves the child's whole subtree directly, asking the first
//     reachable adopted member to relay the payload to the child itself.
//     A dead rank or link re-routes the data through live peers; latency
//     degrades, correctness does not.
//
//  2. Uniform error agreement — after the (captured) data phase, every
//     rank floods its local verdict for size() rounds (FloodSet). The
//     decision ORs the *data-phase* verdicts only; failures observed
//     during the agreement exclude a peer from further receives but never
//     enter the decided value, so a detection in the last round cannot
//     split the outcome. With the fault-plan oracle as a perfect monotone
//     detector for kills, every live rank decides the same value; the
//     receive deadlines bound the remaining adversarial schedules.
//
//  3. Recovery — revoke() poisons the communicator everywhere and cancels
//     blocked peers; shrink() agrees on the dead set and rebuilds a
//     communicator over the survivors; agree() is the uniform AND.
#include <cstdlib>
#include <cstring>
#include <string>

#include "marcel/engine.hpp"
#include "mpi/comm.hpp"
#include "mpi/comm_shared.hpp"
#include "mpi/ft_internal.hpp"

namespace madmpi::mpi {

namespace ft {

namespace {

// Tag ranges, disjoint from the classic per-algorithm tags (1..8) and
// from each other. Epochs wrap within each range; a collision needs a
// straggler surviving thousands of collectives, which the unexpected
// store does not.
constexpr int kFtTagFloor = 1 << 20;
constexpr int kClassicBase = 1 << 20;   // + (epoch % 4096) * 16 + tag
constexpr int kBcastBase = 1 << 21;     // + (epoch % 4096)
constexpr int kAgreeBase = 1 << 22;     // + (epoch % 4096) * 256 + round

struct CaptureState {
  bool active = false;
  ErrorCode first = ErrorCode::kOk;
  int epoch = 0;
};

thread_local CaptureState t_capture;

void destroy_capture_state(void* p) { delete static_cast<CaptureState*>(p); }

// Per-rank capture state: a thread_local under the threaded engine, the
// fiber's local slot under the sharded one — fibers from several ranks
// share each shard worker's OS thread, so a plain thread_local would mix
// one rank's captured verdicts (and epoch) into another's agreement.
CaptureState& capture() {
  if (void** slot = marcel::fiber_local_slot(marcel::kFiberSlotFtCapture,
                                             &destroy_capture_state)) {
    if (*slot == nullptr) *slot = new CaptureState{};
    return *static_cast<CaptureState*>(*slot);
  }
  return t_capture;
}

}  // namespace

bool capture_active() { return capture().active; }

void begin_capture(int epoch) {
  CaptureState& state = capture();
  state.active = true;
  state.first = ErrorCode::kOk;
  state.epoch = epoch;
}

ErrorCode end_capture() {
  CaptureState& state = capture();
  const ErrorCode first = state.first;
  state = CaptureState{};
  return first;
}

void record(ErrorCode code) {
  CaptureState& state = capture();
  if (state.active && code != ErrorCode::kOk &&
      state.first == ErrorCode::kOk) {
    state.first = code;
  }
}

int capture_epoch() { return capture().epoch; }

int remap_tag(int tag) {
  const CaptureState& state = capture();
  if (!state.active || tag >= kFtTagFloor) return tag;
  return kClassicBase + (state.epoch & 0xfff) * 16 + tag;
}

int bcast_tag(int epoch) { return kBcastBase + (epoch & 0xfff); }

int agree_tag(int epoch, int round) {
  return kAgreeBase + (epoch & 0xfff) * 256 + round;
}

}  // namespace ft

bool ft_collectives_default() {
  static const bool value = [] {
    const char* env = std::getenv("MADMPI_FT_COLLECTIVES");
    if (env == nullptr) return false;
    const std::string s(env);
    return !(s.empty() || s == "0" || s == "off" || s == "false");
  }();
  return value;
}

usec_t ft_agree_timeout_default() {
  static const usec_t value = [] {
    const char* env = std::getenv("MADMPI_FT_AGREE_TIMEOUT_US");
    if (env == nullptr) return 1.0e6;
    const double parsed = std::strtod(env, nullptr);
    return parsed > 0.0 ? parsed : 1.0e6;
  }();
  return value;
}

namespace {

// Survivable-bcast frame: [mode u8][pad u8 x3][relay target u32 LE]
// followed by the payload. Serialized explicitly so heterogeneous nodes
// agree on the layout.
constexpr std::size_t kBcastHeader = 8;

enum FtBcastMode : std::uint8_t {
  kModeData = 1,          // forward to your subtree per the binomial tree
  kModeLeaf = 2,          // adopted: your subtree is already served
  kModeLeafAndRelay = 3,  // adopted, and forward a kModeLeaf copy to target
};

void put_u32le(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32le(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

// Agreement frame:
//   [err_bits u32 LE][and_bits u32 LE][flags u8][dead u8 x n]
// flags bit 0: the sender's previous round was *complete and clean* — it
// received an input frame from every peer (nothing excluded, no receive
// errors) and the merged state carried no error or death evidence. The
// bit drives early termination (see ft_agree_internal).
constexpr std::size_t kAgreeHeader = 9;
constexpr std::uint8_t kFlagPrevRoundClean = 0x1;

}  // namespace

bool Comm::rank_unreachable(rank_t from_comm, rank_t to_comm) const {
  if (from_comm == to_comm) return false;
  return shared_->runtime->peer_unreachable(global_rank_of(from_comm),
                                            global_rank_of(to_comm));
}

Status Comm::ft_entry_check() const {
  if (shared_->runtime->context_revoked(shared_->context)) {
    return Status(ErrorCode::kRevoked, "communicator has been revoked");
  }
  return Status::ok();
}

bool Comm::ft_should_wrap() const {
  return size() > 1 && !ft::capture_active() &&
         collective_config().fault_tolerant;
}

bool Comm::ft_try_send(const void* buf, std::size_t bytes, rank_t dest,
                       int tag) {
  // Consult the detector first: beyond skipping a doomed device call,
  // this avoids ever starting a rendezvous handshake with a peer that
  // provably cannot answer.
  if (rank_unreachable(rank_, dest)) return false;
  Envelope env = make_envelope(dest, tag, bytes, false);
  env.context = shared_->context + 1;
  Device& device = device_to(dest);
  const rank_t dst_global = global_rank_of(dest);
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/true);
  const Status status =
      device.send(global_rank_of(rank_), dst_global, env,
                  byte_span{static_cast<const std::byte*>(buf), bytes},
                  mode);
  if (!status.is_ok()) {
    release_admission(dst_global, env, mode);
    return false;
  }
  // Re-check after the send: eager frames are fire-and-forget, so a link
  // killed *while the frame was departing* eats it without any error
  // status. If the detector reports the edge dead now, the frame may have
  // departed after the kill instant — report failure conservatively and
  // let the caller re-route. A duplicate delivery (the frame actually
  // made it) is harmless: bcast adoption is idempotent under the mode
  // byte, and stragglers are quarantined by the epoch tag.
  if (rank_unreachable(rank_, dest)) return false;
  return true;
}

void Comm::ft_bcast_tree(std::byte* wire, std::size_t bytes, rank_t root) {
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  const int tag = ft::bcast_tag(ft::capture_epoch());
  const usec_t timeout = collective_config().agree_timeout_us;
  auto to_rank = [&](int v) { return static_cast<rank_t>((v + root) % n); };

  std::vector<std::byte> frame(kBcastHeader + bytes);

  int mask = 1;
  if (vrank != 0) {
    while (mask < n && !(vrank & mask)) mask <<= 1;

    // Wildcard receive: the data normally comes from the tree parent but
    // adoption may deliver it from any ancestor (or a relaying sibling) —
    // so no witness is set even though the data originates at the root: a
    // dead root->me *link* does not doom this receive while a relay route
    // lives. Only the deadline bounds the wait (a truly dead root stalls
    // the whole session, which is exactly what arms the deadline sweep).
    auto state = std::make_shared<RequestState>(my_node());
    PostedRecv posted;
    posted.context = shared_->context + 1;
    posted.source = kAnySource;
    posted.tag = tag;
    posted.buffer = frame.data();
    posted.type = Datatype::byte();
    posted.count = static_cast<int>(frame.size());
    posted.capacity_bytes = frame.size();
    posted.request = state;
    posted.posted_at = my_node().clock().now();
    posted.ft_deadline_us = posted.posted_at + timeout;
    my_context().post_recv(std::move(posted));
    const MpiStatus status = state->wait();
    if (status.error != ErrorCode::kOk) {
      // No data reached this rank: the only recv-side verdict of the
      // tree (send-side failures are either covered by adoption or
      // reported by the unserved rank itself — this path).
      ft::record(ErrorCode::kProcFailed);
      return;
    }
    const auto mode = std::to_integer<std::uint8_t>(frame[0]);
    std::memcpy(wire, frame.data() + kBcastHeader, bytes);
    if (mode == kModeLeafAndRelay) {
      const int target_v = static_cast<int>(get_u32le(frame.data() + 4));
      frame[0] = static_cast<std::byte>(kModeLeaf);
      put_u32le(frame.data() + 4, 0);
      // Relay failure is not our verdict: the target is either dead
      // (nothing to report) or will report itself via its deadline.
      ft_try_send(frame.data(), frame.size(), to_rank(target_v), tag);
    }
    if (mode != kModeData) return;  // adopted: subtree already served
  } else {
    while (mask < n) mask <<= 1;
  }

  put_u32le(frame.data(), 0);
  put_u32le(frame.data() + 4, 0);
  std::memcpy(frame.data() + kBcastHeader, wire, bytes);

  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (vrank + mask >= n) continue;
    const int child_v = vrank + mask;
    frame[0] = static_cast<std::byte>(kModeData);
    put_u32le(frame.data() + 4, 0);
    if (ft_try_send(frame.data(), frame.size(), to_rank(child_v), tag)) {
      continue;
    }
    // Dead edge: adopt the child's subtree — every descendant is served
    // directly with kModeLeaf (their own children are also descendants,
    // so nothing further forwards) — and the first member reached is
    // asked to relay the payload to the child itself over its own,
    // possibly live, route.
    const int subtree_end = std::min(child_v + mask, n);
    bool relay_placed = false;
    for (int member_v = child_v + 1; member_v < subtree_end; ++member_v) {
      const bool with_relay = !relay_placed;
      frame[0] = static_cast<std::byte>(with_relay ? kModeLeafAndRelay
                                                   : kModeLeaf);
      put_u32le(frame.data() + 4,
                with_relay ? static_cast<std::uint32_t>(child_v) : 0);
      if (ft_try_send(frame.data(), frame.size(), to_rank(member_v), tag) &&
          with_relay) {
        relay_placed = true;
      }
    }
    // No verdict recorded here: a live unserved rank reports itself
    // (witness cancel or deadline), and a dead one has nothing to say —
    // so a bcast that re-routed around a dead rank still *succeeds* on
    // every live rank.
  }
}

Comm::FtOutcome Comm::ft_agree_internal(
    int epoch, std::uint32_t err_bits, std::uint32_t and_bits,
    const std::vector<std::uint8_t>& dead_in) {
  const int n = size();
  MADMPI_CHECK_MSG(n <= 256, "FT agreement supports up to 256 ranks");

  FtOutcome state;
  state.err_bits = err_bits;
  state.and_bits = and_bits;
  state.dead.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < dead_in.size() && i < state.dead.size(); ++i) {
    state.dead[i] = dead_in[i];
  }
  if (n == 1) return state;

  const usec_t timeout = collective_config().agree_timeout_us;
  const std::size_t frame_bytes =
      kAgreeHeader + static_cast<std::size_t>(n);
  std::vector<std::byte> out_frame(frame_bytes);
  std::vector<std::vector<std::byte>> in_frames(
      static_cast<std::size_t>(n));
  std::vector<std::shared_ptr<RequestState>> waits(
      static_cast<std::size_t>(n));
  // Local-only exclusion: peers the detector or a failed agreement
  // receive disqualified. Never merged into the decided dead set.
  std::vector<std::uint8_t> excluded(static_cast<std::size_t>(n), 0);

  // Early termination ("fast agreement"): a round is *complete and clean*
  // when every peer's frame arrived (no exclusions, no receive errors)
  // and the merged state holds no error or death evidence. Each frame of
  // round k reports whether the sender's round k-1 was complete and
  // clean; if my round 1 was, and every round-2 frame arrived carrying
  // the bit, then all n ranks received all n inputs and the inputs were
  // unanimously clean — every rank's merged state is already identical,
  // so rounds 3..n cannot change anything and everyone can stop after
  // round 2. The stopping rule itself is uniform: unclean evidence
  // originates in some round-1 frame, and by round 2 it either reached a
  // rank or made that rank exclude its carrier — both veto the stop.
  // Fault-free this caps the protocol at two small-message rounds
  // regardless of n; any evidence of trouble falls back to the full
  // n-round flood.
  bool prev_round_clean = false;
  for (int round = 0; round < n; ++round) {
    const int tag = ft::agree_tag(epoch, round);
    bool round_complete = true;

    for (int p = 0; p < n; ++p) {
      waits[static_cast<std::size_t>(p)] = nullptr;
      if (p == rank_) continue;
      if (excluded[static_cast<std::size_t>(p)]) {
        round_complete = false;
        continue;
      }
      if (rank_unreachable(p, rank_)) {
        excluded[static_cast<std::size_t>(p)] = 1;
        round_complete = false;
        continue;
      }
      auto& buf = in_frames[static_cast<std::size_t>(p)];
      buf.assign(frame_bytes, std::byte{0});
      auto wait_state = std::make_shared<RequestState>(my_node());
      PostedRecv posted;
      posted.context = shared_->context + 1;
      posted.source = static_cast<rank_t>(p);
      posted.tag = tag;
      posted.buffer = buf.data();
      posted.type = Datatype::byte();
      posted.count = static_cast<int>(frame_bytes);
      posted.capacity_bytes = frame_bytes;
      posted.request = wait_state;
      posted.source_global = global_rank_of(p);
      posted.posted_at = my_node().clock().now();
      posted.ft_deadline_us = posted.posted_at + timeout;
      my_context().post_recv(std::move(posted));
      waits[static_cast<std::size_t>(p)] = std::move(wait_state);
    }

    put_u32le(out_frame.data(), state.err_bits);
    put_u32le(out_frame.data() + 4, state.and_bits);
    out_frame[8] =
        static_cast<std::byte>(prev_round_clean ? kFlagPrevRoundClean : 0);
    for (int i = 0; i < n; ++i) {
      out_frame[kAgreeHeader + static_cast<std::size_t>(i)] =
          static_cast<std::byte>(state.dead[static_cast<std::size_t>(i)]);
    }
    // Send to every peer, excluded ones included: exclusion is a local
    // guess, the frame is tiny, and an extra delivery only speeds
    // convergence on the other side.
    for (int p = 0; p < n; ++p) {
      if (p == rank_) continue;
      ft_try_send(out_frame.data(), frame_bytes, static_cast<rank_t>(p),
                  tag);
    }

    bool peers_prev_clean = true;
    for (int p = 0; p < n; ++p) {
      auto& wait_state = waits[static_cast<std::size_t>(p)];
      if (!wait_state) continue;
      const MpiStatus status = wait_state->wait();
      if (status.error != ErrorCode::kOk) {
        excluded[static_cast<std::size_t>(p)] = 1;
        round_complete = false;
        continue;
      }
      const auto& buf = in_frames[static_cast<std::size_t>(p)];
      state.err_bits |= get_u32le(buf.data());
      state.and_bits &= get_u32le(buf.data() + 4);
      if (!(std::to_integer<std::uint8_t>(buf[8]) & kFlagPrevRoundClean)) {
        peers_prev_clean = false;
      }
      for (int i = 0; i < n; ++i) {
        state.dead[static_cast<std::size_t>(i)] |=
            std::to_integer<std::uint8_t>(
                buf[kAgreeHeader + static_cast<std::size_t>(i)]);
      }
    }

    bool state_clean = state.err_bits == 0;
    for (int i = 0; i < n && state_clean; ++i) {
      state_clean = state.dead[static_cast<std::size_t>(i)] == 0;
    }
    const bool this_round_clean = round_complete && state_clean;
    // The stop is *lenient* about round-2 exclusions: after a complete
    // and clean round 1 this rank already merged every input, so its
    // decided state equals the full-set value whether or not some peer's
    // round-2 frame arrived — and a peer whose round 1 went wrong says
    // so in the frames it DID deliver (unclean flag), which vetoes the
    // stop. Waiting out an excluded peer here would strand this rank in
    // rounds nobody else runs.
    if (round == 1 && prev_round_clean && state_clean && peers_prev_clean) {
      return state;
    }
    prev_round_clean = this_round_clean;
  }
  return state;
}

Status Comm::ft_collective(const std::function<Status()>& body) {
  const int epoch = shared_->next_epoch(rank_);
  ft::begin_capture(epoch);
  const Status inner = body();
  ErrorCode observed = ft::end_capture();
  if (observed == ErrorCode::kOk && !inner.is_ok()) observed = inner.code();

  const FtOutcome agreed = ft_agree_internal(
      epoch, observed == ErrorCode::kOk ? 0u : 1u, 0xffffffffu, {});
  if (agreed.err_bits != 0) {
    return raise_error(
        Status(ErrorCode::kProcFailed,
               "collective failed on at least one rank (agreed)"));
  }
  return Status::ok();
}

Status Comm::ft_bcast(void* buf, int count, const Datatype& type,
                      rank_t root) {
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  std::vector<std::byte> staging;
  std::byte* wire = nullptr;
  if (type.is_contiguous()) {
    wire = static_cast<std::byte*>(buf);
  } else {
    staging.resize(bytes);
    wire = staging.data();
    if (rank_ == root) type.pack(buf, count, wire);
  }

  const int epoch = shared_->next_epoch(rank_);
  ft::begin_capture(epoch);
  ft_bcast_tree(wire, bytes, root);
  const ErrorCode observed = ft::end_capture();

  const FtOutcome agreed = ft_agree_internal(
      epoch, observed == ErrorCode::kOk ? 0u : 1u, 0xffffffffu, {});
  if (agreed.err_bits != 0) {
    return raise_error(Status(ErrorCode::kProcFailed,
                              "bcast failed on at least one rank (agreed)"));
  }
  if (!type.is_contiguous() && rank_ != root) {
    type.unpack(wire, count, buf);
  }
  return Status::ok();
}

Status Comm::ft_allreduce(const void* send_buf, void* recv_buf, int count,
                          const Datatype& type, const Op& op) {
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  const int epoch = shared_->next_epoch(rank_);
  ft::begin_capture(epoch);
  // Binomial reduce to 0 (captured: a dead hop records, never unwinds),
  // then the survivable tree redistributes the result.
  reduce(send_buf, recv_buf, count, type, op, 0);
  ft_bcast_tree(static_cast<std::byte*>(recv_buf), bytes, 0);
  const ErrorCode observed = ft::end_capture();

  const FtOutcome agreed = ft_agree_internal(
      epoch, observed == ErrorCode::kOk ? 0u : 1u, 0xffffffffu, {});
  if (agreed.err_bits != 0) {
    return raise_error(
        Status(ErrorCode::kProcFailed,
               "allreduce failed on at least one rank (agreed)"));
  }
  return Status::ok();
}

// --- ULFM recovery API -------------------------------------------------

Status Comm::revoke() {
  Runtime* runtime = shared_->runtime;
  runtime->revoke_context(shared_->context);
  // Interrupt peers blocked in operations on the revoked communicator
  // (both its p2p and collective contexts); later operations are caught
  // by the entry check.
  for (rank_t p = 0; p < size(); ++p) {
    RankContext& context = runtime->context_of(global_rank_of(p));
    context.cancel_context(shared_->context, ErrorCode::kRevoked);
    context.cancel_context(shared_->context + 1, ErrorCode::kRevoked);
    context.notify_waiters();
  }
  return Status::ok();
}

bool Comm::revoked() const {
  return shared_->runtime->context_revoked(shared_->context);
}

Comm Comm::shrink() {
  const int n = size();
  const int epoch = shared_->next_epoch(rank_);

  // Input view: ranks this one cannot exchange data with, either way.
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    if (p == rank_) continue;
    if (rank_unreachable(p, rank_) || rank_unreachable(rank_, p)) {
      dead[static_cast<std::size_t>(p)] = 1;
    }
  }
  const FtOutcome agreed =
      ft_agree_internal(epoch, 0u, 0xffffffffu, dead);

  if (agreed.dead[static_cast<std::size_t>(rank_)]) {
    // The group agreed *this* rank is unreachable (asymmetric partition):
    // it cannot join the survivors' communicator.
    raise_error(Status(ErrorCode::kProcFailed,
                       "shrink: this rank was agreed failed"));
    return Comm();
  }

  std::vector<rank_t> survivors;
  std::uint32_t digest = 2166136261u;  // FNV-1a over the agreed dead set
  rank_t my_new_rank = kInvalidRank;
  for (int p = 0; p < n; ++p) {
    digest = (digest ^ agreed.dead[static_cast<std::size_t>(p)]) *
             16777619u;
    if (!agreed.dead[static_cast<std::size_t>(p)]) {
      if (p == rank_) my_new_rank = static_cast<rank_t>(survivors.size());
      survivors.push_back(shared_->group[static_cast<std::size_t>(p)]);
    }
  }
  MADMPI_CHECK(my_new_rank != kInvalidRank);

  // Every survivor derives the same context (same dead set => same
  // digest; the sequence counters advance in lockstep) — a partition's
  // two sides derive different ones and can never cross-talk.
  const int seq = shared_->next_seq(rank_);
  const std::int64_t key =
      (static_cast<std::int64_t>(seq) << 32) |
      static_cast<std::int64_t>(digest & 0x7fffffffu);
  auto shared = std::make_shared<Shared>();
  shared->runtime = shared_->runtime;
  shared->context = shared_->runtime->derive_context_id(shared_->context,
                                                        key);
  shared->group = std::move(survivors);
  shared->collectives = collective_config();
  shared->creation_seq.assign(shared->group.size(), 0);
  shared->errhandlers.assign(shared->group.size(), errhandler());
  return Comm(std::move(shared), my_new_rank);
}

Status Comm::agree(int* flag) {
  MADMPI_CHECK(flag != nullptr);
  const int n = size();
  const int epoch = shared_->next_epoch(rank_);

  std::vector<std::uint8_t> dead(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    if (p == rank_) continue;
    if (rank_unreachable(p, rank_) || rank_unreachable(rank_, p)) {
      dead[static_cast<std::size_t>(p)] = 1;
    }
  }
  const FtOutcome agreed = ft_agree_internal(
      epoch, 0u, static_cast<std::uint32_t>(*flag), dead);
  *flag = static_cast<int>(agreed.and_bits);

  bool any_dead = false;
  for (const std::uint8_t d : agreed.dead) any_dead = any_dead || d != 0;
  if (agreed.err_bits != 0 || any_dead) {
    return raise_error(Status(ErrorCode::kProcFailed,
                              "agree: a participant has failed"));
  }
  return Status::ok();
}

}  // namespace madmpi::mpi
