// Collective operations over point-to-point (the "generic part: collective
// ops" box of the MPICH structure, paper Figure 1). Algorithms are the
// classic MPICH ones: binomial trees for bcast/reduce, dissemination
// barrier, ring allgather, pairwise alltoall, linear scan.
//
// Collectives run on `context + 1` — the private collective context of the
// communicator — so their traffic can never match user receives.
#include <algorithm>
#include <cstring>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/comm_shared.hpp"
#include "mpi/ft_internal.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::mpi {

namespace {

// Per-algorithm tags (unique within the collective context; collectives on
// one communicator are serialized by MPI semantics).
constexpr int kBarrierTag = 1;
constexpr int kBcastTag = 2;
constexpr int kReduceTag = 3;
constexpr int kGatherTag = 4;
constexpr int kScatterTag = 5;
constexpr int kAllgatherTag = 6;
constexpr int kAlltoallTag = 7;
constexpr int kScanTag = 8;

/// Thrown by the collective p2p helpers when a hop fails, unwinding the
/// algorithm to the public entry point, which routes the status through
/// the communicator's error handler (exactly once per user-visible
/// operation) and returns it. Collectives define no recovery protocol —
/// peers of the failed rank may be left mid-algorithm and rely on the
/// progress watchdog to cancel their now-unmatchable operations.
struct CollAbort {
  Status status;
};

/// Wait for an algorithm-internal receive, aborting the collective when it
/// completed with an error (watchdog cancellation of a dead hop). In FT
/// capture mode the failure is recorded and the algorithm continues —
/// every rank runs the full schedule so no peer is left waiting on a hop
/// that will never be posted; the verdict feeds the uniform agreement.
void coll_wait(RequestState& state) {
  const MpiStatus status = state.wait();
  if (status.error != ErrorCode::kOk) {
    if (ft::capture_active()) {
      ft::record(status.error);
      return;
    }
    throw CollAbort{Status(status.error,
                           "collective receive failed mid-algorithm")};
  }
}

}  // namespace

void Comm::coll_send(const void* buf, std::size_t bytes, rank_t dest,
                     int tag) {
  if (ft::capture_active() && rank_unreachable(rank_, dest)) {
    // The detector already proves this hop dead: skip the device (and in
    // particular never start a rendezvous handshake a dead peer cannot
    // answer) and record the verdict.
    ft::record(ErrorCode::kProcFailed);
    return;
  }
  Envelope env = make_envelope(dest, ft::remap_tag(tag), bytes, false);
  env.context = shared_->context + 1;
  Device& device = device_to(dest);
  const rank_t dst_global = global_rank_of(dest);
  // Collective traffic obeys the same flow control as user traffic: a
  // congested peer demotes the hop to rendezvous.
  const TransferMode mode =
      admit_or_demote(device, dst_global, env, false, /*may_block=*/true);
  Status status =
      device.send(global_rank_of(rank_), dst_global, env,
                  byte_span{static_cast<const std::byte*>(buf), bytes},
                  mode);
  if (!status.is_ok()) {
    release_admission(dst_global, env, mode);
    if (ft::capture_active()) {
      ft::record(status.code());
      return;
    }
    throw CollAbort{status};
  }
}

void Comm::coll_send_multi(const std::vector<rank_t>& children,
                           const void* buf, std::size_t bytes, int tag) {
  if (children.empty()) return;
  if (ft::capture_active() || children.size() == 1) {
    for (rank_t child : children) coll_send(buf, bytes, child, tag);
    return;
  }
  // The caller blocks right here until every hop completes, so the
  // rendezvous threads can borrow `buf` without staging (coll_isend's
  // lifetime contract).
  std::vector<Request> requests;
  requests.reserve(children.size());
  for (rank_t child : children) {
    requests.push_back(coll_isend(buf, bytes, child, tag));
  }
  for (Request& request : requests) coll_wait(*request.state());
}

void Comm::coll_recv(void* buf, std::size_t bytes, rank_t source, int tag) {
  if (ft::capture_active() && rank_unreachable(source, rank_)) {
    ft::record(ErrorCode::kProcFailed);
    return;
  }
  auto state = std::make_shared<RequestState>(my_node());
  PostedRecv posted;
  posted.context = shared_->context + 1;
  posted.source = source;
  posted.tag = ft::remap_tag(tag);
  posted.buffer = buf;
  posted.type = Datatype::byte();
  posted.count = static_cast<int>(bytes);
  posted.capacity_bytes = bytes;
  posted.request = state;
  posted.source_global = global_rank_of(source);
  posted.posted_at = my_node().clock().now();
  if (ft::capture_active()) {
    posted.ft_deadline_us =
        posted.posted_at + collective_config().agree_timeout_us;
  }
  my_context().post_recv(std::move(posted));
  coll_wait(*state);
}

void Comm::coll_sendrecv(const void* send, std::size_t send_bytes,
                         rank_t dest, void* recv, std::size_t recv_bytes,
                         rank_t source, int tag) {
  if (ft::capture_active() && rank_unreachable(source, rank_)) {
    // Still attempt the send half — the destination may be live and
    // waiting on it; only the receive half is provably dead.
    ft::record(ErrorCode::kProcFailed);
    coll_send(send, send_bytes, dest, tag);
    return;
  }
  auto state = std::make_shared<RequestState>(my_node());
  PostedRecv posted;
  posted.context = shared_->context + 1;
  posted.source = source;
  posted.tag = ft::remap_tag(tag);
  posted.buffer = recv;
  posted.type = Datatype::byte();
  posted.count = static_cast<int>(recv_bytes);
  posted.capacity_bytes = recv_bytes;
  posted.request = state;
  posted.source_global = global_rank_of(source);
  posted.posted_at = my_node().clock().now();
  if (ft::capture_active()) {
    posted.ft_deadline_us =
        posted.posted_at + collective_config().agree_timeout_us;
  }
  my_context().post_recv(std::move(posted));
  coll_send(send, send_bytes, dest, tag);
  coll_wait(*state);
}

void Comm::gather_packed_to_root(const void* send_buf, int send_count,
                                 const Datatype& send_type, std::byte* wire,
                                 const std::vector<std::size_t>& offsets,
                                 rank_t root) {
  const int n = size();
  if (rank_ != root) {
    std::vector<std::byte> staging;
    const byte_span packed =
        pack_for_send(send_buf, send_count, send_type, staging);
    coll_send(packed.data(), packed.size(), root, kGatherTag);
    return;
  }
  MADMPI_CHECK(offsets.size() == static_cast<std::size_t>(n) + 1);
  for (rank_t src = 0; src < n; ++src) {
    std::byte* dst = wire + offsets[static_cast<std::size_t>(src)];
    const std::size_t bytes = offsets[static_cast<std::size_t>(src) + 1] -
                              offsets[static_cast<std::size_t>(src)];
    if (src == rank_) {
      MADMPI_CHECK_MSG(
          send_type.size() * static_cast<std::size_t>(send_count) == bytes,
          "gather root's own block disagrees with its receive slot");
      send_type.pack(send_buf, send_count, dst);
    } else {
      coll_recv(dst, bytes, src, kGatherTag);
    }
  }
}

void Comm::set_collective_config(const CollectiveConfig& config) {
  std::lock_guard<std::mutex> lock(shared_->seq_mutex);
  shared_->collectives = config;
}

CollectiveConfig Comm::collective_config() const {
  std::lock_guard<std::mutex> lock(shared_->seq_mutex);
  return shared_->collectives;
}

Status Comm::barrier() {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] { return barrier(); });
  }
  if (size() > 1) {
    switch (resolve_barrier()) {
      case BarrierAlgorithm::kHierarchical:
        try {
          hier_barrier();
        } catch (const CollAbort& abort) {
          return raise_error(abort.status);
        }
        return Status::ok();
      case BarrierAlgorithm::kOffload:
        try {
          offload_barrier();
        } catch (const CollAbort& abort) {
          return raise_error(abort.status);
        }
        return Status::ok();
      default:
        break;  // dissemination below
    }
  }
  try {
    // Dissemination barrier: log2(size) rounds of zero-byte exchanges.
    const int n = size();
    for (int mask = 1; mask < n; mask <<= 1) {
      const rank_t to = (rank_ + mask) % n;
      const rank_t from = (rank_ - mask + n) % n;

      if (ft::capture_active() && rank_unreachable(from, rank_)) {
        ft::record(ErrorCode::kProcFailed);
        coll_send(nullptr, 0, to, kBarrierTag);
        continue;
      }
      auto state = std::make_shared<RequestState>(my_node());
      PostedRecv posted;
      posted.context = shared_->context + 1;
      posted.source = from;
      posted.tag = ft::remap_tag(kBarrierTag);
      posted.request = state;
      posted.source_global = global_rank_of(from);
      posted.posted_at = my_node().clock().now();
      if (ft::capture_active()) {
        posted.ft_deadline_us =
            posted.posted_at + collective_config().agree_timeout_us;
      }
      my_context().post_recv(std::move(posted));

      coll_send(nullptr, 0, to, kBarrierTag);
      coll_wait(*state);
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

void Comm::bcast_binomial(std::byte* wire, std::size_t bytes, rank_t root) {
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const rank_t src = ((vrank & ~mask) + root) % n;
      coll_recv(wire, bytes, src, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  std::vector<rank_t> children;
  while (mask > 0) {
    if (vrank + mask < n) {
      children.push_back((vrank + mask + root) % n);
    }
    mask >>= 1;
  }
  coll_send_multi(children, wire, bytes, kBcastTag);
}

void Comm::bcast_linear(std::byte* wire, std::size_t bytes, rank_t root) {
  if (rank_ == root) {
    for (rank_t dst = 0; dst < size(); ++dst) {
      if (dst != root) coll_send(wire, bytes, dst, kBcastTag);
    }
  } else {
    coll_recv(wire, bytes, root, kBcastTag);
  }
}

Status Comm::bcast(void* buf, int count, const Datatype& type, rank_t root) {
  MADMPI_CHECK(root >= 0 && root < size());
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_bcast(buf, count, type, root);
  }
  const int n = size();
  if (n == 1) return Status::ok();
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);

  // The payload travels packed; non-contiguous types are staged.
  std::vector<std::byte> staging;
  std::byte* wire = nullptr;
  if (type.is_contiguous()) {
    wire = static_cast<std::byte*>(buf);
  } else {
    staging.resize(bytes);
    wire = staging.data();
    if (rank_ == root) type.pack(buf, count, wire);
  }

  try {
    switch (resolve_bcast(bytes)) {
      case BcastAlgorithm::kLinear:
        bcast_linear(wire, bytes, root);
        break;
      case BcastAlgorithm::kHierarchical:
        hier_bcast(wire, bytes, root);
        break;
      case BcastAlgorithm::kOffload:
        offload_bcast(wire, bytes, root);
        break;
      default:
        bcast_binomial(wire, bytes, root);
        break;
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }

  if (!type.is_contiguous() && rank_ != root) {
    type.unpack(wire, count, buf);
  }
  return Status::ok();
}

Status Comm::reduce(const void* send_buf, void* recv_buf, int count,
                    const Datatype& type, const Op& op, rank_t root) {
  MADMPI_CHECK(root >= 0 && root < size());
  MADMPI_CHECK_MSG(type.is_contiguous(),
                   "reduce requires a contiguous datatype");
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective(
        [&] { return reduce(send_buf, recv_buf, count, type, op, root); });
  }
  const int n = size();
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);

  // Local accumulator starts as this rank's contribution.
  std::vector<std::byte> accum(bytes);
  std::memcpy(accum.data(), send_buf, bytes);
  std::vector<std::byte> incoming(bytes);

  const int vrank = (rank_ - root + n) % n;
  try {
    if (n > 1 && use_hier_reduce(bytes)) {
      // Reduce rides the allreduce resolution (same communication shape).
      hier_reduce(accum.data(), bytes, count, type, op, root);
    } else {
      for (int mask = 1; mask < n; mask <<= 1) {
        if (vrank & mask) {
          const rank_t dst = ((vrank & ~mask) + root) % n;
          coll_send(accum.data(), bytes, dst, kReduceTag);
          break;
        }
        const int src_v = vrank | mask;
        if (src_v < n) {
          const rank_t src = (src_v + root) % n;
          coll_recv(incoming.data(), bytes, src, kReduceTag);
          op.apply(incoming.data(), accum.data(), count, type);
          my_node().clock().advance(static_cast<double>(bytes) *
                                    sim::kHostCopyUsPerByte);
        }
      }
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  if (rank_ == root) {
    std::memcpy(recv_buf, accum.data(), bytes);
  }
  return Status::ok();
}

void Comm::allreduce_recursive_doubling(void* recv_buf, int count,
                                        const Datatype& type, const Op& op) {
  // Classic recursive doubling, with the standard pre/post folding step
  // for non-power-of-two sizes: the `rem` highest "extra" ranks fold their
  // contribution into a partner, sit out the log2 rounds, and get the
  // result back at the end.
  const int n = size();
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  std::vector<std::byte> incoming(bytes);
  auto* accum = static_cast<std::byte*>(recv_buf);

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  int my_core_rank;  // rank within the power-of-two core, -1 if folded out
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      // Odd ranks in the folded region send their data and wait.
      coll_send(accum, bytes, rank_ - 1, kReduceTag);
      my_core_rank = -1;
    } else {
      coll_recv(incoming.data(), bytes, rank_ + 1, kReduceTag);
      op.apply(incoming.data(), accum, count, type);
      my_core_rank = rank_ / 2;
    }
  } else {
    my_core_rank = rank_ - rem;
  }

  if (my_core_rank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_core = my_core_rank ^ mask;
      const rank_t partner = partner_core < rem ? partner_core * 2
                                                : partner_core + rem;
      coll_sendrecv(accum, bytes, partner, incoming.data(), bytes, partner,
                    kReduceTag);
      op.apply(incoming.data(), accum, count, type);
      my_node().clock().advance(static_cast<double>(bytes) *
                                sim::kHostCopyUsPerByte);
    }
  }

  // Post step: return the result to the folded-out odd ranks.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      coll_send(accum, bytes, rank_ + 1, kReduceTag);
    } else {
      coll_recv(accum, bytes, rank_ - 1, kReduceTag);
    }
  }
}

void Comm::allreduce_ring(void* recv_buf, int count, const Datatype& type,
                          const Op& op) {
  // Bandwidth-optimal ring: a reduce-scatter pass (n-1 steps over count/n
  // chunks) followed by an allgather pass (n-1 steps). Each rank sends
  // 2*(n-1)/n of the data total, independent of n.
  const int n = size();
  const std::size_t elem = type.size();
  auto* accum = static_cast<std::byte*>(recv_buf);

  // Chunk c covers elements [offsets[c], offsets[c+1]).
  std::vector<int> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int c = 0; c < n; ++c) {
    offsets[static_cast<std::size_t>(c) + 1] =
        offsets[static_cast<std::size_t>(c)] + count / n +
        (c < count % n ? 1 : 0);
  }
  auto chunk_ptr = [&](int c) {
    return accum + elem * static_cast<std::size_t>(
                              offsets[static_cast<std::size_t>(c)]);
  };
  auto chunk_elems = [&](int c) {
    return offsets[static_cast<std::size_t>(c) + 1] -
           offsets[static_cast<std::size_t>(c)];
  };

  const rank_t right = (rank_ + 1) % n;
  const rank_t left = (rank_ - 1 + n) % n;
  std::vector<std::byte> incoming(
      elem * static_cast<std::size_t>(count / n + 1));

  // Reduce-scatter: after step s, rank r holds the partial reduction of
  // chunk (r - s) from ranks r-s..r.
  for (int step = 0; step < n - 1; ++step) {
    const int send_chunk = (rank_ - step + n) % n;
    const int recv_chunk = (rank_ - step - 1 + n) % n;
    const std::size_t send_bytes =
        elem * static_cast<std::size_t>(chunk_elems(send_chunk));
    const std::size_t recv_bytes =
        elem * static_cast<std::size_t>(chunk_elems(recv_chunk));
    coll_sendrecv(chunk_ptr(send_chunk), send_bytes, right, incoming.data(),
                  recv_bytes, left, kReduceTag);
    if (chunk_elems(recv_chunk) > 0) {
      op.apply(incoming.data(), chunk_ptr(recv_chunk),
               chunk_elems(recv_chunk), type);
    }
  }

  // Allgather: circulate the fully-reduced chunks.
  for (int step = 0; step < n - 1; ++step) {
    const int send_chunk = (rank_ + 1 - step + n) % n;
    const int recv_chunk = (rank_ - step + n) % n;
    const std::size_t send_bytes =
        elem * static_cast<std::size_t>(chunk_elems(send_chunk));
    const std::size_t recv_bytes =
        elem * static_cast<std::size_t>(chunk_elems(recv_chunk));
    coll_sendrecv(chunk_ptr(send_chunk), send_bytes, right,
                  chunk_ptr(recv_chunk), recv_bytes, left, kReduceTag);
  }
}

Status Comm::allreduce(const void* send_buf, void* recv_buf, int count,
                       const Datatype& type, const Op& op) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_allreduce(send_buf, recv_buf, count, type, op);
  }
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  AllreduceAlgorithm algorithm = resolve_allreduce(bytes);
  // The ring needs at least one element per rank to be worthwhile (and
  // correct chunking); degrade gracefully for tiny payloads.
  if (algorithm == AllreduceAlgorithm::kRing && count < size()) {
    algorithm = AllreduceAlgorithm::kRecursiveDoubling;
  }
  if (size() == 1 || algorithm == AllreduceAlgorithm::kReduceBcast) {
    // The inner collectives already routed any failure through the error
    // handler; propagate without raising a second time.
    Status status = reduce(send_buf, recv_buf, count, type, op, 0);
    if (!status.is_ok()) return status;
    return bcast(recv_buf, count, type, 0);
  }

  MADMPI_CHECK_MSG(type.is_contiguous(),
                   "allreduce requires a contiguous datatype");
  std::memcpy(recv_buf, send_buf, bytes);
  try {
    if (algorithm == AllreduceAlgorithm::kHierarchical) {
      hier_allreduce(recv_buf, count, type, op);
    } else if (algorithm == AllreduceAlgorithm::kRecursiveDoubling) {
      allreduce_recursive_doubling(recv_buf, count, type, op);
    } else {
      allreduce_ring(recv_buf, count, type, op);
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::gather(const void* send_buf, int send_count,
                    const Datatype& send_type, void* recv_buf, int recv_count,
                    const Datatype& recv_type, rank_t root) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return gather(send_buf, send_count, send_type, recv_buf, recv_count,
                    recv_type, root);
    });
  }
  const int n = size();
  const std::size_t bytes =
      send_type.size() * static_cast<std::size_t>(send_count);
  std::vector<std::size_t> offsets;
  std::vector<std::byte> wire;
  if (rank_ == root) {
    MADMPI_CHECK_MSG(
        recv_type.size() * static_cast<std::size_t>(recv_count) == bytes,
        "gather send/recv type signatures disagree");
    offsets.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int r = 0; r < n; ++r) {
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] + bytes;
    }
    wire.resize(offsets.back());
  }
  try {
    gather_packed_to_root(send_buf, send_count, send_type, wire.data(),
                          offsets, root);
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(recv_buf);
    const std::size_t slot =
        recv_type.extent() * static_cast<std::size_t>(recv_count);
    for (rank_t src = 0; src < n; ++src) {
      recv_type.unpack(wire.data() + offsets[static_cast<std::size_t>(src)],
                       recv_count, out + slot * static_cast<std::size_t>(src));
    }
  }
  return Status::ok();
}

Status Comm::gatherv(const void* send_buf, int send_count,
                     const Datatype& send_type, void* recv_buf,
                     std::span<const int> recv_counts,
                     std::span<const int> displacements,
                     const Datatype& recv_type, rank_t root) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return gatherv(send_buf, send_count, send_type, recv_buf, recv_counts,
                     displacements, recv_type, root);
    });
  }
  const int n = size();
  std::vector<std::size_t> offsets;
  std::vector<std::byte> wire;
  if (rank_ == root) {
    MADMPI_CHECK(recv_counts.size() == static_cast<std::size_t>(n));
    MADMPI_CHECK(displacements.size() == static_cast<std::size_t>(n));
    offsets.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int r = 0; r < n; ++r) {
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] +
          recv_type.size() * static_cast<std::size_t>(recv_counts[r]);
    }
    wire.resize(offsets.back());
  }
  try {
    gather_packed_to_root(send_buf, send_count, send_type, wire.data(),
                          offsets, root);
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(recv_buf);
    for (rank_t src = 0; src < n; ++src) {
      recv_type.unpack(wire.data() + offsets[static_cast<std::size_t>(src)],
                       recv_counts[src],
                       out + recv_type.extent() *
                                 static_cast<std::size_t>(displacements[src]));
    }
  }
  return Status::ok();
}

Status Comm::scatter(const void* send_buf, int send_count,
                     const Datatype& send_type, void* recv_buf,
                     int recv_count, const Datatype& recv_type, rank_t root) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return scatter(send_buf, send_count, send_type, recv_buf, recv_count,
                     recv_type, root);
    });
  }
  const int n = size();
  const std::size_t bytes =
      recv_type.size() * static_cast<std::size_t>(recv_count);
  try {
    if (rank_ == root) {
      MADMPI_CHECK_MSG(
          send_type.size() * static_cast<std::size_t>(send_count) == bytes,
          "scatter send/recv type signatures disagree");
      const auto* in = static_cast<const std::byte*>(send_buf);
      const std::size_t slot =
          send_type.extent() * static_cast<std::size_t>(send_count);
      std::vector<std::byte> wire(bytes);
      for (rank_t dst = 0; dst < n; ++dst) {
        const std::byte* src_elem = in + slot * static_cast<std::size_t>(dst);
        send_type.pack(src_elem, send_count, wire.data());
        if (dst == rank_) {
          recv_type.unpack(wire.data(), recv_count, recv_buf);
        } else {
          coll_send(wire.data(), bytes, dst, kScatterTag);
        }
      }
    } else {
      std::vector<std::byte> wire(bytes);
      coll_recv(wire.data(), bytes, root, kScatterTag);
      recv_type.unpack(wire.data(), recv_count, recv_buf);
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::scatterv(const void* send_buf, std::span<const int> send_counts,
                      std::span<const int> displacements,
                      const Datatype& send_type, void* recv_buf,
                      int recv_count, const Datatype& recv_type,
                      rank_t root) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return scatterv(send_buf, send_counts, displacements, send_type,
                      recv_buf, recv_count, recv_type, root);
    });
  }
  const int n = size();
  try {
    if (rank_ == root) {
      MADMPI_CHECK(send_counts.size() == static_cast<std::size_t>(n));
      MADMPI_CHECK(displacements.size() == static_cast<std::size_t>(n));
      const auto* in = static_cast<const std::byte*>(send_buf);
      for (rank_t dst = 0; dst < n; ++dst) {
        const std::size_t bytes =
            send_type.size() * static_cast<std::size_t>(send_counts[dst]);
        const std::byte* src_elem =
            in + send_type.extent() *
                     static_cast<std::size_t>(displacements[dst]);
        std::vector<std::byte> wire(bytes);
        send_type.pack(src_elem, send_counts[dst], wire.data());
        if (dst == rank_) {
          MADMPI_CHECK(recv_type.size() *
                           static_cast<std::size_t>(recv_count) == bytes);
          recv_type.unpack(wire.data(), recv_count, recv_buf);
        } else {
          coll_send(wire.data(), bytes, dst, kScatterTag);
        }
      }
    } else {
      const std::size_t bytes =
          recv_type.size() * static_cast<std::size_t>(recv_count);
      std::vector<std::byte> wire(bytes);
      coll_recv(wire.data(), bytes, root, kScatterTag);
      recv_type.unpack(wire.data(), recv_count, recv_buf);
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::allgather(const void* send_buf, int send_count,
                       const Datatype& send_type, void* recv_buf,
                       int recv_count, const Datatype& recv_type) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return allgather(send_buf, send_count, send_type, recv_buf, recv_count,
                       recv_type);
    });
  }
  // Ring algorithm: size-1 steps, each forwarding the freshest block.
  const int n = size();
  const std::size_t block =
      send_type.size() * static_cast<std::size_t>(send_count);
  MADMPI_CHECK_MSG(
      recv_type.size() * static_cast<std::size_t>(recv_count) == block,
      "allgather send/recv type signatures disagree");

  std::vector<std::byte> wire(block * static_cast<std::size_t>(n));
  send_type.pack(send_buf, send_count,
                 wire.data() + block * static_cast<std::size_t>(rank_));

  const rank_t right = (rank_ + 1) % n;
  const rank_t left = (rank_ - 1 + n) % n;
  int cur = rank_;
  try {
    for (int step = 0; step < n - 1; ++step) {
      const int incoming = (cur - 1 + n) % n;
      if (ft::capture_active() && rank_unreachable(left, rank_)) {
        ft::record(ErrorCode::kProcFailed);
        coll_send(wire.data() + block * static_cast<std::size_t>(cur), block,
                  right, kAllgatherTag);
        cur = incoming;
        continue;
      }
      // Post the receive before sending to avoid rendezvous cross-blocking.
      auto state = std::make_shared<RequestState>(my_node());
      PostedRecv posted;
      posted.context = shared_->context + 1;
      posted.source = left;
      posted.tag = ft::remap_tag(kAllgatherTag);
      posted.buffer =
          wire.data() + block * static_cast<std::size_t>(incoming);
      posted.type = Datatype::byte();
      posted.count = static_cast<int>(block);
      posted.capacity_bytes = block;
      posted.request = state;
      posted.source_global = global_rank_of(left);
      posted.posted_at = my_node().clock().now();
      if (ft::capture_active()) {
        posted.ft_deadline_us =
            posted.posted_at + collective_config().agree_timeout_us;
      }
      my_context().post_recv(std::move(posted));

      coll_send(wire.data() + block * static_cast<std::size_t>(cur), block,
                right, kAllgatherTag);
      coll_wait(*state);
      cur = incoming;
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }

  auto* out = static_cast<std::byte*>(recv_buf);
  const std::size_t slot =
      recv_type.extent() * static_cast<std::size_t>(recv_count);
  for (rank_t r = 0; r < n; ++r) {
    recv_type.unpack(wire.data() + block * static_cast<std::size_t>(r),
                     recv_count, out + slot * static_cast<std::size_t>(r));
  }
  return Status::ok();
}

Status Comm::allgatherv(const void* send_buf, int send_count,
                        const Datatype& send_type, void* recv_buf,
                        std::span<const int> recv_counts,
                        std::span<const int> displacements,
                        const Datatype& recv_type) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return allgatherv(send_buf, send_count, send_type, recv_buf,
                        recv_counts, displacements, recv_type);
    });
  }
  // Gather-to-0 then bcast of the concatenated packed blocks (simple and
  // correct for ragged sizes).
  const int n = size();
  MADMPI_CHECK(recv_counts.size() == static_cast<std::size_t>(n));
  MADMPI_CHECK(displacements.size() == static_cast<std::size_t>(n));

  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] +
        recv_type.size() * static_cast<std::size_t>(recv_counts[r]);
  }
  std::vector<std::byte> wire(offsets.back());

  try {
    gather_packed_to_root(send_buf, send_count, send_type, wire.data(),
                          offsets, 0);
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  Status status =
      bcast(wire.data(), static_cast<int>(wire.size()), Datatype::byte(), 0);
  if (!status.is_ok()) return status;  // bcast already raised

  auto* out = static_cast<std::byte*>(recv_buf);
  for (rank_t r = 0; r < n; ++r) {
    recv_type.unpack(wire.data() + offsets[static_cast<std::size_t>(r)],
                     recv_counts[r],
                     out + recv_type.extent() *
                               static_cast<std::size_t>(displacements[r]));
  }
  return Status::ok();
}

Status Comm::alltoall(const void* send_buf, int send_count,
                      const Datatype& send_type, void* recv_buf,
                      int recv_count, const Datatype& recv_type) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return alltoall(send_buf, send_count, send_type, recv_buf, recv_count,
                      recv_type);
    });
  }
  const int n = size();
  const std::size_t block =
      send_type.size() * static_cast<std::size_t>(send_count);
  MADMPI_CHECK_MSG(
      recv_type.size() * static_cast<std::size_t>(recv_count) == block,
      "alltoall send/recv type signatures disagree");

  const auto* in = static_cast<const std::byte*>(send_buf);
  auto* out = static_cast<std::byte*>(recv_buf);
  const std::size_t in_slot =
      send_type.extent() * static_cast<std::size_t>(send_count);
  const std::size_t out_slot =
      recv_type.extent() * static_cast<std::size_t>(recv_count);

  std::vector<std::byte> send_wire(block);
  std::vector<std::byte> recv_wire(block);

  // Own block first.
  send_type.pack(in + in_slot * static_cast<std::size_t>(rank_), send_count,
                 send_wire.data());
  recv_type.unpack(send_wire.data(), recv_count,
                   out + out_slot * static_cast<std::size_t>(rank_));

  // Pairwise exchange: step i pairs (rank+i) with (rank-i).
  try {
    for (int i = 1; i < n; ++i) {
      const rank_t dst = (rank_ + i) % n;
      const rank_t src = (rank_ - i + n) % n;

      if (ft::capture_active() && rank_unreachable(src, rank_)) {
        ft::record(ErrorCode::kProcFailed);
        send_type.pack(in + in_slot * static_cast<std::size_t>(dst),
                       send_count, send_wire.data());
        coll_send(send_wire.data(), block, dst, kAlltoallTag);
        continue;
      }
      auto state = std::make_shared<RequestState>(my_node());
      PostedRecv posted;
      posted.context = shared_->context + 1;
      posted.source = src;
      posted.tag = ft::remap_tag(kAlltoallTag);
      posted.buffer = recv_wire.data();
      posted.type = Datatype::byte();
      posted.count = static_cast<int>(block);
      posted.capacity_bytes = block;
      posted.request = state;
      posted.source_global = global_rank_of(src);
      posted.posted_at = my_node().clock().now();
      if (ft::capture_active()) {
        posted.ft_deadline_us =
            posted.posted_at + collective_config().agree_timeout_us;
      }
      my_context().post_recv(std::move(posted));

      send_type.pack(in + in_slot * static_cast<std::size_t>(dst), send_count,
                     send_wire.data());
      coll_send(send_wire.data(), block, dst, kAlltoallTag);
      coll_wait(*state);
      recv_type.unpack(recv_wire.data(), recv_count,
                       out + out_slot * static_cast<std::size_t>(src));
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::alltoallv(const void* send_buf, std::span<const int> send_counts,
                       std::span<const int> send_displs,
                       const Datatype& send_type, void* recv_buf,
                       std::span<const int> recv_counts,
                       std::span<const int> recv_displs,
                       const Datatype& recv_type) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return alltoallv(send_buf, send_counts, send_displs, send_type,
                       recv_buf, recv_counts, recv_displs, recv_type);
    });
  }
  const int n = size();
  MADMPI_CHECK(send_counts.size() == static_cast<std::size_t>(n));
  MADMPI_CHECK(send_displs.size() == static_cast<std::size_t>(n));
  MADMPI_CHECK(recv_counts.size() == static_cast<std::size_t>(n));
  MADMPI_CHECK(recv_displs.size() == static_cast<std::size_t>(n));

  const auto* in = static_cast<const std::byte*>(send_buf);
  auto* out = static_cast<std::byte*>(recv_buf);

  // Own block.
  {
    const std::size_t bytes =
        send_type.size() * static_cast<std::size_t>(send_counts[rank_]);
    MADMPI_CHECK_MSG(
        recv_type.size() * static_cast<std::size_t>(recv_counts[rank_]) ==
            bytes,
        "alltoallv self block signatures disagree");
    std::vector<std::byte> wire(bytes);
    send_type.pack(in + send_type.extent() *
                            static_cast<std::size_t>(send_displs[rank_]),
                   send_counts[rank_], wire.data());
    recv_type.unpack(wire.data(), recv_counts[rank_],
                     out + recv_type.extent() *
                               static_cast<std::size_t>(recv_displs[rank_]));
  }

  // Pairwise exchange, ragged block sizes per peer.
  try {
    for (int i = 1; i < n; ++i) {
      const rank_t dst = (rank_ + i) % n;
      const rank_t src = (rank_ - i + n) % n;
      const std::size_t send_bytes =
          send_type.size() * static_cast<std::size_t>(send_counts[dst]);
      const std::size_t recv_bytes =
          recv_type.size() * static_cast<std::size_t>(recv_counts[src]);

      std::vector<std::byte> recv_wire(recv_bytes);
      if (ft::capture_active() && rank_unreachable(src, rank_)) {
        ft::record(ErrorCode::kProcFailed);
        std::vector<std::byte> skip_wire(send_bytes);
        send_type.pack(in + send_type.extent() *
                                static_cast<std::size_t>(send_displs[dst]),
                       send_counts[dst], skip_wire.data());
        coll_send(skip_wire.data(), send_bytes, dst, kAlltoallTag);
        continue;
      }
      auto state = std::make_shared<RequestState>(my_node());
      PostedRecv posted;
      posted.context = shared_->context + 1;
      posted.source = src;
      posted.tag = ft::remap_tag(kAlltoallTag);
      posted.buffer = recv_wire.data();
      posted.type = Datatype::byte();
      posted.count = static_cast<int>(recv_bytes);
      posted.capacity_bytes = recv_bytes;
      posted.request = state;
      posted.source_global = global_rank_of(src);
      posted.posted_at = my_node().clock().now();
      if (ft::capture_active()) {
        posted.ft_deadline_us =
            posted.posted_at + collective_config().agree_timeout_us;
      }
      my_context().post_recv(std::move(posted));

      std::vector<std::byte> send_wire(send_bytes);
      send_type.pack(in + send_type.extent() *
                              static_cast<std::size_t>(send_displs[dst]),
                     send_counts[dst], send_wire.data());
      coll_send(send_wire.data(), send_bytes, dst, kAlltoallTag);
      coll_wait(*state);
      recv_type.unpack(recv_wire.data(), recv_counts[src],
                       out + recv_type.extent() *
                                 static_cast<std::size_t>(recv_displs[src]));
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::scan(const void* send_buf, void* recv_buf, int count,
                  const Datatype& type, const Op& op) {
  MADMPI_CHECK_MSG(type.is_contiguous(), "scan requires a contiguous datatype");
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective(
        [&] { return scan(send_buf, recv_buf, count, type, op); });
  }
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  std::memcpy(recv_buf, send_buf, bytes);

  try {
    if (rank_ > 0) {
      std::vector<std::byte> prefix(bytes);
      coll_recv(prefix.data(), bytes, rank_ - 1, kScanTag);
      // recv_buf = prefix OP own.
      op.apply(prefix.data(), recv_buf, count, type);
    }
    if (rank_ + 1 < size()) {
      coll_send(recv_buf, bytes, rank_ + 1, kScanTag);
    }
  } catch (const CollAbort& abort) {
    return raise_error(abort.status);
  }
  return Status::ok();
}

Status Comm::reduce_scatter_block(const void* send_buf, void* recv_buf,
                                  int count, const Datatype& type,
                                  const Op& op) {
  MADMPI_CHECK_MSG(type.is_contiguous(),
                   "reduce_scatter requires a contiguous datatype");
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    return raise_error(entry);
  }
  if (ft_should_wrap()) {
    return ft_collective([&] {
      return reduce_scatter_block(send_buf, recv_buf, count, type, op);
    });
  }
  const int n = size();
  std::vector<std::byte> full(type.size() *
                              static_cast<std::size_t>(count) *
                              static_cast<std::size_t>(n));
  Status status = reduce(send_buf, full.data(), count * n, type, op, 0);
  if (!status.is_ok()) return status;  // reduce already raised
  return scatter(full.data(), count, type, recv_buf, count, type, 0);
}

}  // namespace madmpi::mpi
