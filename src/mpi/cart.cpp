#include "mpi/cart.hpp"

#include <algorithm>

namespace madmpi::mpi {

CartComm CartComm::create(Comm& comm, std::span<const int> dims,
                          std::span<const bool> periodic, bool reorder) {
  (void)reorder;  // rank order preserved (permitted by the standard)
  MADMPI_CHECK(dims.size() == periodic.size());
  int total = 1;
  for (int d : dims) {
    MADMPI_CHECK_MSG(d >= 1, "cartesian dimension must be positive");
    total *= d;
  }
  MADMPI_CHECK_MSG(total <= comm.size(),
                   "cartesian grid larger than the communicator");

  // Ranks [0, total) form the grid; the rest get an invalid handle.
  Comm grid = comm.split(comm.rank() < total ? 0 : -1, comm.rank());

  CartComm cart;
  if (!grid.valid()) return cart;
  cart.comm_ = std::move(grid);
  cart.dims_.assign(dims.begin(), dims.end());
  cart.periodic_.assign(periodic.begin(), periodic.end());
  return cart;
}

std::vector<int> CartComm::balanced_dims(int size, int ndims) {
  MADMPI_CHECK(size >= 1 && ndims >= 1);
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Prime-factorize, then assign the factors in decreasing order onto the
  // currently-smallest dimension — the classic MPI_Dims_create balance
  // (12 over 2 dims -> 4x3, not 6x2).
  std::vector<int> factors;
  int remaining = size;
  for (int factor = 2; remaining > 1;) {
    if (remaining % factor == 0) {
      factors.push_back(factor);
      remaining /= factor;
    } else {
      ++factor;
    }
  }
  std::sort(factors.rbegin(), factors.rend());
  for (int factor : factors) {
    *std::min_element(dims.begin(), dims.end()) *= factor;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

std::vector<int> CartComm::coords(rank_t rank) const {
  MADMPI_CHECK(rank >= 0 && rank < comm_.size());
  std::vector<int> out(dims_.size());
  int remainder = rank;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    out[d] = remainder % dims_[d];
    remainder /= dims_[d];
  }
  return out;
}

rank_t CartComm::rank_at(std::span<const int> coords) const {
  MADMPI_CHECK(coords.size() == dims_.size());
  rank_t rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int c = coords[d];
    if (periodic_[d]) {
      c = ((c % dims_[d]) + dims_[d]) % dims_[d];
    } else {
      MADMPI_CHECK_MSG(c >= 0 && c < dims_[d],
                       "coordinate outside a non-periodic dimension");
    }
    rank = rank * dims_[d] + c;
  }
  return rank;
}

CartComm::Shift CartComm::shift(int dim, int displacement) const {
  MADMPI_CHECK(dim >= 0 && static_cast<std::size_t>(dim) < dims_.size());
  const auto mine = my_coords();
  Shift result;

  auto neighbour = [&](int direction) -> rank_t {
    std::vector<int> coords = mine;
    coords[static_cast<std::size_t>(dim)] += direction * displacement;
    const int c = coords[static_cast<std::size_t>(dim)];
    if (!periodic_[static_cast<std::size_t>(dim)] &&
        (c < 0 || c >= dims_[static_cast<std::size_t>(dim)])) {
      return kInvalidRank;  // MPI_PROC_NULL
    }
    return rank_at(coords);
  };
  result.dest = neighbour(+1);
  result.source = neighbour(-1);
  return result;
}

}  // namespace madmpi::mpi
