// Cartesian process topologies (MPI_Cart_create and friends): the natural
// addressing for the stencil workloads the paper's clusters ran.
#pragma once

#include <span>
#include <vector>

#include "mpi/comm.hpp"

namespace madmpi::mpi {

class CartComm {
 public:
  CartComm() = default;

  /// MPI_Cart_create: `dims[i]` processes along dimension i, `periodic[i]`
  /// wrapping. The product of dims must not exceed comm.size(); surplus
  /// ranks receive an invalid CartComm. `reorder` is accepted but this
  /// implementation keeps ranks in place (allowed by the standard).
  static CartComm create(Comm& comm, std::span<const int> dims,
                         std::span<const bool> periodic, bool reorder = false);

  /// MPI_Dims_create: factor `size` into `ndims` balanced dimensions.
  static std::vector<int> balanced_dims(int size, int ndims);

  bool valid() const { return comm_.valid(); }
  Comm& comm() { return comm_; }
  int ndims() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }
  bool periodic(int dim) const {
    return periodic_[static_cast<std::size_t>(dim)];
  }

  /// MPI_Cart_coords: coordinates of `rank` (row-major layout).
  std::vector<int> coords(rank_t rank) const;
  std::vector<int> my_coords() const { return coords(comm_.rank()); }

  /// MPI_Cart_rank: rank at `coords`; periodic dimensions wrap, and
  /// out-of-range coordinates on non-periodic dimensions abort.
  rank_t rank_at(std::span<const int> coords) const;

  /// MPI_Cart_shift: (source, dest) pair for a displacement along `dim`.
  /// Either may be kInvalidRank at a non-periodic boundary (MPI_PROC_NULL).
  struct Shift {
    rank_t source = kInvalidRank;
    rank_t dest = kInvalidRank;
  };
  Shift shift(int dim, int displacement) const;

 private:
  Comm comm_;
  std::vector<int> dims_;
  std::vector<bool> periodic_;
};

}  // namespace madmpi::mpi
