// Classic MPI C API facade.
//
// Lets textbook MPI programs run on MPICH/Madeleine with minimal edits:
// the familiar MPI_* functions, handle types and constants, implemented
// over the C++ library. Each rank thread binds its world communicator via
// compat::run(); the handles live in thread-local tables, mirroring how a
// real MPI process owns its handles.
//
//   madmpi::compat::run(cluster, [] {
//     MPI_Init(nullptr, nullptr);
//     int rank, size;
//     MPI_Comm_rank(MPI_COMM_WORLD, &rank);
//     MPI_Comm_size(MPI_COMM_WORLD, &size);
//     ...
//     MPI_Finalize();
//   });
#pragma once

#include <functional>

#include "mpi/comm.hpp"
#include "sim/topology.hpp"

// ---------------------------------------------------------------- handles

using MPI_Comm = int;
using MPI_Datatype = int;
using MPI_Op = int;
using MPI_Request = int;
using MPI_Message = int;
using MPI_Errhandler = int;
using MPI_Win = int;
using MPI_Aint = long long;

/// MPI-2 style communicator error handler: receives the comm handle and
/// the error class (the varargs of the real signature are omitted).
using MPI_Comm_errhandler_function = void(MPI_Comm*, int*);

struct MPI_Status {
  int MPI_SOURCE;
  int MPI_TAG;
  int MPI_ERROR;
  int internal_bytes;      // consumed by MPI_Get_count
  int internal_cancelled;  // consumed by MPI_Test_cancelled
};

// --------------------------------------------------------------- constants

inline constexpr MPI_Comm MPI_COMM_NULL = -1;
inline constexpr MPI_Comm MPI_COMM_WORLD = 0;

inline constexpr MPI_Datatype MPI_BYTE = 0;
inline constexpr MPI_Datatype MPI_CHAR = 1;
inline constexpr MPI_Datatype MPI_INT = 2;
inline constexpr MPI_Datatype MPI_UNSIGNED = 3;
inline constexpr MPI_Datatype MPI_LONG_LONG = 4;
inline constexpr MPI_Datatype MPI_UNSIGNED_LONG_LONG = 5;
inline constexpr MPI_Datatype MPI_FLOAT = 6;
inline constexpr MPI_Datatype MPI_DOUBLE = 7;

inline constexpr MPI_Op MPI_SUM = 0;
inline constexpr MPI_Op MPI_PROD = 1;
inline constexpr MPI_Op MPI_MIN = 2;
inline constexpr MPI_Op MPI_MAX = 3;
inline constexpr MPI_Op MPI_LAND = 4;
inline constexpr MPI_Op MPI_LOR = 5;
inline constexpr MPI_Op MPI_BAND = 6;
inline constexpr MPI_Op MPI_BOR = 7;
inline constexpr MPI_Op MPI_BXOR = 8;
inline constexpr MPI_Op MPI_REPLACE = 9;  // valid only for MPI_Accumulate

inline constexpr int MPI_ANY_SOURCE = -2;
inline constexpr int MPI_ANY_TAG = -1;
inline constexpr int MPI_UNDEFINED = -32766;
inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_TRUNCATE = 15;
inline constexpr int MPI_ERR_OTHER = 16;
inline constexpr int MPI_ERR_ARG = 17;
// ULFM (MPI fault-tolerance proposal) error classes, MPIX-prefixed like
// the Open MPI implementation.
inline constexpr int MPIX_ERR_PROC_FAILED = 18;
inline constexpr int MPIX_ERR_REVOKED = 19;

inline constexpr MPI_Errhandler MPI_ERRHANDLER_NULL = -1;
inline constexpr MPI_Errhandler MPI_ERRORS_ARE_FATAL = 0;  // the default
inline constexpr MPI_Errhandler MPI_ERRORS_RETURN = 1;

inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;
inline MPI_Status* const MPI_STATUSES_IGNORE = nullptr;
inline constexpr MPI_Request MPI_REQUEST_NULL = -1;
inline constexpr MPI_Message MPI_MESSAGE_NULL = -1;

inline constexpr MPI_Win MPI_WIN_NULL = -1;
inline constexpr int MPI_LOCK_SHARED = 1;
inline constexpr int MPI_LOCK_EXCLUSIVE = 2;

// ------------------------------------------------------------- entry point

namespace madmpi::compat {

/// Build a session over `cluster` and run `rank_main` once per rank, with
/// MPI_COMM_WORLD bound for that thread. Returns when every rank returned.
void run(const sim::ClusterSpec& cluster,
         const std::function<void()>& rank_main);

/// Bind/unbind the current thread manually (used by run(); exposed so a
/// custom harness can drive the facade inside its own Session::run).
void bind_world(mpi::Comm world);
void unbind_world();

}  // namespace madmpi::compat

// ----------------------------------------------------------- the C-ish API

int MPI_Init(int* argc, char*** argv);
int MPI_Finalize();
int MPI_Initialized(int* flag);

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* out);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* out);
int MPI_Comm_free(MPI_Comm* comm);

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm);
int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
int MPI_Sendrecv(const void* send_buf, int send_count, MPI_Datatype send_type,
                 int dest, int send_tag, void* recv_buf, int recv_count,
                 MPI_Datatype recv_type, int source, int recv_tag,
                 MPI_Comm comm, MPI_Status* status);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status);

// Matched probe (MPI-3 §3.8.2): the returned MPI_Message owns the matched
// queue entry, so the follow-up MPI_Mrecv/MPI_Imrecv cannot race another
// thread's receive for the same message.
int MPI_Mprobe(int source, int tag, MPI_Comm comm, MPI_Message* message,
               MPI_Status* status);
int MPI_Improbe(int source, int tag, MPI_Comm comm, int* flag,
                MPI_Message* message, MPI_Status* status);
int MPI_Mrecv(void* buf, int count, MPI_Datatype type, MPI_Message* message,
              MPI_Status* status);
int MPI_Imrecv(void* buf, int count, MPI_Datatype type, MPI_Message* message,
               MPI_Request* request);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count);

// Error handlers (MPI §8.3, communicator-attachable). The default is
// MPI_ERRORS_ARE_FATAL; operations on a communicator with
// MPI_ERRORS_RETURN hand the error class back as their return value.
int MPI_Comm_create_errhandler(MPI_Comm_errhandler_function* fn,
                               MPI_Errhandler* errhandler);
int MPI_Comm_set_errhandler(MPI_Comm comm, MPI_Errhandler errhandler);
int MPI_Comm_get_errhandler(MPI_Comm comm, MPI_Errhandler* errhandler);
int MPI_Errhandler_free(MPI_Errhandler* errhandler);
int MPI_Comm_call_errhandler(MPI_Comm comm, int errorcode);

// Derived datatypes (handles are per-thread, like communicators).
int MPI_Type_contiguous(int count, MPI_Datatype old_type,
                        MPI_Datatype* new_type);
int MPI_Type_vector(int count, int block_length, int stride,
                    MPI_Datatype old_type, MPI_Datatype* new_type);
int MPI_Type_commit(MPI_Datatype* type);  // no-op (types are immutable)
int MPI_Type_free(MPI_Datatype* type);
int MPI_Type_size(MPI_Datatype type, int* size);
int MPI_Pack_size(int count, MPI_Datatype type, MPI_Comm comm, int* size);
int MPI_Pack(const void* in, int count, MPI_Datatype type, void* out,
             int out_size, int* position, MPI_Comm comm);
int MPI_Unpack(const void* in, int in_size, int* position, void* out,
               int count, MPI_Datatype type, MPI_Comm comm);

// Persistent requests.
int MPI_Send_init(const void* buf, int count, MPI_Datatype type, int dest,
                  int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Recv_init(void* buf, int count, MPI_Datatype type, int source,
                  int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Start(MPI_Request* request);
int MPI_Startall(int count, MPI_Request* requests);
int MPI_Request_free(MPI_Request* request);

// Buffered sends.
int MPI_Buffer_attach(void* buffer, int size);
int MPI_Buffer_detach(void* buffer_addr, int* size);
int MPI_Bsend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm);

// Multi-request completion.
int MPI_Waitany(int count, MPI_Request* requests, int* index,
                MPI_Status* status);
int MPI_Testall(int count, MPI_Request* requests, int* flag,
                MPI_Status* statuses);

// Cancellation (MPI §3.8.4). Cancel is local and best-effort: a receive
// that has not matched, or a rendezvous send whose handshake has not been
// answered, is withdrawn; otherwise the operation completes normally. The
// outcome is reported by MPI_Test_cancelled on the status from the
// mandatory MPI_Wait/MPI_Test that follows.
int MPI_Cancel(MPI_Request* request);
int MPI_Test_cancelled(const MPI_Status* status, int* flag);

// Cartesian topologies.
int MPI_Dims_create(int nnodes, int ndims, int* dims);
int MPI_Cart_create(MPI_Comm comm, int ndims, const int* dims,
                    const int* periods, int reorder, MPI_Comm* cart_comm);
int MPI_Cart_coords(MPI_Comm cart_comm, int rank, int maxdims, int* coords);
int MPI_Cart_rank(MPI_Comm cart_comm, const int* coords, int* rank);
int MPI_Cart_shift(MPI_Comm cart_comm, int direction, int displacement,
                   int* source, int* dest);
inline constexpr int MPI_PROC_NULL = -3;

// ULFM-style fault tolerance (MPIX, matching the MPI FT working group's
// proposal): revoke poisons a communicator on every rank, shrink rebuilds
// one over the survivors (inheriting the parent's error handler), agree
// uniformly ANDs `flag` across the live ranks.
int MPIX_Comm_revoke(MPI_Comm comm);
int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* new_comm);
int MPIX_Comm_agree(MPI_Comm comm, int* flag);

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buf, int count, MPI_Datatype type, int root,
              MPI_Comm comm);
int MPI_Reduce(const void* send_buf, void* recv_buf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void* send_buf, void* recv_buf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm);
int MPI_Gather(const void* send_buf, int send_count, MPI_Datatype send_type,
               void* recv_buf, int recv_count, MPI_Datatype recv_type,
               int root, MPI_Comm comm);
int MPI_Scatter(const void* send_buf, int send_count, MPI_Datatype send_type,
                void* recv_buf, int recv_count, MPI_Datatype recv_type,
                int root, MPI_Comm comm);
int MPI_Allgather(const void* send_buf, int send_count,
                  MPI_Datatype send_type, void* recv_buf, int recv_count,
                  MPI_Datatype recv_type, MPI_Comm comm);
int MPI_Alltoall(const void* send_buf, int send_count, MPI_Datatype send_type,
                 void* recv_buf, int recv_count, MPI_Datatype recv_type,
                 MPI_Comm comm);
int MPI_Scan(const void* send_buf, void* recv_buf, int count,
             MPI_Datatype type, MPI_Op op, MPI_Comm comm);
int MPI_Gatherv(const void* send_buf, int send_count, MPI_Datatype send_type,
                void* recv_buf, const int* recv_counts, const int* displs,
                MPI_Datatype recv_type, int root, MPI_Comm comm);
int MPI_Scatterv(const void* send_buf, const int* send_counts,
                 const int* displs, MPI_Datatype send_type, void* recv_buf,
                 int recv_count, MPI_Datatype recv_type, int root,
                 MPI_Comm comm);
int MPI_Allgatherv(const void* send_buf, int send_count,
                   MPI_Datatype send_type, void* recv_buf,
                   const int* recv_counts, const int* displs,
                   MPI_Datatype recv_type, MPI_Comm comm);
int MPI_Alltoallv(const void* send_buf, const int* send_counts,
                  const int* send_displs, MPI_Datatype send_type,
                  void* recv_buf, const int* recv_counts,
                  const int* recv_displs, MPI_Datatype recv_type,
                  MPI_Comm comm);

// Nonblocking collectives (MPI-3 §5.12 subset): progress-engine-driven
// schedules; complete the returned request with MPI_Wait/MPI_Test.
int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request);
int MPI_Ibcast(void* buf, int count, MPI_Datatype type, int root,
               MPI_Comm comm, MPI_Request* request);
int MPI_Iallreduce(const void* send_buf, void* recv_buf, int count,
                   MPI_Datatype type, MPI_Op op, MPI_Comm comm,
                   MPI_Request* request);

// One-sided communication (MPI-3 §11 subset over madmpi::mpi::Win). The
// target side is addressed as `target_disp * disp_unit` bytes into the
// window; the target datatype mirrors the origin's contiguously (the
// common textbook shape). Derived origin datatypes pack at the origin and
// travel as raw bytes. The `assert` arguments are accepted and ignored.
int MPI_Win_create(void* base, MPI_Aint size, int disp_unit, MPI_Comm comm,
                   MPI_Win* win);
int MPI_Win_allocate(MPI_Aint size, int disp_unit, MPI_Comm comm,
                     void* baseptr, MPI_Win* win);
int MPI_Win_free(MPI_Win* win);
int MPI_Win_fence(int assert_unused, MPI_Win win);
int MPI_Win_lock(int lock_type, int rank, int assert_unused, MPI_Win win);
int MPI_Win_unlock(int rank, MPI_Win win);
int MPI_Put(const void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win);
int MPI_Get(void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win);
int MPI_Accumulate(const void* origin, int origin_count,
                   MPI_Datatype origin_type, int target_rank,
                   MPI_Aint target_disp, int target_count,
                   MPI_Datatype target_type, MPI_Op op, MPI_Win win);

double MPI_Wtime();
